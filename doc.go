// Package scpm mines structural correlation patterns in large attributed
// graphs, implementing the VLDB 2012 paper "Mining Attribute-structure
// Correlated Patterns in Large Attributed Graphs" (Silva, Meira Jr.,
// Zaki; PVLDB 5(5):466–477).
//
// # Concepts
//
// An attributed graph G = (V, E, A, F) attaches an attribute set to every
// vertex. For an attribute set S, G(S) is the subgraph induced by the
// vertices carrying all of S. The structural correlation
//
//	ε(S) = |K_S| / |V(S)|
//
// is the fraction of those vertices covered by at least one
// γ-quasi-clique of size ≥ min_size in G(S); a structural correlation
// pattern (S, Q) pairs S with one such quasi-clique. The normalized
// structural correlation δ(S) = ε(S)/εexp(σ(S)) measures significance
// against a null model: either the analytical upper bound max-εexp
// (Theorem 2) or a Monte-Carlo estimate sim-εexp.
//
// # Quick start
//
//	g := scpm.NewBuilder()
//	g.AddVertex("alice", "databases", "go")
//	g.AddVertex("bob", "databases")
//	g.AddEdgeByName("alice", "bob")
//	graph, _ := g.Build()
//
//	res, err := scpm.Mine(graph, scpm.Params{
//		SigmaMin: 2, Gamma: 0.5, MinSize: 2, K: 3,
//	})
//	if err != nil { ... }
//	for _, set := range res.Sets {
//		fmt.Println(set) // attribute set with σ, ε, δ
//	}
//	for _, pat := range res.Patterns {
//		fmt.Println(pat) // (S, Q) patterns
//	}
//
// Mine runs the SCPM algorithm (search and pruning strategies of §3.2 of
// the paper); MineNaive runs the frequent-itemset × quasi-clique baseline
// of §3.1, useful for verification and benchmarking. See the examples/
// directory for runnable end-to-end scenarios and cmd/scpm for a CLI.
package scpm
