// Package scpm mines structural correlation patterns in large attributed
// graphs, implementing the VLDB 2012 paper "Mining Attribute-structure
// Correlated Patterns in Large Attributed Graphs" (Silva, Meira Jr.,
// Zaki; PVLDB 5(5):466–477).
//
// # Concepts
//
// An attributed graph G = (V, E, A, F) attaches an attribute set to every
// vertex. For an attribute set S, G(S) is the subgraph induced by the
// vertices carrying all of S. The structural correlation
//
//	ε(S) = |K_S| / |V(S)|
//
// is the fraction of those vertices covered by at least one
// γ-quasi-clique of size ≥ min_size in G(S); a structural correlation
// pattern (S, Q) pairs S with one such quasi-clique. The normalized
// structural correlation δ(S) = ε(S)/εexp(σ(S)) measures significance
// against a null model: either the analytical upper bound max-εexp
// (Theorem 2) or a Monte-Carlo estimate sim-εexp.
//
// # The Miner
//
// A Miner is a configured, reusable mining pipeline built with
// functional options:
//
//	miner, err := scpm.NewMiner(
//		scpm.WithSigmaMin(3),
//		scpm.WithGamma(0.6),
//		scpm.WithMinSize(4),
//		scpm.WithEpsMin(0.5),
//		scpm.WithTopK(10),
//	)
//
// It offers three consumption modes, all honoring context cancellation
// mid-search (a canceled run stops in bounded time and returns an error
// satisfying errors.Is(err, ErrCanceled) that wraps context.Cause):
//
// Batch — block until done, get the canonically sorted *Result; on
// cancellation the partial result mined so far is returned alongside
// ErrCanceled:
//
//	res, err := miner.Mine(ctx, g)
//
// Push — a Sink receives every qualifying attribute set and pattern the
// moment the search finds it, plus periodic progress updates. Each set
// arrives as one atomic burst (OnAttributeSet, then its patterns):
//
//	err := miner.Stream(ctx, g, scpm.SinkFuncs{
//		AttributeSet: func(s scpm.AttributeSet) { fmt.Println(s) },
//		Pattern:      func(p scpm.Pattern) { fmt.Println(" ", p) },
//	})
//
// Pull — a Go 1.23 range-over-func iterator; breaking out of the loop
// cancels the underlying search:
//
//	for s, err := range miner.Sets(ctx, g) {
//		if err != nil { ... }
//		fmt.Println(s)
//	}
//
// The search algorithm is SCPM (search and pruning strategies of §3.2
// of the paper); WithNaive switches to the frequent-itemset ×
// quasi-clique baseline of §3.1, useful for verification and
// benchmarking. WithSearchBudget bounds the per-induced-graph search,
// surfacing ErrBudget with the partial result when exhausted.
//
// # Migration from the batch-only API
//
// The package-level Mine and MineNaive functions that predated the
// Miner have been removed; the old Mine(g, p) call is
//
//	m, _ := scpm.NewMiner(scpm.WithParams(p))
//	res, _ := m.Mine(context.Background(), g)
//
// which also gains cancellation, streaming sinks, the Sets iterator,
// search budgets and progress reporting.
//
// # Dynamic graphs
//
// A Graph is immutable, but not frozen forever: Graph.NewDelta records
// a batch of updates (edges added/removed, vertices added, attributes
// set/unset) and Graph.Apply produces the next graph version plus a
// ChangeSet naming exactly the attributes the update could have
// affected. A Miner built WithLiveUpdates records its search lattice,
// so Miner.Remine re-mines an updated graph incrementally — attribute
// sets untouched by the update are carried over, everything else is
// recomputed, and the output is identical to a from-scratch Mine:
//
//	m, _ := scpm.NewMiner(scpm.WithParams(p), scpm.WithLiveUpdates())
//	res, _ := m.Mine(ctx, g)
//	d := g.NewDelta()
//	_ = d.AddEdge("alice", "bob")
//	g2, changes, _ := g.Apply(d)
//	res2, _ := m.Remine(ctx, g2, res, changes)
//
// # Serving mined results
//
// A Result can be frozen into an Index — stable-id lookups, an
// attribute-set trie (exact/subset/superset), inverted postings,
// top-k rankings and versioned binary snapshots — and served over HTTP
// with on-demand ε answers for attribute sets the run never emitted:
//
//	idx := scpm.NewIndex(res, g)
//	h, _ := scpm.NewServerHandler(idx, g, miner.Params(), scpm.ServerConfig{})
//	_ = scpm.Serve(ctx, ":8080", h)
//
// cmd/scpm-serve wraps this into a binary that mines or restores a
// snapshot on startup; docs/FILE_FORMATS.md specifies the endpoints
// and the snapshot format.
//
// See the examples/ directory for runnable end-to-end scenarios and
// cmd/scpm for a CLI that can stream results incrementally as NDJSON.
package scpm
