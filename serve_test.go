package scpm

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func mineQuickstart(t *testing.T) (*Graph, *Result, *Miner) {
	t.Helper()
	g := PaperExample()
	miner, err := NewMiner(
		WithSigmaMin(3), WithGamma(0.6), WithMinSize(4),
		WithEpsMin(0.5), WithTopK(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := miner.Mine(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	return g, res, miner
}

func TestFacadeIndexAndSnapshot(t *testing.T) {
	g, res, _ := mineQuickstart(t)
	idx := NewIndex(res, g)
	if idx.NumSets() != len(res.Sets) || idx.NumPatterns() != len(res.Patterns) {
		t.Fatalf("index shape: %d/%d", idx.NumSets(), idx.NumPatterns())
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sets {
		if _, ok := loaded.SetByID(s.ID()); !ok {
			t.Fatalf("loaded index misses %s", s.ID())
		}
	}
	top := idx.TopSets(ByEpsilon, 1)
	if len(top) != 1 || top[0].Epsilon != 1 {
		t.Fatalf("top by ε = %+v", top)
	}
}

func TestFacadeServerHandler(t *testing.T) {
	g, res, miner := mineQuickstart(t)
	h, err := NewServerHandler(NewIndex(res, g), g, miner.Params(), ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var health struct {
		Sets int `json:"sets"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Sets != 3 {
		t.Fatalf("healthz sets = %d", health.Sets)
	}

	// Invalid params must be rejected up front.
	if _, err := NewServerHandler(NewIndex(res, g), g, Params{}, ServerConfig{}); err == nil {
		t.Fatal("invalid params must fail")
	}

	// A nil graph serves indexed lookups only.
	bare, err := NewServerHandler(NewIndex(res, g), nil, miner.Params(), ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/epsilon?attrs=C", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("on-demand without graph = %d", rec.Code)
	}
}

func TestFacadeServeGracefulShutdown(t *testing.T) {
	g, res, miner := mineQuickstart(t)
	h, err := NewServerHandler(NewIndex(res, g), g, miner.Params(), ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, "127.0.0.1:0", h) }()
	// Serve owns the listener, so the test cannot know the port; a
	// prompt cancel exercises listen + graceful shutdown.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not shut down")
	}
	if err := Serve(ctx, "256.0.0.1:99999", h); err == nil {
		t.Fatal("bad address must fail")
	}
}
