package scpm

import (
	"io"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/datagen"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/nullmodel"
	"github.com/scpm/scpm/internal/quasiclique"
)

// Graph is an immutable attributed graph (vertices with attribute sets
// plus undirected edges). Build one with a Builder or ReadDataset.
type Graph = graph.Graph

// Builder incrementally constructs a Graph.
type Builder = graph.Builder

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// ReadDataset parses the two-file text format (vertex attributes +
// edge list) into a Graph. See WriteDataset for the format.
func ReadDataset(attrs, edges io.Reader) (*Graph, error) {
	return graph.ReadDataset(attrs, edges)
}

// WriteDataset writes g in the text dataset format: the attribute file
// has one "vertexName attr1 attr2 ..." line per vertex; the edge file
// one "nameA nameB" line per undirected edge.
func WriteDataset(g *Graph, attrs, edges io.Writer) error {
	return graph.WriteDataset(g, attrs, edges)
}

// Delta accumulates a batch of updates against one immutable Graph —
// edge additions/removals, new vertices, attribute set/unset toggles —
// each validated as it is recorded. Start one with Graph.NewDelta and
// produce the next graph version with Graph.Apply.
type Delta = graph.Delta

// ChangeSet reports exactly what a Graph.Apply touched: dirty vertices
// and — crucially for incremental re-mining — the sound
// over-approximation of the attributes whose sets may have changed.
// Attribute sets disjoint from the dirty attributes are provably
// unaffected by the update.
type ChangeSet = graph.ChangeSet

// Params configures a mining run; see the field documentation of
// core.Params (re-exported here) for the full reference.
type Params = core.Params

// Result is a mining run's output: scored attribute sets and their
// top-k structural correlation patterns, canonically sorted.
type Result = core.Result

// AttributeSet is a mined attribute set with σ, ε and δ.
type AttributeSet = core.AttributeSet

// Pattern is a structural correlation pattern (S, Q).
type Pattern = core.Pattern

// Stats aggregates run counters.
type Stats = core.Stats

// Ranking selects the TopSets ordering criterion.
type Ranking = core.Ranking

// Ranking criteria for TopSets.
const (
	BySupport = core.BySupport
	ByEpsilon = core.ByEpsilon
	ByDelta   = core.ByDelta
)

// SearchOrder selects the quasi-clique search frontier discipline.
type SearchOrder = quasiclique.SearchOrder

// Search orders for Params.Order.
const (
	DFS = quasiclique.DFS
	BFS = quasiclique.BFS
)

// EpsilonMode selects how the structural correlation ε(S) is computed
// (exact coverage search or Hoeffding-bounded vertex sampling).
type EpsilonMode = core.EpsilonMode

// Epsilon computation modes for Params.EpsilonMode; the Miner option
// WithEpsilonSampling selects EpsilonSampled.
const (
	EpsilonExact   = core.EpsilonExact
	EpsilonSampled = core.EpsilonSampled
)

// TopSets returns the n best attribute sets of a result under the given
// ranking (σ, ε or δ), as in the paper's case-study tables.
func TopSets(sets []AttributeSet, r Ranking, n int) []AttributeSet {
	return core.TopSets(sets, r, n)
}

// GlobalTopPatterns returns the n best patterns across all attribute
// sets, ranked by size then density.
func GlobalTopPatterns(pats []Pattern, n int) []Pattern {
	return core.GlobalTopPatterns(pats, n)
}

// DedupPatterns removes patterns whose vertex set overlaps a
// better-ranked pattern with Jaccard similarity ≥ threshold (the same
// community typically shows up for several attribute sets).
func DedupPatterns(pats []Pattern, numVertices int, threshold float64) []Pattern {
	return core.DedupPatterns(pats, numVertices, threshold)
}

// GraphSummary describes a graph's shape (degrees, components,
// clustering, attribute supports).
type GraphSummary = graph.Summary

// Summarize computes a GraphSummary; topAttrs bounds the reported
// attribute-support list.
func Summarize(g *Graph, topAttrs int) GraphSummary {
	return graph.Summarize(g, topAttrs)
}

// QuasiClique is a maximal γ-quasi-clique mined directly from a graph:
// Vertices holds its members (vertex ids of the mined graph), MinDeg
// the minimum internal degree and Edges the internal edge count.
type QuasiClique = quasiclique.Pattern

// FindQuasiCliques enumerates every maximal γ-quasi-clique of size ≥
// minSize in g (the substrate the paper builds on; Definition 1).
// Results are ordered largest and densest first. Invalid γ or minSize
// is rejected up front with a descriptive error.
func FindQuasiCliques(g *Graph, gamma float64, minSize int) ([]QuasiClique, error) {
	qg, qp, err := structuralView(g, gamma, minSize)
	if err != nil {
		return nil, err
	}
	return quasiclique.EnumerateMaximal(qg, qp, quasiclique.Options{})
}

// TopQuasiCliques mines the k largest (then densest) maximal
// γ-quasi-cliques of g, using the size-threshold pruning of §3.2.3 —
// much cheaper than full enumeration for small k. Invalid γ or minSize
// is rejected up front with a descriptive error.
func TopQuasiCliques(g *Graph, gamma float64, minSize, k int) ([]QuasiClique, error) {
	qg, qp, err := structuralView(g, gamma, minSize)
	if err != nil {
		return nil, err
	}
	return quasiclique.TopK(qg, qp, k, quasiclique.Options{})
}

// structuralView is the one shared Graph → quasiclique.Graph
// conversion: parameters are validated before any graph work, and the
// CSR adjacency backbone is wrapped by reference instead of being
// rebuilt per call.
func structuralView(g *Graph, gamma float64, minSize int) (*quasiclique.Graph, quasiclique.Params, error) {
	qp := quasiclique.Params{Gamma: gamma, MinSize: minSize}
	if err := qp.Validate(); err != nil {
		return nil, qp, err
	}
	return quasiclique.NewGraphCSR(g.CSR()), qp, nil
}

// NullModel yields the expected structural correlation εexp(σ); plug
// one into Params.Model to choose the δ normalization.
type NullModel = nullmodel.Model

// NewAnalyticalModel returns max-εexp, the analytical upper bound of
// Theorem 2 (the default model; yields δlb).
func NewAnalyticalModel(g *Graph, p Params) NullModel {
	return nullmodel.NewAnalytical(g, p.QuasiCliqueParams())
}

// NewSimulationModel returns sim-εexp estimated from r random vertex
// samples per support value (yields δsim). Results are deterministic
// for a fixed seed.
func NewSimulationModel(g *Graph, p Params, r int, seed int64) NullModel {
	return nullmodel.NewSimulation(g, p.QuasiCliqueParams(), r, seed)
}

// NewApproxSimulationModel returns sim-εexp whose per-sample covered
// fraction is itself estimated with Hoeffding-bounded membership
// sampling (the same machinery as WithEpsilonSampling) instead of a
// full coverage search per draw — much cheaper for large supports.
// Non-positive sampleEps / sampleDelta use the defaults (0.1, 0.05).
// Results are deterministic for a fixed seed.
func NewApproxSimulationModel(g *Graph, p Params, r int, seed int64, sampleEps, sampleDelta float64) NullModel {
	return nullmodel.NewSimulationApprox(g, p.QuasiCliqueParams(), r, seed, sampleEps, sampleDelta)
}

// GeneratorConfig parameterizes the synthetic attributed-graph
// generator (Chung–Lu background + planted attribute-correlated
// communities + Zipf attributes).
type GeneratorConfig = datagen.Config

// GroundTruth records the planted communities and topic attribute sets
// of a generated graph.
type GroundTruth = datagen.GroundTruth

// Generate builds a synthetic attributed graph; the same config always
// yields the same graph.
func Generate(c GeneratorConfig) (*Graph, *GroundTruth, error) {
	return datagen.Generate(c)
}

// PaperExample returns the 11-vertex worked example of the paper's
// Figure 1; mining it with σmin=3, γmin=0.6, min_size=4, εmin=0.5
// reproduces Table 1.
func PaperExample() *Graph { return graph.PaperExample() }
