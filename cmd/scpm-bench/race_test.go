//go:build race

package main

// raceEnabled reports that the test binary runs under the race
// detector, whose ~10x slowdown makes absolute-throughput assertions
// meaningless.
const raceEnabled = true
