//go:build !race

package main

// raceEnabled mirrors race_test.go for normal builds.
const raceEnabled = false
