// Command scpm-bench regenerates the paper's tables and figures on the
// synthetic stand-in datasets (see DESIGN.md §4 for the experiment
// index).
//
// Usage:
//
//	scpm-bench -exp all            # every experiment (E1..E10)
//	scpm-bench -exp table2         # one experiment
//	scpm-bench -exp fig8 -repeats 5
//	scpm-bench -exp bench -out .   # machine-readable BENCH_<dataset>.json baselines
//
// Experiments: table1, table2 (DBLP), table3 (LastFm), table4
// (CiteSeer), fig4, fig7, fig9 (expected ε curves), fig8 (performance),
// fig10 (sensitivity), ablation.
//
// Two extra experiment ids are not part of "all" (which stays
// stdout-only):
//
//   - "approx" compares exact and sampled ε estimation on one dataset
//     (-approx-dataset): per-set |ε̂−ε| accuracy against the Hoeffding
//     bound and the wall-clock speedup, per sampling configuration;
//   - "serve" benchmarks the query-serving subsystem on the quickstart
//     dataset: index build time, snapshot size and queries/sec per
//     endpoint, written to BENCH_serve.json;
//   - "update" measures the dynamic-graph path: after a single-edge or
//     single-attribute delta, a full re-mine of the updated graph is
//     timed against the incremental Remine from the previous result's
//     lattice, per dataset (-update-datasets), into BENCH_update.json;
//   - "shard" measures the sharded deployment: mining each dataset
//     (-shard-datasets) as 1, 2 and 4 lattice partitions in parallel
//     (merge verified against the single-process result) and the
//     scatter-gather gateway's throughput fronting two replicas versus
//     a direct server, into BENCH_shard.json;
//   - "boot" measures the v3 snapshot cold-boot path: each dataset
//     (-boot-datasets) is mined, written as a v3 snapshot and opened in
//     materialize versus mmap mode (best of -repeats, loaded contents
//     cross-checked), recording wall, heap and resident bytes per mode
//     into BENCH_boot.json;
//   - "bench" mines the synthetic datasets at several scales — once per
//     ε-estimator mode (exact and sampled) — and writes one
//     BENCH_<dataset>.json per dataset with wall time, search nodes,
//     sampled-vertex counts, result counts and allocation figures, so
//     every future change has a comparable baseline (see
//     docs/ARCHITECTURE.md and the README's Benchmarks section).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	scpm "github.com/scpm/scpm"
	"github.com/scpm/scpm/internal/experiments"
	"github.com/scpm/scpm/internal/obs"
	"github.com/scpm/scpm/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(runMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func runMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scpm-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment id (table1..table4, fig4, fig7, fig8, fig9, fig10, ablation, approx, bench, serve, update, shard, boot, all)")
		scale   = fs.Float64("scale", 1.0, "dataset scale factor")
		repeats = fs.Int("repeats", 3, "timing repetitions for fig8 (best-of)")
		samples = fs.Int("samples", 100, "simulation samples per support value for fig4/7/9")
		naive   = fs.Bool("naive", true, "include the naive baseline in fig8")
		topN    = fs.Int("top", 10, "rows per ranking block in table2-4")

		benchOut      = fs.String("out", ".", "directory for the BENCH_<dataset>.json files written by -exp bench")
		benchScales   = fs.String("bench-scales", "0.1,0.2,0.4", "comma-separated dataset scales for -exp bench")
		benchDatasets = fs.String("bench-datasets", "dblp,lastfm,citeseer,dense", "comma-separated datasets for -exp bench")
		benchParallel = fs.Int("parallel", 1, "mining worker goroutines for -exp bench (recorded in the JSON; result and search-node columns are identical for every value)")

		approxDataset = fs.String("approx-dataset", "dense", "dataset for -exp approx (exact vs sampled ε)")

		updateDatasets = fs.String("update-datasets", "dblp,dense", "comma-separated datasets for -exp update")
		updateScale    = fs.Float64("update-scale", 0.2, "dataset scale for -exp update")

		shardDatasets = fs.String("shard-datasets", "dblp,dense", "comma-separated datasets for -exp shard")
		shardScale    = fs.Float64("shard-scale", 0.2, "dataset scale for -exp shard")

		bootDatasets = fs.String("boot-datasets", "dblp,dense", "comma-separated datasets for -exp boot")
		bootScale    = fs.Float64("boot-scale", 0.2, "dataset scale for -exp boot")

		metrics = fs.String("metrics-addr", "", "serve /metrics and /debug/pprof from this address while experiments run (e.g. 127.0.0.1:9090)")
		showVer = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("scpm-bench"))
		return 0
	}
	if *metrics != "" {
		maddr, stopMetrics, err := obs.Start(*metrics, scpm.NewMetricsRegistry())
		if err != nil {
			fmt.Fprintln(stderr, "scpm-bench:", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(stderr, "scpm-bench: metrics on %s\n", maddr)
	}

	run := func(id string) error {
		switch id {
		case "table1":
			r, err := experiments.Table1(ctx)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, r.Format())
		case "table2", "table3", "table4":
			name := map[string]string{"table2": "dblp", "table3": "lastfm", "table4": "citeseer"}[id]
			d, err := experiments.Load(name, *scale)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "E"+id[len(id)-1:]+" / "+paperName(id))
			fmt.Fprintln(stdout, d.Summary())
			r, err := experiments.TopSets(ctx, d, *topN)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, r.Format())
		case "fig4", "fig7", "fig9":
			name := map[string]string{"fig4": "dblp", "fig7": "lastfm", "fig9": "citeseer"}[id]
			frac := 0.10
			if name == "lastfm" {
				frac = 0.37
			}
			d, err := experiments.Load(name, *scale)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, paperName(id))
			sigmas := experiments.DefaultSigmas(d.Graph.NumVertices(), frac, 8)
			r, err := experiments.ExpectedCurve(d, sigmas, *samples, 99)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, r.Format())
		case "fig8":
			d, err := experiments.Load("smalldblp", *scale)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "Figure 8 — performance evaluation on "+d.Summary())
			sweeps := experiments.DefaultPerfSweeps(d)
			for _, panel := range experiments.PerfPanels {
				r, err := experiments.Perf(ctx, d, panel, sweeps[panel], *naive, *repeats)
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, r.Format())
			}
		case "fig10":
			d, err := experiments.Load("smalldblp", *scale)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "Figure 10 — parameter sensitivity on "+d.Summary())
			sweeps := experiments.DefaultSensitivitySweeps(d)
			for _, panel := range experiments.SensitivityPanels {
				r, err := experiments.Sensitivity(ctx, d, panel, sweeps[panel])
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, r.Format())
			}
		case "ablation":
			d, err := experiments.Load("smalldblp", *scale)
			if err != nil {
				return err
			}
			r, err := experiments.Ablation(ctx, d)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, r.Format())
		case "approx":
			d, err := experiments.Load(*approxDataset, *scale)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "Exact vs sampled ε estimation on "+d.Summary())
			r, err := experiments.Approx(ctx, d, experiments.DefaultApproxConfigs, *repeats)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, r.Format())
		case "bench":
			return runBenchSuite(ctx, *benchDatasets, *benchScales, *benchParallel, *benchOut, stdout)
		case "serve":
			return runServeBench(ctx, *benchOut, stdout)
		case "update":
			return runUpdateBench(ctx, *updateDatasets, *updateScale, *repeats, *benchOut, stdout)
		case "shard":
			return runShardBench(ctx, *shardDatasets, *shardScale, *repeats, *benchOut, stdout)
		case "boot":
			return runBootBench(ctx, *bootDatasets, *bootScale, *repeats, *benchOut, stdout)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "table2", "table3", "table4",
			"fig4", "fig7", "fig9", "fig8", "fig10", "ablation"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			if errors.Is(err, scpm.ErrCanceled) {
				fmt.Fprintln(stderr, "scpm-bench: interrupted")
				return 130
			}
			fmt.Fprintln(stderr, "scpm-bench:", err)
			return 1
		}
	}
	return 0
}

func paperName(id string) string {
	switch id {
	case "table2":
		return "Table 2 — DBLP top attribute sets"
	case "table3":
		return "Table 3 — LastFm top attribute sets"
	case "table4":
		return "Table 4 — CiteSeer top attribute sets"
	case "fig4":
		return "Figure 4 — DBLP expected structural correlation"
	case "fig7":
		return "Figure 7 — LastFm expected structural correlation"
	case "fig9":
		return "Figure 9 — CiteSeer expected structural correlation"
	}
	return id
}
