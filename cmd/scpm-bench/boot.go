package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	scpm "github.com/scpm/scpm"
	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/experiments"
	"github.com/scpm/scpm/internal/mmapio"
)

// bootRun is one dataset's cold-boot comparison: the same v3 snapshot
// opened in materialize mode (full read, full per-section checksums,
// eager name tables) versus mmap mode (page-mapped views, table
// checksum only, lazy names). Both modes serve byte-identical
// responses; the columns quantify what the lazy path saves.
type bootRun struct {
	Dataset       string  `json:"dataset"`
	Scale         float64 `json:"scale"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	Sets          int     `json:"sets"`
	Patterns      int     `json:"patterns"`

	// MaterializeMS / MmapMS are best-of-repeats wall times of
	// OpenSnapshot in each mode; Speedup is their ratio.
	MaterializeMS float64 `json:"materialize_ms"`
	MmapMS        float64 `json:"mmap_ms"`
	Speedup       float64 `json:"speedup"`

	// MmapOSMapped reports whether mmap mode got a real OS mapping (on
	// platforms without one it falls back to a heap read and the
	// speedup only reflects the skipped checksums and eager tables).
	MmapOSMapped bool `json:"mmap_os_mapped"`

	// Heap deltas (HeapAlloc after − before, post-GC) of holding one
	// boot open: materialize pays the whole file, mmap only the
	// assembled views' spine.
	MaterializeHeapBytes uint64 `json:"materialize_heap_bytes"`
	MmapHeapBytes        uint64 `json:"mmap_heap_bytes"`
	// MmapResidentBytes is the snapshot's faulted-in resident size
	// right after an mmap boot, from /proc/self/smaps (0 when
	// unavailable).
	MmapResidentBytes int64 `json:"mmap_resident_bytes,omitempty"`

	// Verified reports that the two boots' contents were cross-checked
	// (set/pattern ids and ε values, graph shape) before the timings
	// were published.
	Verified bool `json:"verified"`
}

// bootReport is the "boot" section of BENCH_boot.json.
type bootReport struct {
	Repeats int       `json:"repeats"`
	Runs    []bootRun `json:"runs"`
}

// runBootBench mines each dataset, writes its v3 snapshot, then times
// cold boots in materialize and mmap mode (best of repeats, contents
// cross-checked), writing BENCH_boot.json.
func runBootBench(ctx context.Context, datasets string, scale float64, repeats int, outDir string, stdout io.Writer) error {
	if repeats < 1 {
		repeats = 1
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("boot: creating %s: %w", outDir, err)
	}
	report := benchReport{
		Schema:  benchSchema,
		Dataset: "boot",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Boot:    &bootReport{Repeats: repeats},
	}
	tmp, err := os.MkdirTemp("", "scpm-bootbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for _, name := range strings.Split(datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, err := bootOne(ctx, name, scale, repeats, tmp)
		if err != nil {
			return fmt.Errorf("boot %s: %w", name, err)
		}
		report.Boot.Runs = append(report.Boot.Runs, r)
		fmt.Fprintf(stdout, "boot %s snapshot=%dB materialize=%8.3fms mmap=%8.3fms speedup=%6.1fx heap %d→%d B resident=%dB mapped=%v\n",
			r.Dataset, r.SnapshotBytes, r.MaterializeMS, r.MmapMS, r.Speedup,
			r.MaterializeHeapBytes, r.MmapHeapBytes, r.MmapResidentBytes, r.MmapOSMapped)
	}
	path := filepath.Join(outDir, "BENCH_boot.json")
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// bootOne mines one dataset, writes its v3 snapshot and measures both
// boot modes against it.
func bootOne(ctx context.Context, name string, scale float64, repeats int, tmp string) (bootRun, error) {
	d, err := experiments.Load(name, scale)
	if err != nil {
		return bootRun{}, err
	}
	res, err := core.Mine(ctx, d.Graph, d.Params(), nil)
	if err != nil {
		return bootRun{}, err
	}
	idx := scpm.NewIndex(res, d.Graph)
	path := filepath.Join(tmp, "BOOT_"+name+".scpmidx")
	if err := scpm.WriteSnapshot(path, d.Graph, idx); err != nil {
		return bootRun{}, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return bootRun{}, err
	}

	// Best-of-repeats wall per mode; the last boot of each mode is kept
	// open for the cross-check and the heap/resident columns.
	openBest := func(mode scpm.SnapshotMode) (float64, *scpm.SnapshotBoot, uint64, error) {
		best := math.MaxFloat64
		for i := 0; i < repeats; i++ {
			start := time.Now()
			b, err := scpm.OpenSnapshot(path, scpm.SnapshotOptions{Mode: mode})
			ms := float64(time.Since(start).Nanoseconds()) / 1e6
			if err != nil {
				return 0, nil, 0, err
			}
			if ms < best {
				best = ms
			}
			if err := b.Close(); err != nil {
				return 0, nil, 0, err
			}
		}
		// One extra, GC-bracketed boot for the heap column, held open.
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b, err := scpm.OpenSnapshot(path, scpm.SnapshotOptions{Mode: mode})
		if err != nil {
			return 0, nil, 0, err
		}
		runtime.GC()
		runtime.ReadMemStats(&m1)
		var heap uint64
		if m1.HeapAlloc > m0.HeapAlloc {
			heap = m1.HeapAlloc - m0.HeapAlloc
		}
		return best, b, heap, nil
	}

	matMS, matBoot, matHeap, err := openBest(scpm.SnapshotMaterialize)
	if err != nil {
		return bootRun{}, err
	}
	defer matBoot.Close()
	mmapMS, mmapBoot, mmapHeap, err := openBest(scpm.SnapshotMmap)
	if err != nil {
		return bootRun{}, err
	}
	defer mmapBoot.Close()
	if err := sameBoot(matBoot, mmapBoot); err != nil {
		return bootRun{}, fmt.Errorf("mmap boot diverged from materialize: %w", err)
	}
	var resident int64
	if n, ok := mmapio.ResidentBytes(filepath.Base(path)); ok {
		resident = n
	}
	return bootRun{
		Dataset:              name,
		Scale:                scale,
		SnapshotBytes:        st.Size(),
		Sets:                 len(mmapBoot.Index.Sets()),
		Patterns:             len(mmapBoot.Index.Patterns()),
		MaterializeMS:        matMS,
		MmapMS:               mmapMS,
		Speedup:              matMS / mmapMS,
		MmapOSMapped:         mmapBoot.OSMapped(),
		MaterializeHeapBytes: matHeap,
		MmapHeapBytes:        mmapHeap,
		MmapResidentBytes:    resident,
		Verified:             true,
	}, nil
}

// sameBoot cross-checks the two modes' loaded contents so a divergence
// can never publish a timing: graph shape, set/pattern counts, stable
// ids and ε values must all agree.
func sameBoot(a, b *scpm.SnapshotBoot) error {
	if a.Graph.NumVertices() != b.Graph.NumVertices() || a.Graph.NumEdges() != b.Graph.NumEdges() ||
		a.Graph.NumAttributes() != b.Graph.NumAttributes() {
		return fmt.Errorf("graph shape |V|=%d/%d |E|=%d/%d |A|=%d/%d",
			a.Graph.NumVertices(), b.Graph.NumVertices(), a.Graph.NumEdges(), b.Graph.NumEdges(),
			a.Graph.NumAttributes(), b.Graph.NumAttributes())
	}
	as, bs := a.Index.Sets(), b.Index.Sets()
	ap, bp := a.Index.Patterns(), b.Index.Patterns()
	if len(as) != len(bs) || len(ap) != len(bp) {
		return fmt.Errorf("%d/%d sets, %d/%d patterns", len(as), len(bs), len(ap), len(bp))
	}
	for i := range as {
		if a.Index.SetID(i) != b.Index.SetID(i) || as[i].Epsilon != bs[i].Epsilon {
			return fmt.Errorf("set %d: id %s ε=%g vs id %s ε=%g",
				i, a.Index.SetID(i), as[i].Epsilon, b.Index.SetID(i), bs[i].Epsilon)
		}
	}
	for i := range ap {
		if a.Index.PatternID(i) != b.Index.PatternID(i) {
			return fmt.Errorf("pattern %d id mismatch", i)
		}
	}
	return nil
}
