package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/experiments"
)

// benchSchema versions the BENCH_*.json layout so downstream tooling
// can detect incompatible changes. v2 added the ε-estimator columns
// (epsilon_mode, sample_eps, sample_delta, sampled_vertices) and one
// run per (scale, estimator mode); v3 added the optional serve section
// written by -exp serve (index build time + endpoint throughput); v4
// added the optional update section written by -exp update (full vs
// incremental remine after single-op graph deltas); v5 added the
// optional shard section written by -exp shard (1/2/4-shard mining
// wall time vs single-process, plus scatter-gather gateway throughput
// vs a direct server); v6 added the parallelism column (the -parallel
// worker count a run was mined with — search_nodes and the result
// columns are identical for every value; only the timing and
// allocation columns move); v7 reworked the shard section's mining
// methodology — per-shard walls are measured sequentially with sealed
// level-1 verdicts injected (core.ComputeLevel1 timed once as
// verdict_ms) and wall_ms models the deployment critical path
// verdict_ms + max(shard_walls_ms) + merge_ms, with the per-run
// replayed-verdict count in reused_verdicts — so speedups reflect
// shards on separate machines rather than goroutines contending for
// one CPU; v8 added the optional boot section written by -exp boot
// (v3 snapshot cold-boot wall and heap for materialize vs mmap mode,
// contents cross-checked).
const benchSchema = "scpm-bench/v8"

// benchRun is one (dataset, scale, estimator mode) measurement.
type benchRun struct {
	Scale      float64 `json:"scale"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Attributes int     `json:"attributes"`

	SigmaMin int     `json:"sigma_min"`
	Gamma    float64 `json:"gamma"`
	MinSize  int     `json:"min_size"`
	K        int     `json:"k"`

	// Parallelism is the worker count the run was mined with. The
	// result and search_nodes columns are deterministic across values
	// (per-worker counters summed at merge); wall/alloc columns are not.
	Parallelism int `json:"parallelism"`

	// EpsilonMode is "exact" or "sampled"; the sampling columns are
	// omitted for exact runs.
	EpsilonMode string  `json:"epsilon_mode"`
	SampleEps   float64 `json:"sample_eps,omitempty"`
	SampleDelta float64 `json:"sample_delta,omitempty"`

	WallMS          float64 `json:"wall_ms"`
	Sets            int     `json:"sets"`
	Patterns        int     `json:"patterns"`
	SetsEvaluated   int64   `json:"sets_evaluated"`
	SearchNodes     int64   `json:"search_nodes"`
	SampledVertices int64   `json:"sampled_vertices,omitempty"`

	Allocs        uint64 `json:"allocs"`
	AllocBytes    uint64 `json:"alloc_bytes"`
	HeapPeakBytes uint64 `json:"heap_peak_bytes"`
}

// benchReport is the full content of one BENCH_<dataset>.json file.
// Mining suites fill Runs; -exp serve fills Serve; -exp update fills
// Update; -exp shard fills Shard; -exp boot fills Boot.
type benchReport struct {
	Schema  string        `json:"schema"`
	Dataset string        `json:"dataset"`
	Go      string        `json:"go"`
	GOOS    string        `json:"goos"`
	GOARCH  string        `json:"goarch"`
	Runs    []benchRun    `json:"runs,omitempty"`
	Serve   *serveReport  `json:"serve,omitempty"`
	Update  *updateReport `json:"update,omitempty"`
	Shard   *shardReport  `json:"shard,omitempty"`
	Boot    *bootReport   `json:"boot,omitempty"`
}

// runBenchSuite generates each dataset at every scale, mines it with
// the dataset's paper parameters and writes BENCH_<dataset>.json into
// outDir. Generation and mining are deterministic, so two runs on the
// same machine differ only in the timing and allocation columns.
func runBenchSuite(ctx context.Context, datasets string, scales string, parallel int, outDir string, stdout io.Writer) error {
	scaleList, err := parseScales(scales)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("bench: creating %s: %w", outDir, err)
	}
	for _, name := range strings.Split(datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		report := benchReport{
			Schema:  benchSchema,
			Dataset: name,
			Go:      runtime.Version(),
			GOOS:    runtime.GOOS,
			GOARCH:  runtime.GOARCH,
		}
		for _, scale := range scaleList {
			for _, mode := range []core.EpsilonMode{core.EpsilonExact, core.EpsilonSampled} {
				run, err := benchOne(ctx, name, scale, mode, parallel)
				if err != nil {
					return fmt.Errorf("bench %s@%g/%v: %w", name, scale, mode, err)
				}
				report.Runs = append(report.Runs, run)
				fmt.Fprintf(stdout, "bench %s scale=%g mode=%s: |V|=%d |E|=%d wall=%.1fms sets=%d patterns=%d nodes=%d sampled=%d allocs=%d\n",
					name, scale, run.EpsilonMode, run.Vertices, run.Edges, run.WallMS, run.Sets, run.Patterns, run.SearchNodes, run.SampledVertices, run.Allocs)
			}
		}
		path := filepath.Join(outDir, "BENCH_"+name+".json")
		if err := writeBenchReport(path, report); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	return nil
}

// benchSampleEps / benchSampleDelta parameterize the sampled-mode
// baseline runs: ±0.1 at 95% per-set confidence (185 samples) — the
// estimator defaults, recorded explicitly so the JSON stands alone.
const (
	benchSampleEps   = 0.1
	benchSampleDelta = 0.05
)

// benchOne mines one generated dataset and measures the run. Only the
// mining phase is measured; dataset generation happens before the
// clocks start (and is cached across scales by the experiments loader).
func benchOne(ctx context.Context, name string, scale float64, mode core.EpsilonMode, parallel int) (benchRun, error) {
	d, err := experiments.Load(name, scale)
	if err != nil {
		return benchRun{}, err
	}
	p := d.Params()
	if parallel < 1 {
		parallel = 1
	}
	p.Parallelism = parallel
	if mode == core.EpsilonSampled {
		p.EpsilonMode = core.EpsilonSampled
		p.SampleEps = benchSampleEps
		p.SampleDelta = benchSampleDelta
		p.Seed = 1
	}

	// Track the heap high-water mark while mining. runtime.MemStats has
	// no true peak counter, so a sampler polls HeapAlloc; the resolution
	// is coarse but stable enough to flag regressions between PRs.
	stopSampler := make(chan struct{})
	peakCh := make(chan uint64, 1)
	go func() {
		var peak uint64
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopSampler:
				peakCh <- peak
				return
			case <-ticker.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	res, err := core.Mine(ctx, d.Graph, p, nil)
	wall := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	close(stopSampler)
	peak := <-peakCh
	if after.HeapAlloc > peak {
		peak = after.HeapAlloc
	}
	if err != nil {
		return benchRun{}, err
	}

	run := benchRun{
		Scale:           scale,
		Vertices:        d.Graph.NumVertices(),
		Edges:           d.Graph.NumEdges(),
		Attributes:      d.Graph.NumAttributes(),
		SigmaMin:        p.SigmaMin,
		Gamma:           p.Gamma,
		MinSize:         p.MinSize,
		K:               p.K,
		Parallelism:     parallel,
		EpsilonMode:     p.EpsilonMode.String(),
		WallMS:          float64(wall.Microseconds()) / 1000,
		Sets:            len(res.Sets),
		Patterns:        len(res.Patterns),
		SetsEvaluated:   res.Stats.SetsEvaluated,
		SearchNodes:     res.Stats.SearchNodes,
		SampledVertices: res.Stats.SampledVertices,
		Allocs:          after.Mallocs - before.Mallocs,
		AllocBytes:      after.TotalAlloc - before.TotalAlloc,
		HeapPeakBytes:   peak,
	}
	if p.EpsilonMode == core.EpsilonSampled {
		run.SampleEps = p.SampleEps
		run.SampleDelta = p.SampleDelta
	}
	return run, nil
}

func writeBenchReport(path string, report benchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("bench: encoding %s: %w", path, err)
	}
	return f.Close()
}

func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		// !(v > 0) also rejects NaN, which compares false to everything.
		if err != nil || !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("bench: bad scale %q (want a positive float list like \"0.1,0.2\")", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: empty scale list")
	}
	return out, nil
}
