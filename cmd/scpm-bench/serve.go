package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	scpm "github.com/scpm/scpm"
)

// serveEndpoint is the throughput measurement of one endpoint under the
// mixed workload of the serve experiment.
type serveEndpoint struct {
	Name     string  `json:"name"`
	Path     string  `json:"path"`
	Requests int     `json:"requests"`
	WallMS   float64 `json:"wall_ms"`
	QPS      float64 `json:"qps"`
}

// serveReport is the "serve" section of BENCH_serve.json: index build
// cost, snapshot size and query throughput on the committed quickstart
// dataset (the paper's 11-vertex worked example).
type serveReport struct {
	Sets          int     `json:"sets"`
	Patterns      int     `json:"patterns"`
	MineMS        float64 `json:"mine_ms"`
	IndexBuildMS  float64 `json:"index_build_ms"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	SnapshotLoad  float64 `json:"snapshot_load_ms"`
	Workers       int     `json:"workers"`

	Endpoints []serveEndpoint `json:"endpoints"`
	TotalQPS  float64         `json:"total_qps"`
}

// serveBenchRequests is the per-endpoint request count of -exp serve;
// large enough for stable rates, small enough for CI.
const serveBenchRequests = 20000

// runServeBench measures the query-serving subsystem on the quickstart
// dataset: mine, build the index, snapshot it, then drive a fixed
// request count per endpoint through the in-process handler from
// GOMAXPROCS workers and report queries/sec. Results land in
// BENCH_serve.json (schema v3's serve section).
func runServeBench(ctx context.Context, outDir string, stdout io.Writer) error {
	g := scpm.PaperExample()
	miner, err := scpm.NewMiner(
		scpm.WithSigmaMin(3), scpm.WithGamma(0.6), scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5), scpm.WithTopK(10),
	)
	if err != nil {
		return err
	}
	mineStart := time.Now()
	res, err := miner.Mine(ctx, g)
	if err != nil {
		return err
	}
	mineMS := msSince(mineStart)

	buildStart := time.Now()
	idx := scpm.NewIndex(res, g)
	buildMS := msSince(buildStart)

	var snap bytes.Buffer
	if err := idx.Save(&snap); err != nil {
		return err
	}
	loadStart := time.Now()
	if _, err := scpm.LoadIndex(bytes.NewReader(snap.Bytes())); err != nil {
		return err
	}
	loadMS := msSince(loadStart)

	handler, err := scpm.NewServerHandler(idx, g, miner.Params(), scpm.ServerConfig{})
	if err != nil {
		return err
	}

	// Warm the epsilon cache so the hot-query row measures the cache
	// path (the cold computation is a one-off).
	if code := driveOnce(handler, "/epsilon?attrs=C"); code != http.StatusOK {
		return fmt.Errorf("serve bench: warmup /epsilon returned %d", code)
	}

	setID := res.Sets[0].ID()
	endpoints := []serveEndpoint{
		{Name: "healthz", Path: "/healthz"},
		{Name: "sets", Path: "/sets"},
		{Name: "sets_ranked", Path: "/sets?rank=epsilon&k=2"},
		{Name: "set_by_id", Path: "/sets/" + setID},
		{Name: "patterns_by_vertex", Path: "/patterns?vertex=6"},
		{Name: "vertices", Path: "/vertices/6"},
		{Name: "epsilon_indexed", Path: "/epsilon?attrs=A,B"},
		{Name: "epsilon_cached", Path: "/epsilon?attrs=C"},
	}
	workers := runtime.GOMAXPROCS(0)
	var totalRequests int
	var totalSeconds float64
	for i := range endpoints {
		ep := &endpoints[i]
		wall, err := driveEndpoint(ctx, handler, ep.Path, serveBenchRequests, workers)
		if err != nil {
			return err
		}
		ep.Requests = serveBenchRequests
		ep.WallMS = float64(wall.Microseconds()) / 1000
		ep.QPS = float64(serveBenchRequests) / wall.Seconds()
		totalRequests += ep.Requests
		totalSeconds += wall.Seconds()
		fmt.Fprintf(stdout, "serve %-18s %7d req %9.1fms %12.0f qps\n", ep.Name, ep.Requests, ep.WallMS, ep.QPS)
	}

	report := benchReport{
		Schema:  benchSchema,
		Dataset: "quickstart",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Serve: &serveReport{
			Sets:          idx.NumSets(),
			Patterns:      idx.NumPatterns(),
			MineMS:        mineMS,
			IndexBuildMS:  buildMS,
			SnapshotBytes: snap.Len(),
			SnapshotLoad:  loadMS,
			Workers:       workers,
			Endpoints:     endpoints,
			TotalQPS:      float64(totalRequests) / totalSeconds,
		},
	}
	path := filepath.Join(outDir, "BENCH_serve.json")
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serve index_build=%.2fms snapshot=%dB total=%.0f qps\n",
		buildMS, snap.Len(), report.Serve.TotalQPS)
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// driveOnce performs one in-process request and returns its status.
func driveOnce(h http.Handler, path string) int {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code
}

// driveEndpoint fires n requests at the handler from the given number
// of workers and returns the wall time. Any non-200 response fails the
// run.
func driveEndpoint(ctx context.Context, h http.Handler, path string, n, workers int) (time.Duration, error) {
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		failed error
	)
	per := n / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		count := per
		if w == 0 {
			count += n % workers // remainder lands on one worker
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < count; i++ {
				if ctx.Err() != nil {
					return
				}
				if code := driveOnce(h, path); code != http.StatusOK {
					mu.Lock()
					if failed == nil {
						failed = fmt.Errorf("serve bench: GET %s returned %d", path, code)
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if failed != nil {
		return 0, failed
	}
	if err := ctx.Err(); err != nil {
		return 0, scpm.ErrCanceled
	}
	return wall, nil
}

// msSince returns the elapsed time in milliseconds with microsecond
// resolution.
func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
