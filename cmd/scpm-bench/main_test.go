package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scpm/scpm/internal/core"
)

func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := runMain(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBenchTable1(t *testing.T) {
	code, out, errOut := runBench(t, "-exp", "table1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "matches Table 1 of the paper exactly") {
		t.Fatalf("verdict missing:\n%s", out)
	}
}

func TestBenchTable2Scaled(t *testing.T) {
	code, out, errOut := runBench(t, "-exp", "table2", "-scale", "0.15", "-top", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"Table 2", "top σ", "top ε", "top δlb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestBenchFig4Scaled(t *testing.T) {
	code, out, errOut := runBench(t, "-exp", "fig4", "-scale", "0.15", "-samples", "10")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "bound holds (max ≥ sim): true") {
		t.Fatalf("bound claim missing:\n%s", out)
	}
}

func TestBenchFig8Scaled(t *testing.T) {
	code, out, errOut := runBench(t, "-exp", "fig8", "-scale", "0.15", "-repeats", "1", "-naive=false")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "runtime vs gamma") || !strings.Contains(out, "runtime vs k") {
		t.Fatalf("panels missing:\n%s", out)
	}
}

func TestBenchFig10Scaled(t *testing.T) {
	code, out, errOut := runBench(t, "-exp", "fig10", "-scale", "0.15")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "sensitivity vs gamma") {
		t.Fatalf("panel missing:\n%s", out)
	}
}

func TestBenchAblationScaled(t *testing.T) {
	code, out, errOut := runBench(t, "-exp", "ablation", "-scale", "0.15")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "no set pruning") {
		t.Fatalf("variants missing:\n%s", out)
	}
}

func TestBenchBaselineJSON(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runBench(t,
		"-exp", "bench", "-out", dir,
		"-bench-datasets", "lastfm", "-bench-scales", "0.1,0.15")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	path := filepath.Join(dir, "BENCH_lastfm.json")
	if !strings.Contains(out, path) {
		t.Fatalf("output does not mention %s:\n%s", path, out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if report.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", report.Schema, benchSchema)
	}
	if report.Dataset != "lastfm" {
		t.Errorf("dataset = %q", report.Dataset)
	}
	// one exact + one sampled run per scale
	if len(report.Runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(report.Runs))
	}
	for i, run := range report.Runs {
		if run.Vertices <= 0 || run.Edges <= 0 || run.Attributes <= 0 {
			t.Errorf("run %d: empty graph: %+v", i, run)
		}
		if run.WallMS <= 0 || run.Allocs == 0 || run.SearchNodes == 0 {
			t.Errorf("run %d: missing measurements: %+v", i, run)
		}
		if run.SigmaMin <= 0 || run.Gamma <= 0 || run.MinSize <= 0 {
			t.Errorf("run %d: missing parameters: %+v", i, run)
		}
		wantMode := "exact"
		if i%2 == 1 {
			wantMode = "sampled"
		}
		if run.EpsilonMode != wantMode {
			t.Errorf("run %d: mode = %q, want %q", i, run.EpsilonMode, wantMode)
		}
		if wantMode == "sampled" && (run.SampleEps <= 0 || run.SampleDelta <= 0) {
			t.Errorf("run %d: sampled run without sampling parameters: %+v", i, run)
		}
		// Exact and its sampled sibling must describe the same dataset.
		if i%2 == 1 && (run.Vertices != report.Runs[i-1].Vertices || run.Scale != report.Runs[i-1].Scale) {
			t.Errorf("run %d: mode pair describes different graphs", i)
		}
	}
	if report.Runs[0].Scale >= report.Runs[2].Scale {
		t.Errorf("runs not in scale order: %g, %g", report.Runs[0].Scale, report.Runs[2].Scale)
	}
}

// TestBenchParallelDeterministicSearchNodes pins the counter contract
// of the v6 schema: the same (dataset, scale, mode) benchmarked at
// -parallel 1 and -parallel 4 must report identical search_nodes and
// result counts — only the timing/allocation columns may move — and
// the worker count must be recorded in the run.
func TestBenchParallelDeterministicSearchNodes(t *testing.T) {
	ctx := context.Background()
	for _, mode := range []core.EpsilonMode{core.EpsilonExact, core.EpsilonSampled} {
		seq, err := benchOne(ctx, "dense", 0.1, mode, 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err := benchOne(ctx, "dense", 0.1, mode, 4)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Parallelism != 1 || par.Parallelism != 4 {
			t.Errorf("%v: parallelism recorded as (%d, %d), want (1, 4)", mode, seq.Parallelism, par.Parallelism)
		}
		if seq.SearchNodes == 0 {
			t.Fatalf("%v: sequential run reports zero search nodes", mode)
		}
		if par.SearchNodes != seq.SearchNodes {
			t.Errorf("%v: search_nodes = %d at -parallel 4, want %d (same as -parallel 1)",
				mode, par.SearchNodes, seq.SearchNodes)
		}
		if par.SetsEvaluated != seq.SetsEvaluated || par.Sets != seq.Sets || par.Patterns != seq.Patterns {
			t.Errorf("%v: result counts differ across -parallel: (%d,%d,%d) vs (%d,%d,%d)",
				mode, par.SetsEvaluated, par.Sets, par.Patterns, seq.SetsEvaluated, seq.Sets, seq.Patterns)
		}
		if par.SampledVertices != seq.SampledVertices {
			t.Errorf("%v: sampled_vertices = %d at -parallel 4, want %d",
				mode, par.SampledVertices, seq.SampledVertices)
		}
	}
}

func TestBenchBadScales(t *testing.T) {
	for _, scales := range []string{"", "abc", "-1", "0", "NaN", "+Inf", "-Inf"} {
		if code, _, _ := runBench(t, "-exp", "bench", "-out", t.TempDir(), "-bench-scales", scales); code == 0 {
			t.Errorf("scales %q accepted", scales)
		}
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	if code, _, _ := runBench(t, "-exp", "table99"); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPaperNames(t *testing.T) {
	for _, id := range []string{"table2", "table3", "table4", "fig4", "fig7", "fig9"} {
		if paperName(id) == id {
			t.Errorf("no paper name for %s", id)
		}
	}
	if paperName("zzz") != "zzz" {
		t.Error("fallback broken")
	}
}

func TestBenchVersionFlag(t *testing.T) {
	code, out, errOut := runBench(t, "-version")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "scpm-bench") {
		t.Fatalf("version output %q", out)
	}
}

// TestBenchShard runs the shard experiment on one small dataset and
// validates the report shape: three shard widths per dataset, merges
// verified, and a populated gateway-vs-direct comparison.
func TestBenchShard(t *testing.T) {
	if testing.Short() {
		t.Skip("shard bench mines three widths and drives 20k gateway requests")
	}
	dir := t.TempDir()
	code, out, errOut := runBench(t, "-exp", "shard", "-out", dir,
		"-shard-datasets", "dense", "-shard-scale", "0.1", "-repeats", "1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "merge_ok=true") {
		t.Fatalf("summary missing merge verification:\n%s", out)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_shard.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("invalid BENCH_shard.json: %v", err)
	}
	if report.Schema != benchSchema || report.Shard == nil {
		t.Fatalf("report envelope: %s", raw)
	}
	sh := report.Shard
	if len(sh.Mining) != len(shardBenchCounts) {
		t.Fatalf("got %d mining rows, want %d", len(sh.Mining), len(shardBenchCounts))
	}
	for i, run := range sh.Mining {
		if run.Shards != shardBenchCounts[i] || !run.MergeVerified {
			t.Errorf("row %d: %+v", i, run)
		}
		if run.WallMS <= 0 || run.SingleMS <= 0 || run.Sets == 0 {
			t.Errorf("row %d: missing measurements: %+v", i, run)
		}
		if run.VerdictMS <= 0 || run.MergeMS < 0 || len(run.ShardWallsMS) != run.Shards {
			t.Errorf("row %d: critical-path breakdown incomplete: %+v", i, run)
		}
		maxShard := 0.0
		for _, w := range run.ShardWallsMS {
			if w <= 0 {
				t.Errorf("row %d: non-positive shard wall: %+v", i, run)
			}
			if w > maxShard {
				maxShard = w
			}
		}
		if got, want := run.WallMS, run.VerdictMS+maxShard+run.MergeMS; got != want {
			t.Errorf("row %d: wall_ms %g ≠ verdict+max(shard)+merge %g", i, got, want)
		}
		if run.ReusedVerdicts == 0 {
			t.Errorf("row %d: shards replayed no sealed verdicts: %+v", i, run)
		}
		if run.Sets != sh.Mining[0].Sets || run.Patterns != sh.Mining[0].Patterns {
			t.Errorf("row %d: result counts differ across widths: %+v", i, run)
		}
	}
	if sh.Gateway == nil || sh.Gateway.Shards != 2 || len(sh.Gateway.Endpoints) == 0 {
		t.Fatalf("gateway section: %+v", sh.Gateway)
	}
	for _, ep := range sh.Gateway.Endpoints {
		if ep.GatewayQPS <= 0 || ep.DirectQPS <= 0 {
			t.Errorf("endpoint %s: non-positive qps: %+v", ep.Name, ep)
		}
	}
}

// TestBenchBoot runs the boot experiment on one small dataset and
// validates the report shape: both modes timed, contents cross-checked
// and mmap never slower than a full materialized load.
func TestBenchBoot(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runBench(t, "-exp", "boot", "-out", dir,
		"-boot-datasets", "dense", "-boot-scale", "0.1", "-repeats", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "speedup=") {
		t.Fatalf("summary missing:\n%s", out)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_boot.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("invalid BENCH_boot.json: %v", err)
	}
	if report.Schema != benchSchema || report.Boot == nil {
		t.Fatalf("report envelope: %s", raw)
	}
	if report.Boot.Repeats != 2 || len(report.Boot.Runs) != 1 {
		t.Fatalf("boot section: %+v", report.Boot)
	}
	run := report.Boot.Runs[0]
	if run.Dataset != "dense" || run.SnapshotBytes == 0 || run.Sets == 0 || !run.Verified {
		t.Fatalf("run: %+v", run)
	}
	if run.MaterializeMS <= 0 || run.MmapMS <= 0 {
		t.Fatalf("non-positive boot walls: %+v", run)
	}
	// The lazy path skips the full read, the per-section checksums and
	// every O(sets) table build — being slower than a materialized load
	// means the deferral regressed outright.
	if run.Speedup <= 1.0 {
		t.Fatalf("mmap boot slower than materialize: %+v", run)
	}
}

// TestBenchServe runs the serve experiment end to end (a reduced check:
// the full request volume runs in CI) and validates the report shape.
func TestBenchServe(t *testing.T) {
	if testing.Short() {
		t.Skip("serve bench drives 160k requests")
	}
	if raceEnabled {
		t.Skip("race instrumentation invalidates the throughput floor")
	}
	dir := t.TempDir()
	code, out, errOut := runBench(t, "-exp", "serve", "-out", dir)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "index_build=") {
		t.Fatalf("summary missing:\n%s", out)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema string `json:"schema"`
		Serve  *struct {
			Sets          int     `json:"sets"`
			IndexBuildMS  float64 `json:"index_build_ms"`
			SnapshotBytes int     `json:"snapshot_bytes"`
			TotalQPS      float64 `json:"total_qps"`
			Endpoints     []struct {
				Name string  `json:"name"`
				QPS  float64 `json:"qps"`
			} `json:"endpoints"`
		} `json:"serve"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("invalid BENCH_serve.json: %v", err)
	}
	if report.Schema != benchSchema || report.Serve == nil {
		t.Fatalf("report envelope: %s", raw)
	}
	sv := report.Serve
	if sv.Sets != 3 || sv.SnapshotBytes == 0 || len(sv.Endpoints) == 0 {
		t.Fatalf("serve section: %+v", sv)
	}
	// The acceptance floor is 10k queries/sec on the quickstart
	// dataset; the in-process handler clears it by an order of
	// magnitude, so a failure here means a real serving regression.
	for _, ep := range sv.Endpoints {
		if ep.QPS < 10000 {
			t.Fatalf("endpoint %s below 10k qps: %.0f", ep.Name, ep.QPS)
		}
	}
	if sv.TotalQPS < 10000 {
		t.Fatalf("total qps %.0f below acceptance floor", sv.TotalQPS)
	}
}
