package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	scpm "github.com/scpm/scpm"
	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/experiments"
	"github.com/scpm/scpm/internal/gateway"
	"github.com/scpm/scpm/internal/shard"
)

// shardMineRun is one (dataset, shard count) cell of the shard
// experiment. Each shard's wall is measured sequentially on an
// otherwise idle process with the sealed level-1 verdicts injected, so
// the recorded wall models the critical path of a real deployment —
// one coordinator sealing verdicts once, n machines mining their
// partitions concurrently, one merge:
//
//	wall_ms = verdict_ms + max(shard_walls_ms) + merge_ms
//
// (Timing shard.MineAll directly would interleave all n shards'
// goroutines on this benchmark's single CPU and measure their SUM, a
// methodology under which sharding can never win wall time.)
type shardMineRun struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Shards  int     `json:"shards"`
	// VerdictMS times core.ComputeLevel1 — the one-shot sealed level-1
	// precomputation every shard replays instead of re-searching.
	VerdictMS float64 `json:"verdict_ms"`
	// ShardWallsMS are the per-shard mining walls (sequential, verdicts
	// injected); MergeMS is the deterministic k-way merge of the slices.
	ShardWallsMS []float64 `json:"shard_walls_ms"`
	MergeMS      float64   `json:"merge_ms"`
	// WallMS is the critical-path wall above; SingleMS is the
	// single-process core.Mine baseline on the same dataset and
	// parameters; Speedup is SingleMS/WallMS.
	WallMS   float64 `json:"wall_ms"`
	SingleMS float64 `json:"single_ms"`
	Speedup  float64 `json:"speedup"`
	Sets     int     `json:"sets"`
	Patterns int     `json:"patterns"`
	// ReusedVerdicts is the merged count of level-1 evaluations the
	// shards replayed from the sealed verdicts.
	ReusedVerdicts int64 `json:"reused_verdicts"`
	// MergeVerified reports that the merged sharded result was checked
	// set-for-set (keys and ε values) against the single-process run.
	MergeVerified bool `json:"merge_verified"`
}

// shardGatewayEndpoint compares one endpoint's throughput through the
// scatter-gather gateway (which fans out over loopback HTTP to the
// replicas) against the same query on a direct in-process server.
type shardGatewayEndpoint struct {
	Name       string  `json:"name"`
	Path       string  `json:"path"`
	Requests   int     `json:"requests"`
	GatewayQPS float64 `json:"gateway_qps"`
	DirectQPS  float64 `json:"direct_qps"`
	// Overhead is DirectQPS/GatewayQPS — the fan-out cost factor.
	Overhead float64 `json:"overhead"`
}

// shardGatewayReport is the serving half of BENCH_shard.json: gateway
// throughput fronting Shards httptest replicas on the quickstart
// dataset versus a direct single-process server.
type shardGatewayReport struct {
	Shards     int                    `json:"shards"`
	Workers    int                    `json:"workers"`
	Endpoints  []shardGatewayEndpoint `json:"endpoints"`
	GatewayQPS float64                `json:"gateway_qps"`
	DirectQPS  float64                `json:"direct_qps"`
}

// shardReport is the "shard" section of BENCH_shard.json.
type shardReport struct {
	Repeats int                 `json:"repeats"`
	Mining  []shardMineRun      `json:"mining"`
	Gateway *shardGatewayReport `json:"gateway"`
}

// shardBenchCounts are the shard widths the mining half measures, per
// the sharding design's target deployment sizes.
var shardBenchCounts = []int{1, 2, 4}

// shardBenchRequests is the per-endpoint request count of the gateway
// half; smaller than the serve experiment's because every gateway
// request crosses loopback HTTP to the replicas.
const shardBenchRequests = 2000

// runShardBench measures the sharded mining path (shard.MineAll at 1,
// 2 and 4 partitions vs single-process core.Mine, merge verified) and
// the scatter-gather gateway's query throughput vs a direct server,
// writing BENCH_shard.json.
func runShardBench(ctx context.Context, datasets string, scale float64, repeats int, outDir string, stdout io.Writer) error {
	if repeats < 1 {
		repeats = 1
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("shard: creating %s: %w", outDir, err)
	}
	report := benchReport{
		Schema:  benchSchema,
		Dataset: "shard",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Shard:   &shardReport{Repeats: repeats},
	}
	for _, name := range strings.Split(datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		runs, err := shardMineOne(ctx, name, scale, repeats)
		if err != nil {
			return fmt.Errorf("shard %s: %w", name, err)
		}
		report.Shard.Mining = append(report.Shard.Mining, runs...)
		for _, r := range runs {
			fmt.Fprintf(stdout, "shard %s n=%d wall=%8.1fms (verdict=%.1f max_shard=%.1f merge=%.1f) single=%8.1fms speedup=%4.2fx sets=%d reused=%d merge_ok=%v\n",
				r.Dataset, r.Shards, r.WallMS, r.VerdictMS, r.WallMS-r.VerdictMS-r.MergeMS, r.MergeMS,
				r.SingleMS, r.Speedup, r.Sets, r.ReusedVerdicts, r.MergeVerified)
		}
	}
	gw, err := shardGatewayBench(ctx, stdout)
	if err != nil {
		return fmt.Errorf("shard gateway: %w", err)
	}
	report.Shard.Gateway = gw

	path := filepath.Join(outDir, "BENCH_shard.json")
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// shardMineOne times single-process mining and each sharded width on
// one dataset, verifying every merged result against the baseline.
// The sealed level-1 verdicts are computed (and timed) once and shared
// by every width; each shard's partition is then mined sequentially so
// its wall is uncontended, and the published wall is the deployment
// critical path verdict + slowest shard + merge.
func shardMineOne(ctx context.Context, name string, scale float64, repeats int) ([]shardMineRun, error) {
	d, err := experiments.Load(name, scale)
	if err != nil {
		return nil, err
	}
	p := d.Params()

	var single *core.Result
	singleMS := bestOfMS(repeats, func() error {
		single, err = core.Mine(ctx, d.Graph, p, nil)
		return err
	})
	if err != nil {
		return nil, err
	}

	var verdicts *core.Level1Verdicts
	verdictMS := bestOfMS(repeats, func() error {
		verdicts, err = core.ComputeLevel1(ctx, d.Graph, p)
		return err
	})
	if err != nil {
		return nil, err
	}
	pv := p
	pv.Level1Verdicts = verdicts

	var runs []shardMineRun
	for _, n := range shardBenchCounts {
		parts := make([]*core.Result, n)
		walls := make([]float64, n)
		maxWall := 0.0
		for k := 0; k < n; k++ {
			k := k
			walls[k] = bestOfMS(repeats, func() error {
				parts[k], err = shard.Mine(ctx, d.Graph, pv, k, n)
				return err
			})
			if err != nil {
				return nil, err
			}
			if walls[k] > maxWall {
				maxWall = walls[k]
			}
		}
		var merged *core.Result
		mergeMS := bestOfMS(repeats, func() error {
			merged, err = shard.Merge(parts...)
			return err
		})
		if err != nil {
			return nil, err
		}
		if err := sameMinedResult(single, merged); err != nil {
			return nil, fmt.Errorf("%d-shard merge diverged from single-process: %w", n, err)
		}
		wallMS := verdictMS + maxWall + mergeMS
		runs = append(runs, shardMineRun{
			Dataset:        name,
			Scale:          scale,
			Shards:         n,
			VerdictMS:      verdictMS,
			ShardWallsMS:   walls,
			MergeMS:        mergeMS,
			WallMS:         wallMS,
			SingleMS:       singleMS,
			Speedup:        singleMS / wallMS,
			Sets:           len(merged.Sets),
			Patterns:       len(merged.Patterns),
			ReusedVerdicts: merged.Stats.ReusedVerdicts,
			MergeVerified:  true,
		})
	}
	return runs, nil
}

// sameMinedResult checks the merged sharded result set-for-set against
// the single-process baseline (the property tests in internal/shard
// prove full bit-identity; the bench re-checks the cheap invariants so
// a broken merge can never publish a timing).
func sameMinedResult(want, got *core.Result) error {
	if len(want.Sets) != len(got.Sets) || len(want.Patterns) != len(got.Patterns) {
		return fmt.Errorf("%d/%d sets, %d/%d patterns",
			len(got.Sets), len(want.Sets), len(got.Patterns), len(want.Patterns))
	}
	for i := range want.Sets {
		if want.Sets[i].Key() != got.Sets[i].Key() || want.Sets[i].Epsilon != got.Sets[i].Epsilon {
			return fmt.Errorf("set %d: %s ε=%g vs %s ε=%g", i,
				got.Sets[i].Key(), got.Sets[i].Epsilon, want.Sets[i].Key(), want.Sets[i].Epsilon)
		}
	}
	return nil
}

// shardGatewayBench boots two sharded replicas of the quickstart
// dataset behind httptest servers, fronts them with the scatter-gather
// gateway, and measures the gateway handler's throughput per endpoint
// against a direct single-process server handler. The gateway itself
// is driven in-process, so the measured overhead is the fan-out,
// loopback HTTP and merge cost.
func shardGatewayBench(ctx context.Context, stdout io.Writer) (*shardGatewayReport, error) {
	const n = 2
	g := scpm.PaperExample()
	opts := []scpm.Option{
		scpm.WithSigmaMin(3), scpm.WithGamma(0.6), scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5), scpm.WithTopK(10),
	}
	man, err := shard.BuildManifest(g, 3, n, nil)
	if err != nil {
		return nil, err
	}

	urls := make([]string, n)
	for k := 0; k < n; k++ {
		h, _, err := shardHandler(ctx, g, append(opts[:len(opts):len(opts)], scpm.WithShard(k, n))...)
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(h)
		defer ts.Close()
		urls[k] = ts.URL
	}
	direct, res, err := shardHandler(ctx, g, opts...)
	if err != nil {
		return nil, err
	}
	gw, err := gateway.New(gateway.Config{Manifest: man, Shards: urls, Timeout: 30 * time.Second})
	if err != nil {
		return nil, err
	}

	setID := res.Sets[0].ID()
	endpoints := []shardGatewayEndpoint{
		{Name: "sets", Path: "/sets"},
		{Name: "sets_ranked", Path: "/sets?rank=epsilon&k=2"},
		{Name: "set_by_id", Path: "/sets/" + setID},
		{Name: "epsilon", Path: "/epsilon?attrs=A,B"},
		{Name: "vertices", Path: "/vertices/6"},
	}
	workers := runtime.GOMAXPROCS(0)
	report := &shardGatewayReport{Shards: n, Workers: workers}
	var gwRequests, directRequests int
	var gwSeconds, directSeconds float64
	for i := range endpoints {
		ep := &endpoints[i]
		// Warm both paths (ε caches, connection pools) before timing.
		if code := driveOnce(gw, ep.Path); code != 200 {
			return nil, fmt.Errorf("warmup GET %s via gateway returned %d", ep.Path, code)
		}
		if code := driveOnce(direct, ep.Path); code != 200 {
			return nil, fmt.Errorf("warmup GET %s direct returned %d", ep.Path, code)
		}
		gwWall, err := driveEndpoint(ctx, gw, ep.Path, shardBenchRequests, workers)
		if err != nil {
			return nil, err
		}
		directWall, err := driveEndpoint(ctx, direct, ep.Path, shardBenchRequests, workers)
		if err != nil {
			return nil, err
		}
		ep.Requests = shardBenchRequests
		ep.GatewayQPS = float64(shardBenchRequests) / gwWall.Seconds()
		ep.DirectQPS = float64(shardBenchRequests) / directWall.Seconds()
		ep.Overhead = ep.DirectQPS / ep.GatewayQPS
		gwRequests += shardBenchRequests
		directRequests += shardBenchRequests
		gwSeconds += gwWall.Seconds()
		directSeconds += directWall.Seconds()
		fmt.Fprintf(stdout, "shard gateway %-12s %7d req %10.0f qps (direct %10.0f qps, %4.1fx)\n",
			ep.Name, ep.Requests, ep.GatewayQPS, ep.DirectQPS, ep.Overhead)
	}
	report.Endpoints = endpoints
	report.GatewayQPS = float64(gwRequests) / gwSeconds
	report.DirectQPS = float64(directRequests) / directSeconds
	return report, nil
}

// shardHandler mines the quickstart graph with the given options and
// returns a ready server handler for it.
func shardHandler(ctx context.Context, g *scpm.Graph, opts ...scpm.Option) (http.Handler, *scpm.Result, error) {
	miner, err := scpm.NewMiner(opts...)
	if err != nil {
		return nil, nil, err
	}
	res, err := miner.Mine(ctx, g)
	if err != nil {
		return nil, nil, err
	}
	idx := scpm.NewIndex(res, g)
	h, err := scpm.NewServerHandler(idx, g, miner.Params(), scpm.ServerConfig{})
	if err != nil {
		return nil, nil, err
	}
	return h, res, nil
}
