package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/experiments"
	"github.com/scpm/scpm/internal/graph"
)

// updateRun is one (dataset, delta kind) measurement of the update
// experiment: the wall time of a full re-mine of the updated graph
// versus the incremental remine from the previous result's lattice,
// with the reuse split that explains the gap.
type updateRun struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	// Delta names the update shape: "edge" (one new edge) or "attr"
	// (one attribute set on one vertex).
	Delta string `json:"delta"`
	// Ops/DirtyAttrs/DirtyVertices summarize the ChangeSet.
	Ops         int     `json:"ops"`
	DirtyAttrs  int     `json:"dirty_attrs"`
	DirtyVerts  int     `json:"dirty_vertices"`
	FullMS      float64 `json:"full_ms"`
	IncMS       float64 `json:"incremental_ms"`
	Speedup     float64 `json:"speedup"`
	ReusedSets  int64   `json:"reused_sets"`
	Recomputed  int64   `json:"recomputed_sets"`
	FullNodes   int64   `json:"full_search_nodes"`
	IncNodes    int64   `json:"incremental_search_nodes"`
	Sets        int     `json:"sets"`
	Incremental bool    `json:"incremental_wins"`
}

// updateReport is the "update" section of BENCH_update.json.
type updateReport struct {
	Repeats int         `json:"repeats"`
	Runs    []updateRun `json:"runs"`
}

// runUpdateBench measures incremental remining against full remining
// on single-edge and single-attribute deltas over the committed
// datasets, writing BENCH_update.json.
func runUpdateBench(ctx context.Context, datasets string, scale float64, repeats int, outDir string, stdout io.Writer) error {
	if repeats < 1 {
		repeats = 1
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("update: creating %s: %w", outDir, err)
	}
	report := benchReport{
		Schema:  benchSchema,
		Dataset: "update",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Update:  &updateReport{Repeats: repeats},
	}
	for _, name := range strings.Split(datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		for _, kind := range []string{"edge", "attr"} {
			run, err := updateOne(ctx, name, scale, kind, repeats)
			if err != nil {
				return fmt.Errorf("update %s/%s: %w", name, kind, err)
			}
			report.Update.Runs = append(report.Update.Runs, run)
			fmt.Fprintf(stdout, "update %s %-4s dirtyA=%-3d full=%8.1fms inc=%8.1fms speedup=%5.1fx reused=%d recomputed=%d\n",
				name, kind, run.DirtyAttrs, run.FullMS, run.IncMS, run.Speedup, run.ReusedSets, run.Recomputed)
		}
	}
	path := filepath.Join(outDir, "BENCH_update.json")
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// singleOpDelta builds the benchmark delta: one edge between the first
// attribute-disjoint non-adjacent vertex pair (kind "edge"), or one
// attribute set on the first vertex lacking it (kind "attr") — the
// shapes a live stream of updates is made of.
func singleOpDelta(g *graph.Graph, kind string) (*graph.Delta, error) {
	d := g.NewDelta()
	n := int32(g.NumVertices())
	if kind == "attr" {
		for v := int32(0); v < n; v++ {
			have := g.VertexAttrs(v)
			for a := int32(0); a < int32(g.NumAttributes()); a++ {
				onVertex := false
				for _, x := range have {
					if x == a {
						onVertex = true
						break
					}
				}
				if !onVertex {
					return d, d.SetAttr(g.VertexName(v), g.AttrName(a))
				}
			}
		}
		return nil, fmt.Errorf("no vertex is missing an attribute")
	}
	// Edge: prefer an attribute-disjoint pair, falling back to the
	// first non-adjacent pair.
	var fu, fv int32 = -1, -1
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) {
				continue
			}
			if fu < 0 {
				fu, fv = u, v
			}
			if sharedAttrCount(g.VertexAttrs(u), g.VertexAttrs(v)) == 0 {
				return d, d.AddEdge(g.VertexName(u), g.VertexName(v))
			}
		}
	}
	if fu < 0 {
		return nil, fmt.Errorf("graph is complete")
	}
	return d, d.AddEdge(g.VertexName(fu), g.VertexName(fv))
}

// sharedAttrCount counts common elements of two sorted id lists.
func sharedAttrCount(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// updateOne measures one dataset × delta-kind cell.
func updateOne(ctx context.Context, name string, scale float64, kind string, repeats int) (updateRun, error) {
	d, err := experiments.Load(name, scale)
	if err != nil {
		return updateRun{}, err
	}
	p := d.Params()
	p.RecordLattice = true

	old, err := core.Mine(ctx, d.Graph, p, nil)
	if err != nil {
		return updateRun{}, err
	}
	delta, err := singleOpDelta(d.Graph, kind)
	if err != nil {
		return updateRun{}, err
	}
	ng, cs, err := d.Graph.Apply(delta)
	if err != nil {
		return updateRun{}, err
	}

	run := updateRun{
		Dataset:    name,
		Scale:      scale,
		Delta:      kind,
		Ops:        delta.Ops(),
		DirtyAttrs: cs.DirtyAttrs.Count(),
		DirtyVerts: cs.DirtyVertices.Count(),
	}

	// Full remine: mining the updated graph from scratch (lattice
	// recording on, like a serving deployment would run it).
	var fullRes *core.Result
	run.FullMS = bestOfMS(repeats, func() error {
		fullRes, err = core.Mine(ctx, ng, p, nil)
		return err
	})
	if err != nil {
		return updateRun{}, err
	}
	// Incremental remine from the previous result.
	var incRes *core.Result
	run.IncMS = bestOfMS(repeats, func() error {
		incRes, err = core.Remine(ctx, ng, p, old, cs, nil)
		return err
	})
	if err != nil {
		return updateRun{}, err
	}
	if len(incRes.Sets) != len(fullRes.Sets) || len(incRes.Patterns) != len(fullRes.Patterns) {
		return updateRun{}, fmt.Errorf("incremental result diverged: %d/%d sets, %d/%d patterns",
			len(incRes.Sets), len(fullRes.Sets), len(incRes.Patterns), len(fullRes.Patterns))
	}
	run.Speedup = run.FullMS / run.IncMS
	run.ReusedSets = incRes.Stats.ReusedSets
	run.Recomputed = incRes.Stats.RecomputedSets
	run.FullNodes = fullRes.Stats.SearchNodes
	run.IncNodes = incRes.Stats.SearchNodes
	run.Sets = len(incRes.Sets)
	run.Incremental = run.IncMS < run.FullMS
	return run, nil
}

// bestOfMS returns the fastest of n timed calls in milliseconds.
func bestOfMS(n int, fn func() error) float64 {
	best := 0.0
	for i := 0; i < n; i++ {
		start := time.Now()
		if fn() != nil {
			return 0
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if i == 0 || ms < best {
			best = ms
		}
	}
	return best
}
