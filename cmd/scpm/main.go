// Command scpm mines structural correlation patterns from an attributed
// graph given as two text files (vertex attributes + edge list).
//
// Usage:
//
//	scpm -attrs graph.attrs -edges graph.edges \
//	     -sigma 100 -gamma 0.5 -minsize 5 -eps 0.1 -delta 1 -k 5
//
// The output lists the qualifying attribute sets (σ, ε, δ) and the
// top-k quasi-cliques each induces. With -rank the tool instead prints
// the paper-style top-N tables by σ, ε and δ. With -ndjson results are
// streamed incrementally as NDJSON events (one JSON object per line:
// set, pattern, progress, done) the moment the search finds them —
// point it at a pipe and watch patterns appear while mining is still
// running. -json and -csv export the full result for downstream
// analysis.
//
// With -eps-mode sampled the structural correlation ε is estimated by
// deterministic seeded vertex sampling (per-vertex quasi-clique
// membership queries with a Hoeffding-bounded sample size) instead of
// the full coverage search — a large speedup on big supports at a
// configurable accuracy (-sample-eps, -sample-delta, -seed). Estimated
// sets are annotated in every output format.
//
// The process honors SIGINT/SIGTERM: interrupting a long run stops the
// search in bounded time and reports the partial results mined so far
// (exit code 130). A run stopped by an exhausted -budget likewise
// reports its partial results, with exit code 3.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	scpm "github.com/scpm/scpm"
	"github.com/scpm/scpm/internal/obs"
	"github.com/scpm/scpm/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scpm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		attrsPath = fs.String("attrs", "", "vertex attribute file (required)")
		edgesPath = fs.String("edges", "", "edge list file (required)")
		sigmaMin  = fs.Int("sigma", 100, "minimum support σmin")
		gamma     = fs.Float64("gamma", 0.5, "quasi-clique density γmin (0,1]")
		minSize   = fs.Int("minsize", 5, "minimum quasi-clique size")
		epsMin    = fs.Float64("eps", 0, "minimum structural correlation εmin")
		deltaMin  = fs.Float64("delta", 0, "minimum normalized structural correlation δmin")
		k         = fs.Int("k", 5, "top-k patterns per attribute set (0 = sets only)")
		allPats   = fs.Bool("all-patterns", false, "SCORP mode: report every maximal pattern (ignores -k)")
		minAttrs  = fs.Int("minattrs", 1, "report only sets with ≥ this many attributes")
		maxAttrs  = fs.Int("maxattrs", 0, "bound attribute-set size (0 = unbounded)")
		order     = fs.String("order", "dfs", "quasi-clique search order: dfs or bfs")
		algo      = fs.String("algo", "scpm", "algorithm: scpm or naive")
		par       = fs.Int("parallel", runtime.NumCPU(), "worker goroutines")
		model     = fs.String("model", "analytical", "null model: analytical or sim:<r>:<seed>")
		budget    = fs.Int64("budget", 0, "search-node budget per induced graph (0 = unbounded)")
		epsMode   = fs.String("eps-mode", "exact", "ε computation: exact or sampled (Hoeffding-bounded vertex sampling)")
		sampleEps = fs.Float64("sample-eps", 0, "sampled mode: ε̂ half-width bound (0 = default 0.1)")
		sampleDel = fs.Float64("sample-delta", 0, "sampled mode: per-set failure probability (0 = default 0.05)")
		seed      = fs.Int64("seed", 0, "sampled mode: sampling seed (same seed ⇒ same ε̂)")
		rank      = fs.Int("rank", 0, "print top-N σ/ε/δ tables instead of the full output")
		ndjson    = fs.Bool("ndjson", false, "stream results incrementally as NDJSON events")
		jsonPath  = fs.String("json", "", "write the full result as JSON to this file")
		csvPrefix = fs.String("csv", "", "write <prefix>-sets.csv and <prefix>-patterns.csv")
		quiet     = fs.Bool("quiet", false, "suppress per-pattern output")
		metrics   = fs.String("metrics-addr", "", "serve /metrics and /debug/pprof from this address while mining (e.g. 127.0.0.1:9090)")
		showVer   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("scpm"))
		return 0
	}
	if *attrsPath == "" || *edgesPath == "" {
		fmt.Fprintln(stderr, "scpm: -attrs and -edges are required")
		fs.Usage()
		return 2
	}

	g, err := loadGraph(*attrsPath, *edgesPath)
	if err != nil {
		fmt.Fprintln(stderr, "scpm:", err)
		return 1
	}
	if !*ndjson {
		fmt.Fprintf(stdout, "loaded %d vertices, %d edges, %d attributes\n",
			g.NumVertices(), g.NumEdges(), g.NumAttributes())
	}

	opts := []scpm.Option{
		scpm.WithSigmaMin(*sigmaMin),
		scpm.WithGamma(*gamma),
		scpm.WithMinSize(*minSize),
		scpm.WithEpsMin(*epsMin),
		scpm.WithDeltaMin(*deltaMin),
		scpm.WithTopK(*k),
		scpm.WithMinAttrs(*minAttrs),
		scpm.WithMaxAttrs(*maxAttrs),
		scpm.WithParallelism(*par),
		scpm.WithSearchBudget(*budget),
	}
	if *allPats {
		opts = append(opts, scpm.WithAllPatterns())
	}
	switch strings.ToLower(*order) {
	case "dfs":
		opts = append(opts, scpm.WithSearchOrder(scpm.DFS))
	case "bfs":
		opts = append(opts, scpm.WithSearchOrder(scpm.BFS))
	default:
		fmt.Fprintf(stderr, "scpm: unknown -order %q\n", *order)
		return 2
	}
	switch strings.ToLower(*epsMode) {
	case "exact":
	case "sampled":
		opts = append(opts, scpm.WithEpsilonSampling(*sampleEps, *sampleDel), scpm.WithSeed(*seed))
	default:
		fmt.Fprintf(stderr, "scpm: unknown -eps-mode %q (want exact or sampled)\n", *epsMode)
		return 2
	}
	switch strings.ToLower(*algo) {
	case "scpm":
	case "naive":
		opts = append(opts, scpm.WithNaive())
	default:
		fmt.Fprintf(stderr, "scpm: unknown -algo %q\n", *algo)
		return 2
	}
	modelOpt, err := modelOption(g, *model, *gamma, *minSize)
	if err != nil {
		fmt.Fprintln(stderr, "scpm:", err)
		return 2
	}
	if modelOpt != nil {
		opts = append(opts, modelOpt)
	}

	miner, err := scpm.NewMiner(opts...)
	if err != nil {
		fmt.Fprintln(stderr, "scpm:", err)
		return 2
	}

	// -metrics-addr side-serves /metrics + pprof for the run's lifetime:
	// the mining gauges advance with every progress snapshot, so a long
	// mine can be watched and CPU-profiled from outside.
	var mm *obs.MiningMetrics
	if *metrics != "" {
		reg := scpm.NewMetricsRegistry()
		mm = obs.NewMiningMetrics(reg)
		maddr, stopMetrics, err := obs.Start(*metrics, reg)
		if err != nil {
			fmt.Fprintln(stderr, "scpm:", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(stderr, "scpm: metrics on %s\n", maddr)
	}

	if *ndjson {
		// The batch-only output flags would be silently dead in
		// streaming mode; refuse the combination loudly instead of
		// letting a pipeline lose its artifacts.
		if *jsonPath != "" || *csvPrefix != "" || *rank > 0 {
			fmt.Fprintln(stderr, "scpm: -ndjson cannot be combined with -json, -csv or -rank")
			return 2
		}
		return streamNDJSON(ctx, miner, g, mm, stdout, stderr)
	}

	var sink scpm.Sink
	if mm != nil {
		mm.Active.Set(1)
		defer mm.Active.Set(0)
		sink = scpm.SinkFuncs{Progress: func(st scpm.Stats) { observeProgress(mm, st) }}
	}
	res, err := miner.MineWithProgress(ctx, g, sink)
	canceled := errors.Is(err, scpm.ErrCanceled)
	budgeted := errors.Is(err, scpm.ErrBudget)
	if err != nil && !canceled && !budgeted {
		fmt.Fprintln(stderr, "scpm:", err)
		return 1
	}
	if canceled || budgeted {
		fmt.Fprintf(stderr, "%v — reporting partial results\n", err)
	}

	if *rank > 0 {
		printRankings(stdout, res, *rank)
	} else {
		printFull(stdout, g, res, *quiet)
	}

	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(w io.Writer) error { return res.WriteJSON(w, g) }); err != nil {
			fmt.Fprintln(stderr, "scpm:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	if *csvPrefix != "" {
		setsPath := *csvPrefix + "-sets.csv"
		patsPath := *csvPrefix + "-patterns.csv"
		if err := writeFile(setsPath, res.WriteSetsCSV); err != nil {
			fmt.Fprintln(stderr, "scpm:", err)
			return 1
		}
		if err := writeFile(patsPath, func(w io.Writer) error { return res.WritePatternsCSV(w, g) }); err != nil {
			fmt.Fprintln(stderr, "scpm:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s and %s\n", setsPath, patsPath)
	}
	// 130 mirrors the shell convention for an interrupted process;
	// a deliberately bounded query hitting its -budget is a different
	// outcome and gets its own code.
	if canceled {
		return 130
	}
	if budgeted {
		return 3
	}
	return 0
}

// ndjsonEvent is one streamed output line. Type is "set", "pattern",
// "progress" or "done"; the other fields apply per type.
type ndjsonEvent struct {
	Type string `json:"type"`
	// ID is the stable identifier of the set or pattern (shared with
	// the JSON/CSV exports and server responses); Set joins a pattern
	// event to its set event.
	ID       string   `json:"id,omitempty"`
	Set      string   `json:"set,omitempty"`
	Attrs    []string `json:"attrs,omitempty"`
	Support  int      `json:"support,omitempty"`
	Epsilon  *float64 `json:"epsilon,omitempty"`
	Delta    *float64 `json:"delta,omitempty"`
	Covered  *int     `json:"covered,omitempty"`
	Vertices []string `json:"vertices,omitempty"`
	Size     int      `json:"size,omitempty"`
	Gamma    *float64 `json:"gamma,omitempty"`
	// Estimated/EpsilonErr/Sampled annotate sets whose ε is a sampling
	// estimate (-eps-mode sampled); omitted for exact sets.
	Estimated  bool     `json:"estimated,omitempty"`
	EpsilonErr *float64 `json:"epsilon_err,omitempty"`
	Sampled    int      `json:"sampled,omitempty"`

	SetsEvaluated   int64   `json:"sets_evaluated,omitempty"`
	SetsEmitted     int64   `json:"sets_emitted,omitempty"`
	PatternsEmitted int64   `json:"patterns_emitted,omitempty"`
	SearchNodes     int64   `json:"search_nodes,omitempty"`
	SampledVertices int64   `json:"sampled_vertices,omitempty"`
	Seconds         float64 `json:"seconds,omitempty"`
	Canceled        bool    `json:"canceled,omitempty"`
	Budget          bool    `json:"budget,omitempty"`
	Error           string  `json:"error,omitempty"`
}

// observeProgress maps one progress snapshot onto the mining gauges
// (nil-safe: mm may be nil when -metrics-addr is unset).
func observeProgress(mm *obs.MiningMetrics, st scpm.Stats) {
	mm.ObserveProgress(st.SetsEvaluated, st.SetsEmitted, st.PatternsEmitted,
		st.SearchNodes, st.SampledVertices, st.ReusedSets, st.RecomputedSets,
		st.ReusedVerdicts)
}

// streamNDJSON mines g pushing one JSON line per event to stdout as the
// search proceeds.
func streamNDJSON(ctx context.Context, miner *scpm.Miner, g *scpm.Graph, mm *obs.MiningMetrics, stdout, stderr io.Writer) int {
	// A failed write (closed pipe, full disk) makes further mining
	// pointless: record the first encode error and cancel the search.
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	enc := json.NewEncoder(stdout)
	var encErr error
	emit := func(ev ndjsonEvent) {
		if encErr != nil {
			return
		}
		if err := enc.Encode(ev); err != nil {
			encErr = fmt.Errorf("writing output: %w", err)
			cancel(encErr)
		}
	}
	f := func(v float64) *float64 { return &v }
	n := func(v int) *int { return &v }
	// The terminal OnProgress fires before Stream returns (the Sink
	// contract), so lastStats holds the final counters for the done
	// event.
	var lastStats scpm.Stats
	if mm != nil {
		mm.Active.Set(1)
		defer mm.Active.Set(0)
	}
	err := miner.Stream(ctx, g, scpm.SinkFuncs{
		AttributeSet: func(s scpm.AttributeSet) {
			ev := ndjsonEvent{
				Type: "set", ID: s.ID(), Attrs: s.Names, Support: s.Support,
				Epsilon: f(s.Epsilon), Delta: f(s.Delta), Covered: n(s.Covered),
			}
			if s.Estimated {
				ev.Estimated = true
				ev.EpsilonErr = f(s.EpsilonErr)
				ev.Sampled = s.SampledVertices
			}
			emit(ev)
		},
		Pattern: func(p scpm.Pattern) {
			emit(ndjsonEvent{
				Type: "pattern", ID: p.ID(), Set: p.SetID(),
				Attrs: p.Names, Vertices: p.VertexNames(g),
				Size: p.Size(), Gamma: f(p.Density()),
			})
		},
		Progress: func(st scpm.Stats) {
			lastStats = st
			observeProgress(mm, st)
			emit(ndjsonEvent{
				Type: "progress", SetsEvaluated: st.SetsEvaluated,
				SetsEmitted: st.SetsEmitted, PatternsEmitted: st.PatternsEmitted,
				SearchNodes: st.SearchNodes, SampledVertices: st.SampledVertices,
				Seconds: st.Duration.Seconds(),
			})
		},
	})
	if encErr != nil {
		fmt.Fprintln(stderr, "scpm:", encErr)
		return 1
	}
	done := ndjsonEvent{
		Type:          "done",
		SetsEvaluated: lastStats.SetsEvaluated,
		SetsEmitted:   lastStats.SetsEmitted, PatternsEmitted: lastStats.PatternsEmitted,
		SearchNodes: lastStats.SearchNodes, SampledVertices: lastStats.SampledVertices,
		Seconds: lastStats.Duration.Seconds(),
	}
	code := 0
	switch {
	case errors.Is(err, scpm.ErrCanceled):
		done.Canceled = true
		done.Error = err.Error()
		code = 130
	case errors.Is(err, scpm.ErrBudget):
		done.Budget = true
		done.Error = err.Error()
		code = 3
	case err != nil:
		fmt.Fprintln(stderr, "scpm:", err)
		return 1
	}
	emit(done)
	if encErr != nil {
		fmt.Fprintln(stderr, "scpm:", encErr)
		return 1
	}
	return code
}

func printRankings(w io.Writer, res *scpm.Result, n int) {
	for _, r := range []scpm.Ranking{scpm.BySupport, scpm.ByEpsilon, scpm.ByDelta} {
		fmt.Fprintf(w, "\ntop %d by %v\n", n, r)
		for _, s := range scpm.TopSets(res.Sets, r, n) {
			fmt.Fprintf(w, "  {%s} σ=%d ε=%.3f δ=%.4g\n",
				strings.Join(s.Names, " "), s.Support, s.Epsilon, s.Delta)
		}
	}
}

func printFull(w io.Writer, g *scpm.Graph, res *scpm.Result, quiet bool) {
	fmt.Fprintf(w, "\n%d attribute sets, %d patterns (%.2fs)\n",
		len(res.Sets), len(res.Patterns), res.Stats.Duration.Seconds())
	for _, s := range res.Sets {
		fmt.Fprintf(w, "{%s} σ=%d ε=%.3f δ=%.4g\n",
			strings.Join(s.Names, " "), s.Support, s.Epsilon, s.Delta)
		if quiet {
			continue
		}
		for _, pat := range res.PatternsOf(s.Attrs) {
			fmt.Fprintf(w, "  Q=%v size=%d γ=%.2f\n",
				pat.VertexNames(g), pat.Size(), pat.Density())
		}
	}
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadGraph(attrsPath, edgesPath string) (*scpm.Graph, error) {
	af, err := os.Open(attrsPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return scpm.ReadDataset(af, ef)
}

// modelOption resolves the -model flag into a Miner option (nil for the
// default analytical bound).
func modelOption(g *scpm.Graph, spec string, gamma float64, minSize int) (scpm.Option, error) {
	if spec == "" || spec == "analytical" {
		return nil, nil
	}
	var r int
	var seed int64
	if n, _ := fmt.Sscanf(spec, "sim:%d:%d", &r, &seed); n == 2 {
		p := scpm.Params{Gamma: gamma, MinSize: minSize}
		return scpm.WithNullModel(scpm.NewSimulationModel(g, p, r, seed)), nil
	}
	return nil, fmt.Errorf("unknown -model %q (want analytical or sim:<r>:<seed>)", spec)
}
