// Command scpm mines structural correlation patterns from an attributed
// graph given as two text files (vertex attributes + edge list).
//
// Usage:
//
//	scpm -attrs graph.attrs -edges graph.edges \
//	     -sigma 100 -gamma 0.5 -minsize 5 -eps 0.1 -delta 1 -k 5
//
// The output lists the qualifying attribute sets (σ, ε, δ) and the
// top-k quasi-cliques each induces. With -rank the tool instead prints
// the paper-style top-N tables by σ, ε and δ. -json and -csv export the
// full result for downstream analysis.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	scpm "github.com/scpm/scpm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scpm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		attrsPath = fs.String("attrs", "", "vertex attribute file (required)")
		edgesPath = fs.String("edges", "", "edge list file (required)")
		sigmaMin  = fs.Int("sigma", 100, "minimum support σmin")
		gamma     = fs.Float64("gamma", 0.5, "quasi-clique density γmin (0,1]")
		minSize   = fs.Int("minsize", 5, "minimum quasi-clique size")
		epsMin    = fs.Float64("eps", 0, "minimum structural correlation εmin")
		deltaMin  = fs.Float64("delta", 0, "minimum normalized structural correlation δmin")
		k         = fs.Int("k", 5, "top-k patterns per attribute set (0 = sets only)")
		allPats   = fs.Bool("all-patterns", false, "SCORP mode: report every maximal pattern (ignores -k)")
		minAttrs  = fs.Int("minattrs", 1, "report only sets with ≥ this many attributes")
		maxAttrs  = fs.Int("maxattrs", 0, "bound attribute-set size (0 = unbounded)")
		order     = fs.String("order", "dfs", "quasi-clique search order: dfs or bfs")
		algo      = fs.String("algo", "scpm", "algorithm: scpm or naive")
		par       = fs.Int("parallel", runtime.NumCPU(), "worker goroutines")
		model     = fs.String("model", "analytical", "null model: analytical or sim:<r>:<seed>")
		rank      = fs.Int("rank", 0, "print top-N σ/ε/δ tables instead of the full output")
		jsonPath  = fs.String("json", "", "write the full result as JSON to this file")
		csvPrefix = fs.String("csv", "", "write <prefix>-sets.csv and <prefix>-patterns.csv")
		quiet     = fs.Bool("quiet", false, "suppress per-pattern output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *attrsPath == "" || *edgesPath == "" {
		fmt.Fprintln(stderr, "scpm: -attrs and -edges are required")
		fs.Usage()
		return 2
	}

	g, err := loadGraph(*attrsPath, *edgesPath)
	if err != nil {
		fmt.Fprintln(stderr, "scpm:", err)
		return 1
	}
	fmt.Fprintf(stdout, "loaded %d vertices, %d edges, %d attributes\n",
		g.NumVertices(), g.NumEdges(), g.NumAttributes())

	p := scpm.Params{
		SigmaMin:    *sigmaMin,
		Gamma:       *gamma,
		MinSize:     *minSize,
		EpsMin:      *epsMin,
		DeltaMin:    *deltaMin,
		K:           *k,
		AllPatterns: *allPats,
		MinAttrs:    *minAttrs,
		MaxAttrs:    *maxAttrs,
		Parallelism: *par,
	}
	switch strings.ToLower(*order) {
	case "dfs":
		p.Order = scpm.DFS
	case "bfs":
		p.Order = scpm.BFS
	default:
		fmt.Fprintf(stderr, "scpm: unknown -order %q\n", *order)
		return 2
	}
	if err := configureModel(&p, g, *model); err != nil {
		fmt.Fprintln(stderr, "scpm:", err)
		return 2
	}

	var res *scpm.Result
	switch strings.ToLower(*algo) {
	case "scpm":
		res, err = scpm.Mine(g, p)
	case "naive":
		res, err = scpm.MineNaive(g, p)
	default:
		fmt.Fprintf(stderr, "scpm: unknown -algo %q\n", *algo)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "scpm:", err)
		return 1
	}

	if *rank > 0 {
		printRankings(stdout, res, *rank)
	} else {
		printFull(stdout, g, res, *quiet)
	}

	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(w io.Writer) error { return res.WriteJSON(w, g) }); err != nil {
			fmt.Fprintln(stderr, "scpm:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	if *csvPrefix != "" {
		setsPath := *csvPrefix + "-sets.csv"
		patsPath := *csvPrefix + "-patterns.csv"
		if err := writeFile(setsPath, res.WriteSetsCSV); err != nil {
			fmt.Fprintln(stderr, "scpm:", err)
			return 1
		}
		if err := writeFile(patsPath, func(w io.Writer) error { return res.WritePatternsCSV(w, g) }); err != nil {
			fmt.Fprintln(stderr, "scpm:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s and %s\n", setsPath, patsPath)
	}
	return 0
}

func printRankings(w io.Writer, res *scpm.Result, n int) {
	for _, r := range []scpm.Ranking{scpm.BySupport, scpm.ByEpsilon, scpm.ByDelta} {
		fmt.Fprintf(w, "\ntop %d by %v\n", n, r)
		for _, s := range scpm.TopSets(res.Sets, r, n) {
			fmt.Fprintf(w, "  {%s} σ=%d ε=%.3f δ=%.4g\n",
				strings.Join(s.Names, " "), s.Support, s.Epsilon, s.Delta)
		}
	}
}

func printFull(w io.Writer, g *scpm.Graph, res *scpm.Result, quiet bool) {
	fmt.Fprintf(w, "\n%d attribute sets, %d patterns (%.2fs)\n",
		len(res.Sets), len(res.Patterns), res.Stats.Duration.Seconds())
	for _, s := range res.Sets {
		fmt.Fprintf(w, "{%s} σ=%d ε=%.3f δ=%.4g\n",
			strings.Join(s.Names, " "), s.Support, s.Epsilon, s.Delta)
		if quiet {
			continue
		}
		for _, pat := range res.PatternsOf(s.Attrs) {
			fmt.Fprintf(w, "  Q=%v size=%d γ=%.2f\n",
				pat.VertexNames(g), pat.Size(), pat.Density())
		}
	}
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadGraph(attrsPath, edgesPath string) (*scpm.Graph, error) {
	af, err := os.Open(attrsPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return scpm.ReadDataset(af, ef)
}

func configureModel(p *scpm.Params, g *scpm.Graph, spec string) error {
	if spec == "" || spec == "analytical" {
		return nil // Mine defaults to the analytical bound
	}
	var r int
	var seed int64
	if n, _ := fmt.Sscanf(spec, "sim:%d:%d", &r, &seed); n == 2 {
		p.Model = scpm.NewSimulationModel(g, *p, r, seed)
		return nil
	}
	return fmt.Errorf("unknown -model %q (want analytical or sim:<r>:<seed>)", spec)
}
