package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	scpm "github.com/scpm/scpm"
)

// writeExampleDataset materializes the paper's Figure-1 graph to disk.
func writeExampleDataset(t *testing.T) (attrs, edges string) {
	t.Helper()
	dir := t.TempDir()
	attrs = filepath.Join(dir, "g.attrs")
	edges = filepath.Join(dir, "g.edges")
	af, err := os.Create(attrs)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := os.Create(edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := scpm.WriteDataset(scpm.PaperExample(), af, ef); err != nil {
		t.Fatal(err)
	}
	af.Close()
	ef.Close()
	return attrs, edges
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLIMinesTable1(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	code, out, errOut := runCLI(t,
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5", "-k", "10")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"{A} σ=11 ε=0.818", "{B} σ=6 ε=1.000", "{A B} σ=6 ε=1.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "Q=") != 7 {
		t.Fatalf("expected 7 patterns:\n%s", out)
	}
}

func TestCLINaiveAgrees(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	_, scpmOut, _ := runCLI(t,
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5", "-k", "10")
	code, naiveOut, errOut := runCLI(t,
		"-attrs", attrs, "-edges", edges, "-algo", "naive",
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5", "-k", "10")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	// strip the timing line before comparing
	strip := func(s string) string {
		lines := strings.Split(s, "\n")
		var keep []string
		for _, l := range lines {
			if strings.Contains(l, "attribute sets,") {
				continue
			}
			keep = append(keep, l)
		}
		return strings.Join(keep, "\n")
	}
	if strip(scpmOut) != strip(naiveOut) {
		t.Fatalf("algorithms disagree:\n%s\nvs\n%s", scpmOut, naiveOut)
	}
}

func TestCLIRankMode(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	code, out, _ := runCLI(t,
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-rank", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"top 2 by σ", "top 2 by ε", "top 2 by δ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCLIExports(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	csvPrefix := filepath.Join(dir, "out")
	code, _, errOut := runCLI(t,
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5",
		"-json", jsonPath, "-csv", csvPrefix, "-quiet")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, p := range []string{jsonPath, csvPrefix + "-sets.csv", csvPrefix + "-patterns.csv"} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("export %s missing or empty: %v", p, err)
		}
	}
}

func TestCLIBFSAndSimModel(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	code, out, errOut := runCLI(t,
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4",
		"-order", "bfs", "-model", "sim:10:7", "-quiet")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "attribute sets") {
		t.Fatalf("no result summary:\n%s", out)
	}
}

func TestCLIAllPatterns(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	code, out, _ := runCLI(t,
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5",
		"-all-patterns")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Count(out, "Q=") != 7 {
		t.Fatalf("SCORP mode should report all 7 patterns:\n%s", out)
	}
}

// TestCLISampledMode checks the -eps-mode plumbing: with a coarse
// sample bound every Figure-1 set has σ above the Hoeffding sample size
// and takes the sampling path, which the NDJSON events must annotate.
func TestCLISampledMode(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	code, out, errOut := runCLI(t,
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-k", "0",
		"-eps-mode", "sampled", "-sample-eps", "0.45", "-sample-delta", "0.4", "-seed", "3",
		"-ndjson")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var estimated, sampledTotal int
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var ev struct {
			Type            string   `json:"type"`
			Estimated       bool     `json:"estimated"`
			EpsilonErr      *float64 `json:"epsilon_err"`
			Sampled         int      `json:"sampled"`
			SampledVertices int      `json:"sampled_vertices"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		switch ev.Type {
		case "set":
			if ev.Estimated {
				estimated++
				if ev.EpsilonErr == nil || *ev.EpsilonErr != 0.45 || ev.Sampled == 0 {
					t.Fatalf("estimate annotations missing: %s", line)
				}
			}
		case "done":
			sampledTotal = ev.SampledVertices
		}
	}
	if estimated == 0 {
		t.Fatalf("no set took the sampling path:\n%s", out)
	}
	if sampledTotal == 0 {
		t.Fatalf("done event lost the sampled-vertices counter:\n%s", out)
	}
}

// TestCLISampledFallbackMatchesExact: with the default (185-sample)
// bound every Figure-1 set falls back to the exact search, so the
// sampled run's human-readable output matches exact mode exactly.
func TestCLISampledFallbackMatchesExact(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	base := []string{
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5", "-k", "10"}
	_, exactOut, _ := runCLI(t, base...)
	code, sampledOut, errOut := runCLI(t, append(base, "-eps-mode", "sampled", "-seed", "5")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	strip := func(s string) string {
		lines := strings.Split(s, "\n")
		var keep []string
		for _, l := range lines {
			if strings.Contains(l, "attribute sets,") {
				continue
			}
			keep = append(keep, l)
		}
		return strings.Join(keep, "\n")
	}
	if strip(exactOut) != strip(sampledOut) {
		t.Fatalf("fallback output differs:\n%s\nvs\n%s", exactOut, sampledOut)
	}
}

func TestCLIErrors(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	cases := [][]string{
		{},                // missing files
		{"-attrs", attrs}, // missing edges
		{"-attrs", "/nope", "-edges", edges},
		{"-attrs", attrs, "-edges", edges, "-order", "zigzag"},
		{"-attrs", attrs, "-edges", edges, "-algo", "magic"},
		{"-attrs", attrs, "-edges", edges, "-model", "bogus"},
		{"-attrs", attrs, "-edges", edges, "-gamma", "7"},
		{"-attrs", attrs, "-edges", edges, "-eps-mode", "psychic"},
		{"-attrs", attrs, "-edges", edges, "-eps-mode", "sampled", "-sample-eps", "2"},
	}
	for i, args := range cases {
		if code, _, _ := runCLI(t, args...); code == 0 {
			t.Errorf("case %d: expected failure for %v", i, args)
		}
	}
}

func TestCLINDJSONStreams(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	code, out, errOut := runCLI(t,
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5", "-k", "10",
		"-ndjson")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var sets, pats, done int
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var ev struct {
			Type     string `json:"type"`
			Canceled bool   `json:"canceled"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		switch ev.Type {
		case "set":
			sets++
		case "pattern":
			pats++
		case "done":
			done++
			if ev.Canceled {
				t.Fatalf("unexpected canceled event: %s", line)
			}
		}
	}
	if sets != 3 || pats != 7 || done != 1 {
		t.Fatalf("got %d sets, %d patterns, %d done events:\n%s", sets, pats, done, out)
	}
}

func TestCLICanceledContext(t *testing.T) {
	attrs, edges := writeExampleDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	code := run(ctx, []string{
		"-attrs", attrs, "-edges", edges,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4"}, &out, &errb)
	if code != 130 {
		t.Fatalf("exit %d, want 130; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "partial results") {
		t.Fatalf("stderr should note partial results: %s", errb.String())
	}
}

func TestCLIVersionFlag(t *testing.T) {
	code, out, _ := runCLI(t, "-version")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "scpm") || !strings.Contains(out, "go1") {
		t.Fatalf("version output %q", out)
	}
}
