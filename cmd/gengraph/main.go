// Command gengraph writes a synthetic attributed graph in the scpm
// dataset format. It either materializes one of the built-in profiles
// that stand in for the paper's datasets, or a fully custom
// configuration.
//
// Usage:
//
//	gengraph -profile dblp -scale 1.0 -out data/dblp
//	gengraph -vertices 5000 -avgdeg 5 -communities 100 -out data/custom
//
// Two files are produced: <out>.attrs and <out>.edges.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	scpm "github.com/scpm/scpm"
	"github.com/scpm/scpm/internal/datagen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profile = fs.String("profile", "", "built-in profile: dblp, lastfm, citeseer or smalldblp")
		scale   = fs.Float64("scale", 1.0, "profile scale factor")
		out     = fs.String("out", "graph", "output path prefix")
		seed    = fs.Int64("seed", 1, "random seed (custom config)")

		vertices    = fs.Int("vertices", 2000, "custom: number of vertices")
		avgDeg      = fs.Float64("avgdeg", 5, "custom: background average degree")
		degExp      = fs.Float64("degexp", 2.3, "custom: degree power-law exponent (>2)")
		vocab       = fs.Int("vocab", 500, "custom: attribute vocabulary size")
		attrsPerV   = fs.Float64("attrs", 5, "custom: mean attributes per vertex")
		zipf        = fs.Float64("zipf", 0.8, "custom: attribute Zipf exponent (>0)")
		communities = fs.Int("communities", 60, "custom: number of communities")
		csizeMin    = fs.Int("csize-min", 6, "custom: min community size")
		csizeMax    = fs.Int("csize-max", 12, "custom: max community size")
		intra       = fs.Float64("intra", 0.75, "custom: intra-community edge probability")
		topics      = fs.Int("topics", 2, "custom: topic attributes per area")
		areas       = fs.Int("areas", 15, "custom: number of topic areas")
		adoption    = fs.Float64("adoption", 0.85, "custom: member topic adoption probability")
		noise       = fs.Float64("noise", 1.0, "custom: topic noise factor")
		sparse      = fs.Float64("sparse", 0.35, "custom: fraction of sparse communities")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg datagen.Config
	switch *profile {
	case "dblp":
		cfg = datagen.SynthDBLP(*scale).Config
	case "lastfm":
		cfg = datagen.SynthLastFm(*scale).Config
	case "citeseer":
		cfg = datagen.SynthCiteSeer(*scale).Config
	case "smalldblp":
		cfg = datagen.SmallDBLP(*scale).Config
	case "":
		cfg = datagen.Config{
			Name:             "custom",
			Seed:             *seed,
			NumVertices:      *vertices,
			AvgDegree:        *avgDeg,
			DegreeExponent:   *degExp,
			VocabSize:        *vocab,
			AttrsPerVertex:   *attrsPerV,
			ZipfS:            *zipf,
			NumCommunities:   *communities,
			CommunitySizeMin: *csizeMin,
			CommunitySizeMax: *csizeMax,
			IntraProb:        *intra,
			TopicAttrs:       *topics,
			NumAreas:         *areas,
			TopicAdoption:    *adoption,
			TopicNoise:       *noise,
			SparseFrac:       *sparse,
		}
	default:
		fmt.Fprintf(stderr, "gengraph: unknown -profile %q\n", *profile)
		return 2
	}

	g, gt, err := scpm.Generate(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "gengraph:", err)
		return 1
	}
	fmt.Fprintf(stdout, "generated %s: %d vertices, %d edges, %d attributes, %d communities\n",
		cfg.Name, g.NumVertices(), g.NumEdges(), g.NumAttributes(), len(gt.Communities))

	af, err := os.Create(*out + ".attrs")
	if err != nil {
		fmt.Fprintln(stderr, "gengraph:", err)
		return 1
	}
	defer af.Close()
	ef, err := os.Create(*out + ".edges")
	if err != nil {
		fmt.Fprintln(stderr, "gengraph:", err)
		return 1
	}
	defer ef.Close()
	if err := scpm.WriteDataset(g, af, ef); err != nil {
		fmt.Fprintln(stderr, "gengraph:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s.attrs and %s.edges\n", *out, *out)
	return 0
}
