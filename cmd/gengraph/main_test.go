package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	scpm "github.com/scpm/scpm"
)

func runGen(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestGenerateProfile(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "g")
	code, out, errOut := runGen(t, "-profile", "smalldblp", "-scale", "0.2", "-out", prefix)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "generated SmallDBLP") {
		t.Fatalf("output: %s", out)
	}
	af, err := os.Open(prefix + ".attrs")
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()
	ef, err := os.Open(prefix + ".edges")
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	g, err := scpm.ReadDataset(af, ef)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Fatalf("degenerate graph: %v", g)
	}
}

func TestGenerateCustom(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "c")
	code, out, errOut := runGen(t,
		"-vertices", "300", "-communities", "5", "-areas", "2",
		"-csize-min", "5", "-csize-max", "8", "-out", prefix, "-seed", "9")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "300 vertices") {
		t.Fatalf("output: %s", out)
	}
}

func TestGenerateDeterministicFiles(t *testing.T) {
	dir := t.TempDir()
	run1 := filepath.Join(dir, "a")
	run2 := filepath.Join(dir, "b")
	for _, prefix := range []string{run1, run2} {
		if code, _, e := runGen(t, "-profile", "smalldblp", "-scale", "0.15", "-out", prefix); code != 0 {
			t.Fatalf("exit %d: %s", code, e)
		}
	}
	for _, suffix := range []string{".attrs", ".edges"} {
		b1, err := os.ReadFile(run1 + suffix)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(run2 + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s differs between identical runs", suffix)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if code, _, _ := runGen(t, "-profile", "nope"); code == 0 {
		t.Fatal("unknown profile accepted")
	}
	if code, _, _ := runGen(t, "-vertices", "0"); code == 0 {
		t.Fatal("invalid config accepted")
	}
	if code, _, _ := runGen(t, "-profile", "smalldblp", "-out", "/nonexistent/dir/x"); code == 0 {
		t.Fatal("unwritable output accepted")
	}
}
