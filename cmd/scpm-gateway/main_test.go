package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scpm/scpm/internal/shard"
)

func TestGatewayPlanMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "manifest.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-plan", "2", "-example", "paper", "-sigma", "3", "-out", out},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("plan mode exit %d: %s", code, stderr.String())
	}
	man, err := shard.LoadManifest(out)
	if err != nil {
		t.Fatal(err)
	}
	if man.Shards != 2 || len(man.Roots) == 0 {
		t.Fatalf("planned manifest: %+v", man)
	}
	if !strings.Contains(stdout.String(), "wrote manifest") {
		t.Fatalf("stdout: %s", stdout.String())
	}
}

func TestGatewayFlagErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // no manifest
		{"-manifest", "no-such-file"},       // unreadable manifest
		{"-plan", "2"},                      // plan without dataset
		{"-plan", "2", "-example", "bogus"}, // unknown example
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func TestGatewayShardCountMismatch(t *testing.T) {
	out := filepath.Join(t.TempDir(), "manifest.json")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(),
		[]string{"-plan", "2", "-example", "paper", "-sigma", "3", "-out", out},
		&stdout, &stderr); code != 0 {
		t.Fatalf("plan: %s", stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(),
		[]string{"-manifest", out, "-shards", "http://127.0.0.1:1"},
		&stdout, &stderr); code != 2 {
		t.Fatalf("1 URL for 2 shards accepted (exit %d)", code)
	}
	if !strings.Contains(stderr.String(), "declares 2 shards") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestGatewayVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "scpm-gateway") {
		t.Fatalf("version output %q", stdout.String())
	}
}
