// Command scpm-gateway fronts N sharded scpm-serve replicas with one
// scatter-gather HTTP endpoint, so clients query a sharded deployment
// exactly like a single server.
//
// It has two modes. Serving (the default) loads a shard manifest and
// fans queries out to the replica base URLs:
//
//	scpm-gateway -manifest manifest.json \
//	             -shards http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	             -addr :8080
//
// Enumeration queries (/sets, /patterns, /vertices/{v}) scatter to all
// shards and merge into the canonical order — byte-identical to a
// single-process scpm-serve because the lattice partitions are
// disjoint. Single-owner queries (/epsilon, /sets/{id}) route to the
// owning shard via the manifest. POST /updates forwards to every
// shard; /version aggregates a version vector flagging replica skew;
// /healthz reports per-shard reachability. A dead replica degrades
// scatter queries to partial results (flagged with the
// X-Scpm-Partial-Shards header) instead of failing them.
//
// Planning (-plan N) partitions a dataset's attribute-set lattice into
// N shards, evaluates every level-1 single once, and writes the
// checksummed v2 manifest — plan plus sealed verdicts — that the
// serving mode and scpm-serve -manifest consume; replicas booting from
// it replay the sealed evaluations instead of repeating them. The
// mining flags (-gamma, -minsize, -eps, …) must match what the
// replicas will run with; -seal=false writes a plan-only v1 manifest:
//
//	scpm-gateway -plan 2 -attrs graph.attrs -edges graph.edges \
//	             -sigma 100 -out manifest.json
//
//	scpm-gateway -plan 2 -example paper -sigma 3 -out manifest.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	scpm "github.com/scpm/scpm"
	"github.com/scpm/scpm/internal/gateway"
	"github.com/scpm/scpm/internal/obs"
	"github.com/scpm/scpm/internal/server"
	"github.com/scpm/scpm/internal/shard"
	"github.com/scpm/scpm/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scpm-gateway", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		manifestPath = fs.String("manifest", "", "shard manifest file (serving mode; write one with -plan)")
		shardsList   = fs.String("shards", "", "comma-separated shard base URLs, one per shard in manifest order")
		addr         = fs.String("addr", ":8080", "listen address")
		metrics      = fs.String("metrics-addr", "", "additional listen address serving only /metrics and /debug/pprof (the main listener serves them too)")
		timeout      = fs.Duration("timeout", gateway.DefaultTimeout, "per-shard subrequest timeout")
		quiet        = fs.Bool("quiet", false, "disable request logging")
		planN        = fs.Int("plan", 0, "plan mode: partition the dataset into N shards and write the manifest to -out")
		attrsPath    = fs.String("attrs", "", "plan mode: vertex attribute file")
		edgesPath    = fs.String("edges", "", "plan mode: edge list file")
		example      = fs.String("example", "", `plan mode: use a built-in dataset ("paper")`)
		sigmaMin     = fs.Int("sigma", 100, "plan mode: minimum support σmin the shards will mine with")
		out          = fs.String("out", "manifest.json", "plan mode: manifest output path")
		snapshots    = fs.String("snapshots", "", "plan mode: comma-separated per-shard snapshot paths to record in the manifest")
		seal         = fs.Bool("seal", true, "plan mode: evaluate level 1 once and seal the verdicts into a v2 manifest (false writes a plan-only v1 manifest)")
		gamma        = fs.Float64("gamma", 0.5, "plan mode: quasi-clique density γmin the shards will mine with")
		minSize      = fs.Int("minsize", 5, "plan mode: minimum quasi-clique size")
		epsMin       = fs.Float64("eps", 0, "plan mode: minimum structural correlation εmin")
		deltaMin     = fs.Float64("delta", 0, "plan mode: minimum normalized structural correlation δmin")
		topK         = fs.Int("k", 5, "plan mode: top-k patterns per attribute set (0 = sets only)")
		minAttrs     = fs.Int("minattrs", 1, "plan mode: report only sets with ≥ this many attributes")
		maxAttrs     = fs.Int("maxattrs", 0, "plan mode: bound attribute-set size (0 = unbounded)")
		budget       = fs.Int64("budget", 0, "plan mode: search-node budget per quasi-clique search (0 = unbounded)")
		epsMode      = fs.String("eps-mode", "exact", "plan mode: ε computation the shards will mine with: exact or sampled")
		sampleEps    = fs.Float64("sample-eps", 0, "plan mode: sampled mode ε̂ half-width bound (0 = default 0.1)")
		sampleDel    = fs.Float64("sample-delta", 0, "plan mode: sampled mode per-set failure probability (0 = default 0.05)")
		seed         = fs.Int64("seed", 0, "plan mode: sampled mode sampling seed")
		showVer      = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("scpm-gateway"))
		return 0
	}

	if *planN > 0 {
		popts := []scpm.Option{
			scpm.WithSigmaMin(*sigmaMin),
			scpm.WithGamma(*gamma),
			scpm.WithMinSize(*minSize),
			scpm.WithEpsMin(*epsMin),
			scpm.WithDeltaMin(*deltaMin),
			scpm.WithTopK(*topK),
			scpm.WithMinAttrs(*minAttrs),
			scpm.WithMaxAttrs(*maxAttrs),
			scpm.WithSearchBudget(*budget),
		}
		switch strings.ToLower(*epsMode) {
		case "exact":
		case "sampled":
			popts = append(popts, scpm.WithEpsilonSampling(*sampleEps, *sampleDel), scpm.WithSeed(*seed))
		default:
			fmt.Fprintf(stderr, "scpm-gateway: unknown -eps-mode %q (want exact or sampled)\n", *epsMode)
			return 2
		}
		miner, err := scpm.NewMiner(popts...)
		if err != nil {
			fmt.Fprintln(stderr, "scpm-gateway:", err)
			return 2
		}
		return runPlan(ctx, *planN, *attrsPath, *edgesPath, *example, miner.Params(), *seal, *out, *snapshots, stdout, stderr)
	}

	if *manifestPath == "" {
		fmt.Fprintln(stderr, "scpm-gateway: -manifest is required (write one with -plan)")
		return 2
	}
	man, err := shard.LoadManifest(*manifestPath)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-gateway:", err)
		return 2
	}
	var urls []string
	for _, u := range strings.Split(*shardsList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) != man.Shards {
		fmt.Fprintf(stderr, "scpm-gateway: -shards lists %d URLs, manifest %s declares %d shards\n",
			len(urls), *manifestPath, man.Shards)
		return 2
	}
	reg := scpm.NewMetricsRegistry()
	cfg := gateway.Config{Manifest: man, Shards: urls, Timeout: *timeout, Metrics: reg}
	if !*quiet {
		cfg.Logger = slog.New(slog.NewTextHandler(stderr, nil))
	}
	h, err := gateway.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-gateway:", err)
		return 2
	}
	if *metrics != "" {
		maddr, stopMetrics, err := obs.Start(*metrics, reg)
		if err != nil {
			fmt.Fprintln(stderr, "scpm-gateway:", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(stdout, "scpm-gateway: metrics on %s\n", maddr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-gateway:", err)
		return 1
	}
	fmt.Fprintf(stdout, "scpm-gateway: fronting %d shards (%s)\n", man.Shards, strings.Join(urls, ", "))
	fmt.Fprintf(stdout, "scpm-gateway: listening on %s\n", ln.Addr())
	if err := server.Serve(ctx, ln, h); err != nil {
		fmt.Fprintln(stderr, "scpm-gateway:", err)
		return 1
	}
	fmt.Fprintln(stdout, "scpm-gateway: shut down cleanly")
	return 0
}

// runPlan loads the dataset, partitions its lattice and writes the
// sealed manifest — v2 with every level-1 verdict baked in unless
// -seal=false asked for a plan-only v1.
func runPlan(ctx context.Context, n int, attrsPath, edgesPath, example string, p scpm.Params, seal bool, out, snapshots string, stdout, stderr io.Writer) int {
	g, err := loadGraph(attrsPath, edgesPath, example)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-gateway:", err)
		return 2
	}
	var snaps []string
	if snapshots != "" {
		for _, s := range strings.Split(snapshots, ",") {
			snaps = append(snaps, strings.TrimSpace(s))
		}
	}
	var man *shard.Manifest
	if seal {
		man, err = shard.BuildManifestSealed(ctx, g, p, n, snaps)
	} else {
		man, err = shard.BuildManifest(g, p.SigmaMin, n, snaps)
	}
	if err != nil {
		fmt.Fprintln(stderr, "scpm-gateway:", err)
		return 2
	}
	if err := shard.WriteManifest(man, out); err != nil {
		fmt.Fprintln(stderr, "scpm-gateway:", err)
		return 1
	}
	perShard := make([]int, n)
	for _, r := range man.Roots {
		perShard[r.Shard]++
	}
	fmt.Fprintf(stdout, "scpm-gateway: planned %d frequent roots over %d shards (roots per shard: %v)\n",
		len(man.Roots), n, perShard)
	if man.Level1 != nil {
		fmt.Fprintf(stdout, "scpm-gateway: sealed %d level-1 verdicts (%s)\n", len(man.Level1.Verdicts), man.Format)
	}
	fmt.Fprintf(stdout, "scpm-gateway: wrote manifest %s\n", out)
	return 0
}

// loadGraph resolves the plan-mode dataset selection.
func loadGraph(attrsPath, edgesPath, example string) (*scpm.Graph, error) {
	if example != "" && (attrsPath != "" || edgesPath != "") {
		return nil, errors.New("-example cannot be combined with -attrs/-edges")
	}
	if example != "" {
		if example != "paper" {
			return nil, fmt.Errorf("unknown -example %q (want paper)", example)
		}
		return scpm.PaperExample(), nil
	}
	if attrsPath == "" || edgesPath == "" {
		return nil, errors.New("plan mode needs -attrs and -edges (or -example paper)")
	}
	af, err := os.Open(attrsPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return scpm.ReadDataset(af, ef)
}
