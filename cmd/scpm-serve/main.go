// Command scpm-serve serves a mined pattern index over HTTP.
//
// On startup it either restores a binary index snapshot or mines the
// dataset with the configured parameters (reusing the scpm.Miner
// pipeline), then exposes the result through read-only JSON/NDJSON
// endpoints — /sets, /sets/{id}, /patterns, /vertices/{v}, /stats,
// /healthz — plus /epsilon, which answers structural-correlation
// queries for any attribute set: indexed sets come straight from the
// index, everything else is computed on demand by the ε-estimation
// layer (exact or sampled, per -eps-mode) behind a singleflight-
// deduplicated LRU cache, so repeated hot queries cost a map lookup.
//
// The served data is live: POST /updates accepts NDJSON graph
// operations (add/remove edge, add vertex, set/unset attribute),
// applies them atomically and re-mines incrementally in the
// background, swapping the refreshed index in without blocking
// concurrent reads; GET /version reports the data version versus the
// served version. With -snapshot each published generation also
// refreshes the snapshot and writes dataset sidecars so a restart
// resumes the updated data; -no-updates serves a frozen index.
//
// Usage:
//
//	scpm-serve -attrs graph.attrs -edges graph.edges \
//	           -sigma 100 -gamma 0.5 -minsize 5 -eps 0.1 -k 5 \
//	           -addr :8080 -snapshot index.scpmidx
//
//	scpm-serve -example paper -sigma 3 -gamma 0.6 -minsize 4 -eps 0.5 -k 10
//
// With -shard k/N the process mines and serves only shard k's slice
// of an N-way partition of the attribute-set lattice (plan the
// partition and write its manifest with scpm-gateway -plan); N such
// replicas behind scpm-gateway answer queries exactly like one
// unsharded server. Updates re-derive the partition per graph version,
// so POST /updates keeps working against sharded replicas.
//
// With -manifest the shard map comes from the planner's manifest
// instead, and a v2 manifest's sealed level-1 verdicts are replayed at
// boot — the replica skips every level-1 coverage search while mining
// byte-identical output. The mining flags must match the parameters
// the manifest was sealed under (scpm-gateway -plan shares their
// defaults); a mismatch fails loudly at boot.
//
// With -snapshot the index is loaded from the file when it exists;
// otherwise the dataset is mined and the snapshot written there, so the
// second boot skips mining entirely. New snapshots use the v3 format,
// which embeds the graph alongside the index in an mmap-able layout:
// a v3 boot needs no -attrs/-edges at all and restores both in
// milliseconds by wrapping typed views over the mapped file.
// -snapshot-mode picks the strategy — mmap pages the file in lazily on
// first touch, materialize reads it fully into memory up front, auto
// (the default) maps when the platform supports it. Both modes serve
// byte-identical responses. Old v2 (index-only) snapshots still load,
// paired with the dataset files as before. Boot phase timings are
// exported as scpm_boot_ms{phase=...} on /metrics, alongside
// scpm_snapshot_mapped_bytes and (on Linux, mapped boots)
// scpm_snapshot_resident_bytes.
//
// The process serves until SIGINT/SIGTERM, then shuts down gracefully
// (in-flight requests get a bounded grace period). Requests are logged
// to stderr unless -quiet is set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	scpm "github.com/scpm/scpm"
	"github.com/scpm/scpm/internal/mmapio"
	"github.com/scpm/scpm/internal/obs"
	"github.com/scpm/scpm/internal/server"
	"github.com/scpm/scpm/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scpm-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		attrsPath = fs.String("attrs", "", "vertex attribute file")
		edgesPath = fs.String("edges", "", "edge list file")
		example   = fs.String("example", "", `serve a built-in dataset instead of files ("paper": the 11-vertex worked example)`)
		snapshot  = fs.String("snapshot", "", "snapshot path: loaded when present, written (v3, graph included) after mining otherwise")
		snapMode  = fs.String("snapshot-mode", "auto", "v3 snapshot boot strategy: mmap (page in lazily), materialize (read fully into memory) or auto")
		addr      = fs.String("addr", ":8080", "listen address")
		metrics   = fs.String("metrics-addr", "", "additional listen address serving only /metrics and /debug/pprof (the main listener serves them too)")
		cacheSize = fs.Int("cache", server.DefaultCacheSize, "epsilon cache capacity (entries)")
		quiet     = fs.Bool("quiet", false, "disable request logging")
		sigmaMin  = fs.Int("sigma", 100, "minimum support σmin")
		gamma     = fs.Float64("gamma", 0.5, "quasi-clique density γmin (0,1]")
		minSize   = fs.Int("minsize", 5, "minimum quasi-clique size")
		epsMin    = fs.Float64("eps", 0, "minimum structural correlation εmin")
		deltaMin  = fs.Float64("delta", 0, "minimum normalized structural correlation δmin")
		k         = fs.Int("k", 5, "top-k patterns per attribute set (0 = sets only)")
		minAttrs  = fs.Int("minattrs", 1, "report only sets with ≥ this many attributes")
		maxAttrs  = fs.Int("maxattrs", 0, "bound attribute-set size (0 = unbounded)")
		par       = fs.Int("parallel", runtime.NumCPU(), "mining worker goroutines")
		shardSpec = fs.String("shard", "", `serve one slice of a sharded deployment, as "k/N" (e.g. 0/2): mine only the lattice partition shard k owns and serve it behind scpm-gateway`)
		manifest  = fs.String("manifest", "", "shard manifest file (scpm-gateway -plan): drive -shard ownership from the manifest and replay its sealed level-1 verdicts (v2) instead of re-searching them")
		noUpdates = fs.Bool("no-updates", false, "disable POST /updates (serve a frozen index)")
		budget    = fs.Int64("budget", 0, "search-node budget per quasi-clique search, for startup mining and each on-demand ε query (0 = unbounded)")
		epsMode   = fs.String("eps-mode", "exact", "on-demand ε computation: exact or sampled")
		sampleEps = fs.Float64("sample-eps", 0, "sampled mode: ε̂ half-width bound (0 = default 0.1)")
		sampleDel = fs.Float64("sample-delta", 0, "sampled mode: per-set failure probability (0 = default 0.05)")
		seed      = fs.Int64("seed", 0, "sampled mode: sampling seed")
		showVer   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("scpm-serve"))
		return 0
	}

	mode, err := scpm.ParseSnapshotMode(*snapMode)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 2
	}

	// One registry for the whole process: boot phase timings, boot
	// mining, the server's request/cache/remine instruments and the
	// runtime gauges all land on it, served from the main listener and
	// any -metrics-addr side listener.
	reg := scpm.NewMetricsRegistry()
	mm := obs.NewMiningMetrics(reg)
	bootMS := reg.GaugeVec("scpm_boot_ms", "Wall time of each boot phase in milliseconds.", "phase")
	if *metrics != "" {
		maddr, stopMetrics, err := obs.Start(*metrics, reg)
		if err != nil {
			fmt.Fprintln(stderr, "scpm-serve:", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(stdout, "scpm-serve: metrics on %s\n", maddr)
	}

	bootStart := time.Now()
	var (
		g  *scpm.Graph
		v3 *scpm.SnapshotBoot
	)
	if *snapshot != "" {
		switch v, err := scpm.SniffSnapshot(*snapshot); {
		case errors.Is(err, os.ErrNotExist):
			// Fresh boot: mine below and write the first v3 snapshot.
		case err != nil:
			fmt.Fprintln(stderr, "scpm-serve:", err)
			return 2
		case v == 3:
			t0 := time.Now()
			v3, err = scpm.OpenSnapshot(*snapshot, scpm.SnapshotOptions{Mode: mode})
			if err != nil {
				fmt.Fprintln(stderr, "scpm-serve:", err)
				return 1
			}
			// Views over the mapping serve for the whole process
			// lifetime; unmap only on the way out.
			defer v3.Close()
			bootMS.With("open_snapshot").Set(float64(time.Since(t0).Milliseconds()))
			reg.Gauge("scpm_snapshot_mapped_bytes",
				"Bytes of the v3 snapshot mapped or materialized at boot.").Set(float64(v3.MappedBytes()))
			if base := filepath.Base(*snapshot); v3.OSMapped() {
				reg.GaugeFunc("scpm_snapshot_resident_bytes",
					"Resident (faulted-in) bytes of the mapped snapshot, from /proc/self/smaps; -1 when unreadable.",
					func() float64 {
						n, ok := mmapio.ResidentBytes(base)
						if !ok {
							return -1
						}
						return float64(n)
					})
			}
			g = v3.Graph
			if *attrsPath != "" || *edgesPath != "" || *example != "" {
				fmt.Fprintln(stdout, "scpm-serve: v3 snapshot embeds its graph; -attrs/-edges/-example ignored")
			}
			// v == 2 falls through: the index loads below via the v2
			// loader, paired with the dataset files.
		}
	}
	if g == nil {
		t0 := time.Now()
		var resumed bool
		g, resumed, err = loadGraph(*attrsPath, *edgesPath, *example, *snapshot)
		if err != nil {
			fmt.Fprintln(stderr, "scpm-serve:", err)
			return 2
		}
		bootMS.With("graph_load").Set(float64(time.Since(t0).Milliseconds()))
		if resumed {
			fmt.Fprintf(stdout, "scpm-serve: resumed updated dataset from %s.{attrs,edges}\n", *snapshot)
		}
	}

	opts := []scpm.Option{
		scpm.WithSigmaMin(*sigmaMin),
		scpm.WithGamma(*gamma),
		scpm.WithMinSize(*minSize),
		scpm.WithEpsMin(*epsMin),
		scpm.WithDeltaMin(*deltaMin),
		scpm.WithTopK(*k),
		scpm.WithMinAttrs(*minAttrs),
		scpm.WithMaxAttrs(*maxAttrs),
		scpm.WithParallelism(*par),
		scpm.WithSearchBudget(*budget),
	}
	if !*noUpdates {
		// Record the search lattice so POST /updates re-mines
		// incrementally from the boot result.
		opts = append(opts, scpm.WithLiveUpdates())
	}
	switch {
	case *manifest != "":
		man, err := scpm.LoadShardManifest(*manifest)
		if err != nil {
			fmt.Fprintln(stderr, "scpm-serve:", err)
			return 2
		}
		k := 0
		if *shardSpec != "" {
			var n int
			if k, n, err = parseShard(*shardSpec); err != nil {
				fmt.Fprintln(stderr, "scpm-serve:", err)
				return 2
			}
			if n != man.Shards {
				fmt.Fprintf(stderr, "scpm-serve: -shard %s against a %d-shard manifest %s\n", *shardSpec, man.Shards, *manifest)
				return 2
			}
		} else if man.Shards != 1 {
			fmt.Fprintf(stderr, "scpm-serve: manifest %s plans %d shards; pick one with -shard k/%d\n", *manifest, man.Shards, man.Shards)
			return 2
		}
		opts = append(opts, scpm.WithShardManifest(man, k))
		if man.Level1 != nil {
			fmt.Fprintf(stdout, "scpm-serve: serving shard %d/%d from manifest %s (%d sealed level-1 verdicts)\n",
				k, man.Shards, *manifest, len(man.Level1.Verdicts))
		} else {
			fmt.Fprintf(stdout, "scpm-serve: serving shard %d/%d from manifest %s\n", k, man.Shards, *manifest)
		}
	case *shardSpec != "":
		k, n, err := parseShard(*shardSpec)
		if err != nil {
			fmt.Fprintln(stderr, "scpm-serve:", err)
			return 2
		}
		opts = append(opts, scpm.WithShard(k, n))
		fmt.Fprintf(stdout, "scpm-serve: serving shard %d/%d of the attribute-set lattice\n", k, n)
	}
	switch strings.ToLower(*epsMode) {
	case "exact":
	case "sampled":
		opts = append(opts, scpm.WithEpsilonSampling(*sampleEps, *sampleDel), scpm.WithSeed(*seed))
	default:
		fmt.Fprintf(stderr, "scpm-serve: unknown -eps-mode %q (want exact or sampled)\n", *epsMode)
		return 2
	}
	miner, err := scpm.NewMiner(opts...)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 2
	}

	// Bind and serve before the (possibly long) boot mine: /metrics and
	// /debug/pprof answer immediately — so a boot mine can be watched
	// and profiled — while every other path returns a JSON 503 until
	// the real handler swaps in. The "listening on" line is printed only
	// after the swap; it remains the readiness signal.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 1
	}
	boot := obs.NewMux(reg)
	boot.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"ready": false, "reason": "booting: mining or restoring the index"}`)
	})
	var root swapHandler
	root.Store(boot)
	srvCtx, cancelSrv := context.WithCancel(ctx)
	defer cancelSrv()
	serveDone := make(chan error, 1)
	go func() { serveDone <- server.Serve(srvCtx, ln, &root) }()

	idx, res, err := buildIndex(ctx, miner, g, v3, *snapshot, stdout, mm, bootMS)
	if err != nil {
		if scpm.IsCanceled(err) {
			return 130
		}
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 1
	}

	var cfg scpm.ServerConfig
	cfg.CacheSize = *cacheSize
	cfg.Metrics = reg
	if !*quiet {
		logger := slog.New(slog.NewTextHandler(stderr, nil))
		if *shardSpec != "" {
			logger = logger.With(slog.String("shard", *shardSpec))
		}
		cfg.Logger = logger
	}
	if !*noUpdates {
		cfg.Result = res
		// Snapshot write-behind: every published generation refreshes
		// the snapshot so a restart resumes from the updated results.
		snapshotPath := *snapshot
		cfg.OnSwap = func(e scpm.SwapEvent) {
			fmt.Fprintf(stdout, "scpm-serve: serving v%d (%d sets, %d reused / %d recomputed, remine %s)\n",
				e.Version, len(e.Result.Sets), e.Result.Stats.ReusedSets,
				e.Result.Stats.RecomputedSets, e.RemineDuration.Round(time.Millisecond))
			if snapshotPath == "" {
				return
			}
			// Write-behind: refresh the snapshot so a restart resumes
			// the updated data. v3 embeds the graph, so no dataset
			// sidecars are needed — even when this boot came from a v2
			// snapshot, the refresh upgrades it to v3 in place.
			if err := scpm.WriteSnapshot(snapshotPath, e.Graph, e.Index); err != nil {
				fmt.Fprintln(stderr, "scpm-serve: snapshot write-behind:", err)
				return
			}
			fmt.Fprintf(stdout, "scpm-serve: refreshed snapshot %s (v%d)\n", snapshotPath, e.Version)
		}
	}
	handler, err := scpm.NewServerHandler(idx, g, miner.Params(), cfg)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 2
	}

	bootMS.With("total").Set(float64(time.Since(bootStart).Milliseconds()))
	root.Store(handler)
	st := idx.Stats()
	fmt.Fprintf(stdout, "scpm-serve: serving %d sets, %d patterns\n", st.Sets, st.Patterns)
	fmt.Fprintf(stdout, "scpm-serve: listening on %s\n", ln.Addr())
	if err := <-serveDone; err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 1
	}
	fmt.Fprintln(stdout, "scpm-serve: shut down cleanly")
	return 0
}

// swapHandler dispatches to an atomically replaceable handler — the
// boot 503 handler until the index is ready, the real server after.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

// Store publishes h as the serving handler.
func (s *swapHandler) Store(h http.Handler) { s.h.Store(&h) }

// ServeHTTP dispatches to the current handler.
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// parseShard parses the -shard "k/N" spec.
func parseShard(spec string) (k, n int, err error) {
	if _, err := fmt.Sscanf(spec, "%d/%d", &k, &n); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want k/N, e.g. 0/2)", spec)
	}
	if n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("bad -shard %q: shard index must be in 0…%d", spec, n-1)
	}
	return k, n, nil
}

// loadGraph resolves the dataset selection: two files, or a built-in
// example. When a snapshot with live-update dataset sidecars exists
// (written by the update path's write-behind), the sidecars win — they
// are the updated data the snapshot was mined from; the second return
// reports that resumption.
func loadGraph(attrsPath, edgesPath, example, snapshot string) (*scpm.Graph, bool, error) {
	if example != "" && (attrsPath != "" || edgesPath != "") {
		return nil, false, errors.New("-example cannot be combined with -attrs/-edges")
	}
	if example != "" && example != "paper" {
		return nil, false, fmt.Errorf("unknown -example %q (want paper)", example)
	}
	if example == "" && (attrsPath == "" || edgesPath == "") {
		return nil, false, errors.New("-attrs and -edges are required (or use -example paper)")
	}
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			g, err := readDatasetFiles(snapshot+".attrs", snapshot+".edges")
			if err == nil {
				return g, true, nil
			}
			if !errors.Is(err, os.ErrNotExist) {
				return nil, false, fmt.Errorf("resuming updated dataset: %w", err)
			}
		}
	}
	if example != "" {
		return scpm.PaperExample(), false, nil
	}
	g, err := readDatasetFiles(attrsPath, edgesPath)
	return g, false, err
}

// readDatasetFiles opens and parses one attribute/edge file pair.
func readDatasetFiles(attrsPath, edgesPath string) (*scpm.Graph, error) {
	af, err := os.Open(attrsPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return scpm.ReadDataset(af, ef)
}

// buildIndex restores the snapshot when it exists, otherwise mines the
// graph and (when a snapshot path is configured) persists the result
// as a v3 snapshot for the next boot. It also returns the mining
// result backing the index — reconstructed from the snapshot tables
// when one was restored — which is what the live-update path re-mines
// from. A boot mine streams its progress into mm, so /metrics shows it
// advancing; phase wall times land on bootMS.
func buildIndex(ctx context.Context, miner *scpm.Miner, g *scpm.Graph, v3 *scpm.SnapshotBoot, snapshot string, stdout io.Writer, mm *obs.MiningMetrics, bootMS *obs.GaugeVec) (*scpm.Index, *scpm.Result, error) {
	if v3 != nil {
		// The graph and index both came out of the same v3 file, so the
		// dataset-shape cross-check of the v2 path is true by
		// construction.
		idx := v3.Index
		mapped := "materialized"
		if v3.OSMapped() {
			mapped = "mapped"
		}
		fmt.Fprintf(stdout, "scpm-serve: restored graph+index from v3 snapshot %s (%s, %d bytes)\n",
			snapshot, mapped, v3.MappedBytes())
		fmt.Fprintln(stdout, "scpm-serve: indexed results reflect the snapshot's mining run; current mining flags apply to on-demand /epsilon only")
		// A snapshot carries no search lattice, so the first update
		// triggers a full (rather than incremental) remine; later ones
		// chain incrementally.
		res := &scpm.Result{Sets: idx.Sets(), Patterns: idx.Patterns(), Stats: idx.MiningStats()}
		return idx, res, nil
	}
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			defer f.Close()
			idx, err := scpm.LoadIndex(f)
			if err != nil {
				return nil, nil, fmt.Errorf("loading snapshot %s: %w", snapshot, err)
			}
			// A snapshot from a different dataset would serve indexed
			// answers about one graph while computing on-demand answers
			// against another; refuse the pairing outright.
			sv, se, sa := idx.DatasetShape()
			if sv != g.NumVertices() || se != g.NumEdges() || sa != g.NumAttributes() {
				return nil, nil, fmt.Errorf(
					"snapshot %s was mined from a different dataset (|V|=%d |E|=%d |A|=%d, loaded graph has |V|=%d |E|=%d |A|=%d); delete it to re-mine",
					snapshot, sv, se, sa, g.NumVertices(), g.NumEdges(), g.NumAttributes())
			}
			fmt.Fprintf(stdout, "scpm-serve: restored index from %s\n", snapshot)
			fmt.Fprintln(stdout, "scpm-serve: indexed results reflect the snapshot's mining run; current mining flags apply to on-demand /epsilon only")
			// A snapshot carries no search lattice, so the first update
			// triggers a full (rather than incremental) remine; later
			// ones chain incrementally.
			res := &scpm.Result{Sets: idx.Sets(), Patterns: idx.Patterns(), Stats: idx.MiningStats()}
			return idx, res, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, nil, err
		}
	}
	start := time.Now()
	mm.Active.Set(1)
	res, err := miner.MineWithProgress(ctx, g, scpm.SinkFuncs{Progress: func(st scpm.Stats) {
		mm.ObserveProgress(st.SetsEvaluated, st.SetsEmitted, st.PatternsEmitted,
			st.SearchNodes, st.SampledVertices, st.ReusedSets, st.RecomputedSets,
			st.ReusedVerdicts)
	}})
	mm.Active.Set(0)
	if err != nil {
		return nil, nil, err
	}
	bootMS.With("mine").Set(float64(time.Since(start).Milliseconds()))
	fmt.Fprintf(stdout, "scpm-serve: mined %d sets, %d patterns in %s\n",
		len(res.Sets), len(res.Patterns), res.Stats.Duration.Round(time.Millisecond))
	t0 := time.Now()
	idx := scpm.NewIndex(res, g)
	bootMS.With("index_build").Set(float64(time.Since(t0).Milliseconds()))
	fmt.Fprintf(stdout, "scpm-serve: index built in %s\n", time.Since(start).Round(time.Millisecond))
	if snapshot != "" {
		if err := scpm.WriteSnapshot(snapshot, g, idx); err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(stdout, "scpm-serve: wrote v3 snapshot %s\n", snapshot)
	}
	return idx, res, nil
}
