// Command scpm-serve serves a mined pattern index over HTTP.
//
// On startup it either restores a binary index snapshot or mines the
// dataset with the configured parameters (reusing the scpm.Miner
// pipeline), then exposes the result through read-only JSON/NDJSON
// endpoints — /sets, /sets/{id}, /patterns, /vertices/{v}, /stats,
// /healthz — plus /epsilon, which answers structural-correlation
// queries for any attribute set: indexed sets come straight from the
// index, everything else is computed on demand by the ε-estimation
// layer (exact or sampled, per -eps-mode) behind a singleflight-
// deduplicated LRU cache, so repeated hot queries cost a map lookup.
//
// Usage:
//
//	scpm-serve -attrs graph.attrs -edges graph.edges \
//	           -sigma 100 -gamma 0.5 -minsize 5 -eps 0.1 -k 5 \
//	           -addr :8080 -snapshot index.scpmidx
//
//	scpm-serve -example paper -sigma 3 -gamma 0.6 -minsize 4 -eps 0.5 -k 10
//
// With -snapshot the index is loaded from the file when it exists;
// otherwise the dataset is mined and the snapshot written there, so the
// second boot skips mining entirely. The process serves until SIGINT/
// SIGTERM, then shuts down gracefully (in-flight requests get a bounded
// grace period). Requests are logged to stderr unless -quiet is set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	scpm "github.com/scpm/scpm"
	"github.com/scpm/scpm/internal/server"
	"github.com/scpm/scpm/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scpm-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		attrsPath = fs.String("attrs", "", "vertex attribute file")
		edgesPath = fs.String("edges", "", "edge list file")
		example   = fs.String("example", "", `serve a built-in dataset instead of files ("paper": the 11-vertex worked example)`)
		snapshot  = fs.String("snapshot", "", "index snapshot path: loaded when present, written after mining otherwise")
		addr      = fs.String("addr", ":8080", "listen address")
		cacheSize = fs.Int("cache", server.DefaultCacheSize, "epsilon cache capacity (entries)")
		quiet     = fs.Bool("quiet", false, "disable request logging")
		sigmaMin  = fs.Int("sigma", 100, "minimum support σmin")
		gamma     = fs.Float64("gamma", 0.5, "quasi-clique density γmin (0,1]")
		minSize   = fs.Int("minsize", 5, "minimum quasi-clique size")
		epsMin    = fs.Float64("eps", 0, "minimum structural correlation εmin")
		deltaMin  = fs.Float64("delta", 0, "minimum normalized structural correlation δmin")
		k         = fs.Int("k", 5, "top-k patterns per attribute set (0 = sets only)")
		minAttrs  = fs.Int("minattrs", 1, "report only sets with ≥ this many attributes")
		maxAttrs  = fs.Int("maxattrs", 0, "bound attribute-set size (0 = unbounded)")
		par       = fs.Int("parallelism", runtime.NumCPU(), "mining worker goroutines")
		budget    = fs.Int64("budget", 0, "search-node budget per quasi-clique search, for startup mining and each on-demand ε query (0 = unbounded)")
		epsMode   = fs.String("eps-mode", "exact", "on-demand ε computation: exact or sampled")
		sampleEps = fs.Float64("sample-eps", 0, "sampled mode: ε̂ half-width bound (0 = default 0.1)")
		sampleDel = fs.Float64("sample-delta", 0, "sampled mode: per-set failure probability (0 = default 0.05)")
		seed      = fs.Int64("seed", 0, "sampled mode: sampling seed")
		showVer   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("scpm-serve"))
		return 0
	}

	g, err := loadGraph(*attrsPath, *edgesPath, *example)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 2
	}

	opts := []scpm.Option{
		scpm.WithSigmaMin(*sigmaMin),
		scpm.WithGamma(*gamma),
		scpm.WithMinSize(*minSize),
		scpm.WithEpsMin(*epsMin),
		scpm.WithDeltaMin(*deltaMin),
		scpm.WithTopK(*k),
		scpm.WithMinAttrs(*minAttrs),
		scpm.WithMaxAttrs(*maxAttrs),
		scpm.WithParallelism(*par),
		scpm.WithSearchBudget(*budget),
	}
	switch strings.ToLower(*epsMode) {
	case "exact":
	case "sampled":
		opts = append(opts, scpm.WithEpsilonSampling(*sampleEps, *sampleDel), scpm.WithSeed(*seed))
	default:
		fmt.Fprintf(stderr, "scpm-serve: unknown -eps-mode %q (want exact or sampled)\n", *epsMode)
		return 2
	}
	miner, err := scpm.NewMiner(opts...)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 2
	}

	idx, err := buildIndex(ctx, miner, g, *snapshot, stdout)
	if err != nil {
		if scpm.IsCanceled(err) {
			return 130
		}
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 1
	}

	var cfg scpm.ServerConfig
	cfg.CacheSize = *cacheSize
	if !*quiet {
		cfg.Logger = log.New(stderr, "scpm-serve: ", log.LstdFlags)
	}
	handler, err := scpm.NewServerHandler(idx, g, miner.Params(), cfg)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 2
	}

	// Listen before announcing, so "listening on" is a reliable
	// readiness signal (and resolves :0 to the bound port).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 1
	}
	st := idx.Stats()
	fmt.Fprintf(stdout, "scpm-serve: serving %d sets, %d patterns\n", st.Sets, st.Patterns)
	fmt.Fprintf(stdout, "scpm-serve: listening on %s\n", ln.Addr())
	if err := server.Serve(ctx, ln, handler); err != nil {
		fmt.Fprintln(stderr, "scpm-serve:", err)
		return 1
	}
	fmt.Fprintln(stdout, "scpm-serve: shut down cleanly")
	return 0
}

// loadGraph resolves the dataset selection: two files, or a built-in
// example.
func loadGraph(attrsPath, edgesPath, example string) (*scpm.Graph, error) {
	switch {
	case example != "":
		if attrsPath != "" || edgesPath != "" {
			return nil, errors.New("-example cannot be combined with -attrs/-edges")
		}
		if example != "paper" {
			return nil, fmt.Errorf("unknown -example %q (want paper)", example)
		}
		return scpm.PaperExample(), nil
	case attrsPath == "" || edgesPath == "":
		return nil, errors.New("-attrs and -edges are required (or use -example paper)")
	}
	af, err := os.Open(attrsPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return scpm.ReadDataset(af, ef)
}

// buildIndex restores the snapshot when it exists, otherwise mines the
// graph and (when a snapshot path is configured) persists the result
// for the next boot.
func buildIndex(ctx context.Context, miner *scpm.Miner, g *scpm.Graph, snapshot string, stdout io.Writer) (*scpm.Index, error) {
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			defer f.Close()
			idx, err := scpm.LoadIndex(f)
			if err != nil {
				return nil, fmt.Errorf("loading snapshot %s: %w", snapshot, err)
			}
			// A snapshot from a different dataset would serve indexed
			// answers about one graph while computing on-demand answers
			// against another; refuse the pairing outright.
			sv, se, sa := idx.DatasetShape()
			if sv != g.NumVertices() || se != g.NumEdges() || sa != g.NumAttributes() {
				return nil, fmt.Errorf(
					"snapshot %s was mined from a different dataset (|V|=%d |E|=%d |A|=%d, loaded graph has |V|=%d |E|=%d |A|=%d); delete it to re-mine",
					snapshot, sv, se, sa, g.NumVertices(), g.NumEdges(), g.NumAttributes())
			}
			fmt.Fprintf(stdout, "scpm-serve: restored index from %s\n", snapshot)
			fmt.Fprintln(stdout, "scpm-serve: indexed results reflect the snapshot's mining run; current mining flags apply to on-demand /epsilon only")
			return idx, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	start := time.Now()
	res, err := miner.Mine(ctx, g)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "scpm-serve: mined %d sets, %d patterns in %s\n",
		len(res.Sets), len(res.Patterns), res.Stats.Duration.Round(time.Millisecond))
	idx := scpm.NewIndex(res, g)
	fmt.Fprintf(stdout, "scpm-serve: index built in %s\n", time.Since(start).Round(time.Millisecond))
	if snapshot != "" {
		if err := saveSnapshot(idx, snapshot); err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "scpm-serve: wrote snapshot %s\n", snapshot)
	}
	return idx, nil
}

// saveSnapshot writes the index atomically (tmp file + rename), so a
// crash mid-write never leaves a truncated snapshot for the next boot.
func saveSnapshot(idx *scpm.Index, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := idx.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
