package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	scpm "github.com/scpm/scpm"
)

// notifyingWriter forwards to an underlying buffer and signals each
// write, so tests can wait for the "listening on" readiness line.
type notifyingWriter struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	notify chan struct{}
}

func (w *notifyingWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	n, err := w.buf.Write(b)
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
	return n, err
}

func (w *notifyingWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServe runs the binary's run() with the given extra args on an
// ephemeral port, waits until it listens, and returns its base URL plus
// a shutdown func that cancels and waits for the exit code.
func startServe(t *testing.T, args ...string) (string, *notifyingWriter, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout := &notifyingWriter{notify: make(chan struct{}, 1)}
	var stderr bytes.Buffer
	code := make(chan int, 1)
	full := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)
	go func() { code <- run(ctx, full, stdout, &stderr) }()

	deadline := time.After(30 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case <-stdout.notify:
		case c := <-code:
			t.Fatalf("server exited early with code %d\nstdout: %s\nstderr: %s", c, stdout.String(), stderr.String())
		case <-deadline:
			t.Fatalf("server never listened\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
		}
	}
	return "http://" + addr, stdout, func() int {
		cancel()
		select {
		case c := <-code:
			return c
		case <-time.After(30 * time.Second):
			t.Fatal("server did not shut down")
			return -1
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", url, err, body)
		}
	}
}

var paperArgs = []string{"-example", "paper", "-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5", "-k", "10"}

func TestServeEndToEnd(t *testing.T) {
	base, _, shutdown := startServe(t, paperArgs...)

	var health struct {
		Status   string `json:"status"`
		Sets     int    `json:"sets"`
		Patterns int    `json:"patterns"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" || health.Sets != 3 || health.Patterns != 7 {
		t.Fatalf("healthz = %+v", health)
	}

	var sets struct {
		Total int `json:"total"`
	}
	getJSON(t, base+"/sets?rank=epsilon", &sets)
	if sets.Total != 3 {
		t.Fatalf("sets = %+v", sets)
	}

	var eps struct {
		Source  string  `json:"source"`
		Epsilon float64 `json:"epsilon"`
	}
	getJSON(t, base+"/epsilon?attrs=A,B", &eps)
	if eps.Source != "index" || eps.Epsilon != 1 {
		t.Fatalf("epsilon A,B = %+v", eps)
	}
	// {C} is not in the mined result: the on-demand path computes, the
	// repeat serves from cache.
	getJSON(t, base+"/epsilon?attrs=C", &eps)
	if eps.Source != "computed" {
		t.Fatalf("epsilon C = %+v", eps)
	}
	getJSON(t, base+"/epsilon?attrs=C", &eps)
	if eps.Source != "cache" {
		t.Fatalf("epsilon C repeat = %+v", eps)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestServeSnapshotRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "paper.scpmidx")

	// First boot mines and writes the snapshot.
	_, stdout, shutdown := startServe(t, append([]string{"-snapshot", snap}, paperArgs...)...)
	if code := shutdown(); code != 0 {
		t.Fatalf("first boot exit %d", code)
	}
	if !strings.Contains(stdout.String(), "wrote v3 snapshot") {
		t.Fatalf("snapshot not written:\n%s", stdout.String())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatal(err)
	}

	// Second boot restores it (and still answers queries). A v3
	// snapshot embeds the graph, so the dataset flags are ignored.
	base, stdout2, shutdown2 := startServe(t, append([]string{"-snapshot", snap}, paperArgs...)...)
	if !strings.Contains(stdout2.String(), "restored graph+index from v3 snapshot") {
		t.Fatalf("snapshot not restored:\n%s", stdout2.String())
	}
	if !strings.Contains(stdout2.String(), "-attrs/-edges/-example ignored") {
		t.Fatalf("dataset-flags-ignored note missing:\n%s", stdout2.String())
	}
	var health struct {
		Sets int `json:"sets"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Sets != 3 {
		t.Fatalf("restored healthz = %+v", health)
	}
	if code := shutdown2(); code != 0 {
		t.Fatalf("second boot exit %d", code)
	}
}

// TestServeSnapshotDatasetMismatch pairs a v2 (index-only) snapshot
// mined from the paper example with a different dataset: the boot must
// refuse instead of serving inconsistent answers. (A v3 snapshot embeds
// its graph, so the mismatch is impossible there by construction; this
// pins the v2 compat path.)
func TestServeSnapshotDatasetMismatch(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "paper.scpmidx")
	writeV2Snapshot(t, snap)

	// A different dataset: the example graph minus one edge.
	dir := t.TempDir()
	attrs, edges := filepath.Join(dir, "g.attrs"), filepath.Join(dir, "g.edges")
	var ab, eb bytes.Buffer
	if err := scpm.WriteDataset(scpm.PaperExample(), &ab, &eb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(eb.String()), "\n")
	if err := os.WriteFile(attrs, ab.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(edges, []byte(strings.Join(lines[:len(lines)-1], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	args := []string{"-attrs", attrs, "-edges", edges, "-snapshot", snap,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5", "-k", "10"}
	if code := run(context.Background(), args, &stdout, &stderr); code != 1 {
		t.Fatalf("mismatched snapshot boot: exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "different dataset") {
		t.Fatalf("mismatch diagnosis missing:\n%s", stderr.String())
	}
}

// writeV2Snapshot mines the paper example in-process and saves a
// legacy v2 (index-only) snapshot at path.
func writeV2Snapshot(t *testing.T, path string) {
	t.Helper()
	m, err := scpm.NewMiner(
		scpm.WithSigmaMin(3), scpm.WithGamma(0.6), scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5), scpm.WithTopK(10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Mine(context.Background(), scpm.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	idx := scpm.NewIndex(res, scpm.PaperExample())
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeV2SnapshotCompat boots a legacy v2 snapshot paired with its
// matching dataset: the old loader still serves it.
func TestServeV2SnapshotCompat(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "paper.scpmidx")
	writeV2Snapshot(t, snap)
	base, stdout, shutdown := startServe(t, append([]string{"-snapshot", snap}, paperArgs...)...)
	if !strings.Contains(stdout.String(), "restored index from") {
		t.Fatalf("v2 snapshot not restored:\n%s", stdout.String())
	}
	var health struct {
		Sets int `json:"sets"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Sets != 3 {
		t.Fatalf("v2 healthz = %+v", health)
	}
	if code := shutdown(); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

// TestServeSnapshotModes boots one v3 snapshot in both explicit modes
// — no dataset flags at all — and requires every response byte to
// match: mmap and materialize must be observationally identical.
func TestServeSnapshotModes(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "paper.scpmidx")
	_, _, shutdown := startServe(t, append([]string{"-snapshot", snap}, paperArgs...)...)
	if code := shutdown(); code != 0 {
		t.Fatalf("mining boot exit %d", code)
	}

	// The same query sequence per boot; /epsilon?attrs=C twice checks
	// the computed and the cached answer both match across modes.
	paths := []string{
		"/sets?rank=epsilon", "/sets?attrs=A", "/patterns", "/healthz",
		"/epsilon?attrs=A,B", "/epsilon?attrs=C", "/epsilon?attrs=C",
		"/vertices/1", "/stats",
	}
	fetch := func(mode string) []string {
		base, stdout, shutdown := startServe(t, "-snapshot", snap, "-snapshot-mode", mode, "-no-updates")
		defer shutdown()
		if !strings.Contains(stdout.String(), "restored graph+index from v3 snapshot") {
			t.Fatalf("mode %s did not boot from the snapshot:\n%s", mode, stdout.String())
		}
		bodies := make([]string, len(paths))
		for i, p := range paths {
			resp, err := http.Get(base + p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mode %s: GET %s = %d: %s", mode, p, resp.StatusCode, b)
			}
			bodies[i] = string(b)
		}
		return bodies
	}

	mmap := fetch("mmap")
	mat := fetch("materialize")
	for i, p := range paths {
		if mmap[i] != mat[i] {
			t.Fatalf("GET %s differs between modes:\nmmap:        %s\nmaterialize: %s", p, mmap[i], mat[i])
		}
	}
}

// TestServeLiveUpdates drives the dynamic path over real HTTP: POST an
// update batch, wait for the background remine to swap, check the
// version endpoints and the re-served set, then restart from the
// write-behind snapshot and confirm the updated data survived.
func TestServeLiveUpdates(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "paper.scpmidx")
	base, stdout, shutdown := startServe(t, append([]string{"-snapshot", snap}, paperArgs...)...)

	var ver struct {
		Served  float64 `json:"served_version"`
		Data    float64 `json:"data_version"`
		Enabled bool    `json:"updates_enabled"`
	}
	getJSON(t, base+"/version", &ver)
	if !ver.Enabled || ver.Served != 1 || ver.Data != 1 {
		t.Fatalf("initial /version = %+v", ver)
	}

	var before struct {
		Sets []struct {
			ID      string `json:"id"`
			Support int    `json:"support"`
		} `json:"sets"`
	}
	getJSON(t, base+"/sets?attrs=A", &before)
	if len(before.Sets) != 1 {
		t.Fatalf("sets?attrs=A = %+v", before.Sets)
	}

	body := `{"op":"add_vertex","vertex":"12","attrs":["A"]}` + "\n" +
		`{"op":"add_edge","u":"12","v":"1"}` + "\n"
	resp, err := http.Post(base+"/updates", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /updates = %d: %s", resp.StatusCode, raw)
	}

	deadline := time.After(30 * time.Second)
	for {
		getJSON(t, base+"/version", &ver)
		if ver.Served == 2 && ver.Data == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("served version never reached the data head: %+v", ver)
		case <-time.After(50 * time.Millisecond):
		}
	}

	var after struct {
		Sets []struct {
			ID      string `json:"id"`
			Support int    `json:"support"`
		} `json:"sets"`
	}
	getJSON(t, base+"/sets?attrs=A", &after)
	if len(after.Sets) != 1 || after.Sets[0].Support != before.Sets[0].Support+1 {
		t.Fatalf("updated set not re-served: %+v vs %+v", after.Sets, before.Sets)
	}
	if after.Sets[0].ID != before.Sets[0].ID {
		t.Fatal("stable id changed across the update")
	}

	// Wait for the write-behind to land before shutting down (the swap
	// publishes before the snapshot refresh is logged). v3 embeds the
	// updated graph in the snapshot itself — no dataset sidecars.
	refreshDeadline := time.After(30 * time.Second)
	for !strings.Contains(stdout.String(), "refreshed snapshot") {
		select {
		case <-refreshDeadline:
			t.Fatal("snapshot write-behind never ran")
		case <-time.After(50 * time.Millisecond):
		}
	}
	if code := shutdown(); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if _, err := os.Stat(snap + ".attrs"); err == nil {
		t.Fatal("v3 write-behind left dataset sidecars")
	}

	// Restart: the boot must restore the UPDATED graph+index from the
	// refreshed v3 snapshot and serve the post-update support at once.
	base2, stdout2, shutdown2 := startServe(t, append([]string{"-snapshot", snap}, paperArgs...)...)
	if !strings.Contains(stdout2.String(), "restored graph+index from v3 snapshot") {
		t.Fatalf("restart did not restore the refreshed snapshot:\n%s", stdout2.String())
	}
	var again struct {
		Sets []struct {
			Support int `json:"support"`
		} `json:"sets"`
	}
	getJSON(t, base2+"/sets?attrs=A", &again)
	if len(again.Sets) != 1 || again.Sets[0].Support != before.Sets[0].Support+1 {
		t.Fatalf("restart lost the update: %+v", again.Sets)
	}
	if code := shutdown2(); code != 0 {
		t.Fatalf("restart exit %d", code)
	}
}

// TestServeNoUpdatesFlag pins the -no-updates escape hatch.
func TestServeNoUpdatesFlag(t *testing.T) {
	base, _, shutdown := startServe(t, append([]string{"-no-updates"}, paperArgs...)...)
	resp, err := http.Post(base+"/updates", "application/x-ndjson",
		strings.NewReader(`{"op":"add_vertex","vertex":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("POST /updates with -no-updates = %d", resp.StatusCode)
	}
	if code := shutdown(); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

// TestServeParallelFlag: the canonical worker-count flag works and the
// long-deprecated -parallelism alias (removed with the sharding flags)
// is rejected.
func TestServeParallelFlag(t *testing.T) {
	base, _, shutdown := startServe(t, append([]string{"-parallel", "2"}, paperArgs...)...)
	var health struct {
		Sets int `json:"sets"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Sets != 3 {
		t.Fatalf("healthz = %+v", health)
	}
	if code := shutdown(); code != 0 {
		t.Fatalf("exit %d", code)
	}

	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), append([]string{"-parallelism", "2"}, paperArgs...), &stdout, &stderr); code != 2 {
		t.Fatalf("-parallelism accepted (exit %d), want flag error", code)
	}
}

// TestServeSharded boots every shard of a 2-way split and checks the
// slices are disjoint and together cover the unsharded index.
func TestServeSharded(t *testing.T) {
	type setsPayload struct {
		Sets []struct {
			ID string `json:"id"`
		} `json:"sets"`
		Total int `json:"total"`
	}
	var whole setsPayload
	base, _, shutdown := startServe(t, paperArgs...)
	getJSON(t, base+"/sets", &whole)
	if code := shutdown(); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if whole.Total == 0 {
		t.Fatal("unsharded serve has no sets")
	}

	seen := make(map[string]int)
	shardTotal := 0
	for k := 0; k < 2; k++ {
		base, _, shutdown := startServe(t, append([]string{"-shard", fmt.Sprintf("%d/2", k)}, paperArgs...)...)
		var slice setsPayload
		getJSON(t, base+"/sets", &slice)
		shardTotal += slice.Total
		for _, s := range slice.Sets {
			seen[s.ID]++
		}
		if code := shutdown(); code != 0 {
			t.Fatalf("shard %d: exit %d", k, code)
		}
	}
	if shardTotal != whole.Total {
		t.Fatalf("shards serve %d sets, unsharded serves %d", shardTotal, whole.Total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("set %s served by %d shards", id, n)
		}
	}

	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), append([]string{"-shard", "2/2"}, paperArgs...), &stdout, &stderr); code != 2 {
		t.Fatalf("-shard 2/2 accepted (exit %d)", code)
	}
	if code := run(context.Background(), append([]string{"-shard", "bogus"}, paperArgs...), &stdout, &stderr); code != 2 {
		t.Fatalf("-shard bogus accepted (exit %d)", code)
	}
}

func TestServeVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "scpm-serve") {
		t.Fatalf("version output %q", stdout.String())
	}
}

func TestServeFlagErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // no dataset
		{"-example", "nope"},                 // unknown example
		{"-example", "paper", "-attrs", "x"}, // conflicting selection
		{"-example", "paper", "-eps-mode", "bogus"},
		{"-example", "paper", "-gamma", "7"}, // invalid params
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
			t.Fatalf("args %v: exit %d, want 2\nstderr: %s", args, code, stderr.String())
		}
	}
}

func TestServeRequestLogging(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &notifyingWriter{notify: make(chan struct{}, 1)}
	var stderr bytes.Buffer
	code := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, paperArgs...) // no -quiet
	go func() { code <- run(ctx, args, stdout, &stderr) }()
	deadline := time.After(30 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case <-stdout.notify:
		case <-deadline:
			t.Fatalf("never listened: %s", stderr.String())
		}
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	<-code
	// Structured key=value access log: one line per request carrying the
	// method, path, status, size, duration and serving generation.
	for _, want := range []string{"msg=request", "method=GET", "path=/healthz", "status=200", "bytes=", "duration=", "generation="} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("request log missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestServeMetricsAndReadyz: the main listener serves the metrics
// exposition, the pprof index and the readiness probe, and
// -metrics-addr opens a second listener carrying the same registry.
func TestServeMetricsAndReadyz(t *testing.T) {
	base, stdout, shutdown := startServe(t, append([]string{"-metrics-addr", "127.0.0.1:0"}, paperArgs...)...)
	defer shutdown()

	var ready struct {
		Ready         bool   `json:"ready"`
		ServedVersion uint64 `json:"served_version"`
	}
	getJSON(t, base+"/readyz", &ready)
	if !ready.Ready || ready.ServedVersion != 1 {
		t.Fatalf("readyz = %+v", ready)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", resp.StatusCode, body)
	}
	// The serving series, the boot-time mining gauges and the runtime
	// gauges all land in the one process-wide registry.
	for _, want := range []string{
		`scpm_http_requests_total{endpoint="/readyz",class="2xx"} 1`,
		"scpm_mining_sets_evaluated",
		"scpm_go_goroutines",
		"scpm_ready 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline = %d", resp.StatusCode)
	}

	// The -metrics-addr side listener scrapes the same registry.
	m := regexp.MustCompile(`metrics on (\S+)`).FindStringSubmatch(stdout.String())
	if m == nil {
		t.Fatalf("no metrics-addr announcement in stdout:\n%s", stdout.String())
	}
	resp, err = http.Get("http://" + m[1] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	side, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("side listener /metrics = %d", resp.StatusCode)
	}
	if !strings.Contains(string(side), "scpm_http_requests_total") {
		t.Fatalf("side listener exposition missing serving series:\n%s", side)
	}
}
