package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	scpm "github.com/scpm/scpm"
)

// notifyingWriter forwards to an underlying buffer and signals each
// write, so tests can wait for the "listening on" readiness line.
type notifyingWriter struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	notify chan struct{}
}

func (w *notifyingWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	n, err := w.buf.Write(b)
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
	return n, err
}

func (w *notifyingWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServe runs the binary's run() with the given extra args on an
// ephemeral port, waits until it listens, and returns its base URL plus
// a shutdown func that cancels and waits for the exit code.
func startServe(t *testing.T, args ...string) (string, *notifyingWriter, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout := &notifyingWriter{notify: make(chan struct{}, 1)}
	var stderr bytes.Buffer
	code := make(chan int, 1)
	full := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)
	go func() { code <- run(ctx, full, stdout, &stderr) }()

	deadline := time.After(30 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case <-stdout.notify:
		case c := <-code:
			t.Fatalf("server exited early with code %d\nstdout: %s\nstderr: %s", c, stdout.String(), stderr.String())
		case <-deadline:
			t.Fatalf("server never listened\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
		}
	}
	return "http://" + addr, stdout, func() int {
		cancel()
		select {
		case c := <-code:
			return c
		case <-time.After(30 * time.Second):
			t.Fatal("server did not shut down")
			return -1
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", url, err, body)
		}
	}
}

var paperArgs = []string{"-example", "paper", "-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5", "-k", "10"}

func TestServeEndToEnd(t *testing.T) {
	base, _, shutdown := startServe(t, paperArgs...)

	var health struct {
		Status   string `json:"status"`
		Sets     int    `json:"sets"`
		Patterns int    `json:"patterns"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" || health.Sets != 3 || health.Patterns != 7 {
		t.Fatalf("healthz = %+v", health)
	}

	var sets struct {
		Total int `json:"total"`
	}
	getJSON(t, base+"/sets?rank=epsilon", &sets)
	if sets.Total != 3 {
		t.Fatalf("sets = %+v", sets)
	}

	var eps struct {
		Source  string  `json:"source"`
		Epsilon float64 `json:"epsilon"`
	}
	getJSON(t, base+"/epsilon?attrs=A,B", &eps)
	if eps.Source != "index" || eps.Epsilon != 1 {
		t.Fatalf("epsilon A,B = %+v", eps)
	}
	// {C} is not in the mined result: the on-demand path computes, the
	// repeat serves from cache.
	getJSON(t, base+"/epsilon?attrs=C", &eps)
	if eps.Source != "computed" {
		t.Fatalf("epsilon C = %+v", eps)
	}
	getJSON(t, base+"/epsilon?attrs=C", &eps)
	if eps.Source != "cache" {
		t.Fatalf("epsilon C repeat = %+v", eps)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestServeSnapshotRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "paper.scpmidx")

	// First boot mines and writes the snapshot.
	_, stdout, shutdown := startServe(t, append([]string{"-snapshot", snap}, paperArgs...)...)
	if code := shutdown(); code != 0 {
		t.Fatalf("first boot exit %d", code)
	}
	if !strings.Contains(stdout.String(), "wrote snapshot") {
		t.Fatalf("snapshot not written:\n%s", stdout.String())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatal(err)
	}

	// Second boot restores it (and still answers queries).
	base, stdout2, shutdown2 := startServe(t, append([]string{"-snapshot", snap}, paperArgs...)...)
	if !strings.Contains(stdout2.String(), "restored index") {
		t.Fatalf("snapshot not restored:\n%s", stdout2.String())
	}
	var health struct {
		Sets int `json:"sets"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Sets != 3 {
		t.Fatalf("restored healthz = %+v", health)
	}
	if code := shutdown2(); code != 0 {
		t.Fatalf("second boot exit %d", code)
	}
}

// TestServeSnapshotDatasetMismatch pairs a snapshot mined from the
// paper example with a different dataset: the boot must refuse instead
// of serving inconsistent answers.
func TestServeSnapshotDatasetMismatch(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "paper.scpmidx")
	_, _, shutdown := startServe(t, append([]string{"-snapshot", snap}, paperArgs...)...)
	if code := shutdown(); code != 0 {
		t.Fatalf("first boot exit %d", code)
	}

	// A different dataset: the example graph minus one edge.
	dir := t.TempDir()
	attrs, edges := filepath.Join(dir, "g.attrs"), filepath.Join(dir, "g.edges")
	var ab, eb bytes.Buffer
	if err := scpm.WriteDataset(scpm.PaperExample(), &ab, &eb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(eb.String()), "\n")
	if err := os.WriteFile(attrs, ab.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(edges, []byte(strings.Join(lines[:len(lines)-1], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	args := []string{"-attrs", attrs, "-edges", edges, "-snapshot", snap,
		"-sigma", "3", "-gamma", "0.6", "-minsize", "4", "-eps", "0.5", "-k", "10"}
	if code := run(context.Background(), args, &stdout, &stderr); code != 1 {
		t.Fatalf("mismatched snapshot boot: exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "different dataset") {
		t.Fatalf("mismatch diagnosis missing:\n%s", stderr.String())
	}
}

func TestServeVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "scpm-serve") {
		t.Fatalf("version output %q", stdout.String())
	}
}

func TestServeFlagErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // no dataset
		{"-example", "nope"},                 // unknown example
		{"-example", "paper", "-attrs", "x"}, // conflicting selection
		{"-example", "paper", "-eps-mode", "bogus"},
		{"-example", "paper", "-gamma", "7"}, // invalid params
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
			t.Fatalf("args %v: exit %d, want 2\nstderr: %s", args, code, stderr.String())
		}
	}
}

func TestServeRequestLogging(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &notifyingWriter{notify: make(chan struct{}, 1)}
	var stderr bytes.Buffer
	code := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, paperArgs...) // no -quiet
	go func() { code <- run(ctx, args, stdout, &stderr) }()
	deadline := time.After(30 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case <-stdout.notify:
		case <-deadline:
			t.Fatalf("never listened: %s", stderr.String())
		}
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	<-code
	if !strings.Contains(stderr.String(), "GET /healthz 200") {
		t.Fatalf("request log missing:\n%s", stderr.String())
	}
}
