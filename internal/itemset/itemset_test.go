package itemset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/scpm/scpm/internal/bitset"
)

// buildDB creates a database from transaction lists: tx[i] holds the
// items of transaction i.
func buildDB(t testing.TB, tx [][]int32) *Database {
	t.Helper()
	itemTx := map[int32][]int32{}
	for ti, items := range tx {
		for _, it := range items {
			itemTx[it] = append(itemTx[it], int32(ti))
		}
	}
	d := NewDatabase(len(tx))
	for it, tids := range itemTx {
		if err := d.AddItem(it, bitset.FromSlice(len(tx), tids)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestMineSmall(t *testing.T) {
	// classic example: items 1,2,3 across 5 transactions
	tx := [][]int32{
		{1, 2, 3},
		{1, 2},
		{1, 3},
		{1},
		{2, 3},
	}
	d := buildDB(t, tx)
	m := &Miner{MinSupport: 2}
	got, err := m.MineAll(d)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"[1]":     4,
		"[2]":     3,
		"[3]":     3,
		"[1 2]":   2,
		"[1 3]":   2,
		"[2 3]":   2,
		"[1 2 3]": 1, // below support — must NOT appear
	}
	if len(got) != 6 {
		t.Fatalf("got %d itemsets, want 6: %v", len(got), got)
	}
	for _, s := range got {
		key := keyOf(s.Items)
		sup, ok := want[key]
		if !ok || sup < 2 {
			t.Fatalf("unexpected itemset %v", s.Items)
		}
		if s.Support() != sup {
			t.Fatalf("itemset %v support %d, want %d", s.Items, s.Support(), sup)
		}
	}
}

func keyOf(items []int32) string {
	out := "["
	for i, v := range items {
		if i > 0 {
			out += " "
		}
		out += string(rune('0' + v))
	}
	return out + "]"
}

func TestMaxLen(t *testing.T) {
	tx := [][]int32{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}}
	d := buildDB(t, tx)
	m := &Miner{MinSupport: 1, MaxLen: 2}
	got, err := m.MineAll(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if len(s.Items) > 2 {
			t.Fatalf("itemset %v exceeds MaxLen", s.Items)
		}
	}
	if len(got) != 6 { // 3 singletons + 3 pairs
		t.Fatalf("got %d itemsets, want 6", len(got))
	}
}

func TestEarlyStop(t *testing.T) {
	tx := [][]int32{{1, 2, 3}, {1, 2, 3}}
	d := buildDB(t, tx)
	m := &Miner{MinSupport: 1}
	n := 0
	err := m.Mine(d, func(Itemset) bool {
		n++
		return n < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestErrors(t *testing.T) {
	d := NewDatabase(4)
	if err := d.AddItem(1, bitset.New(4)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddItem(1, bitset.New(4)); err == nil {
		t.Fatal("duplicate item accepted")
	}
	if err := d.AddItem(2, bitset.New(5)); err == nil {
		t.Fatal("wrong capacity accepted")
	}
	m := &Miner{MinSupport: 0}
	if err := m.Mine(d, func(Itemset) bool { return true }); err == nil {
		t.Fatal("MinSupport 0 accepted")
	}
}

func TestEmptyDatabase(t *testing.T) {
	d := NewDatabase(0)
	m := &Miner{MinSupport: 1}
	got, err := m.MineAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

// bruteForce enumerates frequent itemsets by exhaustive subset search.
func bruteForce(tx [][]int32, minSup, maxItems int) map[string]int {
	present := map[int32]bool{}
	for _, items := range tx {
		for _, it := range items {
			present[it] = true
		}
	}
	var universe []int32
	for it := range present {
		universe = append(universe, it)
	}
	sortInt32(universe)

	out := map[string]int{}
	var rec func(idx int, cur []int32)
	rec = func(idx int, cur []int32) {
		if len(cur) > 0 {
			sup := 0
			for _, items := range tx {
				if containsAll(items, cur) {
					sup++
				}
			}
			if sup < minSup {
				return // anti-monotone: no superset can be frequent
			}
			out[fmtKey(cur)] = sup
		}
		if maxItems > 0 && len(cur) >= maxItems {
			return
		}
		for i := idx; i < len(universe); i++ {
			rec(i+1, append(cur, universe[i]))
		}
	}
	rec(0, nil)
	return out
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func containsAll(items, want []int32) bool {
	set := map[int32]bool{}
	for _, it := range items {
		set[it] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

func fmtKey(items []int32) string {
	key := ""
	for _, v := range items {
		key += string(rune(v)) + ","
	}
	return key
}

func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTx := 2 + rng.Intn(12)
		nItems := 1 + rng.Intn(6)
		tx := make([][]int32, nTx)
		for i := range tx {
			for it := 0; it < nItems; it++ {
				if rng.Float64() < 0.4 {
					tx[i] = append(tx[i], int32(it))
				}
			}
		}
		minSup := 1 + rng.Intn(3)
		d := buildDB(t, tx)
		m := &Miner{MinSupport: minSup}
		mined, err := m.MineAll(d)
		if err != nil {
			return false
		}
		want := bruteForce(tx, minSup, 0)
		if len(mined) != len(want) {
			return false
		}
		for _, s := range mined {
			if want[fmtKey(s.Items)] != s.Support() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTidsetsAreExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTx := 3 + rng.Intn(10)
		tx := make([][]int32, nTx)
		for i := range tx {
			for it := int32(0); it < 5; it++ {
				if rng.Float64() < 0.5 {
					tx[i] = append(tx[i], it)
				}
			}
		}
		d := buildDB(t, tx)
		m := &Miner{MinSupport: 1}
		ok := true
		err := m.Mine(d, func(s Itemset) bool {
			for ti := 0; ti < nTx; ti++ {
				want := containsAll(tx[ti], s.Items)
				if s.Tids.Contains(ti) != want {
					ok = false
					return false
				}
			}
			return true
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendSortedKeepsOrder(t *testing.T) {
	got := appendSorted([]int32{2, 5, 9}, 7)
	want := []int32{2, 5, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	got = appendSorted(nil, 3)
	if !reflect.DeepEqual(got, []int32{3}) {
		t.Fatalf("got %v", got)
	}
}
