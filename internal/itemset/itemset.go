// Package itemset implements the Eclat algorithm (Zaki, TKDE 2000) over a
// vertical database: each item carries the bitset of transactions
// containing it, and frequent itemsets are enumerated depth-first by
// intersecting tidsets along prefix equivalence classes.
//
// In the SCPM setting a "transaction" is a vertex and an "item" is a
// vertex attribute, so tidsets are exactly the vertex sets V({a}) and an
// itemset's tidset is V(S). The naive structural-correlation miner (§3.1
// of the paper) uses this package for its frequent attribute-set
// enumeration.
package itemset

import (
	"fmt"
	"sort"

	"github.com/scpm/scpm/internal/bitset"
)

// Database is a vertical transaction database.
type Database struct {
	numTx int
	items []entry
	seen  map[int32]bool
}

type entry struct {
	id   int32
	tids *bitset.Set
}

// NewDatabase creates an empty database over numTx transactions.
func NewDatabase(numTx int) *Database {
	return &Database{numTx: numTx, seen: make(map[int32]bool)}
}

// NumTransactions returns the number of transactions.
func (d *Database) NumTransactions() int { return d.numTx }

// NumItems returns the number of distinct items added.
func (d *Database) NumItems() int { return len(d.items) }

// AddItem registers an item with its tidset. The tidset is used by
// reference and must not be modified afterwards; its capacity must match
// the database's transaction count.
func (d *Database) AddItem(id int32, tids *bitset.Set) error {
	if d.seen[id] {
		return fmt.Errorf("itemset: duplicate item %d", id)
	}
	if tids.Len() != d.numTx {
		return fmt.Errorf("itemset: item %d tidset capacity %d, want %d",
			id, tids.Len(), d.numTx)
	}
	d.seen[id] = true
	d.items = append(d.items, entry{id: id, tids: tids})
	return nil
}

// Miner enumerates frequent itemsets.
type Miner struct {
	// MinSupport is the absolute minimum support σmin (≥ 1).
	MinSupport int
	// MaxLen bounds the itemset length; 0 means unbounded.
	MaxLen int
}

// Itemset is a frequent itemset with its tidset.
type Itemset struct {
	Items []int32     // ascending item ids
	Tids  *bitset.Set // transactions containing all items
}

// Support returns the number of supporting transactions.
func (s Itemset) Support() int { return s.Tids.Count() }

// Mine runs Eclat, invoking emit for every frequent itemset (in DFS
// order over the prefix tree). The slices and sets passed to emit are
// owned by the callee and remain valid after emit returns. If emit
// returns false the enumeration stops early.
func (m *Miner) Mine(d *Database, emit func(s Itemset) bool) error {
	if m.MinSupport < 1 {
		return fmt.Errorf("itemset: MinSupport must be ≥ 1, got %d", m.MinSupport)
	}
	// Frequent single items, ordered by ascending support: extending
	// rare items first keeps intermediate tidsets small (standard Eclat
	// heuristic) while remaining a complete enumeration.
	var class []entry
	for _, e := range d.items {
		if e.tids.Count() >= m.MinSupport {
			class = append(class, e)
		}
	}
	sort.Slice(class, func(i, j int) bool {
		ci, cj := class[i].tids.Count(), class[j].tids.Count()
		if ci != cj {
			return ci < cj
		}
		return class[i].id < class[j].id
	})
	_, err := m.extend(nil, class, emit)
	return err
}

// extend processes one prefix equivalence class. It returns false when
// emit requested a stop.
func (m *Miner) extend(prefix []int32, class []entry, emit func(Itemset) bool) (bool, error) {
	for i, e := range class {
		items := appendSorted(prefix, e.id)
		if !emit(Itemset{Items: items, Tids: e.tids.Clone()}) {
			return false, nil
		}
		if m.MaxLen > 0 && len(items) >= m.MaxLen {
			continue
		}
		var child []entry
		for _, f := range class[i+1:] {
			t := e.tids.Intersect(f.tids)
			if t.Count() >= m.MinSupport {
				child = append(child, entry{id: f.id, tids: t})
			}
		}
		if len(child) > 0 {
			cont, err := m.extend(items, child, emit)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// MineAll collects every frequent itemset into a slice, sorted
// canonically (by length, then lexicographically by item ids).
func (m *Miner) MineAll(d *Database) ([]Itemset, error) {
	var out []Itemset
	err := m.Mine(d, func(s Itemset) bool {
		out = append(out, s)
		return true
	})
	if err != nil {
		return nil, err
	}
	SortCanonical(out)
	return out, nil
}

// SortCanonical orders itemsets by length, then lexicographically.
func SortCanonical(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i].Items, sets[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// appendSorted returns a new slice: prefix with id inserted keeping
// ascending order.
func appendSorted(prefix []int32, id int32) []int32 {
	out := make([]int32, 0, len(prefix)+1)
	out = append(out, prefix...)
	pos := sort.Search(len(out), func(i int) bool { return out[i] >= id })
	out = append(out, 0)
	copy(out[pos+1:], out[pos:])
	out[pos] = id
	return out
}
