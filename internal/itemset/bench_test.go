package itemset

import (
	"math/rand"
	"testing"

	"github.com/scpm/scpm/internal/bitset"
)

// benchDB synthesizes a vertical database with Zipf-ish item
// popularity, the shape the attribute index of a real graph has.
func benchDB(nTx, nItems int, seed int64) *Database {
	rng := rand.New(rand.NewSource(seed))
	d := NewDatabase(nTx)
	for it := 0; it < nItems; it++ {
		p := 0.4 / float64(1+it)
		tids := bitset.New(nTx)
		for t := 0; t < nTx; t++ {
			if rng.Float64() < p {
				tids.Add(t)
			}
		}
		if err := d.AddItem(int32(it), tids); err != nil {
			panic(err)
		}
	}
	return d
}

func BenchmarkEclatMine(b *testing.B) {
	d := benchDB(5000, 200, 7)
	m := &Miner{MinSupport: 25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := m.Mine(d, func(Itemset) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no itemsets")
		}
	}
}

func BenchmarkEclatMineMaxLen3(b *testing.B) {
	d := benchDB(5000, 200, 7)
	m := &Miner{MinSupport: 25, MaxLen: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Mine(d, func(Itemset) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}
