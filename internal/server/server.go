// Package server exposes a pattern index over HTTP: read-only JSON (and
// NDJSON) endpoints for the mined attribute sets and patterns, plus an
// on-demand /epsilon endpoint that answers structural-correlation
// queries for attribute sets the mining run never emitted, by calling
// the ε-estimation layer through a bounded, singleflight-deduplicated
// LRU cache.
//
// Endpoints (all GET; see docs/FILE_FORMATS.md for the full schemas):
//
//	/healthz            liveness + index shape
//	/stats              index, mining and server counters
//	/sets               list/filter/rank attribute sets
//	/sets/{id}          one set by stable id, with its patterns
//	/patterns           list/filter patterns
//	/vertices/{v}       patterns containing a vertex label
//	/epsilon?attrs=...  ε for any attribute set (index, cache or compute)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/epsilon"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/index"
	"github.com/scpm/scpm/internal/nullmodel"
	"github.com/scpm/scpm/internal/obs"
)

// DefaultCacheSize bounds the /epsilon LRU when Config.CacheSize is
// unset.
const DefaultCacheSize = 1024

// Config assembles a Server. Index is required; Graph and Estimator
// together enable on-demand /epsilon computation (without them the
// endpoint still serves indexed sets and fails cleanly otherwise).
// Result and Params together additionally enable the live-update path
// (POST /updates → background incremental remine → atomic index swap).
type Config struct {
	// Index is the pattern index to serve.
	Index *index.Index
	// Graph is the attributed graph the index was mined from; needed to
	// resolve attribute names and member sets for on-demand ε queries,
	// and to apply live updates.
	Graph *graph.Graph
	// Estimator answers on-demand ε queries (exact coverage search or
	// Hoeffding sampling — core.Params.NewEstimator builds either).
	Estimator epsilon.Estimator
	// Model, when set, adds expected_epsilon and delta to computed
	// answers (indexed answers always carry them). After a live update
	// the server re-derives the model for each new graph version via
	// Params.NewModel.
	Model nullmodel.Model
	// Result is the mining result Index was built from. Together with
	// Params it enables POST /updates: the server re-mines
	// incrementally from it after each accepted update batch. Mine it
	// with RecordLattice for incremental (rather than full) remines.
	Result *core.Result
	// Params is the parameter block the result was mined with; the
	// update path re-mines with it (RecordLattice is forced on so
	// consecutive updates stay incremental).
	Params *core.Params
	// OnSwap, when set, is called after each background remine
	// publishes a new serving generation — the snapshot write-behind
	// hook. Calls are sequential.
	OnSwap func(SwapEvent)
	// CacheSize bounds the /epsilon LRU; ≤ 0 means DefaultCacheSize.
	CacheSize int
	// Logger, when set, receives one structured key=value line per
	// request (method, path, status, bytes, duration, generation) plus
	// remine lifecycle events.
	Logger *slog.Logger
	// Metrics is the registry the server's instruments register on and
	// GET /metrics serves from. Nil means a private registry, so the
	// endpoints work (and the request path pays the same instrumentation
	// cost) without any wiring. Share one registry across layers — e.g.
	// with boot-time mining — to scrape them together.
	Metrics *obs.Registry
}

// generation is one immutable serving state: a graph version with the
// index, result and null model derived from it. Readers grab the
// current generation once per request; the update path builds the next
// one off to the side and publishes it with a single atomic store.
type generation struct {
	version uint64
	g       *graph.Graph
	res     *core.Result
	idx     *index.Index
	model   nullmodel.Model
}

// Server is the HTTP query layer over a pattern index. Build one with
// New; it is an http.Handler safe for concurrent use.
type Server struct {
	gen     atomic.Pointer[generation]
	est     epsilon.Estimator
	cache   *epsCache
	logger  *slog.Logger
	mux     *http.ServeMux
	root    http.Handler // mux wrapped in request instrumentation
	metrics *serverMetrics

	// Live-update state; see updates.go. updateMu guards the data head
	// (headG, pending, remining) — never held while serving reads.
	params   *core.Params
	onSwap   func(SwapEvent)
	updateMu sync.Mutex
	headG    *graph.Graph
	pending  *graph.ChangeSet
	remining bool

	requests        atomic.Int64
	epsilonQueries  atomic.Int64
	epsilonIndexed  atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	searchNodes     atomic.Int64
	sampledVertices atomic.Int64
	updatesAccepted atomic.Int64
	remines         atomic.Int64
	lastRemineErr   atomic.Pointer[string]
}

// New builds the server and installs its routes.
func New(cfg Config) (*Server, error) {
	if cfg.Index == nil {
		return nil, fmt.Errorf("server: Config.Index is required")
	}
	s := &Server{
		est:    cfg.Estimator,
		cache:  newEpsCache(cmpOr(cfg.CacheSize, DefaultCacheSize)),
		logger: cfg.Logger,
		mux:    http.NewServeMux(),
		onSwap: cfg.OnSwap,
	}
	gen := &generation{
		g:     cfg.Graph,
		res:   cfg.Result,
		idx:   cfg.Index,
		model: cfg.Model,
	}
	if cfg.Graph != nil {
		gen.version = cfg.Graph.Version()
	}
	s.gen.Store(gen)
	s.cache.setVersion(gen.version)
	if cfg.Params != nil && cfg.Result != nil && cfg.Graph != nil {
		p := *cfg.Params
		p.RecordLattice = true
		s.params = &p
		s.headG = cfg.Graph
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.metrics = newServerMetrics(reg)
	s.cache.evictions = s.metrics.cacheEvictions
	s.cache.shared = s.metrics.cacheShared
	reg.GaugeFunc("scpm_generation_served",
		"Graph version the served generation was mined at.",
		func() float64 { return float64(s.gen.Load().version) })
	reg.GaugeFunc("scpm_generation_data",
		"Graph version at the data head (accepted updates included).",
		func() float64 { return float64(s.dataVersion()) })
	reg.GaugeFunc("scpm_epsilon_cache_entries",
		"Current /epsilon LRU cache population.",
		func() float64 { return float64(s.cache.len()) })
	reg.GaugeFunc("scpm_ready",
		"1 when GET /readyz answers 200, 0 otherwise.",
		func() float64 {
			if ok, _ := s.readiness(); ok {
				return 1
			}
			return 0
		})

	s.get("/healthz", s.handleHealthz)
	s.get("/readyz", s.handleReadyz)
	s.get("/stats", s.handleStats)
	s.get("/sets", s.handleSets)
	s.get("/sets/{id}", s.handleSetByID)
	s.get("/patterns", s.handlePatterns)
	s.get("/vertices/{v}", s.handleVertex)
	s.get("/epsilon", s.handleEpsilon)
	s.get("/version", s.handleVersion)
	s.mux.HandleFunc("/updates", s.handleUpdates)
	obs.Mount(s.mux, reg)
	// Unknown paths get the JSON error envelope too, not ServeMux's
	// plain-text 404.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown path %q", r.URL.Path))
	})
	s.root = s.metrics.http.Instrument(s.mux, s.observe)
	return s, nil
}

// dataVersion reports the graph version at the data head (the served
// version when live updates are disabled).
func (s *Server) dataVersion() uint64 {
	if s.params == nil {
		return s.gen.Load().version
	}
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	return s.headG.Version()
}

// readiness reports whether the server should receive traffic.
// Liveness (/healthz) it always has once New returns; readiness drops
// only when a failed remine leaves the served generation behind the
// data head — results are then stale relative to acknowledged updates,
// and a load balancer should prefer a replica that caught up.
func (s *Server) readiness() (bool, string) {
	msg := s.lastRemineErr.Load()
	if msg == nil {
		return true, ""
	}
	if s.dataVersion() == s.gen.Load().version {
		return true, ""
	}
	return false, "serving stale generation after failed remine: " + *msg
}

// handleReadyz is GET /readyz: 200 when ready, 503 with the reason
// otherwise. Distinct from /healthz, which only proves the process is
// up and serving its index.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	gen := s.gen.Load()
	out := map[string]any{
		"ready":          true,
		"served_version": gen.version,
		"data_version":   s.dataVersion(),
	}
	status := http.StatusOK
	if ok, reason := s.readiness(); !ok {
		out["ready"] = false
		out["reason"] = reason
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}

// get registers a GET/HEAD-only route that answers other methods with
// the documented JSON 405 envelope (a bare method-qualified ServeMux
// pattern would answer in plain text).
func (s *Server) get(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			writeErr(w, http.StatusMethodNotAllowed, "method not allowed (GET only)")
			return
		}
		h(w, r)
	})
}

// cmpOr returns v when positive, else def.
func cmpOr(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// ServeHTTP implements http.Handler. Every request flows through the
// obs middleware (per-endpoint counters, latency histogram, in-flight
// gauge) before reaching the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.root.ServeHTTP(w, r)
}

// observe receives every completed request from the instrumentation
// middleware and emits the structured access-log line.
func (s *Server) observe(r *http.Request, o obs.RequestObservation) {
	if s.logger == nil {
		return
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.RequestURI()),
		slog.Int("status", o.Status),
		slog.Int("bytes", o.Bytes),
		slog.Duration("duration", o.Duration),
		slog.Uint64("generation", s.gen.Load().version),
	)
}

// logf emits one structured event line when logging is enabled.
func (s *Server) logf(msg string, attrs ...slog.Attr) {
	if s.logger == nil {
		return
	}
	s.logger.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
}

// Stats is a point-in-time snapshot of the server counters. The
// search-node and sampled-vertex totals aggregate every on-demand
// estimator call the server has made; a cache or index hit adds zero,
// which is what the serving-layer tests assert.
type Stats struct {
	// Requests counts every HTTP request received.
	Requests int64 `json:"requests"`
	// EpsilonQueries counts /epsilon requests that reached resolution
	// (indexed, cached or computed).
	EpsilonQueries int64 `json:"epsilon_queries"`
	// EpsilonIndexed counts /epsilon answers served from the index.
	EpsilonIndexed int64 `json:"epsilon_indexed"`
	// CacheHits / CacheMisses count on-demand answers served from the
	// LRU versus computed (joiners of an in-flight computation count as
	// misses).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CacheEntries is the current LRU population.
	CacheEntries int `json:"cache_entries"`
	// SearchNodes totals the quasi-clique search nodes spent by
	// on-demand estimator calls.
	SearchNodes int64 `json:"search_nodes"`
	// SampledVertices totals the membership samples drawn by on-demand
	// estimator calls (sampled mode only).
	SampledVertices int64 `json:"sampled_vertices"`
	// OnDemand reports whether /epsilon can compute uncached answers.
	OnDemand bool `json:"on_demand"`
	// LiveUpdates reports whether POST /updates is enabled.
	LiveUpdates bool `json:"live_updates"`
	// UpdatesAccepted counts accepted update batches.
	UpdatesAccepted int64 `json:"updates_accepted"`
	// Remines counts background remines that published a generation.
	Remines int64 `json:"remines"`
}

// Stats returns the current server counters.
func (s *Server) Stats() Stats {
	gen := s.gen.Load()
	return Stats{
		Requests:        s.requests.Load(),
		EpsilonQueries:  s.epsilonQueries.Load(),
		EpsilonIndexed:  s.epsilonIndexed.Load(),
		CacheHits:       s.cacheHits.Load(),
		CacheMisses:     s.cacheMisses.Load(),
		CacheEntries:    s.cache.len(),
		SearchNodes:     s.searchNodes.Load(),
		SampledVertices: s.sampledVertices.Load(),
		OnDemand:        gen.g != nil && s.est != nil,
		LiveUpdates:     s.params != nil,
		UpdatesAccepted: s.updatesAccepted.Load(),
		Remines:         s.remines.Load(),
	}
}

// SetDTO is the JSON shape of one attribute set, matching the batch
// export schema (ids shared, delta string-encoded so +Inf survives).
type SetDTO struct {
	ID              string   `json:"id"`
	Attrs           []string `json:"attrs"`
	Support         int      `json:"support"`
	Epsilon         float64  `json:"epsilon"`
	ExpectedEpsilon float64  `json:"expected_epsilon"`
	Delta           string   `json:"delta"`
	Covered         int      `json:"covered"`
	Estimated       bool     `json:"estimated,omitempty"`
	EpsilonErr      float64  `json:"epsilon_err,omitempty"`
	SampledVertices int      `json:"sampled_vertices,omitempty"`
	Patterns        int      `json:"patterns"`
}

// PatternDTO is the JSON shape of one pattern; vertices are labels.
type PatternDTO struct {
	ID          string   `json:"id"`
	Set         string   `json:"set"`
	Attrs       []string `json:"attrs"`
	Vertices    []string `json:"vertices"`
	Size        int      `json:"size"`
	MinDeg      int      `json:"min_deg"`
	Edges       int      `json:"edges"`
	Density     float64  `json:"density"`
	EdgeDensity float64  `json:"edge_density"`
}

// EpsilonAnswer is the JSON shape of one /epsilon response. Source is
// "index", "cache" or "computed".
type EpsilonAnswer struct {
	ID              string   `json:"id"`
	Attrs           []string `json:"attrs"`
	Support         int      `json:"support"`
	Epsilon         float64  `json:"epsilon"`
	Covered         int      `json:"covered"`
	ExpectedEpsilon *float64 `json:"expected_epsilon,omitempty"`
	Delta           string   `json:"delta,omitempty"`
	Estimated       bool     `json:"estimated,omitempty"`
	EpsilonErr      float64  `json:"epsilon_err,omitempty"`
	SampledVertices int      `json:"sampled_vertices,omitempty"`
	Source          string   `json:"source"`
}

// SetDTOOf renders set i of the index as its response DTO. Exported
// (with the DTO types) so the scatter-gather gateway re-encodes merged
// responses with exactly the field set and order a shard serves.
func SetDTOOf(idx *index.Index, i int) SetDTO {
	set := idx.Sets()[i]
	return SetDTO{
		ID:              idx.SetID(i),
		Attrs:           set.Names,
		Support:         set.Support,
		Epsilon:         set.Epsilon,
		ExpectedEpsilon: set.ExpEps,
		Delta:           core.FormatDelta(set.Delta),
		Covered:         set.Covered,
		Estimated:       set.Estimated,
		EpsilonErr:      set.EpsilonErr,
		SampledVertices: set.SampledVertices,
		Patterns:        len(idx.PatternsOfSetByIndex(i)),
	}
}

// PatternDTOOf renders pattern i of the index as its response DTO.
func PatternDTOOf(idx *index.Index, i int) PatternDTO {
	p := idx.Patterns()[i]
	return PatternDTO{
		ID:          idx.PatternID(i),
		Set:         idx.PatternSetID(i),
		Attrs:       p.Names,
		Vertices:    idx.PatternVertexNames(i),
		Size:        p.Size(),
		MinDeg:      p.MinDeg,
		Edges:       p.Edges,
		Density:     p.Density(),
		EdgeDensity: p.EdgeDensity(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	gen := s.gen.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sets":     gen.idx.NumSets(),
		"patterns": gen.idx.NumPatterns(),
		"version":  gen.version,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ist := s.gen.Load().idx.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"index": map[string]any{
			"sets":             ist.Sets,
			"patterns":         ist.Patterns,
			"attributes":       ist.Attributes,
			"pattern_vertices": ist.PatternVertices,
		},
		"mining": map[string]any{
			"sets_evaluated":   ist.Mining.SetsEvaluated,
			"sets_emitted":     ist.Mining.SetsEmitted,
			"patterns_emitted": ist.Mining.PatternsEmitted,
			"search_nodes":     ist.Mining.SearchNodes,
			"sampled_vertices": ist.Mining.SampledVertices,
			"duration_ms":      ist.Mining.Duration.Milliseconds(),
		},
		"server": s.Stats(),
	})
}

// parseAttrList splits repeated and comma-separated attrs parameters
// into a deduplicated name list.
func parseAttrList(vals []string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, v := range vals {
		for _, name := range strings.Split(v, ",") {
			name = strings.TrimSpace(name)
			if name != "" && !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	return out
}

func (s *Server) handleSets(w http.ResponseWriter, r *http.Request) {
	idx := s.gen.Load().idx
	q := r.URL.Query()
	exact := parseAttrList(q["attrs"])
	contains := parseAttrList(q["contains"])
	within := parseAttrList(q["within"])
	filters := 0
	for _, f := range [][]string{exact, contains, within} {
		if len(f) > 0 {
			filters++
		}
	}
	if filters > 1 {
		writeErr(w, http.StatusBadRequest, "attrs, contains and within are mutually exclusive")
		return
	}

	var idxs []int
	switch {
	case len(exact) > 0:
		if i := idx.Exact(exact); i >= 0 {
			idxs = []int{i}
		}
	case len(contains) > 0:
		idxs = idx.Supersets(contains)
	case len(within) > 0:
		idxs = idx.Subsets(within)
	default:
		idxs = make([]int, idx.NumSets())
		for i := range idxs {
			idxs[i] = i
		}
	}

	minSupport, err := intParam(q, "min_support", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	minEps, err := floatParam(q, "min_eps", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	minDelta, err := floatParam(q, "min_delta", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	sets := idx.Sets()
	kept := idxs[:0]
	for _, i := range idxs {
		if sets[i].Support >= minSupport && sets[i].Epsilon >= minEps && sets[i].Delta >= minDelta {
			kept = append(kept, i)
		}
	}
	idxs = kept

	if rank := q.Get("rank"); rank != "" {
		ranking, ok := parseRanking(rank)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown rank %q (want support, epsilon or delta)", rank))
			return
		}
		sortByRanking(idx.Sets(), idxs, ranking)
	}
	k, err := intParam(q, "k", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if k > 0 && len(idxs) > k {
		idxs = idxs[:k]
	}

	if wantNDJSON(r) {
		writeNDJSON(w, len(idxs), func(i int) any { return SetDTOOf(idx, idxs[i]) })
		return
	}
	out := make([]SetDTO, len(idxs))
	for i, si := range idxs {
		out[i] = SetDTOOf(idx, si)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sets": out, "total": len(out)})
}

func (s *Server) handleSetByID(w http.ResponseWriter, r *http.Request) {
	idx := s.gen.Load().idx
	id := r.PathValue("id")
	si := idx.SetIndexByID(id)
	if si < 0 {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no attribute set with id %q", id))
		return
	}
	pats := idx.PatternsOfSetByIndex(si)
	out := make([]PatternDTO, len(pats))
	for i, pi := range pats {
		out[i] = PatternDTOOf(idx, int(pi))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"set":      SetDTOOf(idx, si),
		"patterns": out,
	})
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	idx := s.gen.Load().idx
	q := r.URL.Query()
	var idxs []int
	switch {
	case q.Get("set") != "":
		for _, pi := range idx.PatternsOfSet(q.Get("set")) {
			idxs = append(idxs, int(pi))
		}
	case q.Get("vertex") != "":
		idxs = idx.PatternsWithVertex(q.Get("vertex"))
	default:
		idxs = make([]int, idx.NumPatterns())
		for i := range idxs {
			idxs[i] = i
		}
	}
	minSize, err := intParam(q, "min_size", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if minSize > 0 {
		pats := idx.Patterns()
		kept := idxs[:0]
		for _, i := range idxs {
			if pats[i].Size() >= minSize {
				kept = append(kept, i)
			}
		}
		idxs = kept
	}
	limit, err := intParam(q, "limit", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if limit > 0 && len(idxs) > limit {
		idxs = idxs[:limit]
	}
	if wantNDJSON(r) {
		writeNDJSON(w, len(idxs), func(i int) any { return PatternDTOOf(idx, idxs[i]) })
		return
	}
	out := make([]PatternDTO, len(idxs))
	for i, pi := range idxs {
		out[i] = PatternDTOOf(idx, pi)
	}
	writeJSON(w, http.StatusOK, map[string]any{"patterns": out, "total": len(out)})
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	gen := s.gen.Load()
	label := r.PathValue("v")
	known := gen.idx.HasVertex(label)
	if !known && gen.g != nil {
		_, known = gen.g.VertexID(label)
	}
	if !known {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown vertex %q", label))
		return
	}
	pis := gen.idx.PatternsWithVertex(label)
	pats := make([]PatternDTO, len(pis))
	setIDs := make([]string, 0, len(pis))
	seen := make(map[string]bool)
	for i, pi := range pis {
		pats[i] = PatternDTOOf(gen.idx, pi)
		if id := pats[i].Set; !seen[id] {
			seen[id] = true
			setIDs = append(setIDs, id)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertex":   label,
		"patterns": pats,
		"sets":     setIDs,
	})
}

func (s *Server) handleEpsilon(w http.ResponseWriter, r *http.Request) {
	gen := s.gen.Load()
	names := parseAttrList(r.URL.Query()["attrs"])
	if len(names) == 0 {
		writeErr(w, http.StatusBadRequest, "attrs parameter is required (e.g. /epsilon?attrs=A,B)")
		return
	}

	// Fast path: the mining run already scored this exact set.
	if i := gen.idx.Exact(names); i >= 0 {
		set := gen.idx.Sets()[i]
		s.epsilonQueries.Add(1)
		s.epsilonIndexed.Add(1)
		exp := set.ExpEps
		writeJSON(w, http.StatusOK, EpsilonAnswer{
			ID:              gen.idx.SetID(i),
			Attrs:           set.Names,
			Support:         set.Support,
			Epsilon:         set.Epsilon,
			Covered:         set.Covered,
			ExpectedEpsilon: &exp,
			Delta:           core.FormatDelta(set.Delta),
			Estimated:       set.Estimated,
			EpsilonErr:      set.EpsilonErr,
			SampledVertices: set.SampledVertices,
			Source:          "index",
		})
		return
	}

	if gen.g == nil || s.est == nil {
		writeErr(w, http.StatusNotImplemented, "on-demand epsilon computation is disabled (no graph/estimator configured)")
		return
	}
	attrs := make([]int32, 0, len(names))
	for _, n := range names {
		id, ok := gen.g.AttrID(n)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown attribute %q", n))
			return
		}
		attrs = append(attrs, id)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })

	key := attrKey(attrs)
	ans, cached, err := s.cache.do(key, attrs, gen.version, func() (EpsilonAnswer, error) {
		return computeEpsilon(gen, s, attrs)
	})
	// δ-normalization is applied at serve time against the CURRENT
	// generation's null model, never cached: the model shifts with the
	// global degree distribution on every edge/vertex update, so a
	// cached ε (which stays valid for clean sets) must not freeze the
	// expected ε it was first served with.
	if err == nil && gen.model != nil {
		exp := gen.model.Exp(ans.Support)
		ans.ExpectedEpsilon = &exp
		ans.Delta = core.FormatDelta(core.NormalizeDelta(ans.Epsilon, exp))
	}
	if err != nil {
		// A budget-bounded search that ran out is an overload signal,
		// not a server fault: 503 tells the client the query was too
		// expensive under the configured budget.
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrBudget) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, err.Error())
		return
	}
	s.epsilonQueries.Add(1)
	if cached {
		s.cacheHits.Add(1)
		s.metrics.cacheHits.Inc()
		ans.Source = "cache"
	} else {
		s.cacheMisses.Add(1)
		s.metrics.cacheMisses.Inc()
		ans.Source = "computed"
	}
	writeJSON(w, http.StatusOK, ans)
}

// computeEpsilon answers one uncached /epsilon query through the
// estimator against one consistent generation; it runs inside the
// cache's singleflight. The answer carries only the ε computation —
// δ-normalization is applied by the handler per serve, so cached
// answers track the current null model.
func computeEpsilon(gen *generation, s *Server, attrs []int32) (EpsilonAnswer, error) {
	names := gen.g.AttrSetNames(attrs)
	ans := EpsilonAnswer{
		ID:    core.SetID(names),
		Attrs: names,
	}
	members := gen.g.Members(attrs)
	ans.Support = members.Count()
	if ans.Support > 0 {
		est, err := s.est.Estimate(gen.g, attrs, members, members)
		if err != nil {
			return EpsilonAnswer{}, err
		}
		s.searchNodes.Add(est.Nodes)
		s.sampledVertices.Add(int64(est.SampledVertices))
		ans.Epsilon = est.Epsilon
		ans.Covered = est.Covered
		ans.Estimated = est.Estimated
		ans.EpsilonErr = est.ErrBound
		ans.SampledVertices = est.SampledVertices
	}
	return ans, nil
}

// attrKey renders sorted attribute ids as the cache key.
func attrKey(attrs []int32) string {
	var sb strings.Builder
	for _, a := range attrs {
		fmt.Fprintf(&sb, "%d,", a)
	}
	return sb.String()
}

// parseRanking maps the rank parameter to a core.Ranking.
func parseRanking(s string) (core.Ranking, bool) {
	switch strings.ToLower(s) {
	case "support", "sigma":
		return core.BySupport, true
	case "epsilon", "eps":
		return core.ByEpsilon, true
	case "delta":
		return core.ByDelta, true
	}
	return 0, false
}

// sortByRanking orders set indices by the ranking with the TopSets
// tie-breaks (support, then canonical attribute order).
func sortByRanking(sets []core.AttributeSet, idxs []int, r core.Ranking) {
	sort.SliceStable(idxs, func(a, b int) bool {
		x, y := sets[idxs[a]], sets[idxs[b]]
		switch r {
		case core.BySupport:
			if x.Support != y.Support {
				return x.Support > y.Support
			}
		case core.ByEpsilon:
			if x.Epsilon != y.Epsilon {
				return x.Epsilon > y.Epsilon
			}
		case core.ByDelta:
			if x.Delta != y.Delta {
				if math.IsInf(x.Delta, 1) {
					return true
				}
				if math.IsInf(y.Delta, 1) {
					return false
				}
				return x.Delta > y.Delta
			}
		}
		if x.Support != y.Support {
			return x.Support > y.Support
		}
		return idxs[a] < idxs[b]
	})
}

// intParam parses an optional non-negative integer query parameter.
func intParam(q map[string][]string, name string, def int) (int, error) {
	vals := q[name]
	if len(vals) == 0 || vals[0] == "" {
		return def, nil
	}
	v, err := strconv.Atoi(vals[0])
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s %q (want a non-negative integer)", name, vals[0])
	}
	return v, nil
}

// floatParam parses an optional non-negative float query parameter.
func floatParam(q map[string][]string, name string, def float64) (float64, error) {
	vals := q[name]
	if len(vals) == 0 || vals[0] == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(vals[0], 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s %q (want a non-negative number)", name, vals[0])
	}
	return v, nil
}

// wantNDJSON reports whether the request asked for NDJSON output.
func wantNDJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "ndjson" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// writeJSON writes one JSON document with the right headers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeNDJSON streams n items, one JSON object per line.
func writeNDJSON(w http.ResponseWriter, n int, item func(i int) any) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err := enc.Encode(item(i)); err != nil {
			return
		}
	}
}

// writeErr writes the JSON error envelope {"error": msg}.
func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
