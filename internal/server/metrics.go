// Serving-layer metric wiring: every Server resolves one bundle of
// instruments on its registry (Config.Metrics, or a private one) and
// feeds them from the request path, the ε-cache, and the live-update
// remine loop. Scrape them on GET /metrics; see docs/ARCHITECTURE.md
// ("Observability") for the inventory.

package server

import (
	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/obs"
)

// serverMetrics bundles the server's instruments. All fields use
// get-or-create registration, so a registry shared with boot-time
// mining (scpm-serve pre-registers the mining gauges) resolves to the
// same instruments.
type serverMetrics struct {
	reg    *obs.Registry
	http   *obs.HTTPMetrics
	mining *obs.MiningMetrics

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheShared    *obs.Counter

	updatesAccepted *obs.Counter
	remines         *obs.CounterVec // outcome: ok | error
	remineDuration  *obs.Histogram
}

// newServerMetrics resolves the server instrument bundle on reg.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg:    reg,
		http:   obs.NewHTTPMetrics(reg, "scpm"),
		mining: obs.NewMiningMetrics(reg),
		cacheHits: reg.Counter("scpm_epsilon_cache_hits_total",
			"/epsilon answers served from the LRU cache."),
		cacheMisses: reg.Counter("scpm_epsilon_cache_misses_total",
			"/epsilon answers computed (or joined in flight) rather than cached."),
		cacheEvictions: reg.Counter("scpm_epsilon_cache_evictions_total",
			"Cache entries evicted by the LRU capacity bound."),
		cacheShared: reg.Counter("scpm_epsilon_cache_shared_total",
			"/epsilon callers that joined another caller's in-flight computation (singleflight)."),
		updatesAccepted: reg.Counter("scpm_updates_accepted_total",
			"Accepted POST /updates batches."),
		remines: reg.CounterVec("scpm_remines_total",
			"Background remines by outcome.", "outcome"),
		remineDuration: reg.Histogram("scpm_remine_duration_seconds",
			"Wall time of successful background remines.", obs.DurationBuckets),
	}
}

// observeMiningStats maps a core progress snapshot onto the live
// mining gauges.
func observeMiningStats(m *obs.MiningMetrics, st core.Stats) {
	m.ObserveProgress(st.SetsEvaluated, st.SetsEmitted, st.PatternsEmitted,
		st.SearchNodes, st.SampledVertices, st.ReusedSets, st.RecomputedSets,
		st.ReusedVerdicts)
}

// miningSink builds the progress sink a remine runs with: every
// OnProgress snapshot lands in the mining gauges, so a scrape during a
// long remine shows it advancing.
func (s *Server) miningSink() core.Sink {
	return core.SinkFuncs{Progress: func(st core.Stats) { observeMiningStats(s.metrics.mining, st) }}
}
