package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/index"
	"github.com/scpm/scpm/internal/obs"
)

// scrape fetches /metrics through the instrumented handler and
// returns the exposition body.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d; body: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	return rec.Body.String()
}

// metricValue extracts the value of an exact series (name plus label
// block) from an exposition body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, body)
	return 0
}

// TestMetricsRequestSeries drives requests through the instrumented
// handler and asserts the per-endpoint series and the ε-cache
// counters land where the requests say they should.
func TestMetricsRequestSeries(t *testing.T) {
	s, _, _, _ := newTestServer(t, 8)
	get(t, s, "/healthz", http.StatusOK, nil)
	var eps map[string]any
	get(t, s, "/epsilon?attrs=C", http.StatusOK, &eps) // cache miss
	get(t, s, "/epsilon?attrs=C", http.StatusOK, &eps) // cache hit

	body := scrape(t, s)
	if v := metricValue(t, body, `scpm_http_requests_total{endpoint="/healthz",class="2xx"}`); v != 1 {
		t.Fatalf("healthz request count = %v, want 1", v)
	}
	if v := metricValue(t, body, `scpm_http_requests_total{endpoint="/epsilon",class="2xx"}`); v != 2 {
		t.Fatalf("epsilon request count = %v, want 2", v)
	}
	if v := metricValue(t, body, `scpm_http_request_duration_seconds_bucket{endpoint="/healthz",le="+Inf"}`); v != 1 {
		t.Fatalf("healthz latency histogram count = %v, want 1", v)
	}
	if v := metricValue(t, body, "scpm_epsilon_cache_misses_total"); v != 1 {
		t.Fatalf("cache misses = %v, want 1", v)
	}
	if v := metricValue(t, body, "scpm_epsilon_cache_hits_total"); v != 1 {
		t.Fatalf("cache hits = %v, want 1", v)
	}
	if v := metricValue(t, body, "scpm_epsilon_cache_entries"); v != 1 {
		t.Fatalf("cache entries = %v, want 1", v)
	}
	if v := metricValue(t, body, "scpm_generation_served"); v != 1 {
		t.Fatalf("served generation = %v, want 1", v)
	}
	if v := metricValue(t, body, "scpm_ready"); v != 1 {
		t.Fatalf("ready gauge = %v, want 1", v)
	}
	// 404s land in the "other" endpoint bucket with their status class.
	get(t, s, "/no-such-route", http.StatusNotFound, nil)
	body = scrape(t, s)
	if v := metricValue(t, body, `scpm_http_requests_total{endpoint="other",class="4xx"}`); v < 1 {
		t.Fatalf("unmatched-route count = %v, want >= 1", v)
	}
}

// TestMetricsRemineLifecycle: an accepted update must count, and the
// background remine must record its outcome, duration histogram and
// final mining-progress gauges.
func TestMetricsRemineLifecycle(t *testing.T) {
	s, _, swaps := newLiveServer(t)
	postUpdates(t, s, `{"op":"add_vertex","vertex":"v99","attrs":["A"]}`+"\n", http.StatusAccepted)
	waitSwap(t, swaps)

	body := scrape(t, s)
	if v := metricValue(t, body, "scpm_updates_accepted_total"); v != 1 {
		t.Fatalf("updates accepted = %v, want 1", v)
	}
	if v := metricValue(t, body, `scpm_remines_total{outcome="ok"}`); v != 1 {
		t.Fatalf("ok remines = %v, want 1", v)
	}
	if v := metricValue(t, body, "scpm_remine_duration_seconds_count"); v != 1 {
		t.Fatalf("remine duration observations = %v, want 1", v)
	}
	if v := metricValue(t, body, "scpm_mining_sets_evaluated"); v <= 0 {
		t.Fatalf("mining sets evaluated = %v, want > 0", v)
	}
	if v := metricValue(t, body, "scpm_mining_active"); v != 0 {
		t.Fatalf("mining active after swap = %v, want 0", v)
	}
	if v := metricValue(t, body, "scpm_generation_served"); v != 2 {
		t.Fatalf("served generation = %v, want 2", v)
	}
}

// TestMetricsRemineFailure: a remine that cannot finish must count
// under outcome="error" and flip the readiness gauge off.
func TestMetricsRemineFailure(t *testing.T) {
	s := newFailingRemineServer(t)
	postUpdates(t, s, `{"op":"add_vertex","vertex":"x","attrs":["A"]}`, http.StatusAccepted)
	waitRemineError(t, s)

	body := scrape(t, s)
	if v := metricValue(t, body, `scpm_remines_total{outcome="error"}`); v < 1 {
		t.Fatalf("error remines = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "scpm_ready"); v != 0 {
		t.Fatalf("ready gauge after failed remine = %v, want 0", v)
	}
	if v := metricValue(t, body, "scpm_generation_served"); v != 1 {
		t.Fatalf("served generation = %v, want 1", v)
	}
	if v := metricValue(t, body, "scpm_generation_data"); v != 2 {
		t.Fatalf("data generation = %v, want 2", v)
	}
}

// TestReadyz: ready while healthy, not ready once a failed remine
// leaves the served generation behind the data version, ready again
// after a later remine catches up.
func TestReadyz(t *testing.T) {
	s, _, _, _ := newTestServer(t, 0)
	var body struct {
		Ready         bool   `json:"ready"`
		ServedVersion uint64 `json:"served_version"`
		DataVersion   uint64 `json:"data_version"`
	}
	get(t, s, "/readyz", http.StatusOK, &body)
	if !body.Ready || body.ServedVersion != 1 || body.DataVersion != 1 {
		t.Fatalf("readyz on a healthy server = %+v", body)
	}
}

func TestReadyzAfterFailedRemine(t *testing.T) {
	s := newFailingRemineServer(t)
	postUpdates(t, s, `{"op":"add_vertex","vertex":"x","attrs":["A"]}`, http.StatusAccepted)
	waitRemineError(t, s)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz after failed remine = %d; body: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "serving stale generation after failed remine") {
		t.Fatalf("readyz reason missing: %s", rec.Body)
	}
	// Liveness stays green: the old generation still serves.
	get(t, s, "/healthz", http.StatusOK, nil)
}

// newFailingRemineServer builds a live-update server whose remines
// always fail (impossible search budget).
func newFailingRemineServer(t *testing.T) *Server {
	t.Helper()
	g := graph.PaperExample()
	p := core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10, RecordLattice: true}
	res, err := core.Mine(t.Context(), g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	pBad := p
	pBad.SearchBudget = 1
	var mu sync.Mutex
	s, err := New(Config{
		Index:     index.Build(res, g),
		Graph:     g,
		Estimator: p.NewEstimator(),
		Result:    res,
		Params:    &pBad,
		OnSwap: func(SwapEvent) {
			mu.Lock()
			defer mu.Unlock()
			t.Error("failed remine must not swap a generation")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitRemineError polls /version until the background remine failure
// surfaces.
func waitRemineError(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		var ver map[string]any
		get(t, s, "/version", http.StatusOK, &ver)
		if _, hasErr := ver["last_remine_error"]; hasErr {
			return
		}
		select {
		case <-deadline:
			t.Fatal("remine failure never surfaced")
		case <-time.After(20 * time.Millisecond):
		}
	}
}
