package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/index"
)

// newLiveServer serves the paper example with live updates enabled;
// swaps are reported on the returned channel.
func newLiveServer(t *testing.T) (*Server, *countingEstimator, chan SwapEvent) {
	t.Helper()
	g := graph.PaperExample()
	p := core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10, RecordLattice: true}
	res, err := core.Mine(context.Background(), g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	pEst := p
	pEst.MinSize = 2
	est := &countingEstimator{inner: pEst.NewEstimator()}
	swaps := make(chan SwapEvent, 16)
	s, err := New(Config{
		Index:     index.Build(res, g),
		Graph:     g,
		Estimator: est,
		Model:     p.NewModel(g),
		Result:    res,
		Params:    &p,
		OnSwap:    func(e SwapEvent) { swaps <- e },
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, est, swaps
}

// postUpdates POSTs an NDJSON body and decodes the JSON response.
func postUpdates(t *testing.T, s *Server, body string, wantStatus int) map[string]any {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/updates", strings.NewReader(body))
	s.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("POST /updates = %d, want %d; body: %s", rec.Code, wantStatus, rec.Body)
	}
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("POST /updates: invalid JSON: %v\n%s", err, rec.Body)
		}
	}
	return out
}

func waitSwap(t *testing.T, swaps chan SwapEvent) SwapEvent {
	t.Helper()
	select {
	case e := <-swaps:
		return e
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the background remine to swap")
		return SwapEvent{}
	}
}

// TestUpdatesLifecycle walks the full path: version endpoints before,
// a batch of updates, the background remine, the atomic swap, the
// re-served results, stable ids for unchanged content and cache
// invalidation keyed by the dirty attributes.
func TestUpdatesLifecycle(t *testing.T) {
	s, est, swaps := newLiveServer(t)

	var ver map[string]any
	get(t, s, "/version", http.StatusOK, &ver)
	if ver["served_version"].(float64) != 1 || ver["data_version"].(float64) != 1 {
		t.Fatalf("initial /version = %v", ver)
	}
	if ver["updates_enabled"] != true {
		t.Fatalf("updates not enabled: %v", ver)
	}

	// Record the pre-update state of an {A}-set and the {B}-set.
	var before struct {
		Sets []SetDTO `json:"sets"`
	}
	get(t, s, "/sets?attrs=A", http.StatusOK, &before)
	if len(before.Sets) != 1 {
		t.Fatalf("the paper example should serve set {A}: %+v", before.Sets)
	}
	var beforeB struct {
		Sets []SetDTO `json:"sets"`
	}
	get(t, s, "/sets?attrs=B", http.StatusOK, &beforeB)
	if len(beforeB.Sets) != 1 {
		t.Fatal("the paper example should serve set {B}")
	}

	// Warm the on-demand cache with a clean set ({C}) and a dirty one
	// ({A, C}).
	var eps map[string]any
	get(t, s, "/epsilon?attrs=C", http.StatusOK, &eps)
	get(t, s, "/epsilon?attrs=A,C", http.StatusOK, &eps)
	callsAfterWarm := est.calls.Load()

	// One new vertex carrying A: σ({A}) and σ({A,B}) change, {B} does
	// not.
	resp := postUpdates(t, s, `{"op":"add_vertex","vertex":"v99","attrs":["A"]}`+"\n", http.StatusAccepted)
	if resp["accepted"].(float64) != 1 || resp["data_version"].(float64) != 2 {
		t.Fatalf("update response: %v", resp)
	}

	swap := waitSwap(t, swaps)
	if swap.Version != 2 {
		t.Fatalf("swap version = %d", swap.Version)
	}
	if swap.Result.Stats.ReusedSets == 0 {
		t.Fatalf("remine reused nothing: %+v", swap.Result.Stats)
	}

	get(t, s, "/version", http.StatusOK, &ver)
	if ver["served_version"].(float64) != 2 || ver["data_version"].(float64) != 2 {
		t.Fatalf("post-update /version = %v", ver)
	}
	if _, hasErr := ver["last_remine_error"]; hasErr {
		t.Fatalf("remine error reported: %v", ver)
	}

	// The changed set is re-served with its new support…
	var after struct {
		Sets []SetDTO `json:"sets"`
	}
	get(t, s, "/sets?attrs=A", http.StatusOK, &after)
	if len(after.Sets) != 1 || after.Sets[0].Support != before.Sets[0].Support+1 {
		t.Fatalf("set {A} support = %+v, want %d", after.Sets, before.Sets[0].Support+1)
	}
	// …under the same stable id (content-addressed on the names).
	if after.Sets[0].ID != before.Sets[0].ID {
		t.Fatalf("set {A} id changed: %s vs %s", after.Sets[0].ID, before.Sets[0].ID)
	}
	// The untouched set carries its ε-derived values over by value —
	// only the δ-normalization may move, since the null model sees the
	// new global degree distribution.
	var afterB struct {
		Sets []SetDTO `json:"sets"`
	}
	get(t, s, "/sets?attrs=B", http.StatusOK, &afterB)
	gotB, wantB := afterB.Sets[0], beforeB.Sets[0]
	if gotB.ID != wantB.ID || gotB.Support != wantB.Support ||
		gotB.Epsilon != wantB.Epsilon || gotB.Covered != wantB.Covered ||
		gotB.Patterns != wantB.Patterns {
		t.Fatalf("clean set {B} changed: %+v vs %+v", gotB, wantB)
	}
	if gotB.ExpectedEpsilon == wantB.ExpectedEpsilon {
		t.Fatal("expected ε was not re-normalized against the updated graph")
	}

	// Cache invalidation: {C} is clean and must still answer from the
	// cache (no new estimator call); {A, C} intersects the dirty
	// attributes and must be recomputed.
	get(t, s, "/epsilon?attrs=C", http.StatusOK, &eps)
	if eps["source"] != "cache" {
		t.Fatalf("clean cached entry was dropped: source = %v", eps["source"])
	}
	if est.calls.Load() != callsAfterWarm {
		t.Fatalf("clean cache hit triggered %d extra estimator calls", est.calls.Load()-callsAfterWarm)
	}
	get(t, s, "/epsilon?attrs=A,C", http.StatusOK, &eps)
	if eps["source"] != "computed" {
		t.Fatalf("dirty cache entry survived the update: source = %v", eps["source"])
	}
	if est.calls.Load() != callsAfterWarm+1 {
		t.Fatalf("dirty recompute ran %d estimator calls, want 1", est.calls.Load()-callsAfterWarm)
	}

	// A second batch chains: the remine consumes the lattice the first
	// remine recorded.
	postUpdates(t, s, `{"op":"set_attr","vertex":"v99","attr":"B"}`, http.StatusAccepted)
	swap = waitSwap(t, swaps)
	if swap.Version != 3 || swap.Result.Stats.ReusedSets == 0 {
		t.Fatalf("chained swap: v%d, stats %+v", swap.Version, swap.Result.Stats)
	}
	st := s.Stats()
	if st.UpdatesAccepted != 2 || st.Remines != 2 || !st.LiveUpdates {
		t.Fatalf("server stats: %+v", st)
	}
}

// TestUpdatesValidation covers the rejection paths: disabled servers,
// wrong methods, malformed bodies and invalid operations (atomic
// all-or-nothing batches).
func TestUpdatesValidation(t *testing.T) {
	bare, err := New(Config{Index: mustIndex(t)})
	if err != nil {
		t.Fatal(err)
	}
	postUpdates(t, bare, `{"op":"add_vertex","vertex":"x"}`, http.StatusNotImplemented)

	s, _, _ := newLiveServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/updates", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /updates = %d", rec.Code)
	}

	cases := []string{
		``,                                            // empty batch
		`not json`,                                    // malformed line
		`{"op":"explode"}`,                            // unknown op
		`{"op":"add_edge","u":"1","v":"nope"}`,        // unknown vertex
		`{"op":"add_vertex","vertex":"1"}`,            // duplicate vertex
		`{"op":"remove_edge","u":"1","v":"1"}`,        // self loop
		`{"op":"add_vertex","bogus_field":"x"}`,       // unknown field
		`{"op":"unset_attr","vertex":"1","attr":"Z"}`, // absent attribute
	}
	for _, body := range cases {
		postUpdates(t, s, body, http.StatusBadRequest)
	}
	// A failed batch must be atomic: valid first line, broken second.
	postUpdates(t, s, `{"op":"add_vertex","vertex":"v50"}`+"\n"+`{"op":"explode"}`, http.StatusBadRequest)
	var ver map[string]any
	get(t, s, "/version", http.StatusOK, &ver)
	if ver["data_version"].(float64) != 1 {
		t.Fatalf("rejected batch advanced the data version: %v", ver)
	}
}

// TestUpdatesConcurrentReads is the no-drop/no-block guarantee under
// -race: readers hammer every endpoint while update batches land and
// background remines swap generations; every read must complete with
// a sane 200 answer.
func TestUpdatesConcurrentReads(t *testing.T) {
	s, _, swaps := newLiveServer(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{
		"/sets", "/sets?attrs=A", "/patterns", "/healthz", "/version",
		"/epsilon?attrs=C", "/epsilon?attrs=A,B", "/stats",
	}
	errCh := make(chan string, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(i+r)%len(paths)]
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
				if rec.Code != http.StatusOK {
					select {
					case errCh <- fmt.Sprintf("%d %s", rec.Code, path):
					default:
					}
					return
				}
			}
		}(r)
	}

	for i := 0; i < 5; i++ {
		body := `{"op":"add_vertex","vertex":"w` + string(rune('a'+i)) + `","attrs":["A","B"]}`
		postUpdates(t, s, body, http.StatusAccepted)
	}
	// Every accepted update must eventually be served: wait until the
	// served version reaches the data head.
	deadline := time.After(60 * time.Second)
	for {
		var ver map[string]any
		get(t, s, "/version", http.StatusOK, &ver)
		if ver["served_version"] == ver["data_version"] && ver["remine_in_progress"] != true {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("remine never caught up: %v", ver)
		case <-swaps:
		case <-time.After(50 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	select {
	case e := <-errCh:
		t.Fatalf("concurrent read failed: %s", e)
	default:
	}

	// The final state serves the five added vertices.
	gen := s.gen.Load()
	if gen.g.NumVertices() != graph.PaperExample().NumVertices()+5 {
		t.Fatalf("final graph has %d vertices", gen.g.NumVertices())
	}
}

// TestUpdatesRemineFailureKeepsServing: a remine that cannot finish
// (search budget exhausted) must leave the previous generation serving
// and surface the error on /version.
func TestUpdatesRemineFailureKeepsServing(t *testing.T) {
	g := graph.PaperExample()
	p := core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10, RecordLattice: true}
	res, err := core.Mine(context.Background(), g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The remine runs with an impossible budget, so it must fail.
	pBad := p
	pBad.SearchBudget = 1
	var mu sync.Mutex
	swapped := false
	s, err := New(Config{
		Index:     index.Build(res, g),
		Graph:     g,
		Estimator: p.NewEstimator(),
		Result:    res,
		Params:    &pBad,
		OnSwap: func(SwapEvent) {
			mu.Lock()
			swapped = true
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	postUpdates(t, s, `{"op":"add_vertex","vertex":"x","attrs":["A"]}`, http.StatusAccepted)

	deadline := time.After(30 * time.Second)
	for {
		var ver map[string]any
		get(t, s, "/version", http.StatusOK, &ver)
		if _, hasErr := ver["last_remine_error"]; hasErr {
			if ver["served_version"].(float64) != 1 || ver["data_version"].(float64) != 2 {
				t.Fatalf("failure state: %v", ver)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("remine failure never surfaced")
		case <-time.After(20 * time.Millisecond):
		}
	}
	// The old generation keeps serving.
	var health map[string]any
	get(t, s, "/healthz", http.StatusOK, &health)
	if health["version"].(float64) != 1 {
		t.Fatalf("healthz after failed remine: %v", health)
	}
	mu.Lock()
	defer mu.Unlock()
	if swapped {
		t.Fatal("failed remine must not swap a generation")
	}
}
