package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/epsilon"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/index"
)

// countingEstimator wraps an Estimator and counts Estimate calls, so
// tests can assert how many quasi-clique searches a request pattern
// actually triggered.
type countingEstimator struct {
	inner epsilon.Estimator
	calls atomic.Int64
}

// Estimate implements epsilon.Estimator.
func (c *countingEstimator) Estimate(g *graph.Graph, attrs []int32, members, candidates *bitset.Set) (epsilon.Estimate, error) {
	c.calls.Add(1)
	return c.inner.Estimate(g, attrs, members, candidates)
}

// EstimateWithCerts implements epsilon.Estimator.
func (c *countingEstimator) EstimateWithCerts(g *graph.Graph, attrs []int32, members, candidates *bitset.Set, certs *epsilon.CertStore) (epsilon.Estimate, error) {
	c.calls.Add(1)
	return c.inner.EstimateWithCerts(g, attrs, members, candidates, certs)
}

// Name implements epsilon.Estimator.
func (c *countingEstimator) Name() string { return c.inner.Name() }

// newTestServer mines the paper example and serves it with a counting
// exact estimator and the analytical null model.
func newTestServer(t testing.TB, cacheSize int) (*Server, *graph.Graph, *core.Result, *countingEstimator) {
	t.Helper()
	g := graph.PaperExample()
	p := core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10}
	res, err := core.Mine(context.Background(), g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The on-demand estimator uses min_size 2 so that queries over the
	// example's small supports (σ({C}) = 3 < the mining min_size of 4)
	// still run a real coverage search — the tests assert its node
	// spend.
	pEst := p
	pEst.MinSize = 2
	est := &countingEstimator{inner: pEst.NewEstimator()}
	s, err := New(Config{
		Index:     index.Build(res, g),
		Graph:     g,
		Estimator: est,
		Model:     p.NewModel(g),
		CacheSize: cacheSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, g, res, est
}

// get performs a request and decodes the JSON body into out.
func get(t *testing.T, s *Server, path string, wantStatus int, out any) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != wantStatus {
		t.Fatalf("GET %s = %d, want %d; body: %s", path, rec.Code, wantStatus, rec.Body)
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, rec.Body)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, _, _, _ := newTestServer(t, 0)
	var body struct {
		Status   string `json:"status"`
		Sets     int    `json:"sets"`
		Patterns int    `json:"patterns"`
	}
	get(t, s, "/healthz", http.StatusOK, &body)
	if body.Status != "ok" || body.Sets != 3 || body.Patterns != 7 {
		t.Fatalf("healthz = %+v", body)
	}
}

type setsResponse struct {
	Sets []struct {
		ID       string   `json:"id"`
		Attrs    []string `json:"attrs"`
		Support  int      `json:"support"`
		Epsilon  float64  `json:"epsilon"`
		Delta    string   `json:"delta"`
		Patterns int      `json:"patterns"`
	} `json:"sets"`
	Total int `json:"total"`
}

func TestSetsListingFiltersAndRanking(t *testing.T) {
	s, _, res, _ := newTestServer(t, 0)

	var all setsResponse
	get(t, s, "/sets", http.StatusOK, &all)
	if all.Total != 3 || len(all.Sets) != 3 {
		t.Fatalf("all sets: %+v", all)
	}
	for i, set := range all.Sets {
		if set.ID != res.Sets[i].ID() {
			t.Fatalf("set %d id mismatch", i)
		}
	}

	var contains setsResponse
	get(t, s, "/sets?contains=A", http.StatusOK, &contains)
	if contains.Total != 2 {
		t.Fatalf("contains=A: %+v", contains)
	}

	var within setsResponse
	get(t, s, "/sets?within=A,B", http.StatusOK, &within)
	if within.Total != 3 {
		t.Fatalf("within=A,B: %+v", within)
	}

	var exact setsResponse
	get(t, s, "/sets?attrs=B,A", http.StatusOK, &exact)
	if exact.Total != 1 || len(exact.Sets[0].Attrs) != 2 {
		t.Fatalf("attrs=B,A: %+v", exact)
	}

	var ranked setsResponse
	get(t, s, "/sets?rank=support&k=1", http.StatusOK, &ranked)
	if ranked.Total != 1 || ranked.Sets[0].Support < 6 {
		t.Fatalf("rank=support&k=1: %+v", ranked)
	}

	var filtered setsResponse
	get(t, s, "/sets?min_support=7", http.StatusOK, &filtered)
	for _, set := range filtered.Sets {
		if set.Support < 7 {
			t.Fatalf("min_support violated: %+v", set)
		}
	}

	get(t, s, "/sets?attrs=A&contains=B", http.StatusBadRequest, nil)
	get(t, s, "/sets?rank=bogus", http.StatusBadRequest, nil)
	get(t, s, "/sets?k=-1", http.StatusBadRequest, nil)
}

func TestSetByIDAndPatterns(t *testing.T) {
	s, _, res, _ := newTestServer(t, 0)
	ab := res.SetByNames("A", "B")
	if ab == nil {
		t.Fatal("example must contain {A,B}")
	}
	var body struct {
		Set struct {
			ID string `json:"id"`
		} `json:"set"`
		Patterns []struct {
			ID       string   `json:"id"`
			Set      string   `json:"set"`
			Vertices []string `json:"vertices"`
			Size     int      `json:"size"`
		} `json:"patterns"`
	}
	get(t, s, "/sets/"+ab.ID(), http.StatusOK, &body)
	if body.Set.ID != ab.ID() || len(body.Patterns) == 0 {
		t.Fatalf("set detail: %+v", body)
	}
	for _, p := range body.Patterns {
		if p.Set != ab.ID() || len(p.Vertices) != p.Size {
			t.Fatalf("pattern detail: %+v", p)
		}
	}
	get(t, s, "/sets/ffffffffffffffff", http.StatusNotFound, nil)
}

func TestPatternsEndpoint(t *testing.T) {
	s, _, res, _ := newTestServer(t, 0)
	var all struct {
		Patterns []struct {
			ID  string `json:"id"`
			Set string `json:"set"`
		} `json:"patterns"`
		Total int `json:"total"`
	}
	get(t, s, "/patterns", http.StatusOK, &all)
	if all.Total != 7 {
		t.Fatalf("patterns: %+v", all.Total)
	}
	var byVertex struct {
		Total int `json:"total"`
	}
	get(t, s, "/patterns?vertex=6", http.StatusOK, &byVertex)
	if byVertex.Total == 0 {
		t.Fatal("vertex filter found nothing")
	}
	var bySet struct {
		Total int `json:"total"`
	}
	get(t, s, "/patterns?set="+res.Sets[0].ID(), http.StatusOK, &bySet)
	if bySet.Total == 0 {
		t.Fatal("set filter found nothing")
	}
	var sized struct {
		Patterns []struct {
			Size int `json:"size"`
		} `json:"patterns"`
	}
	get(t, s, "/patterns?min_size=6&limit=2", http.StatusOK, &sized)
	if len(sized.Patterns) != 2 {
		t.Fatalf("min_size+limit: %+v", sized)
	}
	for _, p := range sized.Patterns {
		if p.Size < 6 {
			t.Fatalf("min_size violated: %+v", p)
		}
	}
}

func TestVerticesEndpoint(t *testing.T) {
	s, _, _, _ := newTestServer(t, 0)
	var body struct {
		Vertex   string `json:"vertex"`
		Patterns []any  `json:"patterns"`
		Sets     []any  `json:"sets"`
	}
	get(t, s, "/vertices/6", http.StatusOK, &body)
	if body.Vertex != "6" || len(body.Patterns) == 0 || len(body.Sets) == 0 {
		t.Fatalf("vertex 6: %+v", body)
	}
	// Vertex 1 exists in the graph but sits in no pattern: 200, empty.
	get(t, s, "/vertices/1", http.StatusOK, &body)
	if len(body.Patterns) != 0 {
		t.Fatalf("vertex 1: %+v", body)
	}
	get(t, s, "/vertices/unknown-vertex", http.StatusNotFound, nil)
}

func TestNDJSONFormat(t *testing.T) {
	s, _, _, _ := newTestServer(t, 0)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sets?format=ndjson", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d invalid: %v", lines, err)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("ndjson lines = %d", lines)
	}
}

type epsilonResponse struct {
	ID              string   `json:"id"`
	Attrs           []string `json:"attrs"`
	Support         int      `json:"support"`
	Epsilon         float64  `json:"epsilon"`
	Covered         int      `json:"covered"`
	ExpectedEpsilon *float64 `json:"expected_epsilon"`
	Delta           string   `json:"delta"`
	Source          string   `json:"source"`
}

func TestEpsilonIndexedAnswer(t *testing.T) {
	s, _, res, est := newTestServer(t, 0)
	var ans epsilonResponse
	get(t, s, "/epsilon?attrs=B,A", http.StatusOK, &ans)
	ab := res.SetByNames("A", "B")
	if ans.Source != "index" || ans.ID != ab.ID() || ans.Epsilon != ab.Epsilon || ans.Support != ab.Support {
		t.Fatalf("indexed answer: %+v", ans)
	}
	if est.calls.Load() != 0 {
		t.Fatal("indexed answer must not touch the estimator")
	}
	if st := s.Stats(); st.EpsilonIndexed != 1 || st.SearchNodes != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEpsilonComputedThenCached(t *testing.T) {
	s, _, _, est := newTestServer(t, 0)

	// {C} is frequent in the example but not in the mined result
	// (ε < εmin), so this is an uncached on-demand computation.
	var first epsilonResponse
	get(t, s, "/epsilon?attrs=C", http.StatusOK, &first)
	if first.Source != "computed" || first.Support == 0 {
		t.Fatalf("first answer: %+v", first)
	}
	if first.ExpectedEpsilon == nil || first.Delta == "" {
		t.Fatalf("model fields missing: %+v", first)
	}
	if est.calls.Load() != 1 {
		t.Fatalf("estimator calls = %d", est.calls.Load())
	}
	nodesAfterCompute := s.Stats().SearchNodes
	if nodesAfterCompute == 0 {
		t.Fatal("computing ε({C}) must spend search nodes")
	}

	// The repeat answers from cache with zero additional quasi-clique
	// work — the acceptance assertion of the serving layer.
	var second epsilonResponse
	get(t, s, "/epsilon?attrs=C", http.StatusOK, &second)
	if second.Source != "cache" {
		t.Fatalf("second answer: %+v", second)
	}
	if second.Epsilon != first.Epsilon || second.Covered != first.Covered || second.ID != first.ID {
		t.Fatalf("cache answer diverged: %+v vs %+v", second, first)
	}
	if est.calls.Load() != 1 {
		t.Fatalf("cache hit ran the estimator (calls = %d)", est.calls.Load())
	}
	if st := s.Stats(); st.SearchNodes != nodesAfterCompute {
		t.Fatalf("cache hit spent %d extra search nodes", st.SearchNodes-nodesAfterCompute)
	}
	if st := s.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache counters: %+v", st)
	}
}

func TestEpsilonErrors(t *testing.T) {
	s, _, _, _ := newTestServer(t, 0)
	get(t, s, "/epsilon", http.StatusBadRequest, nil)
	get(t, s, "/epsilon?attrs=NoSuchAttr", http.StatusNotFound, nil)

	// Without graph/estimator the endpoint still serves indexed sets
	// but refuses on-demand computation.
	bare, err := New(Config{Index: mustIndex(t)})
	if err != nil {
		t.Fatal(err)
	}
	get(t, bare, "/epsilon?attrs=A", http.StatusOK, nil)
	get(t, bare, "/epsilon?attrs=C", http.StatusNotImplemented, nil)
}

func mustIndex(t *testing.T) *index.Index {
	t.Helper()
	g := graph.PaperExample()
	res, err := core.Mine(context.Background(), g, core.Params{
		SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(res, g)
}

// TestEpsilonSingleflight fires a burst of identical cold queries; the
// singleflight must collapse them into one estimator call.
func TestEpsilonSingleflight(t *testing.T) {
	s, _, _, est := newTestServer(t, 0)
	const burst = 32
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/epsilon?attrs=D", nil))
			if rec.Code != http.StatusOK {
				t.Errorf("status %d", rec.Code)
			}
		}()
	}
	wg.Wait()
	if got := est.calls.Load(); got != 1 {
		t.Fatalf("singleflight leaked: %d estimator calls for %d identical queries", got, burst)
	}
}

// TestEpsilonCacheEviction checks the LRU bound holds.
func TestEpsilonCacheEviction(t *testing.T) {
	s, g, _, _ := newTestServer(t, 2)
	attrs := []string{"C", "D", "E"}
	for _, a := range attrs {
		if _, ok := g.AttrID(a); !ok {
			t.Fatalf("example lacks attribute %s", a)
		}
		get(t, s, "/epsilon?attrs="+a, http.StatusOK, nil)
	}
	if got := s.Stats().CacheEntries; got != 2 {
		t.Fatalf("cache entries = %d, want 2", got)
	}
	// The oldest key {C} was evicted: querying it again recomputes.
	before := s.Stats().CacheMisses
	get(t, s, "/epsilon?attrs=C", http.StatusOK, nil)
	if got := s.Stats().CacheMisses; got != before+1 {
		t.Fatalf("expected recompute after eviction (misses %d → %d)", before, got)
	}
}

// TestConcurrentMixedWorkload hammers every endpoint from many
// goroutines; run with -race this is the serving-layer concurrency
// gate.
func TestConcurrentMixedWorkload(t *testing.T) {
	s, _, res, _ := newTestServer(t, 8)
	paths := []string{
		"/healthz",
		"/stats",
		"/sets",
		"/sets?rank=epsilon&k=2",
		"/sets?contains=A&format=ndjson",
		"/sets/" + res.Sets[0].ID(),
		"/patterns?vertex=6",
		"/patterns?min_size=6",
		"/vertices/7",
		"/epsilon?attrs=A,B",
		"/epsilon?attrs=C",
		"/epsilon?attrs=D",
		"/epsilon?attrs=C,D",
	}
	const workers = 16
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				path := paths[(w+i)%len(paths)]
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
				if rec.Code != http.StatusOK {
					t.Errorf("GET %s = %d: %s", path, rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Requests != workers*perWorker {
		t.Fatalf("requests = %d, want %d", st.Requests, workers*perWorker)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _, _, _ := newTestServer(t, 0)
	var body struct {
		Index struct {
			Sets int `json:"sets"`
		} `json:"index"`
		Mining struct {
			SetsEmitted int64 `json:"sets_emitted"`
		} `json:"mining"`
		Server Stats `json:"server"`
	}
	get(t, s, "/stats", http.StatusOK, &body)
	if body.Index.Sets != 3 || body.Mining.SetsEmitted != 3 {
		t.Fatalf("stats: %+v", body)
	}
	if !body.Server.OnDemand {
		t.Fatal("on_demand should be true with graph+estimator")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _, _, _ := newTestServer(t, 0)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/sets", strings.NewReader("{}")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /sets = %d", rec.Code)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error == "" {
		t.Fatalf("405 must carry the JSON error envelope, got %q", rec.Body)
	}
}

func TestUnknownPathJSON404(t *testing.T) {
	s, _, _, _ := newTestServer(t, 0)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/no/such/endpoint", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d", rec.Code)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error == "" {
		t.Fatalf("404 must carry the JSON error envelope, got %q", rec.Body)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	s, _, _, _ := newTestServer(t, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, s) }()

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP = %d", resp.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
}

// panickyEstimator panics on its first call, then delegates — the
// singleflight cleanup must survive it.
type panickyEstimator struct {
	inner epsilon.Estimator
	first atomic.Bool
}

// Estimate implements epsilon.Estimator.
func (p *panickyEstimator) Estimate(g *graph.Graph, attrs []int32, members, candidates *bitset.Set) (epsilon.Estimate, error) {
	if !p.first.Swap(true) {
		panic("injected estimator failure")
	}
	return p.inner.Estimate(g, attrs, members, candidates)
}

// EstimateWithCerts implements epsilon.Estimator.
func (p *panickyEstimator) EstimateWithCerts(g *graph.Graph, attrs []int32, members, candidates *bitset.Set, certs *epsilon.CertStore) (epsilon.Estimate, error) {
	return p.Estimate(g, attrs, members, candidates)
}

// Name implements epsilon.Estimator.
func (p *panickyEstimator) Name() string { return p.inner.Name() }

// TestEpsilonPanicDoesNotWedgeKey injects a panic into the first
// computation of a key: the request must fail with 500 (not hang), and
// a retry of the same key must compute normally — i.e. the inflight
// entry was cleaned up.
func TestEpsilonPanicDoesNotWedgeKey(t *testing.T) {
	g := graph.PaperExample()
	p := core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 2, EpsMin: 0.5, K: 10}
	res, err := core.Mine(context.Background(), g, core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Index:     index.Build(res, g),
		Graph:     g,
		Estimator: &panickyEstimator{inner: p.NewEstimator()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/epsilon?attrs=C", nil))
	if rec.Code != http.StatusInternalServerError || !strings.Contains(rec.Body.String(), "panicked") {
		t.Fatalf("panicking computation: %d %s", rec.Code, rec.Body)
	}
	// Same key again: must not hang on a leaked inflight entry.
	get(t, s, "/epsilon?attrs=C", http.StatusOK, nil)
}

// TestEpsilonBudgetExceeded bounds the on-demand search and expects a
// clean 503 when a query exhausts it.
func TestEpsilonBudgetExceeded(t *testing.T) {
	g := graph.PaperExample()
	res, err := core.Mine(context.Background(), g, core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pEst := core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 2, EpsMin: 0.5, K: 10, SearchBudget: 1}
	s, err := New(Config{
		Index:     index.Build(res, g),
		Graph:     g,
		Estimator: pEst.NewEstimator(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/epsilon?attrs=C", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("budget-bounded query: %d %s", rec.Code, rec.Body)
	}
}
