package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkHealthz measures the full instrumented request path on the
// cheapest endpoint, where per-request metric overhead is most
// visible relative to handler work.
func BenchmarkHealthz(b *testing.B) {
	s, _, _, _ := newTestServer(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	}
}
