package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// ShutdownGrace bounds how long Serve waits for in-flight requests
// after its context is canceled.
const ShutdownGrace = 5 * time.Second

// Serve runs h on the listener until ctx is canceled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// ShutdownGrace to finish, and nil is returned for a clean shutdown.
// Ownership of ln transfers to the HTTP server (it is closed on
// return).
func Serve(ctx context.Context, ln net.Listener, h http.Handler) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		// Serve has returned ErrServerClosed by now; drain it.
		<-errCh
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
