package server

import (
	"container/list"
	"fmt"
	"sync"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/obs"
)

// epsCache is a bounded LRU cache with singleflight admission: when
// several goroutines ask for the same missing key concurrently, exactly
// one computes it while the rest block on the shared in-flight call and
// receive its result. This is what keeps hot /epsilon queries
// sub-millisecond (a map hit under one mutex) and guarantees a burst of
// identical cold queries costs one quasi-clique search, not N.
//
// Every entry is tagged with the graph version it was computed at.
// When a live update swaps the serving generation, invalidate drops
// exactly the entries whose attribute set intersects the update's
// dirty attributes — clean answers are provably unchanged (see
// graph.ChangeSet) and keep serving — and bumps the cache's version so
// computations still in flight against the old generation cannot
// poison the cache with stale answers.
type epsCache struct {
	mu       sync.Mutex
	cap      int
	version  uint64                   // current graph version; gates insertions
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // key → element holding *cacheEntry
	inflight map[string]*inflightCall

	// Metric hooks, wired by the server after construction; nil-safe
	// no-ops until then.
	evictions *obs.Counter // entries dropped by the LRU capacity bound
	shared    *obs.Counter // callers that joined an in-flight computation
}

// cacheEntry is one cached answer with its provenance: the attribute
// ids it answers for (the invalidation key) and the graph version it
// was computed at.
type cacheEntry struct {
	key     string
	attrs   []int32
	version uint64
	val     EpsilonAnswer
}

// inflightCall is a computation in progress; waiters block on done.
type inflightCall struct {
	done chan struct{}
	val  EpsilonAnswer
	err  error
}

// newEpsCache builds a cache bounded to capacity entries (minimum 1).
func newEpsCache(capacity int) *epsCache {
	if capacity < 1 {
		capacity = 1
	}
	return &epsCache{
		cap:      capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*inflightCall),
	}
}

// get returns the cached answer for key, refreshing its recency.
func (c *epsCache) get(key string) (EpsilonAnswer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return EpsilonAnswer{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// do returns the answer for key, computing it with fn on a miss.
// Concurrent callers of the same missing key share one fn invocation
// (singleflight); a failed computation is not cached, so a later caller
// retries. The second return reports whether the answer came from the
// cache (true) rather than from running — or joining — a computation.
//
// attrs and version tag the computation: the answer is only admitted
// to the cache when the cache's version still equals version when the
// computation finishes, so an answer computed against a generation
// that was swapped out mid-flight is returned to its waiters but never
// cached.
func (c *epsCache) do(key string, attrs []int32, version uint64, fn func() (EpsilonAnswer, error)) (val EpsilonAnswer, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.shared.Inc()
		<-call.done
		return call.val, false, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	// The cleanup must run even when fn panics (net/http recovers the
	// serving goroutine, so the process survives): a leaked inflight
	// entry would block every future request for this key forever. The
	// panic degrades to an error for the caller and all waiters.
	defer func() {
		if r := recover(); r != nil {
			call.err = fmt.Errorf("epsilon computation panicked: %v", r)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if call.err == nil && c.version == version {
			c.insert(key, attrs, version, call.val)
		}
		c.mu.Unlock()
		close(call.done)
		val, cached, err = call.val, false, call.err
	}()
	call.val, call.err = fn()
	return
}

// insert adds a computed answer, evicting the least recently used entry
// beyond capacity. Callers hold c.mu.
func (c *epsCache) insert(key string, attrs []int32, version uint64, val EpsilonAnswer) {
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.val = val
		ent.version = version
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, attrs: attrs, version: version, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// setVersion pins the graph version newly computed answers are
// admitted under (boot-time wiring).
func (c *epsCache) setVersion(v uint64) {
	c.mu.Lock()
	c.version = v
	c.mu.Unlock()
}

// invalidate drops every cached answer whose attribute set intersects
// the dirty attributes of a just-published update and advances the
// cache to the new graph version. Entries left behind are exactly the
// provably-unchanged ones; they keep serving across versions.
func (c *epsCache) invalidate(dirty *bitset.Set, newVersion uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version = newVersion
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		for _, a := range ent.attrs {
			if dirty.Contains(int(a)) {
				c.ll.Remove(el)
				delete(c.entries, ent.key)
				break
			}
		}
		el = next
	}
}

// len returns the number of cached entries.
func (c *epsCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
