package server

import (
	"container/list"
	"fmt"
	"sync"
)

// epsCache is a bounded LRU cache with singleflight admission: when
// several goroutines ask for the same missing key concurrently, exactly
// one computes it while the rest block on the shared in-flight call and
// receive its result. This is what keeps hot /epsilon queries
// sub-millisecond (a map hit under one mutex) and guarantees a burst of
// identical cold queries costs one quasi-clique search, not N.
type epsCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // key → element holding *cacheEntry
	inflight map[string]*inflightCall
}

// cacheEntry is one cached answer.
type cacheEntry struct {
	key string
	val epsilonAnswer
}

// inflightCall is a computation in progress; waiters block on done.
type inflightCall struct {
	done chan struct{}
	val  epsilonAnswer
	err  error
}

// newEpsCache builds a cache bounded to capacity entries (minimum 1).
func newEpsCache(capacity int) *epsCache {
	if capacity < 1 {
		capacity = 1
	}
	return &epsCache{
		cap:      capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*inflightCall),
	}
}

// get returns the cached answer for key, refreshing its recency.
func (c *epsCache) get(key string) (epsilonAnswer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return epsilonAnswer{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// do returns the answer for key, computing it with fn on a miss.
// Concurrent callers of the same missing key share one fn invocation
// (singleflight); a failed computation is not cached, so a later caller
// retries. The second return reports whether the answer came from the
// cache (true) rather than from running — or joining — a computation.
func (c *epsCache) do(key string, fn func() (epsilonAnswer, error)) (val epsilonAnswer, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		return call.val, false, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	// The cleanup must run even when fn panics (net/http recovers the
	// serving goroutine, so the process survives): a leaked inflight
	// entry would block every future request for this key forever. The
	// panic degrades to an error for the caller and all waiters.
	defer func() {
		if r := recover(); r != nil {
			call.err = fmt.Errorf("epsilon computation panicked: %v", r)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if call.err == nil {
			c.insert(key, call.val)
		}
		c.mu.Unlock()
		close(call.done)
		val, cached, err = call.val, false, call.err
	}()
	call.val, call.err = fn()
	return
}

// insert adds a computed answer, evicting the least recently used entry
// beyond capacity. Callers hold c.mu.
func (c *epsCache) insert(key string, val epsilonAnswer) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries.
func (c *epsCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
