// This file is the live-update path: POST /updates applies a batch of
// NDJSON graph operations to the data head, then a background
// goroutine re-mines incrementally (core.Remine over the accumulated
// dirty attributes) and publishes the new result with one atomic
// generation swap that concurrent readers never block on. GET /version
// reports where the data and the served results stand.

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/index"
)

// maxUpdateBody bounds one POST /updates request body.
const maxUpdateBody = 32 << 20

// UpdateOp is one NDJSON line of a POST /updates body. Op selects the
// operation; the other fields are operands (see docs/FILE_FORMATS.md):
//
//	{"op":"add_vertex","vertex":"v9","attrs":["A","B"]}
//	{"op":"add_edge","u":"v1","v":"v2"}
//	{"op":"remove_edge","u":"v1","v":"v2"}
//	{"op":"set_attr","vertex":"v1","attr":"C"}
//	{"op":"unset_attr","vertex":"v1","attr":"C"}
type UpdateOp struct {
	Op     string   `json:"op"`
	Vertex string   `json:"vertex,omitempty"`
	Attrs  []string `json:"attrs,omitempty"`
	Attr   string   `json:"attr,omitempty"`
	U      string   `json:"u,omitempty"`
	V      string   `json:"v,omitempty"`
}

// apply records the operation into the delta.
func (op UpdateOp) apply(d *graph.Delta) error {
	switch op.Op {
	case "add_vertex":
		return d.AddVertex(op.Vertex, op.Attrs...)
	case "add_edge":
		return d.AddEdge(op.U, op.V)
	case "remove_edge":
		return d.RemoveEdge(op.U, op.V)
	case "set_attr":
		return d.SetAttr(op.Vertex, op.Attr)
	case "unset_attr":
		return d.UnsetAttr(op.Vertex, op.Attr)
	default:
		return fmt.Errorf("unknown op %q (want add_vertex, add_edge, remove_edge, set_attr or unset_attr)", op.Op)
	}
}

// SwapEvent describes one published serving generation — the
// write-behind hook's payload.
type SwapEvent struct {
	// Version is the graph data version the new generation serves.
	Version uint64
	// Graph, Result and Index are the new generation's state.
	Graph  *graph.Graph
	Result *core.Result
	Index  *index.Index
	// Changes is the (merged) change set the remine covered.
	Changes *graph.ChangeSet
	// RemineDuration is the background remine wall time.
	RemineDuration time.Duration
}

// parseUpdateOps decodes an NDJSON op stream, rejecting blank-ops and
// malformed lines with their line number.
func parseUpdateOps(r io.Reader) ([]UpdateOp, error) {
	var ops []UpdateOp
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var op UpdateOp
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&op); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty update batch")
	}
	return ops, nil
}

// handleUpdates is POST /updates: parse the NDJSON ops, apply them
// atomically (all-or-nothing) to the data head, and schedule the
// background remine. The response returns as soon as the delta is
// applied; reads keep being served from the previous generation until
// the remine publishes the next one.
func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, "method not allowed (POST only)")
		return
	}
	if s.params == nil {
		writeErr(w, http.StatusNotImplemented, "live updates are disabled (server booted without mining result and parameters)")
		return
	}
	ops, err := parseUpdateOps(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("parsing update ops: %v", err))
		return
	}

	s.updateMu.Lock()
	base := s.headG
	d := base.NewDelta()
	for i, op := range ops {
		if err := op.apply(d); err != nil {
			s.updateMu.Unlock()
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("op %d: %v", i+1, err))
			return
		}
	}
	ng, cs, err := base.Apply(d)
	if err != nil {
		s.updateMu.Unlock()
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	s.headG = ng
	if s.pending == nil {
		s.pending = cs
	} else if err := s.pending.Merge(cs); err != nil {
		// Cannot happen: pending always ends where the head begins.
		s.updateMu.Unlock()
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !s.remining {
		s.remining = true
		go s.remineLoop()
	}
	dataVersion := ng.Version()
	s.updateMu.Unlock()

	s.updatesAccepted.Add(1)
	s.metrics.updatesAccepted.Inc()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted":         len(ops),
		"data_version":     dataVersion,
		"served_version":   s.gen.Load().version,
		"dirty_attributes": cs.DirtyAttrs.Count(),
		"dirty_vertices":   cs.DirtyVertices.Count(),
		"added_vertices":   cs.AddedVertices,
		"added_edges":      cs.AddedEdges,
		"removed_edges":    cs.RemovedEdges,
		"attr_changes":     cs.AttrsSet + cs.AttrsUnset,
		"remine":           "scheduled",
	})
}

// remineLoop drains pending updates: each pass re-mines the current
// data head incrementally from the served generation's result and
// publishes the new generation. Updates accepted while a remine runs
// are merged and handled by the next pass, so the loop converges to
// the head and exits.
func (s *Server) remineLoop() {
	for {
		s.updateMu.Lock()
		if s.pending == nil {
			s.remining = false
			s.updateMu.Unlock()
			return
		}
		g := s.headG
		cs := s.pending
		s.pending = nil
		s.updateMu.Unlock()

		if err := s.remineOnce(g, cs); err != nil {
			msg := err.Error()
			s.lastRemineErr.Store(&msg)
			s.metrics.remines.With("error").Inc()
			s.logf("remine failed",
				slog.Uint64("to_version", cs.ToVersion),
				slog.String("error", err.Error()))
			// Put the change set back so the next accepted update (whose
			// ChangeSet starts at cs.ToVersion and merges cleanly) retries
			// the whole span; without new updates the server keeps
			// serving the last good generation.
			s.updateMu.Lock()
			if s.pending == nil {
				s.pending = cs
			} else {
				newer := s.pending
				s.pending = cs
				if err := s.pending.Merge(newer); err != nil {
					s.logf("merging pending changes failed", slog.String("error", err.Error()))
				}
				// New updates arrived while we failed: retry now.
				s.updateMu.Unlock()
				continue
			}
			s.remining = false
			s.updateMu.Unlock()
			return
		}
		s.lastRemineErr.Store(nil)
	}
}

// remineOnce runs one incremental remine + index rebuild + swap. The
// remine streams its progress into the mining gauges, so a /metrics
// scrape mid-remine shows search nodes and reuse rates advancing.
func (s *Server) remineOnce(g *graph.Graph, cs *graph.ChangeSet) error {
	gen := s.gen.Load()
	start := time.Now()
	s.metrics.mining.Active.Set(1)
	defer s.metrics.mining.Active.Set(0)
	res, err := core.Remine(context.Background(), g, *s.params, gen.res, cs, s.miningSink())
	if err != nil {
		return err
	}
	observeMiningStats(s.metrics.mining, res.Stats)
	idx := gen.idx.Rebuild(res, g)
	ngen := &generation{
		version: g.Version(),
		g:       g,
		res:     res,
		idx:     idx,
		model:   s.params.NewModel(g),
	}
	s.gen.Store(ngen)
	s.cache.invalidate(cs.DirtyAttrs, ngen.version)
	s.remines.Add(1)
	s.metrics.remines.With("ok").Inc()
	s.metrics.remineDuration.Observe(time.Since(start).Seconds())
	s.logf("remine published",
		slog.Uint64("from_version", cs.FromVersion),
		slog.Uint64("to_version", cs.ToVersion),
		slog.Int("sets", len(res.Sets)),
		slog.Int64("reused", res.Stats.ReusedSets),
		slog.Int64("recomputed", res.Stats.RecomputedSets),
		slog.Duration("duration", time.Since(start).Round(time.Millisecond)))
	if s.onSwap != nil {
		s.onSwap(SwapEvent{
			Version:        ngen.version,
			Graph:          g,
			Result:         res,
			Index:          idx,
			Changes:        cs,
			RemineDuration: time.Since(start),
		})
	}
	return nil
}

// handleVersion is GET /version: the data version at the head, the
// version the served results reflect, and the remine status between
// them.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	gen := s.gen.Load()
	out := map[string]any{
		"served_version":  gen.version,
		"data_version":    gen.version,
		"updates_enabled": s.params != nil,
		"remines":         s.remines.Load(),
	}
	if s.params != nil {
		s.updateMu.Lock()
		out["data_version"] = s.headG.Version()
		out["remine_in_progress"] = s.remining
		s.updateMu.Unlock()
	}
	if msg := s.lastRemineErr.Load(); msg != nil {
		out["last_remine_error"] = *msg
	}
	writeJSON(w, http.StatusOK, out)
}
