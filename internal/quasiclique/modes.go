package quasiclique

import (
	"slices"
	"sort"

	"github.com/scpm/scpm/internal/bitset"
)

// EnumerateMaximal mines every maximal quasi-clique of g (the naive
// algorithm's per-induced-graph step). Results are sorted by
// ComparePatterns.
func EnumerateMaximal(g *Graph, p Params, o Options) ([]Pattern, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := newEngine(g, p, o)
	var found [][]int32
	h := hooks{
		needLocalMax: true,
		report: func(q []int32) bool {
			found = append(found, append([]int32(nil), q...))
			return true
		},
	}
	err := e.run(h)
	e.release()
	if err != nil {
		return nil, err
	}
	maximal := filterContained(g.n, found)
	out := make([]Pattern, len(maximal))
	for i, q := range maximal {
		out[i] = g.makePattern(q)
	}
	slices.SortFunc(out, func(a, b Pattern) int { return ComparePatterns(a, b) })
	return out, nil
}

// CoverageResult reports which vertices belong to at least one
// quasi-clique, plus search statistics.
type CoverageResult struct {
	// Covered is the set K of vertices inside quasi-cliques.
	Covered *bitset.Set
	// Nodes is the number of search-tree nodes processed.
	Nodes int64
}

// Coverage computes K(g): the set of vertices that are members of at
// least one γ-quasi-clique of size ≥ min_size (§3.2.2). It applies the
// covered-candidate pruning — nodes whose X ∪ candExts is entirely
// covered are skipped — and stops as soon as every surviving vertex is
// covered. The frontier order (BFS or DFS) comes from o.Order.
//
// The search runs on a degeneracy-relabeled copy of the graph (see
// orderedView): K is a set, so the answer is independent of vertex
// labels and is translated back to g's ids on the way out, while the
// relabeled candidate ordering shrinks the search tree.
func Coverage(g *Graph, p Params, o Options) (CoverageResult, error) {
	return CoverageSeeded(g, p, o, nil, nil)
}

// CoverageSeeded is Coverage with a certificate interface: seed (may be
// nil) is a set of g's vertices already proven covered — each must be a
// member of some γ-quasi-clique of g of size ≥ min_size — and emit
// (when non-nil) receives every quasi-clique the search reports, in g's
// vertex ids sorted ascending (the slice is reused across calls;
// receivers copy what they keep). Seeding never changes the returned
// covered set — K is a fixed property of the graph, and the search
// still visits every branch that could cover an unseeded vertex — it
// only removes the work of re-proving what the seed already certifies,
// so Nodes shrinks while Covered stays bit-identical.
func CoverageSeeded(g *Graph, p Params, o Options, seed *bitset.Set, emit func(q []int32)) (CoverageResult, error) {
	if err := p.Validate(); err != nil {
		return CoverageResult{}, err
	}
	ov := getOrderedView(g)
	e := newEngine(ov.g, p, o)
	covered := bitset.New(g.n) // new-id space during the search
	total := e.alive.Count()
	nCovered := 0
	if seed != nil {
		for v := seed.NextSet(0); v >= 0; v = seed.NextSet(v + 1) {
			nv := int(ov.newOf[v])
			// Valid certificates only name vertices that survive the
			// peel, but tolerate stray seeds: counting a dead vertex
			// would break the covered-vs-alive early stop.
			if e.alive.Contains(nv) && !covered.Contains(nv) {
				covered.Add(nv)
				nCovered++
			}
		}
	}
	emitBuf := ov.coverBuf
	h := hooks{
		prune: func(x []int32, ext int32, cands []int32) bool {
			for _, v := range x {
				if !covered.Contains(int(v)) {
					return false
				}
			}
			if ext >= 0 && !covered.Contains(int(ext)) {
				return false
			}
			for _, v := range cands {
				if !covered.Contains(int(v)) {
					return false
				}
			}
			return true
		},
		report: func(q []int32) bool {
			for _, v := range q {
				if !covered.Contains(int(v)) {
					covered.Add(int(v))
					nCovered++
				}
			}
			if emit != nil {
				emitBuf = emitBuf[:0]
				for _, v := range q {
					emitBuf = append(emitBuf, ov.origOf[v])
				}
				slices.Sort(emitBuf)
				emit(emitBuf)
			}
			return nCovered < total
		},
	}
	// When the seed already covers every surviving vertex the search
	// would prune everything node by node; skip it outright.
	var runErr error
	if nCovered < total {
		runErr = e.run(h)
	}
	nodes := e.nodes
	ov.coverBuf = emitBuf
	e.release()
	if runErr != nil {
		ov.release()
		return CoverageResult{}, runErr
	}
	out := bitset.New(g.n)
	for v := covered.NextSet(0); v >= 0; v = covered.NextSet(v + 1) {
		out.Add(int(ov.origOf[v]))
	}
	ov.release()
	return CoverageResult{Covered: out, Nodes: nodes}, nil
}

// TopK mines the k most relevant patterns of g: largest size first,
// density as tie-breaker (§3.2.3). The current k-th best size is used to
// prune candidate nodes that cannot produce a larger pattern, which is
// what makes small k much cheaper than full enumeration.
//
// The size threshold is a heuristic lower bound: the collected patterns
// pinning it down may share a maximal superset, in which case they
// collapse to fewer entries under the final containment filter and the
// threshold was too aggressive in hindsight. Every set suppressed by a
// threshold t (a pruned search node or a trimmed buffer entry) has size
// < t, so the result is provably correct whenever the k-th returned
// pattern still has size ≥ the largest threshold that actually
// suppressed work. When that check fails, TopK falls back to full
// enumeration so the result is always the true top k.
func TopK(g *Graph, p Params, k int, o Options) ([]Pattern, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, nil
	}
	e := newEngine(g, p, o)
	col := newCollector(g, k)
	// maxPruneNeed tracks the largest dynamic threshold that actually
	// pruned a node (thresholds equal to min_size are the fundamental
	// size constraint, not top-k dynamics, and never lose patterns).
	maxPruneNeed := 0
	h := hooks{
		needLocalMax: true,
		prune: func(x []int32, ext int32, cands []int32) bool {
			size := len(x) + len(cands)
			if ext >= 0 {
				size++
			}
			if size < col.sizeNeeded(p.MinSize) {
				if need := col.sizeNeeded(p.MinSize); need > p.MinSize && need > maxPruneNeed {
					maxPruneNeed = need
				}
				return true
			}
			return false
		},
		report: func(q []int32) bool {
			col.add(q)
			return true
		},
	}
	err := e.run(h)
	e.release()
	if err != nil {
		return nil, err
	}
	out := col.finalize()
	suppressed := maxInt(maxPruneNeed, col.maxTrimCut)
	if suppressed > 0 && (len(out) < k || out[len(out)-1].Size() < suppressed) {
		all, err := EnumerateMaximal(g, p, o)
		if err != nil {
			return nil, err
		}
		if len(all) > k {
			all = all[:k]
		}
		return all, nil
	}
	return out, nil
}

// collector accumulates top-k candidates. It keeps every reported
// pattern whose size could still matter (≥ the current k-th best size;
// equal-size patterns compete on density), then finalizes with a
// containment filter so subsets of larger quasi-cliques drop out.
type collector struct {
	g    *Graph
	k    int
	pats []Pattern // sorted by ComparePatterns (best first)
	// maxTrimCut is the largest size threshold that actually evicted a
	// buffered pattern; TopK uses it to decide whether the heuristic
	// pruning could have lost part of the true top k.
	maxTrimCut int
}

func newCollector(g *Graph, k int) *collector {
	return &collector{g: g, k: k}
}

// sizeNeeded is the smallest |X ∪ cands| a node must offer to be worth
// expanding: min_size until k patterns exist, then the k-th best size
// (equal size still admitted for the density tie-break).
func (c *collector) sizeNeeded(minSize int) int {
	if len(c.pats) < c.k {
		return minSize
	}
	return c.pats[c.k-1].Size()
}

func (c *collector) add(q []int32) {
	// Containment dedupe keeps the buffer — and therefore the pruning
	// threshold — honest: subsets of an already-collected quasi-clique
	// are never maximal, and collected subsets of q are superseded.
	for _, ex := range c.pats {
		if len(ex.Vertices) > len(q) && subsetOfSorted(q, ex.Vertices) {
			return
		}
	}
	w := 0
	for _, ex := range c.pats {
		if len(ex.Vertices) < len(q) && subsetOfSorted(ex.Vertices, q) {
			continue
		}
		c.pats[w] = ex
		w++
	}
	c.pats = c.pats[:w]

	pat := c.g.makePattern(q)
	pos := sort.Search(len(c.pats), func(i int) bool {
		return ComparePatterns(c.pats[i], pat) > 0
	})
	c.pats = append(c.pats, Pattern{})
	copy(c.pats[pos+1:], c.pats[pos:])
	c.pats[pos] = pat
	// Trim entries that can no longer reach the top k: strictly smaller
	// than the k-th best size.
	if len(c.pats) > c.k {
		cut := c.pats[c.k-1].Size()
		w := len(c.pats)
		for w > c.k && c.pats[w-1].Size() < cut {
			w--
		}
		if w < len(c.pats) && cut > c.maxTrimCut {
			c.maxTrimCut = cut
		}
		c.pats = c.pats[:w]
	}
}

func (c *collector) finalize() []Pattern {
	sets := make([][]int32, len(c.pats))
	for i, p := range c.pats {
		sets[i] = p.Vertices
	}
	maximal := filterContained(c.g.n, sets)
	out := make([]Pattern, 0, len(maximal))
	for _, q := range maximal {
		out = append(out, c.g.makePattern(q))
	}
	slices.SortFunc(out, func(a, b Pattern) int { return ComparePatterns(a, b) })
	if len(out) > c.k {
		out = out[:c.k]
	}
	return out
}
