package quasiclique

import (
	"testing"
)

// decodeFuzzGraph turns a fuzz byte stream into a small graph plus
// search parameters. Layout: data[0] selects the vertex count (4..12),
// data[1] the density threshold γ (including γ < 0.5, where maximal
// quasi-cliques may span connected components), data[2] min_size
// (2..5); the remaining bytes are a bit stream over the n(n−1)/2
// vertex pairs in lexicographic order (missing bits mean no edge).
func decodeFuzzGraph(data []byte) (*Graph, Params, bool) {
	if len(data) < 3 {
		return nil, Params{}, false
	}
	gammas := []float64{0.3, 0.4, 0.5, 0.6, 2.0 / 3.0, 0.75, 1.0}
	n := int(data[0])%9 + 4
	p := Params{
		Gamma:   gammas[int(data[1])%len(gammas)],
		MinSize: int(data[2])%4 + 2,
	}
	bits := data[3:]
	var edges [][2]int32
	k := 0
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if k/8 < len(bits) && bits[k/8]&(1<<uint(k%8)) != 0 {
				edges = append(edges, [2]int32{i, j})
			}
			k++
		}
	}
	return buildGraph(n, edges), p, true
}

// FuzzEngineMatchesBrute differentially checks the whole coverage DFS —
// enumeration, coverage, seeded coverage and the anchored membership
// query — against the exhaustive subset reference in brute.go. Every
// optimization under test (degeneracy ordering, bitset kernels, arena
// reuse, certificate seeding) must be invisible in the output. Run
// locally with
//
//	go test -fuzz FuzzEngineMatchesBrute ./internal/quasiclique
func FuzzEngineMatchesBrute(f *testing.F) {
	// Paper-like graph, sparse/dense extremes, γ < 0.5, tiny min_size.
	f.Add([]byte{7, 3, 2, 0xff, 0x3c, 0x81, 0x66, 0x0f, 0xa5, 0x18, 0x42})
	f.Add([]byte{0, 6, 0, 0x3f})
	f.Add([]byte{8, 1, 3, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{8, 0, 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{3, 4, 2, 0xaa, 0x55, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, p, ok := decodeFuzzGraph(data)
		if !ok {
			return
		}
		wantMax, err := BruteMaximal(g, p)
		if err != nil {
			t.Fatal(err)
		}
		wantCov, err := BruteCoverage(g, p)
		if err != nil {
			t.Fatal(err)
		}

		for _, opts := range []Options{
			{},
			{Order: BFS},
			{DisableLookahead: true, DisableDiameterPruning: true, DisableComponentSplit: true, DisableJumps: true},
		} {
			got, err := EnumerateMaximal(g, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !patternsEqual(got, wantMax) {
				t.Fatalf("opts %+v params %+v:\nEnumerateMaximal = %v\nbrute            = %v",
					opts, p, vertexSets(got), vertexSets(wantMax))
			}
			cov, err := Coverage(g, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !cov.Covered.Equal(wantCov) {
				t.Fatalf("opts %+v params %+v: Coverage = %v, brute = %v",
					opts, p, cov.Covered, wantCov)
			}
		}

		// Seeding with already-proven coverage (here: the full answer)
		// must not change the result — the certificate-store soundness
		// property — and the emit sink must only ever see valid
		// quasi-cliques.
		seeded, err := CoverageSeeded(g, p, Options{}, wantCov, func(q []int32) {
			pat := g.makePattern(q)
			if pat.Size() < p.MinSize || pat.MinDeg < p.MinDegree(pat.Size()) {
				t.Fatalf("emitted set %v is not a γ=%g quasi-clique of size ≥ %d",
					q, p.Gamma, p.MinSize)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !seeded.Covered.Equal(wantCov) {
			t.Fatalf("params %+v: seeded Coverage = %v, brute = %v",
				p, seeded.Covered, wantCov)
		}

		// Anchored membership queries, sharing one engine so the covered
		// cache carries across queries.
		eng, err := NewEngine(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			got, err := eng.CoversVertex(v)
			if err != nil {
				t.Fatal(err)
			}
			if want := wantCov.Contains(int(v)); got != want {
				t.Fatalf("params %+v: CoversVertex(%d) = %v, brute = %v", p, v, got, want)
			}
		}
	})
}
