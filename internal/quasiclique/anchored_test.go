package quasiclique

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCoversVertexMatchesCoverage checks the anchored membership query
// against the full coverage search, vertex by vertex, on random graphs
// and parameters — sharing one Engine per graph so the cross-query
// covered cache is exercised too.
func TestCoversVertexMatchesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTestGraph(rng)
		p := randomParams(rng)
		o := Options{Order: SearchOrder(rng.Intn(2))}
		cov, err := Coverage(g, p, o)
		if err != nil {
			t.Log(err)
			return false
		}
		eng, err := NewEngine(g, p, o)
		if err != nil {
			t.Log(err)
			return false
		}
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			got, err := eng.CoversVertex(v)
			if err != nil {
				t.Log(err)
				return false
			}
			if want := cov.Covered.Contains(int(v)); got != want {
				t.Logf("seed=%d γ=%g min=%d v=%d: CoversVertex=%v, Coverage=%v",
					seed, p.Gamma, p.MinSize, v, got, want)
				return false
			}
		}
		if eng.NodesVisited() < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCoversVertexPaperExample pins the worked example: with γ=0.6,
// min_size=4 vertices 3..11 are covered and 1, 2 are not (0-indexed
// 2..10 and 0, 1).
func TestCoversVertexPaperExample(t *testing.T) {
	g := paperGraph()
	eng, err := NewEngine(g, Params{Gamma: 0.6, MinSize: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		got, err := eng.CoversVertex(v)
		if err != nil {
			t.Fatal(err)
		}
		want := v >= 2 // paper vertices 3..11
		if got != want {
			t.Errorf("CoversVertex(%d) = %v, want %v", v, got, want)
		}
	}
}

// TestCoversVertexOutOfRange checks range handling and the invalid-
// params path.
func TestCoversVertexOutOfRange(t *testing.T) {
	g := paperGraph()
	eng, err := NewEngine(g, Params{Gamma: 0.6, MinSize: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int32{-1, int32(g.NumVertices())} {
		if got, err := eng.CoversVertex(v); err != nil || got {
			t.Errorf("CoversVertex(%d) = (%v, %v), want (false, nil)", v, got, err)
		}
	}
	if _, err := NewEngine(g, Params{Gamma: 0, MinSize: 4}, Options{}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestCoversVertexBudget checks that MaxNodes bounds the cumulative
// query cost and surfaces ErrBudget.
func TestCoversVertexBudget(t *testing.T) {
	g := paperGraph()
	eng, err := NewEngine(g, Params{Gamma: 0.6, MinSize: 4}, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if _, err := eng.CoversVertex(v); err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", lastErr)
	}
}

// TestCoversVertexDegenerateShapes sweeps the anchored query over graph
// shapes that stress boundary paths the random property test rarely
// hits: isolated vertices, γ = 1.0 (pure cliques), min_size exceeding
// every component, and a single vertex. Each shape is verified vertex
// by vertex against the exhaustive brute-force coverage.
func TestCoversVertexDegenerateShapes(t *testing.T) {
	triangle := [][2]int32{{0, 1}, {1, 2}, {0, 2}}
	clique4 := [][2]int32{{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7}}
	shapes := []struct {
		name  string
		n     int
		edges [][2]int32
		p     Params
	}{
		{"isolated-only", 6, nil, Params{Gamma: 0.5, MinSize: 2}},
		{"isolated-plus-triangle", 8, triangle, Params{Gamma: 0.6, MinSize: 3}},
		{"clique-gamma-1", 8, append(append([][2]int32{}, triangle...), clique4...), Params{Gamma: 1.0, MinSize: 3}},
		{"minsize-exceeds-components", 8, append(append([][2]int32{}, triangle...), clique4...), Params{Gamma: 0.5, MinSize: 5}},
		{"single-vertex", 1, nil, Params{Gamma: 1.0, MinSize: 2}},
		{"path-gamma-1", 5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, Params{Gamma: 1.0, MinSize: 2}},
	}
	for _, s := range shapes {
		t.Run(s.name, func(t *testing.T) {
			g := buildGraph(s.n, s.edges)
			want, err := BruteCoverage(g, s.p)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range []Options{{}, {Order: BFS}} {
				eng, err := NewEngine(g, s.p, o)
				if err != nil {
					t.Fatal(err)
				}
				for v := int32(0); v < int32(g.NumVertices()); v++ {
					got, err := eng.CoversVertex(v)
					if err != nil {
						t.Fatal(err)
					}
					if got != want.Contains(int(v)) {
						t.Errorf("opts %+v: CoversVertex(%d) = %v, brute = %v",
							o, v, got, want.Contains(int(v)))
					}
				}
				cov, err := Coverage(g, s.p, o)
				if err != nil {
					t.Fatal(err)
				}
				if !cov.Covered.Equal(want) {
					t.Errorf("opts %+v: Coverage = %v, brute = %v", o, cov.Covered, want)
				}
			}
		})
	}
}

// TestCoversVertexCacheShortCircuits checks that a vertex proven covered
// by an earlier query's reported quasi-clique is answered without any
// additional search nodes.
func TestCoversVertexCacheShortCircuits(t *testing.T) {
	// 5-clique: the first query reports it and covers all members.
	var edges [][2]int32
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int32{i, j})
		}
	}
	g := buildGraph(5, edges)
	eng, err := NewEngine(g, Params{Gamma: 1, MinSize: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := eng.CoversVertex(0); err != nil || !ok {
		t.Fatalf("CoversVertex(0) = (%v, %v)", ok, err)
	}
	nodes := eng.NodesVisited()
	for v := int32(1); v < 5; v++ {
		ok, err := eng.CoversVertex(v)
		if err != nil || !ok {
			t.Fatalf("CoversVertex(%d) = (%v, %v)", v, ok, err)
		}
	}
	if eng.NodesVisited() != nodes {
		t.Fatalf("cached queries re-searched: %d → %d nodes", nodes, eng.NodesVisited())
	}
}
