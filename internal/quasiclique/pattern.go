package quasiclique

import "fmt"

// Pattern is a mined quasi-clique together with its quality metrics.
type Pattern struct {
	// Vertices are the members, ascending.
	Vertices []int32
	// MinDeg is the minimum internal degree over the members.
	MinDeg int
	// Edges is the number of internal edges.
	Edges int
}

// Size returns |Q|.
func (p Pattern) Size() int { return len(p.Vertices) }

// Density returns min_v deg_Q(v) / (|Q|−1), the γ value the paper
// reports for patterns (Table 1 lists {3,4,6,7} as γ = 0.67 = 2/3 even
// though its edge density is 5/6).
func (p Pattern) Density() float64 {
	if len(p.Vertices) <= 1 {
		return 0
	}
	return float64(p.MinDeg) / float64(len(p.Vertices)-1)
}

// EdgeDensity returns 2|E_Q| / (|Q|·(|Q|−1)).
func (p Pattern) EdgeDensity() float64 {
	s := len(p.Vertices)
	if s <= 1 {
		return 0
	}
	return 2 * float64(p.Edges) / float64(s*(s-1))
}

// String renders the pattern for logs.
func (p Pattern) String() string {
	return fmt.Sprintf("Q%v size=%d γ=%.2f", p.Vertices, p.Size(), p.Density())
}

// makePattern computes the metrics of a vertex set known to be a
// quasi-clique.
func (g *Graph) makePattern(q []int32) Pattern {
	minDeg := g.n
	edges := 0
	for _, v := range q {
		// q and the neighbor row are both sorted ascending, so the
		// internal degree is a two-pointer intersection count — no
		// membership bitset needed.
		nbrs := g.neighbors(v)
		d, i, j := 0, 0, 0
		for i < len(q) && j < len(nbrs) {
			switch {
			case q[i] < nbrs[j]:
				i++
			case q[i] > nbrs[j]:
				j++
			default:
				d++
				i++
				j++
			}
		}
		edges += d
		if d < minDeg {
			minDeg = d
		}
	}
	return Pattern{Vertices: append([]int32(nil), q...), MinDeg: minDeg, Edges: edges / 2}
}

// ComparePatterns orders patterns by the paper's relevance criteria:
// size (primary, larger first), density (secondary, denser first), then
// lexicographically by vertices for determinism. It returns a negative
// number when a ranks before b.
func ComparePatterns(a, b Pattern) int {
	if a.Size() != b.Size() {
		return b.Size() - a.Size()
	}
	da, db := a.Density(), b.Density()
	switch {
	case da > db:
		return -1
	case da < db:
		return 1
	}
	for i := range a.Vertices {
		if a.Vertices[i] != b.Vertices[i] {
			return int(a.Vertices[i]) - int(b.Vertices[i])
		}
	}
	return 0
}

// subsetOfSorted reports whether sorted slice a is a subset of sorted
// slice b.
func subsetOfSorted(a, b []int32) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// filterContained removes vertex sets contained in a strictly larger
// set of the list (and duplicates), implementing containment maximality.
// Sets must each be sorted ascending; n is the graph size.
func filterContained(n int, sets [][]int32) [][]int32 {
	items := make([][]int32, len(sets))
	copy(items, sets)
	// larger sets first so containment tests only look at kept sets
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && len(items[j]) > len(items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	var out [][]int32
	for _, it := range items {
		contained := false
		for _, k := range out {
			// Sets are sorted ascending, so containment is a two-pointer
			// merge — no per-set bitsets.
			if len(k) >= len(it) && subsetOfSorted(it, k) {
				contained = true
				break
			}
		}
		if contained {
			continue
		}
		out = append(out, it)
	}
	return out
}
