package quasiclique

import (
	"sort"

	"github.com/scpm/scpm/internal/bitset"
)

// Graph is the miner's view of an undirected graph: dense vertex ids
// 0..n−1 with sorted adjacency lists. It is typically built from an
// induced subgraph of the attributed graph.
type Graph struct {
	adj [][]int32
	n   int
}

// NewGraph wraps adjacency lists (which must be sorted ascending,
// self-loop free and symmetric). The slices are used by reference.
func NewGraph(adj [][]int32) *Graph {
	return &Graph{adj: adj, n: len(adj)}
}

// NumVertices returns n.
func (g *Graph) NumVertices() int { return g.n }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[v] }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int32) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// Peel iteratively removes vertices of degree < minDeg (computed within
// the surviving set) and returns the set of survivors. This is the
// "vertex pruning" of Algorithm 1 line 4: a member of any γ-quasi-clique
// of size ≥ min_size has at least ⌈γ(min_size−1)⌉ neighbors inside it,
// so vertices below that threshold — transitively — can never be
// members.
func (g *Graph) Peel(minDeg int) *bitset.Set {
	alive := bitset.New(g.n)
	deg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		alive.Add(v)
		deg[v] = len(g.adj[v])
	}
	if minDeg <= 0 {
		return alive
	}
	queue := make([]int32, 0, g.n)
	for v := 0; v < g.n; v++ {
		if deg[v] < minDeg {
			queue = append(queue, int32(v))
			alive.Remove(v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.adj[v] {
			if !alive.Contains(int(u)) {
				continue
			}
			deg[u]--
			if deg[u] < minDeg {
				alive.Remove(int(u))
				queue = append(queue, u)
			}
		}
	}
	return alive
}

// components partitions the alive vertices into connected components
// (edges restricted to alive endpoints), returned as sorted vertex
// slices in ascending order of their smallest member. Quasi-cliques of
// size ≥ 2 are connected, so the candidate search can treat each
// component as an independent sub-problem.
func (g *Graph) components(alive *bitset.Set) [][]int32 {
	seen := bitset.New(g.n)
	var out [][]int32
	var stack []int32
	for s := alive.NextSet(0); s >= 0; s = alive.NextSet(s + 1) {
		if seen.Contains(s) {
			continue
		}
		var comp []int32
		stack = append(stack[:0], int32(s))
		seen.Add(s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.adj[v] {
				if alive.Contains(int(u)) && !seen.Contains(int(u)) {
					seen.Add(int(u))
					stack = append(stack, u)
				}
			}
		}
		sortInt32s(comp)
		out = append(out, comp)
	}
	return out
}

func sortInt32s(xs []int32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// distance2 returns, for every vertex, the set of vertices within
// distance ≤ 2 (including the vertex itself). Used by the diameter
// pruning rule, which is valid for γ ≥ 0.5.
func (g *Graph) distance2(alive *bitset.Set) []*bitset.Set {
	n2 := make([]*bitset.Set, g.n)
	for v := 0; v < g.n; v++ {
		if !alive.Contains(v) {
			continue
		}
		s := bitset.New(g.n)
		s.Add(v)
		for _, u := range g.adj[v] {
			if !alive.Contains(int(u)) {
				continue
			}
			s.Add(int(u))
			for _, w := range g.adj[u] {
				if alive.Contains(int(w)) {
					s.Add(int(w))
				}
			}
		}
		n2[v] = s
	}
	return n2
}

// isQuasiClique reports whether the vertex set (given both as a sorted
// slice and as a bitset) satisfies the degree constraint for its size.
// It does NOT check min-size or maximality.
func (g *Graph) isQuasiClique(set []int32, inSet *bitset.Set, p Params) bool {
	need := p.MinDegree(len(set))
	for _, v := range set {
		if len(g.adj[v]) < need {
			return false
		}
		d := 0
		for _, u := range g.adj[v] {
			if inSet.Contains(int(u)) {
				d++
				if d >= need {
					break
				}
			}
		}
		if d < need {
			return false
		}
	}
	return true
}

// degreesWithin fills degs[i] with |N(set[i]) ∩ set|.
func (g *Graph) degreesWithin(set []int32, inSet *bitset.Set, degs []int) {
	for i, v := range set {
		d := 0
		for _, u := range g.adj[v] {
			if inSet.Contains(int(u)) {
				d++
			}
		}
		degs[i] = d
	}
}

// extendable reports whether some vertex u ∉ set (u alive) makes
// set ∪ {u} satisfy the quasi-clique degree constraint. Used as the
// local-maximality test when reporting patterns.
func (g *Graph) extendable(set []int32, inSet *bitset.Set, alive *bitset.Set, p Params) bool {
	need := p.MinDegree(len(set) + 1)
	degs := make([]int, len(set))
	g.degreesWithin(set, inSet, degs)
	for u := alive.NextSet(0); u >= 0; u = alive.NextSet(u + 1) {
		if inSet.Contains(u) {
			continue
		}
		// u itself needs `need` neighbors inside set.
		du := 0
		for _, w := range g.adj[int32(u)] {
			if inSet.Contains(int(w)) {
				du++
			}
		}
		if du < need {
			continue
		}
		// every existing member must reach `need` too, counting a
		// possible edge to u.
		ok := true
		for i, v := range set {
			d := degs[i]
			if g.HasEdge(v, int32(u)) {
				d++
			}
			if d < need {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
