package quasiclique

import (
	"slices"

	"github.com/scpm/scpm/internal/bitset"
)

// Graph is the miner's view of an undirected graph: dense vertex ids
// 0..n−1 with sorted adjacency stored in compressed-sparse-row (CSR)
// form — one flat neighbor arena plus an offsets array. It is typically
// a zero-copy view of an induced subgraph of the attributed graph (see
// NewGraphCSR).
type Graph struct {
	// CSR adjacency: the neighbors of v are nbrs[off[v]:off[v+1]],
	// sorted ascending, with len(off) = n+1.
	off  []int64
	nbrs []int32
	n    int
}

// NewGraph builds a Graph from per-vertex adjacency slices (which must
// be sorted ascending, self-loop free and symmetric), flattening them
// into CSR form. Prefer NewGraphCSR when the caller already holds a CSR
// backbone — that constructor is allocation-free.
func NewGraph(adj [][]int32) *Graph {
	n := len(adj)
	off := make([]int64, n+1)
	for v, a := range adj {
		off[v+1] = off[v] + int64(len(a))
	}
	nbrs := make([]int32, off[n])
	for v, a := range adj {
		copy(nbrs[off[v]:off[v+1]], a)
	}
	return &Graph{off: off, nbrs: nbrs, n: n}
}

// NewGraphCSR wraps an existing CSR adjacency by reference: offsets has
// length n+1 and the neighbors of v occupy neighbors[offsets[v]:
// offsets[v+1]], sorted ascending, self-loop free and symmetric. The
// slices are shared, not copied; the caller must not modify them while
// the Graph is in use. Both graph.Graph.CSR and graph.Subgraph.CSR
// produce arguments in exactly this shape.
func NewGraphCSR(offsets []int64, neighbors []int32) *Graph {
	if len(offsets) == 0 {
		return &Graph{off: []int64{0}, n: 0}
	}
	return &Graph{off: offsets, nbrs: neighbors, n: len(offsets) - 1}
}

// NumVertices returns n.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return int(g.off[g.n]) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbor list of v as a view into the
// CSR arena. The caller must not modify the returned slice.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.nbrs[g.off[v]:g.off[v+1]:g.off[v+1]]
}

// neighbors is the internal hot-path accessor (no defensive slice cap).
func (g *Graph) neighbors(v int32) []int32 {
	return g.nbrs[g.off[v]:g.off[v+1]]
}

// HasEdge reports whether {u,v} is an edge, by binary search over u's
// sorted neighbor range.
func (g *Graph) HasEdge(u, v int32) bool {
	_, ok := slices.BinarySearch(g.neighbors(u), v)
	return ok
}

// Peel iteratively removes vertices of degree < minDeg (computed within
// the surviving set) and returns the set of survivors. This is the
// "vertex pruning" of Algorithm 1 line 4: a member of any γ-quasi-clique
// of size ≥ min_size has at least ⌈γ(min_size−1)⌉ neighbors inside it,
// so vertices below that threshold — transitively — can never be
// members.
func (g *Graph) Peel(minDeg int) *bitset.Set {
	alive := bitset.New(g.n)
	deg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		alive.Add(v)
		deg[v] = g.Degree(int32(v))
	}
	if minDeg <= 0 {
		return alive
	}
	queue := make([]int32, 0, g.n)
	for v := 0; v < g.n; v++ {
		if deg[v] < minDeg {
			queue = append(queue, int32(v))
			alive.Remove(v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.neighbors(v) {
			if !alive.Contains(int(u)) {
				continue
			}
			deg[u]--
			if deg[u] < minDeg {
				alive.Remove(int(u))
				queue = append(queue, u)
			}
		}
	}
	return alive
}

// components partitions the alive vertices into connected components
// (edges restricted to alive endpoints), returned as sorted vertex
// slices in ascending order of their smallest member. Quasi-cliques of
// size ≥ 2 are connected, so the candidate search can treat each
// component as an independent sub-problem.
func (g *Graph) components(alive *bitset.Set) [][]int32 {
	seen := bitset.New(g.n)
	// All components share one arena sized by the alive count; the DFS
	// appends each component's vertices contiguously and the result
	// slices are views, so the allocation count is independent of how
	// many components the graph splits into.
	arena := make([]int32, 0, alive.Count())
	var bounds []int
	var stack []int32
	for s := alive.NextSet(0); s >= 0; s = alive.NextSet(s + 1) {
		if seen.Contains(s) {
			continue
		}
		bounds = append(bounds, len(arena))
		stack = append(stack[:0], int32(s))
		seen.Add(s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			arena = append(arena, v)
			for _, u := range g.neighbors(v) {
				if alive.Contains(int(u)) && !seen.Contains(int(u)) {
					seen.Add(int(u))
					stack = append(stack, u)
				}
			}
		}
		slices.Sort(arena[bounds[len(bounds)-1]:])
	}
	out := make([][]int32, len(bounds))
	for i, b := range bounds {
		end := len(arena)
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		out[i] = arena[b:end:end]
	}
	return out
}

// distance2 returns, for every alive vertex, the set of vertices within
// distance ≤ 2 (including the vertex itself); entries for dead vertices
// are nil. Used by the diameter pruning rule, which is valid for
// γ ≥ 0.5.
func (g *Graph) distance2(alive *bitset.Set) []*bitset.Set {
	n2 := make([]*bitset.Set, g.n)
	// One slab for all alive rows: 3 allocations instead of 2 per
	// vertex, and the rows land contiguously for the AND-fold in refine.
	slab := bitset.NewSlab(g.n, alive.Count())
	next := 0
	for v := 0; v < g.n; v++ {
		if !alive.Contains(v) {
			continue
		}
		s := &slab[next]
		next++
		s.Add(v)
		for _, u := range g.neighbors(int32(v)) {
			if !alive.Contains(int(u)) {
				continue
			}
			s.Add(int(u))
			for _, w := range g.neighbors(u) {
				if alive.Contains(int(w)) {
					s.Add(int(w))
				}
			}
		}
		n2[v] = s
	}
	return n2
}

// isQuasiClique reports whether the vertex set (given both as a sorted
// slice and as a bitset) satisfies the degree constraint for its size.
// It does NOT check min-size or maximality.
func (g *Graph) isQuasiClique(set []int32, inSet *bitset.Set, p Params) bool {
	need := p.MinDegree(len(set))
	for _, v := range set {
		if g.Degree(v) < need {
			return false
		}
		d := 0
		for _, u := range g.neighbors(v) {
			if inSet.Contains(int(u)) {
				d++
				if d >= need {
					break
				}
			}
		}
		if d < need {
			return false
		}
	}
	return true
}

// degreesWithin fills degs[i] with |N(set[i]) ∩ set|.
func (g *Graph) degreesWithin(set []int32, inSet *bitset.Set, degs []int) {
	for i, v := range set {
		d := 0
		for _, u := range g.neighbors(v) {
			if inSet.Contains(int(u)) {
				d++
			}
		}
		degs[i] = d
	}
}

// extendable reports whether some vertex u ∉ set (u alive) makes
// set ∪ {u} satisfy the quasi-clique degree constraint. Used as the
// local-maximality test when reporting patterns. scratch must have
// capacity ≥ len(set); it is overwritten (callers pass a reusable
// per-engine buffer to keep this allocation-free).
func (g *Graph) extendable(set []int32, inSet, alive *bitset.Set, p Params, scratch []int) bool {
	need := p.MinDegree(len(set) + 1)
	degs := scratch[:len(set)]
	g.degreesWithin(set, inSet, degs)
	for u := alive.NextSet(0); u >= 0; u = alive.NextSet(u + 1) {
		if inSet.Contains(u) {
			continue
		}
		// u itself needs `need` neighbors inside set.
		du := 0
		for _, w := range g.neighbors(int32(u)) {
			if inSet.Contains(int(w)) {
				du++
			}
		}
		if du < need {
			continue
		}
		// every existing member must reach `need` too, counting a
		// possible edge to u.
		ok := true
		for i, v := range set {
			d := degs[i]
			if g.HasEdge(v, int32(u)) {
				d++
			}
			if d < need {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
