package quasiclique

import (
	"github.com/scpm/scpm/internal/bitset"
)

// node is one entry of Algorithm 1's qcCands structure: a vertex set X
// (ascending) plus its candidate extensions (ascending, every candidate
// greater than max(X), so each vertex subset occurs exactly once in the
// search tree).
type node struct {
	x     []int32
	cands []int32
}

// hooks let the three mining modes customize the generic search.
type hooks struct {
	// prune skips a node entirely when it returns true (e.g. the
	// covered-candidate pruning of §3.2.2 or top-k size pruning).
	prune func(x, cands []int32) bool
	// report is invoked with a quasi-clique (degree constraint and
	// min-size already checked). Returning false aborts the search.
	// The slice may alias an engine scratch buffer: it is valid only
	// for the duration of the call and must be copied to be retained.
	report func(q []int32) bool
	// needLocalMax requires X to admit no single-vertex extension
	// before being reported (cheap necessary condition for maximality;
	// the enumeration modes complete it with a containment filter).
	needLocalMax bool
}

// engine runs the shared candidate-tree search.
type engine struct {
	g     *Graph
	p     Params
	o     Options
	alive *bitset.Set
	n2    []*bitset.Set
	nodes int64

	// scratch, reused across nodes so the refine / forced-candidate /
	// lookahead hot paths allocate nothing per node
	inX       *bitset.Set
	inC       *bitset.Set
	inU       *bitset.Set
	degs      []int
	unionBuf  []int32
	forcedBuf []int32
}

func newEngine(g *Graph, p Params, o Options) *engine {
	e := &engine{
		g:     g,
		p:     p,
		o:     o,
		alive: g.Peel(p.MinDegree(p.MinSize)),
		inX:   bitset.New(g.n),
		inC:   bitset.New(g.n),
		inU:   bitset.New(g.n),
		degs:  make([]int, g.n),
	}
	if p.Gamma >= 0.5 && !o.DisableDiameterPruning {
		e.n2 = g.distance2(e.alive)
	}
	return e
}

// NodesVisited reports how many candidate nodes the last run processed
// (exposed for the ablation study).
func (e *engine) NodesVisited() int64 { return e.nodes }

// run executes Algorithm 1 with the configured order and hooks, once
// per connected component of the peeled graph when γ ≥ 0.5 (then every
// member has degree ≥ ⌈γ(s−1)⌉ ≥ (s−1)/2, which forces connectivity,
// so components are independent sub-problems and small components die
// on the min-size check immediately). For γ < 0.5 quasi-cliques may be
// disconnected — e.g. two disjoint triangles form a valid 0.4-quasi-
// clique of size 6 — so the decomposition would lose maximal patterns
// spanning components and the search must run on the whole peeled set.
func (e *engine) run(h hooks) error {
	if e.alive.Count() < e.p.MinSize {
		return nil
	}
	var roots [][]int32
	if e.o.DisableComponentSplit || e.p.Gamma < 0.5 {
		roots = [][]int32{e.alive.Slice()}
	} else {
		for _, comp := range e.g.components(e.alive) {
			if len(comp) >= e.p.MinSize {
				roots = append(roots, comp)
			}
		}
	}
	for _, root := range roots {
		stop, err := e.runFrontier(node{x: nil, cands: root}, h)
		if err != nil || stop {
			return err
		}
	}
	return nil
}

// runFrontier drains one component's candidate tree. It reports whether
// a hook requested a global stop.
func (e *engine) runFrontier(rootNode node, h hooks) (bool, error) {
	frontier := []node{rootNode}
	head := 0
	for {
		var nd node
		if e.o.Order == BFS {
			if head >= len(frontier) {
				return false, nil
			}
			nd = frontier[head]
			frontier[head] = node{}
			head++
			if head > 4096 && head*2 > len(frontier) {
				frontier = append([]node(nil), frontier[head:]...)
				head = 0
			}
		} else {
			if len(frontier) == 0 {
				return false, nil
			}
			nd = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
		e.nodes++
		if e.o.MaxNodes > 0 && e.nodes > e.o.MaxNodes {
			return true, ErrBudget
		}
		// Poll the context every 256 nodes: frequent enough that deep
		// searches stop in bounded time, cheap enough to stay off the
		// per-node hot path.
		if e.o.Ctx != nil && e.nodes&0xff == 0 && e.o.Ctx.Err() != nil {
			return true, Canceled(e.o.Ctx)
		}
		stop, children := e.process(nd, h)
		if stop {
			return true, nil
		}
		if e.o.Order == BFS {
			frontier = append(frontier, children...)
		} else {
			for i := len(children) - 1; i >= 0; i-- {
				frontier = append(frontier, children[i])
			}
		}
	}
}

// process handles one node: pruning, candidate refinement, forced-
// vertex jumps, lookahead, quasi-clique reporting and child generation.
func (e *engine) process(nd node, h hooks) (stop bool, children []node) {
	x, cands := nd.x, nd.cands
	if len(x)+len(cands) < e.p.MinSize {
		return false, nil
	}
	if h.prune != nil && h.prune(x, cands) {
		return false, nil
	}
	var dead bool
	x, cands, dead = e.refineAndJump(x, cands)
	if dead || len(x)+len(cands) < e.p.MinSize {
		return false, nil
	}

	// Lookahead (Algorithm 1 line 9): if X ∪ candExts(X) is itself a
	// quasi-clique, report it and prune the subtree — every set in the
	// subtree is one of its subsets, hence not maximal. The union lives
	// in a reusable scratch buffer; report implementations copy what
	// they keep (see hooks.report).
	if !e.o.DisableLookahead && len(cands) > 0 {
		e.unionBuf = mergeSortedInto(e.unionBuf[:0], x, cands)
		union := e.unionBuf
		e.fill(e.inU, union)
		if e.g.isQuasiClique(union, e.inU, e.p) {
			return !h.report(union), nil
		}
	}

	// Report X itself when it qualifies (Algorithm 1 line 12).
	if len(x) >= e.p.MinSize {
		e.fill(e.inX, x)
		if e.g.isQuasiClique(x, e.inX, e.p) {
			if !h.needLocalMax || !e.g.extendable(x, e.inX, e.alive, e.p, e.degs) {
				if !h.report(x) {
					return true, nil
				}
			}
		}
	}

	// Generate extensions (Algorithm 1 line 15). Child i keeps only the
	// candidates after position i, so once the remaining pool is too
	// small to ever reach min_size no further child can succeed. All
	// children share one backing arena — a single allocation instead of
	// two per child; each child's slices are capacity-clamped subslices,
	// so later in-place filtering of one child can never touch another.
	nkids := 0
	arenaLen := 0
	for i := range cands {
		if len(x)+1+(len(cands)-i-1) < e.p.MinSize {
			break
		}
		nkids++
		arenaLen += len(x) + len(cands) - i
	}
	if nkids == 0 {
		return false, nil
	}
	arena := make([]int32, 0, arenaLen)
	children = make([]node, 0, nkids)
	for i := 0; i < nkids; i++ {
		start := len(arena)
		arena = appendInsertSorted(arena, x, cands[i])
		mid := len(arena)
		arena = append(arena, cands[i+1:]...)
		end := len(arena)
		children = append(children, node{
			x:     arena[start:mid:mid],
			cands: arena[mid:end:end],
		})
	}
	return false, children
}

// refineAndJump alternates candidate refinement with the Quick forced-
// vertex jumps until a fixpoint:
//
//   - critical vertex: if some v ∈ X has indeg+exdeg exactly equal to
//     the minimum degree it must reach (⌈γ(max(min_size,|X|)−1)⌉),
//     every valid quasi-clique in this branch must contain ALL of v's
//     candidate neighbors, so they are committed at once;
//   - cover vertex: if some candidate u is adjacent to every member of
//     X and every other candidate, any quasi-clique avoiding u extends
//     by u (degree requirements grow by at most 1 per added vertex), so
//     maximal quasi-cliques — and the coverage they provide — all
//     contain u.
//
// Both jumps commit vertices instead of branching on them, collapsing
// dense regions that would otherwise be enumerated subset by subset.
func (e *engine) refineAndJump(x, cands []int32) (nx, ncands []int32, dead bool) {
	for {
		cands, dead = e.refine(x, cands)
		if dead {
			return x, cands, true
		}
		if e.o.DisableJumps || len(x) == 0 || len(cands) == 0 {
			return x, cands, false
		}
		forced := e.forcedCandidates(x, cands)
		if len(forced) == 0 {
			return x, cands, false
		}
		x = mergeSorted(x, forced)
		cands = removeSorted(cands, forced)
	}
}

// forcedCandidates returns candidates that every valid quasi-clique of
// the branch must include (empty when no jump applies). It relies on
// the scratch bitsets e.inX/e.inC left by refine. The returned slice
// aliases a per-engine scratch buffer: it is invalidated by the next
// forcedCandidates call, so callers consume it before looping.
func (e *engine) forcedCandidates(x, cands []int32) []int32 {
	minNeedX := e.p.MinDegree(maxInt(e.p.MinSize, len(x)))
	for _, v := range x {
		in, ex := e.splitDegree(v)
		if ex > 0 && in+ex == minNeedX {
			forced := e.forcedBuf[:0]
			for _, u := range e.g.neighbors(v) {
				if e.inC.Contains(int(u)) {
					forced = append(forced, u)
				}
			}
			e.forcedBuf = forced
			return forced // adjacency is sorted, so forced is sorted
		}
	}
	for _, u := range cands {
		in, ex := e.splitDegree(u)
		if in == len(x) && ex == len(cands)-1 {
			e.forcedBuf = append(e.forcedBuf[:0], u)
			return e.forcedBuf
		}
	}
	return nil
}

// appendInsertSorted appends sorted xs with v inserted at its rank onto
// dst (v must not already occur in xs).
func appendInsertSorted(dst, xs []int32, v int32) []int32 {
	i := 0
	for ; i < len(xs) && xs[i] < v; i++ {
	}
	dst = append(dst, xs[:i]...)
	dst = append(dst, v)
	return append(dst, xs[i:]...)
}

// mergeSorted merges two disjoint sorted slices into a new slice.
func mergeSorted(a, b []int32) []int32 {
	return mergeSortedInto(make([]int32, 0, len(a)+len(b)), a, b)
}

// mergeSortedInto merges two disjoint sorted slices onto dst.
func mergeSortedInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// removeSorted returns xs without the (sorted) elements of drop,
// filtering in place.
func removeSorted(xs, drop []int32) []int32 {
	w, j := 0, 0
	for _, v := range xs {
		for j < len(drop) && drop[j] < v {
			j++
		}
		if j < len(drop) && drop[j] == v {
			continue
		}
		xs[w] = v
		w++
	}
	return xs[:w]
}

// fill resets a scratch bitset to exactly the given members.
func (e *engine) fill(s *bitset.Set, vs []int32) {
	s.Clear()
	for _, v := range vs {
		s.Add(int(v))
	}
}

// refine applies the candidate quasi-clique pruning of §3.2.2:
//
//   - distance pruning: for γ ≥ 0.5 every quasi-clique has diameter ≤ 2,
//     so candidates farther than 2 from any member of X are dropped;
//   - degree feasibility: members of X (and candidates, were they to
//     join) must be able to reach ⌈γ(s−1)⌉ neighbors using only X and
//     the surviving candidates; otherwise the branch (or candidate) dies;
//   - size upper bound: the attainable size min over X of
//     MaxSizeFor(indeg+exdeg) must reach max(min_size, |X|).
//
// The degree loop iterates to a fixpoint because dropping a candidate
// reduces the extension degrees of the others. Returns the surviving
// candidates (the input slice, filtered in place) and whether the whole
// branch is infeasible.
func (e *engine) refine(x, cands []int32) ([]int32, bool) {
	if len(x) == 0 {
		return cands, false
	}
	e.fill(e.inX, x)

	if e.n2 != nil {
		w := 0
		for _, u := range cands {
			ok := true
			for _, xv := range x {
				if !e.n2[xv].Contains(int(u)) {
					ok = false
					break
				}
			}
			if ok {
				cands[w] = u
				w++
			}
		}
		cands = cands[:w]
	}

	minNeedX := e.p.MinDegree(maxInt(e.p.MinSize, len(x)))
	minNeedC := e.p.MinDegree(maxInt(e.p.MinSize, len(x)+1))
	for {
		e.inC.Clear()
		for _, u := range cands {
			e.inC.Add(int(u))
		}
		maxSize := len(x) + len(cands)
		for _, v := range x {
			in, ex := e.splitDegree(v)
			avail := in + ex
			if avail < minNeedX {
				return nil, true
			}
			if ms := e.p.MaxSizeFor(avail); ms < maxSize {
				maxSize = ms
			}
		}
		if maxSize < e.p.MinSize || maxSize < len(x) {
			return nil, true
		}
		changed := false
		w := 0
		for _, u := range cands {
			in, ex := e.splitDegree(u)
			if in+ex < minNeedC {
				changed = true
				continue
			}
			cands[w] = u
			w++
		}
		cands = cands[:w]
		if !changed {
			return cands, false
		}
		if len(x)+len(cands) < e.p.MinSize {
			return nil, true
		}
	}
}

// splitDegree returns |N(v) ∩ X| and |N(v) ∩ cands| using the scratch
// bitsets prepared by refine.
func (e *engine) splitDegree(v int32) (in, ex int) {
	for _, u := range e.g.neighbors(v) {
		if e.inX.Contains(int(u)) {
			in++
		} else if e.inC.Contains(int(u)) {
			ex++
		}
	}
	return in, ex
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
