package quasiclique

import (
	"slices"
	"sync"

	"github.com/scpm/scpm/internal/bitset"
)

// node is one entry of Algorithm 1's qcCands structure: a vertex set
// X = x ∪ {ext} (ascending; ext = -1 at a root) plus its candidate
// extensions (ascending, every candidate greater than ext, so each
// vertex subset occurs exactly once in the search tree).
//
// Nodes are LAZY: x and cands are read-only views into the parent's
// materialized block (parent X and the suffix of the parent's refined
// candidates). A node copies the candidate suffix — and merges ext into
// X — only when it is actually processed, so pruned children cost no
// memory traffic at all and an expanded node writes |X|+|cands| words
// instead of one copy per child. Under DFS the materialized blocks live
// in the engine arena with stack discipline: popTo is the arena
// watermark to restore once this node's subtree completes (a node's
// block must outlive its children, which read it through their views).
type node struct {
	x     []int32
	cands []int32
	ext   int32
	popTo int32
}

// hooks let the three mining modes customize the generic search.
type hooks struct {
	// prune skips a node entirely when it returns true (e.g. the
	// covered-candidate pruning of §3.2.2 or top-k size pruning). The
	// node's vertex set is x ∪ {ext} (ext < 0 at a root).
	prune func(x []int32, ext int32, cands []int32) bool
	// report is invoked with a quasi-clique (degree constraint and
	// min-size already checked). Returning false aborts the search.
	// The slice may alias an engine scratch buffer: it is valid only
	// for the duration of the call and must be copied to be retained.
	report func(q []int32) bool
	// needLocalMax requires X to admit no single-vertex extension
	// before being reported (cheap necessary condition for maximality;
	// the enumeration modes complete it with a containment filter).
	needLocalMax bool
}

// adjBitsetMaxN caps the graphs for which the engine materializes
// per-vertex adjacency bitsets (n²/8 bytes; 2 MiB at the cap). Above it
// the degree kernels fall back to neighbor-list iteration.
const adjBitsetMaxN = 4096

// engine runs the shared candidate-tree search.
type engine struct {
	g     *Graph
	p     Params
	o     Options
	alive *bitset.Set
	n2    []*bitset.Set
	adj   []bitset.Set // slab-backed adjacency rows; nil above adjBitsetMaxN
	nodes int64

	// scratch, reused across nodes so the refine / forced-candidate /
	// lookahead hot paths allocate nothing per node
	inX        *bitset.Set
	inC        *bitset.Set
	inU        *bitset.Set
	d2buf      *bitset.Set
	degs       []int
	hist       []int32
	degIn      []int32 // |N(v) ∩ X| per vertex, valid within one refine
	degEx      []int32 // |N(v) ∩ cands| per vertex, valid within one refine
	minDegTab  []int32 // MinDegree(s) by s — the ceil/γ math, precomputed
	maxSizeTab []int32 // MaxSizeFor(avail) by avail, precomputed
	unionBuf   []int32
	forcedBuf  []int32
	xmat       []int32    // X = parent x + ext, materialized per node
	xbufs      [2][]int32 // rotating jump-merge buffers (inputs alternate)

	// DFS node arena: each expanded node materializes one block (its
	// refined candidates followed by its X) and the block is reclaimed,
	// stack-style, when the node's subtree completes. kids is the
	// per-process scratch for building a node's children.
	arena []int32
	kids  []node
	front []node

	// Pooled backing, reused across reset: one engine is built per
	// induced graph — per evaluated attribute set — so the fixed setup
	// allocations (scratch slabs, degree arrays, adjacency and
	// distance-2 indexes, peel/component scratch) dominate the
	// allocation profile of a whole mine unless they are recycled.
	aliveSet   bitset.Set
	setsSlab   bitset.Slab
	adjSlab    bitset.Slab
	n2Slab     bitset.Slab
	intsBuf    []int32
	peelQueue  []int32
	rootBuf    []int32
	compSeen   bitset.Set
	compArena  []int32
	compBounds []int
	compStack  []int32
	comps      [][]int32
}

// enginePool recycles engines (and all their scratch) across searches.
// Short-lived callers — TopK, EnumerateMaximal, the coverage search —
// release their engine when done; retained engines (anchored queries)
// simply never return to the pool.
var enginePool = sync.Pool{New: func() any { return new(engine) }}

func newEngine(g *Graph, p Params, o Options) *engine {
	e := enginePool.Get().(*engine)
	e.reset(g, p, o)
	return e
}

// release returns e to the engine pool. The caller must be done with
// every structure the engine owns — component slices, distance-2 rows,
// the node arena — since the next newEngine may overwrite them all.
func (e *engine) release() {
	e.g = nil
	e.o = Options{}
	enginePool.Put(e)
}

// grown returns s resized to n, reusing its backing array when large
// enough. The contents are unspecified; callers overwrite before use.
func grown[S ~[]E, E any](s S, n int) S {
	if cap(s) < n {
		return make(S, n)
	}
	return s[:n]
}

// reset (re)initializes the engine for one search over g, recycling
// whatever backing its previous use left behind. Every buffer is either
// fully overwritten here or zeroed by its carve, so a recycled engine
// is bit-for-bit equivalent to a freshly allocated one.
func (e *engine) reset(g *Graph, p Params, o Options) {
	e.g, e.p, e.o = g, p, o
	e.nodes = 0
	e.degs = grown(e.degs, g.n)
	e.peel(p.MinDegree(p.MinSize))
	sets := e.setsSlab.Carve(g.n, 4)
	e.inX, e.inC, e.inU = &sets[0], &sets[1], &sets[2]
	ints := grown(e.intsBuf, 5*g.n+4)
	e.intsBuf = ints
	e.degIn, ints = ints[:g.n:g.n], ints[g.n:]
	e.degEx, ints = ints[:g.n:g.n], ints[g.n:]
	e.hist, ints = ints[:g.n+1:g.n+1], ints[g.n+1:]
	// The degree-threshold formulas are pure functions of their integer
	// argument (≤ n+1); tabulating them takes the float ceil math off
	// the refine hot path.
	e.minDegTab, ints = ints[:g.n+2:g.n+2], ints[g.n+2:]
	for s := range e.minDegTab {
		e.minDegTab[s] = int32(p.MinDegree(s))
	}
	e.maxSizeTab = ints[: g.n+1 : g.n+1]
	for avail := range e.maxSizeTab {
		e.maxSizeTab[avail] = int32(p.MaxSizeFor(avail))
	}
	e.n2, e.d2buf = nil, nil
	if p.Gamma >= 0.5 && !o.DisableDiameterPruning {
		e.buildDistance2()
		e.d2buf = &sets[3]
	}
	e.adj = nil
	if g.n > 0 && g.n <= adjBitsetMaxN {
		e.adj = e.adjSlab.Carve(g.n, g.n)
		for v := 0; v < g.n; v++ {
			row := &e.adj[v]
			for _, u := range g.neighbors(int32(v)) {
				row.Add(int(u))
			}
		}
	}
}

// peel is Graph.Peel running on the engine's recycled scratch.
func (e *engine) peel(minDeg int) {
	g := e.g
	e.aliveSet.Reset(g.n)
	e.alive = &e.aliveSet
	deg := e.degs
	for v := 0; v < g.n; v++ {
		e.alive.Add(v)
		deg[v] = g.Degree(int32(v))
	}
	if minDeg <= 0 {
		return
	}
	queue := e.peelQueue[:0]
	for v := 0; v < g.n; v++ {
		if deg[v] < minDeg {
			queue = append(queue, int32(v))
			e.alive.Remove(v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.neighbors(v) {
			if !e.alive.Contains(int(u)) {
				continue
			}
			deg[u]--
			if deg[u] < minDeg {
				e.alive.Remove(int(u))
				queue = append(queue, u)
			}
		}
	}
	e.peelQueue = queue[:0]
}

// buildDistance2 is Graph.distance2 writing into the engine's recycled
// row slab and pointer table.
func (e *engine) buildDistance2() {
	g := e.g
	rows := e.n2Slab.Carve(g.n, e.alive.Count())
	e.n2 = grown(e.n2, g.n)
	for i := range e.n2 {
		e.n2[i] = nil
	}
	next := 0
	for v := 0; v < g.n; v++ {
		if !e.alive.Contains(v) {
			continue
		}
		s := &rows[next]
		next++
		s.Add(v)
		for _, u := range g.neighbors(int32(v)) {
			if !e.alive.Contains(int(u)) {
				continue
			}
			s.Add(int(u))
			for _, w := range g.neighbors(u) {
				if e.alive.Contains(int(w)) {
					s.Add(int(w))
				}
			}
		}
		e.n2[v] = s
	}
}

// components is Graph.components running on the engine's recycled
// scratch. The returned slices are views into engine-owned storage,
// valid until the next reset.
func (e *engine) components() [][]int32 {
	g, alive := e.g, e.alive
	e.compSeen.Reset(g.n)
	seen := &e.compSeen
	arena := e.compArena[:0]
	bounds := e.compBounds[:0]
	stack := e.compStack[:0]
	for s := alive.NextSet(0); s >= 0; s = alive.NextSet(s + 1) {
		if seen.Contains(s) {
			continue
		}
		bounds = append(bounds, len(arena))
		stack = append(stack[:0], int32(s))
		seen.Add(s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			arena = append(arena, v)
			for _, u := range g.neighbors(v) {
				if alive.Contains(int(u)) && !seen.Contains(int(u)) {
					seen.Add(int(u))
					stack = append(stack, u)
				}
			}
		}
		slices.Sort(arena[bounds[len(bounds)-1]:])
	}
	e.compArena, e.compBounds, e.compStack = arena, bounds, stack
	out := e.comps[:0]
	for i, b := range bounds {
		end := len(arena)
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		out = append(out, arena[b:end:end])
	}
	e.comps = out
	return out
}

// NodesVisited reports how many candidate nodes the last run processed
// (exposed for the ablation study).
func (e *engine) NodesVisited() int64 { return e.nodes }

// run executes Algorithm 1 with the configured order and hooks, once
// per connected component of the peeled graph when γ ≥ 0.5 (then every
// member has degree ≥ ⌈γ(s−1)⌉ ≥ (s−1)/2, which forces connectivity,
// so components are independent sub-problems and small components die
// on the min-size check immediately). For γ < 0.5 quasi-cliques may be
// disconnected — e.g. two disjoint triangles form a valid 0.4-quasi-
// clique of size 6 — so the decomposition would lose maximal patterns
// spanning components and the search must run on the whole peeled set.
func (e *engine) run(h hooks) error {
	if e.alive.Count() < e.p.MinSize {
		return nil
	}
	if e.o.DisableComponentSplit || e.p.Gamma < 0.5 {
		e.rootBuf = e.alive.AppendTo(e.rootBuf[:0])
		_, err := e.runFrontier(node{x: nil, cands: e.rootBuf, ext: -1}, h)
		return err
	}
	for _, comp := range e.components() {
		if len(comp) < e.p.MinSize {
			continue
		}
		stop, err := e.runFrontier(node{x: nil, cands: comp, ext: -1}, h)
		if err != nil || stop {
			return err
		}
	}
	return nil
}

// runFrontier drains one component's candidate tree. It reports whether
// a hook requested a global stop.
func (e *engine) runFrontier(rootNode node, h hooks) (bool, error) {
	e.arena = e.arena[:0]
	frontier := append(e.front[:0], rootNode)
	head := 0
	defer func() { e.front = frontier[:0] }()
	for {
		var nd node
		if e.o.Order == BFS {
			if head >= len(frontier) {
				return false, nil
			}
			nd = frontier[head]
			frontier[head] = node{}
			head++
			if head > 4096 && head*2 > len(frontier) {
				frontier = append([]node(nil), frontier[head:]...)
				head = 0
			}
		} else {
			if len(frontier) == 0 {
				return false, nil
			}
			nd = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
		e.nodes++
		if e.o.MaxNodes > 0 && e.nodes > e.o.MaxNodes {
			return true, ErrBudget
		}
		// Poll the context every 256 nodes: frequent enough that deep
		// searches stop in bounded time, cheap enough to stay off the
		// per-node hot path.
		if e.o.Ctx != nil && e.nodes&0xff == 0 && e.o.Ctx.Err() != nil {
			return true, Canceled(e.o.Ctx)
		}
		stop, children := e.process(nd, h)
		if stop {
			return true, nil
		}
		if e.o.Order == BFS {
			frontier = append(frontier, children...)
		} else {
			if len(children) == 0 {
				// nd is a leaf, so its subtree is complete: restore the
				// arena watermark (this also discards nd's own block if
				// one was materialized before the node died).
				e.arena = e.arena[:nd.popTo]
			}
			for i := len(children) - 1; i >= 0; i-- {
				frontier = append(frontier, children[i])
			}
		}
	}
}

// process handles one node: pruning, candidate materialization and
// refinement, forced-vertex jumps, lookahead, quasi-clique reporting
// and child generation.
func (e *engine) process(nd node, h hooks) (stop bool, children []node) {
	x, cands := nd.x, nd.cands
	xlen := len(x)
	if nd.ext >= 0 {
		xlen++
	}
	if xlen+len(cands) < e.p.MinSize {
		return false, nil
	}
	if h.prune != nil && h.prune(x, nd.ext, cands) {
		return false, nil
	}

	// Materialize: X = x ∪ {ext} into the rotating X buffers (jumps may
	// grow it further), candidates into this node's own block — the
	// arena top under DFS, a fresh buffer under BFS — where refinement
	// is free to filter in place without touching the parent's data.
	useArena := e.o.Order != BFS
	blockStart := len(e.arena)
	if useArena {
		e.arena = append(e.arena, cands...)
		cands = e.arena[blockStart:]
	} else {
		buf := make([]int32, 0, xlen+len(cands))
		cands = append(buf, cands...)
	}
	if nd.ext >= 0 {
		e.xmat = appendInsertSorted(e.xmat[:0], x, nd.ext)
		x = e.xmat
	}
	var dead bool
	x, cands, dead = e.refineAndJump(x, cands)
	if dead || len(x)+len(cands) < e.p.MinSize {
		return false, nil
	}

	// Lookahead (Algorithm 1 line 9): if X ∪ candExts(X) is itself a
	// quasi-clique, report it and prune the subtree — every set in the
	// subtree is one of its subsets, hence not maximal. The union lives
	// in a reusable scratch buffer; report implementations copy what
	// they keep (see hooks.report).
	if !e.o.DisableLookahead && len(cands) > 0 {
		e.unionBuf = mergeSortedInto(e.unionBuf[:0], x, cands)
		union := e.unionBuf
		e.fill(e.inU, union)
		if e.g.isQuasiClique(union, e.inU, e.p) {
			return !h.report(union), nil
		}
	}

	// Report X itself when it qualifies (Algorithm 1 line 12).
	if len(x) >= e.p.MinSize {
		e.fill(e.inX, x)
		if e.g.isQuasiClique(x, e.inX, e.p) {
			if !h.needLocalMax || !e.g.extendable(x, e.inX, e.alive, e.p, e.degs) {
				if !h.report(x) {
					return true, nil
				}
			}
		}
	}

	// Generate extensions (Algorithm 1 line 15). Child i keeps only the
	// candidates after position i, so once the remaining pool is too
	// small to ever reach min_size no further child can succeed. The
	// children are views into this node's block: the (possibly jump-
	// grown) X slides in behind the refined candidates so the block is
	// self-contained, and each child records just its extension vertex.
	nkids := 0
	for i := range cands {
		if len(x)+1+(len(cands)-i-1) < e.p.MinSize {
			break
		}
		nkids++
	}
	if nkids == 0 {
		return false, nil
	}
	var xs, cs []int32
	if useArena {
		e.arena = e.arena[:blockStart+len(cands)] // drop the refine gap
		e.arena = append(e.arena, x...)
		end := len(e.arena)
		mid := end - len(x)
		xs = e.arena[mid:end:end]
		cs = e.arena[blockStart:mid:mid]
	} else {
		// cands' backing was sized for the candidate copy plus X, and
		// jumps only move vertices from cands to X, so this append
		// cannot reallocate away from the children's views.
		cs = cands
		xs = append(cands, x...)[len(cands):]
	}
	top := int32(len(e.arena))
	children = e.kids[:0]
	for i := 0; i < nkids; i++ {
		children = append(children, node{
			x:     xs,
			cands: cs[i+1:],
			ext:   cs[i],
			popTo: top,
		})
	}
	children[nkids-1].popTo = nd.popTo
	e.kids = children
	return false, children
}

// refineAndJump alternates candidate refinement with the Quick forced-
// vertex jumps until a fixpoint:
//
//   - critical vertex: if some v ∈ X has indeg+exdeg exactly equal to
//     the minimum degree it must reach (⌈γ(max(min_size,|X|)−1)⌉),
//     every valid quasi-clique in this branch must contain ALL of v's
//     candidate neighbors, so they are committed at once;
//   - cover vertex: if some candidate u is adjacent to every member of
//     X and every other candidate, any quasi-clique avoiding u extends
//     by u (degree requirements grow by at most 1 per added vertex), so
//     maximal quasi-cliques — and the coverage they provide — all
//     contain u.
//
// Both jumps commit vertices instead of branching on them, collapsing
// dense regions that would otherwise be enumerated subset by subset.
// The merged X lives in a pair of alternating per-engine buffers (the
// previous merge is an input to the next), valid until the next node is
// processed.
func (e *engine) refineAndJump(x, cands []int32) (nx, ncands []int32, dead bool) {
	which := 0
	for {
		cands, dead = e.refine(x, cands)
		if dead {
			return x, cands, true
		}
		if e.o.DisableJumps || len(x) == 0 || len(cands) == 0 {
			return x, cands, false
		}
		forced := e.forcedCandidates(x, cands)
		if len(forced) == 0 {
			return x, cands, false
		}
		merged := mergeSortedInto(e.xbufs[which][:0], x, forced)
		e.xbufs[which] = merged
		which ^= 1
		x = merged
		cands = removeSorted(cands, forced)
	}
}

// forcedCandidates returns candidates that every valid quasi-clique of
// the branch must include (empty when no jump applies). It relies on
// the scratch bitsets e.inX/e.inC and the degree arrays left at their
// fixpoint by refine. The returned slice aliases a per-engine scratch
// buffer: it is invalidated by the next forcedCandidates call, so
// callers consume it before looping.
func (e *engine) forcedCandidates(x, cands []int32) []int32 {
	minNeedX := int(e.minDegTab[maxInt(e.p.MinSize, len(x))])
	for _, v := range x {
		in, ex := int(e.degIn[v]), int(e.degEx[v])
		if ex > 0 && in+ex == minNeedX {
			forced := e.forcedBuf[:0]
			for _, u := range e.g.neighbors(v) {
				if e.inC.Contains(int(u)) {
					forced = append(forced, u)
				}
			}
			e.forcedBuf = forced
			return forced // adjacency is sorted, so forced is sorted
		}
	}
	for _, u := range cands {
		if int(e.degIn[u]) == len(x) && int(e.degEx[u]) == len(cands)-1 {
			e.forcedBuf = append(e.forcedBuf[:0], u)
			return e.forcedBuf
		}
	}
	return nil
}

// appendInsertSorted appends sorted xs with v inserted at its rank onto
// dst (v must not already occur in xs).
func appendInsertSorted(dst, xs []int32, v int32) []int32 {
	i := 0
	for ; i < len(xs) && xs[i] < v; i++ {
	}
	dst = append(dst, xs[:i]...)
	dst = append(dst, v)
	return append(dst, xs[i:]...)
}

// mergeSortedInto merges two disjoint sorted slices onto dst.
func mergeSortedInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// removeSorted returns xs without the (sorted) elements of drop,
// filtering in place.
func removeSorted(xs, drop []int32) []int32 {
	w, j := 0, 0
	for _, v := range xs {
		for j < len(drop) && drop[j] < v {
			j++
		}
		if j < len(drop) && drop[j] == v {
			continue
		}
		xs[w] = v
		w++
	}
	return xs[:w]
}

// fill resets a scratch bitset to exactly the given members.
func (e *engine) fill(s *bitset.Set, vs []int32) {
	s.Clear()
	for _, v := range vs {
		s.Add(int(v))
	}
}

// refine applies the candidate quasi-clique pruning of §3.2.2:
//
//   - distance pruning: for γ ≥ 0.5 every quasi-clique has diameter ≤ 2,
//     so candidates farther than 2 from any member of X are dropped
//     (folded into one scratch set with the AND kernels, then a single
//     membership test per candidate);
//   - degree feasibility: members of X (and candidates, were they to
//     join) must be able to reach ⌈γ(s−1)⌉ neighbors using only X and
//     the surviving candidates; otherwise the branch (or candidate) dies;
//   - size upper bound: the attainable size min over X of
//     MaxSizeFor(indeg+exdeg), tightened by candidate counting — a
//     final size s requires s−|X| candidates whose own attainable size
//     reaches s, and the feasible sizes form a downward-closed prefix,
//     so one descending scan over a histogram of per-candidate bounds
//     finds the largest feasible size. s=|X| is always feasible, so the
//     bound can never suppress reporting X itself.
//
// The degree loop iterates to a fixpoint because dropping a candidate
// reduces the extension degrees of the others. Returns the surviving
// candidates (the input slice, filtered in place) and whether the whole
// branch is infeasible.
func (e *engine) refine(x, cands []int32) ([]int32, bool) {
	if len(x) == 0 {
		return cands, false
	}
	e.fill(e.inX, x)
	e.inC.Clear()
	for _, u := range cands {
		e.inC.Add(int(u))
	}

	if e.n2 != nil {
		// Fold the distance-2 sets of X into the candidate bitset with
		// the AND kernels; the surviving candidates stream back out in
		// ascending order, which is exactly the filtered slice.
		e.d2buf.AndInto(e.inC, e.n2[x[0]])
		for _, xv := range x[1:] {
			e.d2buf.IntersectWith(e.n2[xv])
		}
		cands = e.d2buf.AppendTo(cands[:0])
		e.inC.CopyFrom(e.d2buf)
	}

	minNeedX := int(e.minDegTab[maxInt(e.p.MinSize, len(x))])
	minNeedC := int(e.minDegTab[maxInt(e.p.MinSize, len(x)+1)])

	// Degrees are computed once with the fused AND+popcount kernel and
	// then maintained incrementally: dropping a candidate decrements the
	// extension degree of its neighbors. The elimination fixpoint is
	// unique whatever the order of drops, so eager in-scan elimination
	// reaches exactly the candidate set (and verdict) that per-round
	// recomputation would.
	for _, v := range x {
		in, ex := e.splitDegree(v)
		e.degIn[v], e.degEx[v] = int32(in), int32(ex)
	}
	for _, u := range cands {
		in, ex := e.splitDegree(u)
		e.degIn[u], e.degEx[u] = int32(in), int32(ex)
	}
	for {
		maxSize := len(x) + len(cands)
		for _, v := range x {
			avail := int(e.degIn[v] + e.degEx[v])
			if avail < minNeedX {
				return nil, true
			}
			if ms := int(e.maxSizeTab[avail]); ms < maxSize {
				maxSize = ms
			}
		}
		if maxSize < e.p.MinSize || maxSize < len(x) {
			return nil, true
		}
		hist := e.hist[:maxSize+1]
		for i := range hist {
			hist[i] = 0
		}
		changed := false
		w := 0
		for _, u := range cands {
			avail := int(e.degIn[u] + e.degEx[u])
			if avail < minNeedC {
				changed = true
				e.inC.Remove(int(u))
				for _, nb := range e.g.neighbors(u) {
					e.degEx[nb]--
				}
				continue
			}
			if ms := int(e.maxSizeTab[avail]); ms >= maxSize {
				hist[maxSize]++
			} else {
				hist[ms]++
			}
			cands[w] = u
			w++
		}
		cands = cands[:w]
		// Candidate-count size bound: scan feasible sizes downward.
		bound := len(x)
		cum := 0
		for s := maxSize; s > len(x); s-- {
			cum += int(hist[s])
			if cum >= s-len(x) {
				bound = s
				break
			}
		}
		if bound < maxSize {
			maxSize = bound
		}
		if maxSize < e.p.MinSize || maxSize < len(x) {
			return nil, true
		}
		if !changed {
			return cands, false
		}
		if len(x)+len(cands) < e.p.MinSize {
			return nil, true
		}
	}
}

// splitDegree returns |N(v) ∩ X| and |N(v) ∩ cands| using the scratch
// bitsets prepared by refine: one fused AND+popcount pass over the
// adjacency row when the bitset index exists, a neighbor-list walk
// otherwise.
func (e *engine) splitDegree(v int32) (in, ex int) {
	if e.adj != nil {
		return e.adj[v].IntersectCount2(e.inX, e.inC)
	}
	for _, u := range e.g.neighbors(v) {
		if e.inX.Contains(int(u)) {
			in++
		} else if e.inC.Contains(int(u)) {
			ex++
		}
	}
	return in, ex
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
