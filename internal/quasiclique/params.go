// Package quasiclique implements a Quick-style quasi-clique miner (Liu &
// Wong, PKDD 2008) specialised for the three uses SCPM makes of it:
//
//   - full enumeration of maximal quasi-cliques (the naive algorithm of
//     §3.1 of the paper);
//   - coverage search: decide which vertices belong to at least one
//     quasi-clique, with covered-candidate pruning and a BFS or DFS
//     frontier (Algorithm 1, §3.2.2);
//   - top-k pattern search ranked by size then density, with dynamic
//     min-size raising (§3.2.3).
//
// A quasi-clique (Definition 1) is a maximal vertex set Q with
// deg_Q(v) ≥ ⌈γ·(|Q|−1)⌉ for every v ∈ Q and |Q| ≥ min_size. Maximality
// is by set containment: no proper superset of Q may itself satisfy the
// degree constraint (Table 1 of the paper requires this — {7,8,9,10} is
// a valid 0.67 quasi-clique but is subsumed by {6,…,11}).
package quasiclique

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Params are the quasi-clique definition parameters.
type Params struct {
	// Gamma is the minimum density threshold γmin, in (0, 1].
	Gamma float64
	// MinSize is the minimum quasi-clique size min_size (≥ 2).
	MinSize int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if !(p.Gamma > 0 && p.Gamma <= 1) {
		return fmt.Errorf("quasiclique: gamma %v outside (0,1]", p.Gamma)
	}
	if p.MinSize < 2 {
		return fmt.Errorf("quasiclique: min size %d < 2", p.MinSize)
	}
	return nil
}

// MinDegree returns ⌈γ·(size−1)⌉, the degree every member of a
// quasi-clique of the given size must reach. A small epsilon absorbs
// float noise so that e.g. 0.6·5 = 3.0000000000000004 yields 3, not 4.
func (p Params) MinDegree(size int) int {
	if size <= 1 {
		return 0
	}
	return int(math.Ceil(p.Gamma*float64(size-1) - 1e-9))
}

// MaxSizeFor returns the largest quasi-clique size s a vertex with
// `avail` usable neighbors could belong to: the largest s with
// ⌈γ(s−1)⌉ ≤ avail.
func (p Params) MaxSizeFor(avail int) int {
	if avail < 0 {
		return 0
	}
	return int(float64(avail)/p.Gamma+1e-9) + 1
}

// SearchOrder selects how Algorithm 1 traverses the candidate tree.
type SearchOrder int

const (
	// DFS uses a LIFO stack: vertex sets are extended as much as
	// possible before backtracking.
	DFS SearchOrder = iota
	// BFS uses a FIFO queue: all smaller vertex sets are visited before
	// larger ones.
	BFS
)

// String returns "DFS" or "BFS".
func (o SearchOrder) String() string {
	if o == BFS {
		return "BFS"
	}
	return "DFS"
}

// Options tune the search engine.
type Options struct {
	// Order is the frontier discipline (DFS by default).
	Order SearchOrder
	// DisableDiameterPruning turns off the distance-2 candidate filter
	// (the filter applies only when γ ≥ 0.5, where quasi-cliques are
	// known to have diameter ≤ 2).
	DisableDiameterPruning bool
	// DisableLookahead turns off the X ∪ cand quasi-clique shortcut.
	// Exposed for the ablation study; normal callers keep it on.
	DisableLookahead bool
	// DisableComponentSplit turns off the connected-component
	// decomposition that runs the search once per component of the
	// peeled graph (γ ≥ 0.5 forces quasi-cliques to be connected, so
	// components are independent sub-problems; for γ < 0.5 the split
	// is unsound and skipped regardless). Ablation switch.
	DisableComponentSplit bool
	// DisableJumps turns off the critical-vertex and cover-vertex
	// jumps (the Quick techniques that commit forced candidates in one
	// step instead of branching on them). Ablation switch.
	DisableJumps bool
	// MaxNodes bounds the number of search-tree nodes processed; 0
	// means unbounded. When exceeded the search returns ErrBudget.
	MaxNodes int64
	// Ctx, when non-nil, is polled periodically by the search loop;
	// once done the search aborts with an error satisfying
	// errors.Is(err, ErrCanceled) that wraps context.Cause(Ctx).
	Ctx context.Context
}

// ErrBudget is returned when Options.MaxNodes is exhausted. The
// message carries no package prefix because the sentinel is re-exported
// through core and the public scpm facade.
var ErrBudget = errors.New("search node budget exceeded")

// ErrCanceled is returned when Options.Ctx is done before the search
// finishes. The concrete error wraps both this sentinel and
// context.Cause, so errors.Is works against either.
var ErrCanceled = errors.New("mining canceled")

// Canceled builds the canonical cancellation error for a done context.
func Canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}
