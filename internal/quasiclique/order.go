package quasiclique

import (
	"slices"
	"sync"
)

// orderedView relabels a graph by degeneracy (k-core) order: new id i is
// the i-th vertex removed by the iterative minimum-degree peel, so every
// vertex has at most degeneracy(G) neighbors with larger new ids. The
// candidate tree extends vertex sets with ascending ids only, which
// under this labeling means every branch vertex contributes its small
// "later" neighborhood instead of an arbitrary one — the candidate
// ordering that pruning-based quasi-clique enumeration wants (Uno-style
// orderings; see docs/ARCHITECTURE.md). Set-valued searches (coverage,
// anchored membership) run entirely in new-id space and unmap their
// answers at the boundary, so outputs are bit-identical to the unordered
// search; only the node count changes.
type orderedView struct {
	g      *Graph
	origOf []int32 // new id -> original id
	newOf  []int32 // original id -> new id

	// Recycled backing: one view is built per coverage search — per
	// evaluated attribute set — so its setup allocations matter the
	// same way the engine's do. graph backs g for pooled views; the
	// remaining fields are degeneracy-peel and relabeling scratch.
	graph     Graph
	deg, pos  []int
	bin, fill []int
	off       []int64
	nbrs      []int32
	coverBuf  []int32 // CoverageSeeded's certificate-emission scratch
}

// viewPool recycles ordered views across coverage searches. Retained
// views (anchored engines) are built with newOrderedView and never
// enter the pool.
var viewPool = sync.Pool{New: func() any { return new(orderedView) }}

func getOrderedView(g *Graph) *orderedView {
	ov := viewPool.Get().(*orderedView)
	ov.reset(g)
	return ov
}

// release returns ov to the view pool; the caller must be done with the
// relabeled graph and both id maps.
func (ov *orderedView) release() {
	ov.g = nil
	viewPool.Put(ov)
}

// newOrderedView builds the degeneracy-relabeled CSR for g, unpooled.
func newOrderedView(g *Graph) *orderedView {
	ov := new(orderedView)
	ov.reset(g)
	return ov
}

// reset (re)builds the view over g, reusing whatever backing a previous
// use left behind. Every buffer is fully overwritten (bin is the one
// counting array that assumes zeros, and it is cleared explicitly), so
// a recycled view is identical to a freshly built one.
func (ov *orderedView) reset(g *Graph) {
	n := g.n
	ov.degeneracyOrder(g)
	ov.newOf = grown(ov.newOf, n)
	for i, v := range ov.origOf {
		ov.newOf[v] = int32(i)
	}
	ov.off = grown(ov.off, n+1)
	ov.off[0] = 0
	for i, v := range ov.origOf {
		ov.off[i+1] = ov.off[i] + int64(g.Degree(v))
	}
	ov.nbrs = grown(ov.nbrs, int(ov.off[n]))
	for i, v := range ov.origOf {
		row := ov.nbrs[ov.off[i]:ov.off[i+1]]
		for j, u := range g.neighbors(v) {
			row[j] = ov.newOf[u]
		}
		slices.Sort(row)
	}
	ov.graph = Graph{off: ov.off, nbrs: ov.nbrs, n: n}
	ov.g = &ov.graph
}

// degeneracyOrder fills ov.origOf with the vertices of g in degeneracy
// order using the O(n+m) bin-sort peel (Matula–Beck). Ties start in
// ascending-id order; the whole procedure is a deterministic function
// of the graph.
func (ov *orderedView) degeneracyOrder(g *Graph) {
	n := g.n
	deg := grown(ov.deg, n)
	ov.deg = deg
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// vert holds the vertices sorted by current degree; bin[d] is the
	// start of degree-d's run, pos[v] the index of v inside vert.
	bin := grown(ov.bin, maxDeg+2)
	ov.bin = bin
	for d := range bin {
		bin[d] = 0
	}
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	vert := grown(ov.origOf, n)
	ov.origOf = vert
	pos := grown(ov.pos, n)
	ov.pos = pos
	fill := grown(ov.fill, maxDeg+1)
	ov.fill = fill
	copy(fill, bin[:maxDeg+1])
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = int32(v)
		fill[deg[v]]++
	}
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range g.neighbors(v) {
			if pos[u] <= i {
				continue
			}
			// Move u to the front of its degree bin, then shrink its
			// degree by one so the bin boundary slides over it.
			du := deg[u]
			pu, pw := pos[u], bin[du]
			if w := vert[pw]; w != u {
				vert[pu], vert[pw] = w, u
				pos[w], pos[u] = pu, pw
			}
			bin[du]++
			deg[u]--
		}
	}
}
