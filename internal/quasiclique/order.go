package quasiclique

import "slices"

// orderedView relabels a graph by degeneracy (k-core) order: new id i is
// the i-th vertex removed by the iterative minimum-degree peel, so every
// vertex has at most degeneracy(G) neighbors with larger new ids. The
// candidate tree extends vertex sets with ascending ids only, which
// under this labeling means every branch vertex contributes its small
// "later" neighborhood instead of an arbitrary one — the candidate
// ordering that pruning-based quasi-clique enumeration wants (Uno-style
// orderings; see docs/ARCHITECTURE.md). Set-valued searches (coverage,
// anchored membership) run entirely in new-id space and unmap their
// answers at the boundary, so outputs are bit-identical to the unordered
// search; only the node count changes.
type orderedView struct {
	g      *Graph
	origOf []int32 // new id -> original id
	newOf  []int32 // original id -> new id
}

// degeneracyOrder returns the vertices of g in degeneracy order using
// the O(n+m) bin-sort peel (Matula–Beck). Ties start in ascending-id
// order; the whole procedure is a deterministic function of the graph.
func degeneracyOrder(g *Graph) []int32 {
	n := g.n
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// vert holds the vertices sorted by current degree; bin[d] is the
	// start of degree-d's run, pos[v] the index of v inside vert.
	bin := make([]int, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	vert := make([]int32, n)
	pos := make([]int, n)
	fill := append([]int(nil), bin[:maxDeg+1]...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = int32(v)
		fill[deg[v]]++
	}
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range g.neighbors(v) {
			if pos[u] <= i {
				continue
			}
			// Move u to the front of its degree bin, then shrink its
			// degree by one so the bin boundary slides over it.
			du := deg[u]
			pu, pw := pos[u], bin[du]
			if w := vert[pw]; w != u {
				vert[pu], vert[pw] = w, u
				pos[w], pos[u] = pu, pw
			}
			bin[du]++
			deg[u]--
		}
	}
	return vert
}

// newOrderedView builds the degeneracy-relabeled CSR for g.
func newOrderedView(g *Graph) *orderedView {
	order := degeneracyOrder(g)
	n := g.n
	newOf := make([]int32, n)
	for i, v := range order {
		newOf[v] = int32(i)
	}
	off := make([]int64, n+1)
	for i, v := range order {
		off[i+1] = off[i] + int64(g.Degree(v))
	}
	nbrs := make([]int32, off[n])
	for i, v := range order {
		row := nbrs[off[i]:off[i+1]]
		for j, u := range g.neighbors(v) {
			row[j] = newOf[u]
		}
		slices.Sort(row)
	}
	return &orderedView{
		g:      &Graph{off: off, nbrs: nbrs, n: n},
		origOf: order,
		newOf:  newOf,
	}
}
