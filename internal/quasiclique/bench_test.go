package quasiclique

import (
	"math/rand"
	"testing"
)

// benchGraph builds a graph with planted dense blocks over a sparse
// background — the induced-subgraph shape the coverage search sees in
// SCPM runs.
func benchGraph(seed int64, n, blocks, blockSize int, background, intra float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int32
	m := int(background * float64(n) / 2)
	for i := 0; i < m; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			edges = append(edges, [2]int32{u, v})
		}
	}
	perm := rng.Perm(n)
	idx := 0
	for b := 0; b < blocks && idx+blockSize <= n; b++ {
		members := perm[idx : idx+blockSize]
		idx += blockSize
		for i := 0; i < blockSize; i++ {
			for j := i + 1; j < blockSize; j++ {
				if rng.Float64() < intra {
					edges = append(edges, [2]int32{int32(members[i]), int32(members[j])})
				}
			}
		}
	}
	return buildGraph(n, edges)
}

func benchParams() Params { return Params{Gamma: 0.5, MinSize: 5} }

func BenchmarkCoverageDFS(b *testing.B) {
	g := benchGraph(1, 2000, 40, 10, 4, 0.75)
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Coverage(g, p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverageBFS(b *testing.B) {
	g := benchGraph(1, 2000, 40, 10, 4, 0.75)
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Coverage(g, p, Options{Order: BFS}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverageNoComponentSplit(b *testing.B) {
	g := benchGraph(1, 2000, 40, 10, 4, 0.75)
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Coverage(g, p, Options{DisableComponentSplit: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateMaximal(b *testing.B) {
	g := benchGraph(2, 800, 16, 10, 3, 0.75)
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EnumerateMaximal(g, p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopK(b *testing.B) {
	g := benchGraph(2, 800, 16, 10, 3, 0.75)
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopK(g, p, 5, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeel(b *testing.B) {
	g := benchGraph(3, 5000, 50, 10, 4, 0.75)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Peel(3)
	}
}
