package quasiclique

import (
	"slices"

	"github.com/scpm/scpm/internal/bitset"
)

// Engine is a reusable handle for anchored membership queries over one
// graph: "does vertex v belong to at least one γ-quasi-clique of size ≥
// min_size?". Construction runs the degree peel (and, for γ ≥ 0.5, the
// distance-2 index) once; every CoversVertex call then reuses those
// structures plus the engine's scratch buffers, so a batch of queries on
// the same graph — the access pattern of sampling-based ε estimation —
// pays the setup cost a single time.
//
// An Engine additionally memoizes coverage across queries: every
// quasi-clique the anchored searches happen to report marks all of its
// vertices as covered, and later queries for those vertices return
// immediately. An Engine is therefore stateful and NOT safe for
// concurrent use; callers needing parallel queries build one Engine per
// goroutine.
//
// Options.MaxNodes, when set, bounds the total nodes across all of the
// Engine's queries combined (the natural per-induced-graph budget).
type Engine struct {
	e     *engine
	ov    *orderedView // queries run in degeneracy-relabeled id space
	found *bitset.Set  // vertices proven covered, in relabeled ids

	// component decomposition, built lazily on the first query that can
	// use it (γ ≥ 0.5 and the split enabled)
	compsBuilt bool
	compOf     []int32 // component index per vertex, -1 when dead
	comps      [][]int32

	candsBuf []int32 // reusable root-candidate buffer (one per query)

	certSink func(q []int32) // see SetCertSink
	certBuf  []int32
}

// SetCertSink registers fn to receive every quasi-clique the engine's
// queries report, in g's vertex ids sorted ascending. The slice is
// reused across calls; receivers copy what they keep. Callers use the
// sink to harvest coverage certificates from anchored searches (the
// sets remain quasi-cliques in any graph that contains them induced).
func (q *Engine) SetCertSink(fn func(q []int32)) { q.certSink = fn }

// NewEngine validates the parameters and builds a query handle for g.
// Like Coverage, the internal search runs on a degeneracy-relabeled
// copy of g (the CoversVertex verdict is a property of the vertex, not
// of the labeling), so queries translate v at the boundary.
func NewEngine(g *Graph, p Params, o Options) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ov := newOrderedView(g)
	return &Engine{e: newEngine(ov.g, p, o), ov: ov, found: bitset.New(g.n)}, nil
}

// NodesVisited reports the total number of candidate-tree nodes
// processed across all queries so far.
func (q *Engine) NodesVisited() int64 { return q.e.nodes }

// CoversVertex reports whether v is a member of at least one
// γ-quasi-clique of size ≥ min_size — the per-vertex membership query
// behind sampled ε estimation (§6 of the paper). The search is anchored:
// branches that can no longer produce a set containing v are pruned, and
// the first reported quasi-clique containing v ends the query. Out-of-
// range vertices are reported as not covered.
func (q *Engine) CoversVertex(v int32) (bool, error) {
	if v < 0 || int(v) >= q.e.g.n {
		return false, nil
	}
	v = q.ov.newOf[v] // relabeled id space from here on
	// Peeled vertices cannot be members (Algorithm 1 line 4), and
	// vertices already seen inside a reported quasi-clique need no
	// further search.
	if !q.e.alive.Contains(int(v)) {
		return false, nil
	}
	if q.found.Contains(int(v)) {
		return true, nil
	}
	cands := q.candsFor(v)
	if len(cands)+1 < q.e.p.MinSize {
		return false, nil
	}
	// The search is rooted at X = {v}: every quasi-clique containing v
	// is {v} ∪ (a subset of the other candidates), so enumerating the
	// subsets of cands on top of that root is complete for v — and no
	// node outside v's subtree is ever generated. The candidate-tree
	// invariant only requires each child to keep the candidates after
	// its own extension point, which holds for any sorted root.
	covered := false
	h := hooks{
		// Maximality is irrelevant here: a non-maximal valid set extends
		// to a maximal quasi-clique, and supersets keep v, so the first
		// reported set — which contains v by construction — proves
		// membership.
		report: func(set []int32) bool {
			for _, u := range set {
				q.found.Add(int(u))
			}
			if q.certSink != nil {
				q.certBuf = q.certBuf[:0]
				for _, u := range set {
					q.certBuf = append(q.certBuf, q.ov.origOf[u])
				}
				slices.Sort(q.certBuf)
				q.certSink(q.certBuf)
			}
			covered = true
			return false
		},
	}
	_, err := q.e.runFrontier(node{x: []int32{v}, cands: cands, ext: -1}, h)
	if err != nil {
		return false, err
	}
	return covered, nil
}

// candsFor returns a sorted candidate slice (v excluded) for the search
// anchored at v, in relabeled ids. For γ ≥ 0.5 every quasi-clique has
// diameter ≤ 2, so a quasi-clique containing v lies entirely inside
// N₂(v) — the engine's precomputed distance-2 set — which shrinks the
// candidates from v's whole component to a degree-squared-sized
// neighborhood. Otherwise the candidates are v's component (or the
// whole peeled set when the split is unsound or disabled). The slice is
// a per-Engine buffer (refinement filters the root's candidates in
// place, and each query's search completes before the next begins).
func (q *Engine) candsFor(v int32) []int32 {
	if q.e.n2 != nil && q.e.n2[v] != nil {
		q.candsBuf = q.e.n2[v].AppendTo(q.candsBuf[:0])
		return dropSorted(q.candsBuf, v)
	}
	if q.e.p.Gamma < 0.5 || q.e.o.DisableComponentSplit {
		q.candsBuf = q.e.alive.AppendTo(q.candsBuf[:0])
		return dropSorted(q.candsBuf, v)
	}
	if !q.compsBuilt {
		q.comps = q.e.g.components(q.e.alive)
		q.compOf = make([]int32, q.e.g.n)
		for i := range q.compOf {
			q.compOf[i] = -1
		}
		for ci, comp := range q.comps {
			for _, u := range comp {
				q.compOf[u] = int32(ci)
			}
		}
		q.compsBuilt = true
	}
	ci := q.compOf[v]
	if ci < 0 {
		return nil
	}
	q.candsBuf = append(q.candsBuf[:0], q.comps[ci]...)
	return dropSorted(q.candsBuf, v)
}

// dropSorted removes v from the ascending slice xs in place (no-op when
// absent).
func dropSorted(xs []int32, v int32) []int32 {
	i, ok := slices.BinarySearch(xs, v)
	if !ok {
		return xs
	}
	return append(xs[:i], xs[i+1:]...)
}
