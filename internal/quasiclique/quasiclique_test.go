package quasiclique

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// buildGraph constructs a Graph from an undirected edge list over n
// vertices.
func buildGraph(n int, edges [][2]int32) *Graph {
	adj := make([][]int32, n)
	seen := map[[2]int32]bool{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
	}
	return NewGraph(adj)
}

// paperGraph is the Figure-1 graph with 0-based ids (vertex i → i−1).
func paperGraph() *Graph {
	edges := [][2]int32{
		{0, 1}, {0, 2}, {1, 2},
		{2, 3}, {2, 4}, {2, 5}, {2, 6},
		{3, 4}, {3, 5}, {4, 5},
		{5, 6}, {5, 7}, {5, 10},
		{6, 7}, {6, 8},
		{7, 9},
		{8, 9}, {8, 10},
		{9, 10},
	}
	return buildGraph(11, edges)
}

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{{0, 4}, {-0.1, 4}, {1.1, 4}, {0.5, 1}, {0.5, 0}} {
		if err := p.Validate(); err == nil {
			t.Errorf("Params %+v accepted", p)
		}
	}
	if err := (Params{0.5, 2}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestMinDegree(t *testing.T) {
	cases := []struct {
		gamma float64
		size  int
		want  int
	}{
		{0.6, 6, 3},  // 0.6·5 = 3.0000000000000004 must stay 3
		{0.6, 4, 2},  // ⌈1.8⌉ = 2
		{1.0, 4, 3},  // clique
		{0.5, 11, 5}, // ⌈5⌉
		{0.51, 11, 6},
		{0.5, 2, 1},
		{0.5, 1, 0},
	}
	for _, c := range cases {
		p := Params{Gamma: c.gamma, MinSize: 2}
		if got := p.MinDegree(c.size); got != c.want {
			t.Errorf("MinDegree(γ=%v, size=%d) = %d, want %d", c.gamma, c.size, got, c.want)
		}
	}
}

func TestMaxSizeFor(t *testing.T) {
	p := Params{Gamma: 0.6, MinSize: 2}
	// avail=3: largest s with ⌈0.6(s−1)⌉ ≤ 3 is s = 6 (0.6·5 = 3)
	if got := p.MaxSizeFor(3); got != 6 {
		t.Errorf("MaxSizeFor(3) = %d, want 6", got)
	}
	if got := p.MaxSizeFor(0); got != 1 {
		t.Errorf("MaxSizeFor(0) = %d, want 1", got)
	}
	if got := p.MaxSizeFor(-1); got != 0 {
		t.Errorf("MaxSizeFor(-1) = %d, want 0", got)
	}
	one := Params{Gamma: 1, MinSize: 2}
	if got := one.MaxSizeFor(4); got != 5 {
		t.Errorf("clique MaxSizeFor(4) = %d, want 5", got)
	}
}

func TestPeel(t *testing.T) {
	// path 0-1-2-3 plus triangle 4-5-6
	g := buildGraph(7, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {4, 6}})
	alive := g.Peel(2)
	want := []int32{4, 5, 6} // the path peels away entirely
	if !reflect.DeepEqual(alive.Slice(), want) {
		t.Fatalf("Peel = %v, want %v", alive.Slice(), want)
	}
	if got := g.Peel(0).Count(); got != 7 {
		t.Fatalf("Peel(0) removed vertices: %d", got)
	}
}

func vertexSets(ps []Pattern) [][]int32 {
	out := make([][]int32, len(ps))
	for i, p := range ps {
		out[i] = p.Vertices
	}
	return out
}

func TestPaperExampleMaximal(t *testing.T) {
	g := paperGraph()
	p := Params{Gamma: 0.6, MinSize: 4}
	got, err := EnumerateMaximal(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{
		{5, 6, 7, 8, 9, 10}, // {6,…,11}
		{2, 3, 4, 5},        // {3,4,5,6} the clique
		{2, 3, 5, 6},        // {3,4,6,7}
		{2, 4, 5, 6},        // {3,5,6,7}
		{2, 5, 6, 7},        // {3,6,7,8}
	}
	if !reflect.DeepEqual(vertexSets(got), want) {
		t.Fatalf("maximal = %v, want %v", vertexSets(got), want)
	}
	// density/γ column of Table 1
	if d := got[0].Density(); d < 0.599 || d > 0.601 {
		t.Errorf("6-set density = %v, want 0.6", d)
	}
	if d := got[1].Density(); d != 1 {
		t.Errorf("clique density = %v, want 1", d)
	}
	if d := got[2].Density(); d < 0.66 || d > 0.67 {
		t.Errorf("{3,4,6,7} density = %v, want 2/3", d)
	}
}

func TestPaperExampleCoverage(t *testing.T) {
	g := paperGraph()
	p := Params{Gamma: 0.6, MinSize: 4}
	for _, order := range []SearchOrder{DFS, BFS} {
		res, err := Coverage(g, p, Options{Order: order})
		if err != nil {
			t.Fatal(err)
		}
		want := []int32{2, 3, 4, 5, 6, 7, 8, 9, 10} // vertices 3..11
		if !reflect.DeepEqual(res.Covered.Slice(), want) {
			t.Fatalf("[%v] covered = %v, want %v", order, res.Covered.Slice(), want)
		}
	}
}

func TestPaperExampleTopK(t *testing.T) {
	g := paperGraph()
	p := Params{Gamma: 0.6, MinSize: 4}
	top, err := TopK(g, p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d patterns", len(top))
	}
	if !reflect.DeepEqual(top[0].Vertices, []int32{5, 6, 7, 8, 9, 10}) {
		t.Fatalf("top1 = %v", top[0].Vertices)
	}
	// second best: size 4, density 1 beats the 0.67 ones
	if !reflect.DeepEqual(top[1].Vertices, []int32{2, 3, 4, 5}) {
		t.Fatalf("top2 = %v", top[1].Vertices)
	}
}

func TestTopKMoreThanAvailable(t *testing.T) {
	g := paperGraph()
	p := Params{Gamma: 0.6, MinSize: 4}
	top, err := TopK(g, p, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("got %d patterns, want all 5", len(top))
	}
	if _, err := TopK(g, p, 0, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	p := Params{Gamma: 0.5, MinSize: 3}
	g := buildGraph(0, nil)
	got, err := EnumerateMaximal(g, p, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty graph: %v %v", got, err)
	}
	g = buildGraph(2, [][2]int32{{0, 1}})
	res, err := Coverage(g, p, Options{})
	if err != nil || res.Covered.Count() != 0 {
		t.Fatalf("tiny graph coverage: %v %v", res.Covered, err)
	}
}

func TestCliqueOfFive(t *testing.T) {
	var edges [][2]int32
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int32{i, j})
		}
	}
	g := buildGraph(5, edges)
	got, err := EnumerateMaximal(g, Params{Gamma: 1, MinSize: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Size() != 5 || got[0].Density() != 1 {
		t.Fatalf("clique: %v", got)
	}
	if got[0].EdgeDensity() != 1 || got[0].Edges != 10 {
		t.Fatalf("clique metrics: %+v", got[0])
	}
}

func TestMaxNodesBudget(t *testing.T) {
	g := paperGraph()
	p := Params{Gamma: 0.6, MinSize: 4}
	_, err := EnumerateMaximal(g, p, Options{MaxNodes: 2})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// randomTestGraph builds a small random graph for the property tests.
func randomTestGraph(rng *rand.Rand) *Graph {
	n := 5 + rng.Intn(8) // 5..12
	var edges [][2]int32
	p := 0.2 + rng.Float64()*0.5
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int32{i, j})
			}
		}
	}
	return buildGraph(n, edges)
}

func randomParams(rng *rand.Rand) Params {
	gammas := []float64{0.4, 0.5, 0.6, 0.7, 1.0}
	return Params{
		Gamma:   gammas[rng.Intn(len(gammas))],
		MinSize: 3 + rng.Intn(2),
	}
}

func patternsEqual(a, b []Pattern) bool {
	return reflect.DeepEqual(vertexSets(a), vertexSets(b))
}

func TestQuickEnumerateMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTestGraph(rng)
		p := randomParams(rng)
		want, err := BruteMaximal(g, p)
		if err != nil {
			return false
		}
		for _, opts := range []Options{
			{},
			{Order: BFS},
			{DisableLookahead: true},
			{DisableDiameterPruning: true},
			{DisableComponentSplit: true},
			{DisableJumps: true},
			{Order: BFS, DisableLookahead: true, DisableDiameterPruning: true, DisableComponentSplit: true, DisableJumps: true},
		} {
			got, err := EnumerateMaximal(g, p, opts)
			if err != nil || !patternsEqual(got, want) {
				t.Logf("seed=%d opts=%+v params=%+v\n got=%v\nwant=%v",
					seed, opts, p, vertexSets(got), vertexSets(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoverageMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTestGraph(rng)
		p := randomParams(rng)
		want, err := BruteCoverage(g, p)
		if err != nil {
			return false
		}
		for _, opts := range []Options{
			{}, {Order: BFS}, {DisableJumps: true}, {DisableComponentSplit: true},
		} {
			res, err := Coverage(g, p, opts)
			if err != nil || !res.Covered.Equal(want) {
				t.Logf("seed=%d opts=%+v params=%+v\n got=%v\nwant=%v",
					seed, opts, p, res.Covered, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTopKMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTestGraph(rng)
		p := randomParams(rng)
		all, err := BruteMaximal(g, p)
		if err != nil {
			return false
		}
		for _, k := range []int{1, 2, 5} {
			want := all
			if len(want) > k {
				want = want[:k]
			}
			got, err := TopK(g, p, k, Options{DisableJumps: seed%2 == 0})
			if err != nil || !patternsEqual(got, want) {
				t.Logf("seed=%d k=%d params=%+v\n got=%v\nwant=%v",
					seed, k, p, vertexSets(got), vertexSets(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEveryPatternIsValidQuasiClique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTestGraph(rng)
		p := randomParams(rng)
		got, err := EnumerateMaximal(g, p, Options{})
		if err != nil {
			return false
		}
		for _, pat := range got {
			if pat.Size() < p.MinSize {
				return false
			}
			need := p.MinDegree(pat.Size())
			if pat.MinDeg < need {
				return false
			}
			// recompute min degree independently
			min := g.n
			for _, v := range pat.Vertices {
				d := 0
				for _, u := range g.Neighbors(v) {
					for _, w := range pat.Vertices {
						if w == u {
							d++
							break
						}
					}
				}
				if d < min {
					min = d
				}
			}
			if min != pat.MinDeg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	// two triangles and an isolated edge
	g := buildGraph(8, [][2]int32{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{6, 7},
	})
	alive := g.Peel(0)
	comps := g.components(alive)
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	want := [][]int32{{0, 1, 2}, {3, 4, 5}, {6, 7}}
	for i := range want {
		if !reflect.DeepEqual(comps[i], want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
	}
	// restricting alive hides vertices
	alive.Remove(4)
	comps = g.components(alive)
	if len(comps) != 4 { // {0,1,2}, {3,5}, {6,7} — wait 3-5 edge keeps them together
		// {3,5} stay connected through the 3-5 edge
		t.Logf("components after removal: %v", comps)
	}
	found := false
	for _, c := range comps {
		if reflect.DeepEqual(c, []int32{3, 5}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected {3,5} component, got %v", comps)
	}
}

func TestCoverageAcrossComponents(t *testing.T) {
	// two disjoint 4-cliques: both must be covered with and without
	// component splitting
	var edges [][2]int32
	for base := int32(0); base <= 4; base += 4 {
		for i := base; i < base+4; i++ {
			for j := i + 1; j < base+4; j++ {
				edges = append(edges, [2]int32{i, j})
			}
		}
	}
	g := buildGraph(8, edges)
	p := Params{Gamma: 1, MinSize: 4}
	for _, opts := range []Options{{}, {DisableComponentSplit: true}} {
		res, err := Coverage(g, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Covered.Count() != 8 {
			t.Fatalf("opts %+v: covered = %v", opts, res.Covered)
		}
	}
}

func TestComparePatterns(t *testing.T) {
	a := Pattern{Vertices: []int32{0, 1, 2, 3, 4, 5}, MinDeg: 3}
	b := Pattern{Vertices: []int32{0, 1, 2, 3}, MinDeg: 3}
	c := Pattern{Vertices: []int32{0, 1, 2, 3}, MinDeg: 2}
	d := Pattern{Vertices: []int32{0, 1, 2, 4}, MinDeg: 2}
	if ComparePatterns(a, b) >= 0 {
		t.Error("larger should rank first")
	}
	if ComparePatterns(b, c) >= 0 {
		t.Error("denser should rank first at equal size")
	}
	if ComparePatterns(c, d) >= 0 {
		t.Error("lexicographic tie-break broken")
	}
	if ComparePatterns(a, a) != 0 {
		t.Error("self comparison should be 0")
	}
}

func TestFilterContained(t *testing.T) {
	sets := [][]int32{
		{0, 1, 2},
		{0, 1, 2, 3},
		{4, 5},
		{0, 1, 2}, // duplicate
	}
	got := filterContained(6, sets)
	want := [][]int32{{0, 1, 2, 3}, {4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestLowGammaDisconnectedQuasiClique pins the γ < 0.5 case where a
// maximal quasi-clique spans two connected components: two disjoint
// triangles form a valid 0.4-quasi-clique of size 6 (every vertex has
// internal degree 2 ≥ ⌈0.4·5⌉), so the component decomposition must
// not be applied. Regression test for a miss found by TestQuick
// EnumerateMatchesBrute at seed -8885235820416132356.
func TestLowGammaDisconnectedQuasiClique(t *testing.T) {
	// vertices 0-2 and 3-5: two disjoint triangles
	g := buildGraph(6, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}})
	p := Params{Gamma: 0.4, MinSize: 3}
	want, err := BruteMaximal(g, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EnumerateMaximal(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !patternsEqual(got, want) {
		t.Fatalf("got %v, want %v", vertexSets(got), vertexSets(want))
	}
	if len(got) != 1 || len(got[0].Vertices) != 6 {
		t.Fatalf("expected the single spanning 6-vertex quasi-clique, got %v", vertexSets(got))
	}
}

// Regression: with a BFS frontier, the collector can briefly believe
// the k-th best size is larger than it finally is — here two size-4
// patterns enter the buffer, evict every size-3 candidate and raise
// the prune threshold to 4, and are later both subsumed by the one
// size-5 maximal pattern. TopK must detect that suppression and fall
// back to full enumeration instead of returning an arbitrary size-3
// survivor.
func TestTopKSubsumedThresholdFallback(t *testing.T) {
	g := buildGraph(7, [][2]int32{
		{0, 4}, {0, 6}, {1, 4}, {1, 5}, {1, 6}, {2, 6}, {3, 4}, {3, 6},
	})
	p := Params{Gamma: 0.5, MinSize: 3}
	want, err := EnumerateMaximal(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []SearchOrder{DFS, BFS} {
		top, err := TopK(g, p, 2, Options{Order: o})
		if err != nil {
			t.Fatal(err)
		}
		if len(top) != 2 {
			t.Fatalf("%v: got %d patterns, want 2", o, len(top))
		}
		for i := range top {
			if ComparePatterns(top[i], want[i]) != 0 {
				t.Errorf("%v: top[%d] = %v, want %v", o, i, top[i], want[i])
			}
		}
	}
}

// TestNewGraphCSREquivalence pins that the zero-copy CSR constructor
// and the flattening slice constructor describe the same graph and
// mine identical patterns.
func TestNewGraphCSREquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(16)
		var edges [][2]int32
		for i := 0; i < n*3; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				edges = append(edges, [2]int32{u, v})
			}
		}
		g := buildGraph(n, edges)
		// rebuild per-vertex slices from the CSR graph, then round-trip
		adj := make([][]int32, n)
		for v := int32(0); v < int32(n); v++ {
			adj[v] = append([]int32(nil), g.Neighbors(v)...)
		}
		off := make([]int64, n+1)
		for v, a := range adj {
			off[v+1] = off[v] + int64(len(a))
		}
		nbrs := make([]int32, 0, off[n])
		for _, a := range adj {
			nbrs = append(nbrs, a...)
		}
		csr := NewGraphCSR(off, nbrs)
		if csr.NumVertices() != g.NumVertices() || csr.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: size mismatch", trial)
		}
		for v := int32(0); v < int32(n); v++ {
			if csr.Degree(v) != g.Degree(v) {
				t.Fatalf("trial %d: degree(%d) mismatch", trial, v)
			}
			for u := int32(0); u < int32(n); u++ {
				if csr.HasEdge(v, u) != g.HasEdge(v, u) {
					t.Fatalf("trial %d: HasEdge(%d,%d) mismatch", trial, v, u)
				}
			}
		}
		p := Params{Gamma: 0.5, MinSize: 3}
		a, err := EnumerateMaximal(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := EnumerateMaximal(csr, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: patterns differ:\n%v\n%v", trial, a, b)
		}
	}
}
