package quasiclique

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/scpm/scpm/internal/bitset"
)

// This file holds an exhaustive reference implementation used by the
// property-based tests (and nothing else). It enumerates every vertex
// subset, so it is limited to graphs of at most 24 vertices.

// BruteMaximal returns the containment-maximal quasi-cliques of g by
// exhaustive subset enumeration, sorted by ComparePatterns.
func BruteMaximal(g *Graph, p Params) ([]Pattern, error) {
	masks, err := bruteQuasiCliqueMasks(g, p)
	if err != nil {
		return nil, err
	}
	var out []Pattern
	for i, m := range masks {
		maximal := true
		for j, o := range masks {
			if i != j && o&m == m {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, g.makePattern(maskToSlice(m)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return ComparePatterns(out[i], out[j]) < 0 })
	return out, nil
}

// BruteCoverage returns the union of all quasi-clique members.
func BruteCoverage(g *Graph, p Params) (*bitset.Set, error) {
	masks, err := bruteQuasiCliqueMasks(g, p)
	if err != nil {
		return nil, err
	}
	covered := bitset.New(g.n)
	for _, m := range masks {
		for _, v := range maskToSlice(m) {
			covered.Add(int(v))
		}
	}
	return covered, nil
}

func bruteQuasiCliqueMasks(g *Graph, p Params) ([]uint32, error) {
	if g.n > 24 {
		return nil, fmt.Errorf("quasiclique: brute force limited to 24 vertices, got %d", g.n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	adj := make([]uint32, g.n)
	for v := 0; v < g.n; v++ {
		for _, u := range g.neighbors(int32(v)) {
			adj[v] |= 1 << uint(u)
		}
	}
	var masks []uint32
	for m := uint32(1); m < 1<<uint(g.n); m++ {
		size := bits.OnesCount32(m)
		if size < p.MinSize {
			continue
		}
		need := p.MinDegree(size)
		ok := true
		for v := 0; v < g.n; v++ {
			if m&(1<<uint(v)) == 0 {
				continue
			}
			if bits.OnesCount32(adj[v]&m) < need {
				ok = false
				break
			}
		}
		if ok {
			masks = append(masks, m)
		}
	}
	return masks, nil
}

func maskToSlice(m uint32) []int32 {
	var out []int32
	for v := 0; m != 0; v++ {
		if m&1 != 0 {
			out = append(out, int32(v))
		}
		m >>= 1
	}
	return out
}
