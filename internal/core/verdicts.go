package core

import (
	"context"
	"fmt"
	"time"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/epsilon"
	"github.com/scpm/scpm/internal/graph"
)

// Level1Verdict seals one frequent single attribute's complete level-1
// evaluation: everything a mining run derives from the coverage search
// of {Attr} — the ε estimate, the Theorem-3 hand-down, the lazily
// refined exact hand-down of sampled mode, the mined patterns, the
// search-node bill and the coverage certificates the search discovered.
// A run injecting the verdict (Params.Level1Verdicts) reproduces the
// evaluation bit-identically — sibling lists, survival, emission,
// recorded lattice entry and merged stats included — without running
// any coverage search.
//
// Member sets are NOT sealed: V({a}) is the graph's own attribute
// posting (graph.AttrMembers), identical by construction, so sealing it
// would only bloat the manifest.
type Level1Verdict struct {
	// Attr is the evaluated single attribute id.
	Attr int32
	// Epsilon, Covered, KMass, Estimated, ErrBound and SampledVertices
	// mirror the epsilon.Estimate fields of the sealed evaluation.
	Epsilon         float64
	Covered         int
	KMass           float64
	Estimated       bool
	ErrBound        float64
	SampledVertices int
	// Handdown is the estimator's covered-set hand-down (Theorem 3);
	// Exact is the lazily-refined exact hand-down recorded only when the
	// sealed evaluation computed it (sampled mode, emitted set).
	Handdown *bitset.Set
	Exact    *bitset.Set
	// Patterns are the top-k patterns mined for {Attr} when it passed
	// the output thresholds; HasPatterns distinguishes "mined, none
	// found" from "never mined".
	Patterns    []Pattern
	HasPatterns bool
	// Nodes is the total search-node bill of the sealed evaluation (the
	// ε search plus the lazy exact refinement), credited to the replaying
	// run's SearchNodes so merged shard stats still sum to the
	// single-process counters.
	Nodes int64
	// Certs are the coverage certificates the sealed searches captured,
	// in discovery order. Replaying them rebuilds the identical global
	// certificate store, keeping downstream search-node counts
	// deterministic across shard counts.
	Certs [][]int32
}

// Level1Verdicts is a sealed set of level-1 evaluations, keyed by
// attribute id and pinned to the graph version and parameter
// fingerprint it was computed under. ComputeLevel1 builds one;
// internal/shard seals it into scpm-manifest/v2 and injects it into
// shard workers via Params.Level1Verdicts.
type Level1Verdicts struct {
	graphVersion uint64
	paramsKey    string
	byAttr       map[int32]*Level1Verdict
}

// NewLevel1Verdicts returns an empty verdict set for the given graph
// version and parameter fingerprint (Params.Level1Fingerprint).
func NewLevel1Verdicts(graphVersion uint64, paramsKey string) *Level1Verdicts {
	return &Level1Verdicts{
		graphVersion: graphVersion,
		paramsKey:    paramsKey,
		byAttr:       make(map[int32]*Level1Verdict),
	}
}

// Add records one verdict, replacing any previous verdict for the same
// attribute.
func (v *Level1Verdicts) Add(d *Level1Verdict) { v.byAttr[d.Attr] = d }

// Lookup returns the verdict for an attribute, or nil.
func (v *Level1Verdicts) Lookup(attr int32) *Level1Verdict { return v.byAttr[attr] }

// Len reports the number of sealed verdicts.
func (v *Level1Verdicts) Len() int { return len(v.byAttr) }

// GraphVersion is the data version the verdicts were computed at; a run
// over any other version ignores them and evaluates level 1 itself.
func (v *Level1Verdicts) GraphVersion() uint64 { return v.graphVersion }

// ParamsKey is the Level1Fingerprint of the parameters the verdicts
// were computed under; a run whose fingerprint differs refuses them.
func (v *Level1Verdicts) ParamsKey() string { return v.paramsKey }

// ComputeLevel1 evaluates every frequent single attribute of g under p
// — exactly as an unsharded Mine would, parallelized the same way — and
// seals the outcomes as verdicts for injection into sharded runs. p is
// the full mining parameter block of the runs that will consume the
// verdicts; ShardOwner and Level1Verdicts are ignored.
func ComputeLevel1(ctx context.Context, g *graph.Graph, p Params) (*Level1Verdicts, error) {
	p.ShardOwner = nil
	p.Level1Verdicts = nil
	if err := p.Validate(); err != nil {
		return nil, err
	}
	qcOpts := p.qcOptions()
	qcOpts.Ctx = ctx
	m := &miner{
		g:        g,
		p:        p,
		qp:       p.QuasiCliqueParams(),
		qcOpts:   qcOpts,
		est:      p.estimator(qcOpts),
		exactEst: epsilon.NewExact(p.QuasiCliqueParams(), qcOpts),
		model:    p.model(g),
		em:       newEmitter(nil, p.ProgressEvery, time.Now()),
		// Recording is forced on: the lattice entry written by score IS
		// the verdict body (recording never changes evaluation behavior,
		// only captures it).
		record: newLattice(g.Version()),
	}
	m.expSigmaMin = m.model.Exp(p.SigmaMin)

	singles := m.frequentSingles()
	stores := make([]*epsilon.CertStore, len(singles))
	nodes := make([]int64, len(singles))
	err := m.forEach(ctx, len(singles), func(i int, tl *tally) error {
		attrs := []int32{singles[i]}
		// A private tally isolates this single's node bill; the run-level
		// tally is unused (the throwaway emitter's totals are discarded).
		var local tally
		stores[i] = m.newCertStore()
		members := g.AttrMembers(singles[i])
		if _, err := m.evaluate(attrs, members, members, false, stores[i], &local); err != nil {
			return err
		}
		nodes[i] = local.nodes
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := NewLevel1Verdicts(g.Version(), p.Level1Fingerprint())
	for i, a := range singles {
		// The recorded lattice is read only after every worker finished.
		ent, ok := m.record.get(attrKey([]int32{a}))
		if !ok {
			return nil, fmt.Errorf("core: level-1 evaluation of attribute %d left no record", a)
		}
		out.Add(&Level1Verdict{
			Attr:            a,
			Epsilon:         ent.eps,
			Covered:         ent.covered,
			KMass:           ent.kmass,
			Estimated:       ent.estimated,
			ErrBound:        ent.errBound,
			SampledVertices: ent.sampledVertices,
			Handdown:        ent.handdown,
			Exact:           ent.exact,
			Patterns:        ent.pats,
			HasPatterns:     ent.hasPats,
			Nodes:           nodes[i],
			Certs:           stores[i].Certificates(),
		})
	}
	return out, nil
}

// replayVerdict serves one level-1 single from the injected sealed
// verdicts: the member set comes from the graph's attribute posting,
// the sealed estimate and pattern state route through score exactly
// like a lattice replay, the sealed certificates rebuild the single's
// private store (so the global merge sees the identical stream), and —
// for owned singles — the sealed search-node bill is credited so merged
// shard stats still sum to the single-process run's. handled is false
// when no verdict covers the attribute; the caller then evaluates live.
func (m *miner) replayVerdict(a int32, attrs []int32, muted bool, store *epsilon.CertStore, tl *tally) (evalOutcome, bool, error) {
	v := m.verdicts.Lookup(a)
	if v == nil {
		return evalOutcome{}, false, nil
	}
	if store != nil {
		for _, q := range v.Certs {
			store.Add(q)
		}
	}
	members := m.g.AttrMembers(a)
	ent := &latticeEntry{
		members:         members,
		sigma:           members.Count(),
		eps:             v.Epsilon,
		covered:         v.Covered,
		kmass:           v.KMass,
		estimated:       v.Estimated,
		errBound:        v.ErrBound,
		sampledVertices: v.SampledVertices,
		handdown:        v.Handdown,
		exact:           v.Exact,
		pats:            v.Patterns,
		hasPats:         v.HasPatterns,
	}
	if !muted {
		m.em.noteEvaluated()
		m.em.noteVerdictReplayed()
		tl.noteSearchNodes(v.Nodes)
		tl.noteSampled(int64(v.SampledVertices))
	}
	out, err := m.score(attrKey(attrs), attrs, members, ent.sigma, ent.estimate(m.g.NumVertices()), ent, muted, store, tl)
	return out, true, err
}
