package core

import (
	"sort"

	"github.com/scpm/scpm/internal/bitset"
)

// GlobalTopPatterns returns the n best patterns across all attribute
// sets, ranked by size then density (the "largest structural
// correlation pattern" the paper highlights per dataset, e.g. the
// 34-user Van Morrison community of Figure 5(b)).
func GlobalTopPatterns(pats []Pattern, n int) []Pattern {
	out := append([]Pattern(nil), pats...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Size() != b.Size() {
			return a.Size() > b.Size()
		}
		da, db := a.Density(), b.Density()
		if da != db {
			return da > db
		}
		if c := compareAttrSlices(a.Attrs, b.Attrs); c != 0 {
			return c < 0
		}
		return lessVertices(a.Vertices, b.Vertices)
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// DedupPatterns removes patterns whose vertex set overlaps an already
// kept (better-ranked) pattern with Jaccard similarity ≥ threshold.
// The same community typically appears for several attribute sets
// ({A}, {B} and {A,B} in Table 1 all report {6..11}); deduplication
// keeps one representative per community for presentation.
//
// numVertices is the parent graph's vertex count; threshold is in
// (0, 1]. Patterns are considered in GlobalTopPatterns order and the
// result preserves that order.
func DedupPatterns(pats []Pattern, numVertices int, threshold float64) []Pattern {
	ranked := GlobalTopPatterns(pats, len(pats))
	type kept struct {
		set  *bitset.Set
		size int
	}
	var seen []kept
	var out []Pattern
	for _, p := range ranked {
		bs := bitset.FromSlice(numVertices, p.Vertices)
		dup := false
		for _, k := range seen {
			inter := k.set.IntersectCount(bs)
			union := k.size + p.Size() - inter
			if union > 0 && float64(inter)/float64(union) >= threshold {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen = append(seen, kept{set: bs, size: p.Size()})
		out = append(out, p)
	}
	return out
}

// PatternCoverage returns the set of vertices covered by any of the
// given patterns (as a bitset over the parent graph).
func PatternCoverage(pats []Pattern, numVertices int) *bitset.Set {
	out := bitset.New(numVertices)
	for _, p := range pats {
		for _, v := range p.Vertices {
			out.Add(int(v))
		}
	}
	return out
}
