package core

import (
	"context"
	"fmt"
	"testing"
)

// TestStatsDeterministicAcrossParallelism is the counter-determinism
// regression test: the BENCH-reported run totals — search_nodes,
// sets_evaluated, sampled_vertices — must be identical whether the run
// uses 1, 4 or 8 workers. Workers tally locally and the emitter sums
// the tallies at merge, so the totals are order-independent sums of
// per-evaluation counts; this test pins that property (and, via
// requireEqualResults, that the mined output itself is unchanged).
func TestStatsDeterministicAcrossParallelism(t *testing.T) {
	ctx := context.Background()
	for mode, base := range remineParams() {
		t.Run(mode, func(t *testing.T) {
			g := remineGraph(t, 2024)
			p := base
			p.Parallelism = 1
			want, err := Mine(ctx, g, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if want.Stats.SearchNodes == 0 {
				t.Fatal("baseline run reports zero search nodes; test graph too small")
			}
			for _, workers := range []int{4, 8} {
				pw := base
				pw.Parallelism = workers
				got, err := Mine(ctx, g, pw, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got.Stats.SearchNodes != want.Stats.SearchNodes {
					t.Errorf("parallel=%d: search_nodes = %d, want %d (parallel=1)",
						workers, got.Stats.SearchNodes, want.Stats.SearchNodes)
				}
				if got.Stats.SetsEvaluated != want.Stats.SetsEvaluated {
					t.Errorf("parallel=%d: sets_evaluated = %d, want %d",
						workers, got.Stats.SetsEvaluated, want.Stats.SetsEvaluated)
				}
				if got.Stats.SampledVertices != want.Stats.SampledVertices {
					t.Errorf("parallel=%d: sampled_vertices = %d, want %d",
						workers, got.Stats.SampledVertices, want.Stats.SampledVertices)
				}
				requireEqualResults(t, fmt.Sprintf("%s parallel=%d", mode, workers), got, want)
			}
		})
	}
}
