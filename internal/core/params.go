// Package core implements structural correlation pattern mining: the
// SCPM algorithm (Algorithms 2–3 of the paper, with the pruning rules of
// Theorems 3–5 and the BFS/DFS coverage search of §3.2.2) and the naive
// baseline of §3.1 (Eclat × full quasi-clique enumeration).
package core

import (
	"fmt"

	"github.com/scpm/scpm/internal/epsilon"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/nullmodel"
	"github.com/scpm/scpm/internal/quasiclique"
)

// EpsilonMode selects how the structural correlation ε(S) is computed.
type EpsilonMode int

const (
	// EpsilonExact runs the full coverage search per attribute set (the
	// default; ε is exact and bit-identical across runs).
	EpsilonExact EpsilonMode = iota
	// EpsilonSampled estimates ε(S) from a deterministic seeded vertex
	// sample of V(S) with per-vertex quasi-clique membership queries
	// (§6 of the paper): |ε̂−ε| ≤ SampleEps with probability ≥
	// 1−SampleDelta per set. Sets whose support does not exceed the
	// Hoeffding sample size are computed exactly. Applies to the SCPM
	// algorithm; the naive baseline always computes ε exactly.
	EpsilonSampled
)

// String names the mode ("exact", "sampled") for reports and bench
// files.
func (m EpsilonMode) String() string {
	if m == EpsilonSampled {
		return "sampled"
	}
	return "exact"
}

// Params configures a mining run. The zero value is invalid; fill in at
// least SigmaMin, Gamma, MinSize and K.
type Params struct {
	// SigmaMin is the minimum attribute-set support σmin (≥ 1).
	SigmaMin int
	// Gamma is the quasi-clique density threshold γmin ∈ (0, 1].
	Gamma float64
	// MinSize is the minimum quasi-clique size min_size (≥ 2).
	MinSize int
	// EpsMin is the minimum structural correlation εmin ∈ [0, 1].
	EpsMin float64
	// DeltaMin is the minimum normalized structural correlation δmin
	// (≥ 0; 0 disables δ filtering and Theorem-5 pruning).
	DeltaMin float64
	// K is the number of top patterns reported per attribute set
	// (size-first, density tie-break). 0 reports attribute sets only.
	K int
	// AllPatterns switches to SCORP-style mining (Silva et al., MLG
	// 2010 — the paper's predecessor algorithm): the complete set of
	// maximal quasi-cliques is reported for every qualifying attribute
	// set and K is ignored. Substantially more expensive than top-k.
	AllPatterns bool
	// MinAttrs reports only attribute sets with at least this many
	// attributes (the paper's case studies use 2 for DBLP). 0 means 1.
	MinAttrs int
	// MaxAttrs bounds the attribute-set size; 0 means unbounded.
	MaxAttrs int
	// Order selects the quasi-clique search strategy (SCPM-DFS or
	// SCPM-BFS in the paper's performance study).
	Order quasiclique.SearchOrder
	// Parallelism is the number of worker goroutines mining top-level
	// attribute subtrees; values ≤ 1 mean sequential.
	Parallelism int
	// Model supplies εexp for normalization. nil uses the analytical
	// upper bound (δlb); plug a *nullmodel.Simulation for δsim.
	Model nullmodel.Model

	// EpsilonMode selects exact or sampled ε computation (see the
	// EpsilonMode constants; the zero value is EpsilonExact).
	EpsilonMode EpsilonMode
	// SampleEps is the Hoeffding half-width of EpsilonSampled estimates:
	// |ε̂−ε| ≤ SampleEps with probability ≥ 1−SampleDelta. Must lie in
	// (0, 1); the zero value uses epsilon.DefaultSampleEps.
	SampleEps float64
	// SampleDelta is the per-set failure probability of the Hoeffding
	// bound. Must lie in (0, 1); the zero value uses
	// epsilon.DefaultSampleDelta.
	SampleDelta float64
	// Seed derives the deterministic sampling randomness of
	// EpsilonSampled: the same seed reproduces every ε̂ regardless of
	// Parallelism or evaluation order.
	Seed int64

	// SearchBudget bounds the number of quasi-clique search nodes per
	// induced graph (0 = unbounded); an exceeded budget stops the run
	// with ErrBudget, returning the partial result mined so far.
	SearchBudget int64

	// ShardOwner, when non-nil, restricts the run to one partition of
	// the attribute-set lattice: only the top-level Eclat subtrees whose
	// root attribute the function claims — and the size-1 sets of those
	// roots — are emitted, recorded into the lattice and counted in the
	// stats. Non-owned frequent singles are still evaluated (their member
	// sets, covered-set hand-downs and Theorem-4/5 survival verdicts feed
	// the owned subtrees' right-sibling lists bit-identically to a
	// single-process run) but contribute nothing to the output, so
	// MergeResults over a disjoint, complete family of owners reproduces
	// the single-process run exactly. The function receives the graph
	// being mined so ownership can be re-derived per graph version during
	// incremental remines. internal/shard constructs these functions;
	// leave nil to mine the whole lattice.
	ShardOwner func(g *graph.Graph, root int32) bool

	// Level1Verdicts, when non-nil, injects sealed level-1 evaluations:
	// every frequent single covered by a verdict is replayed —
	// bit-identically, sibling lists, hand-downs, emission, recorded
	// lattice and merged stats included — instead of searched, which is
	// what lets a shard worker skip the level-1 work every shard would
	// otherwise duplicate. Verdicts sealed at a different graph version
	// are silently ignored (the run falls back to live evaluation, so
	// live updates keep working); verdicts sealed under a different
	// parameter fingerprint (Level1Fingerprint) fail the run loudly.
	// internal/shard computes (ComputeLevel1) and ships these in the
	// scpm-manifest/v2 format; leave nil to evaluate level 1 live.
	Level1Verdicts *Level1Verdicts

	// RecordLattice makes the run memoize every evaluated attribute set
	// (ε, covered-set hand-downs, mined patterns) into the Result, so a
	// later Remine can carry clean evaluations over instead of
	// recomputing them. Costs memory proportional to the number of
	// evaluated sets times |V| bits; off by default.
	RecordLattice bool

	// ProgressEvery sets how many attribute-set evaluations elapse
	// between Sink.OnProgress callbacks; ≤ 0 means the default of 64.
	// Ignored when no sink is attached.
	ProgressEvery int

	// Ablation switches (all false in normal operation).
	//
	// DisableVertexPruning turns off the Theorem-3 restriction of the
	// coverage search to the parents' covered sets.
	DisableVertexPruning bool
	// DisableSetPruning turns off the Theorem-4/5 attribute-set
	// pruning, so every frequent set is extended.
	DisableSetPruning bool
	// DisableCertSharing turns off the cross-set coverage certificate
	// store, so every ε evaluation proves coverage from scratch.
	// Results are bit-identical either way; only search-node counts
	// change.
	DisableCertSharing bool
	// DisableLookahead, DisableDiameterPruning and DisableJumps are
	// forwarded to the quasi-clique engine.
	DisableLookahead       bool
	DisableDiameterPruning bool
	DisableJumps           bool
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if p.SigmaMin < 1 {
		return fmt.Errorf("core: SigmaMin must be ≥ 1, got %d", p.SigmaMin)
	}
	if err := p.QuasiCliqueParams().Validate(); err != nil {
		return err
	}
	if p.EpsMin < 0 || p.EpsMin > 1 {
		return fmt.Errorf("core: EpsMin %v outside [0,1]", p.EpsMin)
	}
	if p.DeltaMin < 0 {
		return fmt.Errorf("core: DeltaMin %v negative", p.DeltaMin)
	}
	if p.K < 0 {
		return fmt.Errorf("core: K %d negative", p.K)
	}
	if p.MinAttrs < 0 || p.MaxAttrs < 0 {
		return fmt.Errorf("core: negative attribute-set size bound")
	}
	if p.MaxAttrs > 0 && p.minAttrs() > p.MaxAttrs {
		return fmt.Errorf("core: MinAttrs %d exceeds MaxAttrs %d", p.MinAttrs, p.MaxAttrs)
	}
	if p.EpsilonMode != EpsilonExact && p.EpsilonMode != EpsilonSampled {
		return fmt.Errorf("core: unknown EpsilonMode %d", p.EpsilonMode)
	}
	if p.SampleEps < 0 || p.SampleEps >= 1 {
		return fmt.Errorf("core: SampleEps %v must be in (0,1), or 0 for the default", p.SampleEps)
	}
	if p.SampleDelta < 0 || p.SampleDelta >= 1 {
		return fmt.Errorf("core: SampleDelta %v must be in (0,1), or 0 for the default", p.SampleDelta)
	}
	return nil
}

// Level1Fingerprint canonically renders every parameter that can
// influence a level-1 single-attribute verdict: the thresholds, the
// quasi-clique definition, the ε-estimation configuration and the
// ablation switches. Sealed Level1Verdicts carry the fingerprint of the
// parameters they were computed under, and a run refuses verdicts whose
// fingerprint differs from its own.
//
// Deliberately excluded: Model (it only affects the δ-normalization and
// εexp, both recomputed at replay, so verdicts are null-model
// independent), Parallelism, ShardOwner, Level1Verdicts, RecordLattice
// and ProgressEvery (none change any evaluation outcome).
func (p Params) Level1Fingerprint() string {
	return fmt.Sprintf("σ=%d γ=%g ms=%d ε=%g δ=%g k=%d all=%t amin=%d amax=%d ord=%d mode=%d seps=%g sdelta=%g seed=%d budget=%d vp=%t sp=%t cs=%t lk=%t dp=%t j=%t",
		p.SigmaMin, p.Gamma, p.MinSize, p.EpsMin, p.DeltaMin, p.K, p.AllPatterns,
		p.MinAttrs, p.MaxAttrs, p.Order, p.EpsilonMode, p.SampleEps, p.SampleDelta,
		p.Seed, p.SearchBudget, p.DisableVertexPruning, p.DisableSetPruning,
		p.DisableCertSharing, p.DisableLookahead, p.DisableDiameterPruning, p.DisableJumps)
}

// QuasiCliqueParams returns the embedded quasi-clique definition.
func (p Params) QuasiCliqueParams() quasiclique.Params {
	return quasiclique.Params{Gamma: p.Gamma, MinSize: p.MinSize}
}

func (p Params) minAttrs() int {
	if p.MinAttrs <= 0 {
		return 1
	}
	return p.MinAttrs
}

func (p Params) qcOptions() quasiclique.Options {
	return quasiclique.Options{
		Order:                  p.Order,
		DisableLookahead:       p.DisableLookahead,
		DisableDiameterPruning: p.DisableDiameterPruning,
		DisableJumps:           p.DisableJumps,
		MaxNodes:               p.SearchBudget,
	}
}

// model resolves the null model, defaulting to the analytical bound.
func (p Params) model(g *graph.Graph) nullmodel.Model {
	if p.Model != nil {
		return p.Model
	}
	return nullmodel.NewAnalytical(g, p.QuasiCliqueParams())
}

// estimator builds the configured ε-estimation layer over the given
// (context-carrying) quasi-clique options.
func (p Params) estimator(o quasiclique.Options) epsilon.Estimator {
	if p.EpsilonMode == EpsilonSampled {
		return epsilon.NewSampled(p.QuasiCliqueParams(), o, p.SampleEps, p.SampleDelta, p.Seed)
	}
	return epsilon.NewExact(p.QuasiCliqueParams(), o)
}

// NewEstimator builds the ε-estimation layer this parameter block
// configures — the same construction a mining run performs (exact
// coverage search, or Hoeffding-bounded sampling under EpsilonSampled).
// The query-serving layer uses it to answer on-demand ε queries with
// the run's semantics.
func (p Params) NewEstimator() epsilon.Estimator { return p.estimator(p.qcOptions()) }

// NewModel resolves the null model this parameter block configures for
// g, defaulting to the analytical bound of Theorem 2 — again the same
// resolution a mining run performs, exported for the serving layer.
func (p Params) NewModel(g *graph.Graph) nullmodel.Model { return p.model(g) }
