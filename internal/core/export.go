package core

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/scpm/scpm/internal/graph"
)

// jsonResult is the export schema: attribute sets and patterns with
// names resolved, so the file is self-contained.
type jsonResult struct {
	Sets     []jsonSet     `json:"sets"`
	Patterns []jsonPattern `json:"patterns"`
	Stats    jsonStats     `json:"stats"`
}

type jsonSet struct {
	// ID is the stable attribute-set identifier (AttributeSet.ID),
	// shared with CSV exports, NDJSON events and server responses.
	ID      string   `json:"id"`
	Attrs   []string `json:"attrs"`
	Support int      `json:"support"`
	Epsilon float64  `json:"epsilon"`
	ExpEps  float64  `json:"expected_epsilon"`
	// Delta is serialized as a string so +Inf survives JSON.
	Delta   string `json:"delta"`
	Covered int    `json:"covered"`
	// Estimated/EpsilonErr/Sampled describe sampling estimates; all are
	// omitted for exact ε.
	Estimated  bool    `json:"estimated,omitempty"`
	EpsilonErr float64 `json:"epsilon_err,omitempty"`
	Sampled    int     `json:"sampled_vertices,omitempty"`
}

type jsonPattern struct {
	// ID is the stable pattern identifier (Pattern.ID); SetID joins the
	// pattern to its attribute set's "id".
	ID          string   `json:"id"`
	SetID       string   `json:"set"`
	Attrs       []string `json:"attrs"`
	Vertices    []string `json:"vertices"`
	Size        int      `json:"size"`
	Density     float64  `json:"density"`
	EdgeDensity float64  `json:"edge_density"`
	Edges       int      `json:"edges"`
}

type jsonStats struct {
	SetsEvaluated   int64  `json:"sets_evaluated"`
	SetsEmitted     int64  `json:"sets_emitted"`
	PatternsEmitted int64  `json:"patterns_emitted"`
	SearchNodes     int64  `json:"search_nodes"`
	SampledVertices int64  `json:"sampled_vertices,omitempty"`
	ReusedSets      int64  `json:"reused_sets,omitempty"`
	RecomputedSets  int64  `json:"recomputed_sets,omitempty"`
	DurationMS      int64  `json:"duration_ms"`
	Duration        string `json:"duration"`
}

// WriteJSON serializes the result (with vertex labels resolved via g)
// as indented JSON.
func (r *Result) WriteJSON(w io.Writer, g *graph.Graph) error {
	out := jsonResult{
		Stats: jsonStats{
			SetsEvaluated:   r.Stats.SetsEvaluated,
			SetsEmitted:     r.Stats.SetsEmitted,
			PatternsEmitted: r.Stats.PatternsEmitted,
			SearchNodes:     r.Stats.SearchNodes,
			SampledVertices: r.Stats.SampledVertices,
			ReusedSets:      r.Stats.ReusedSets,
			RecomputedSets:  r.Stats.RecomputedSets,
			DurationMS:      r.Stats.Duration.Milliseconds(),
			Duration:        r.Stats.Duration.String(),
		},
	}
	for _, s := range r.Sets {
		out.Sets = append(out.Sets, jsonSet{
			ID:         s.ID(),
			Attrs:      s.Names,
			Support:    s.Support,
			Epsilon:    s.Epsilon,
			ExpEps:     s.ExpEps,
			Delta:      FormatDelta(s.Delta),
			Covered:    s.Covered,
			Estimated:  s.Estimated,
			EpsilonErr: s.EpsilonErr,
			Sampled:    s.SampledVertices,
		})
	}
	for _, p := range r.Patterns {
		out.Patterns = append(out.Patterns, jsonPattern{
			ID:          p.ID(),
			SetID:       p.SetID(),
			Attrs:       p.Names,
			Vertices:    p.VertexNames(g),
			Size:        p.Size(),
			Density:     p.Density(),
			EdgeDensity: p.EdgeDensity(),
			Edges:       p.Edges,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteSetsCSV writes the attribute-set table as CSV with the columns
// of the paper's case-study tables: the stable set id, attrs, support,
// epsilon, expected_epsilon, delta, covered, plus the estimation
// columns estimated (true/false) and epsilon_err (the Hoeffding
// half-width, 0 when exact).
func (r *Result) WriteSetsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "attrs", "support", "epsilon", "expected_epsilon", "delta", "covered", "estimated", "epsilon_err"}); err != nil {
		return err
	}
	for _, s := range r.Sets {
		rec := []string{
			s.ID(),
			strings.Join(s.Names, " "),
			strconv.Itoa(s.Support),
			strconv.FormatFloat(s.Epsilon, 'g', -1, 64),
			strconv.FormatFloat(s.ExpEps, 'g', -1, 64),
			FormatDelta(s.Delta),
			strconv.Itoa(s.Covered),
			strconv.FormatBool(s.Estimated),
			strconv.FormatFloat(s.EpsilonErr, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePatternsCSV writes the pattern table as CSV: the stable pattern
// id, the owning set's id, attrs, vertices, size, density,
// edge_density.
func (r *Result) WritePatternsCSV(w io.Writer, g *graph.Graph) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "set", "attrs", "vertices", "size", "density", "edge_density"}); err != nil {
		return err
	}
	for _, p := range r.Patterns {
		rec := []string{
			p.ID(),
			p.SetID(),
			strings.Join(p.Names, " "),
			strings.Join(p.VertexNames(g), " "),
			strconv.Itoa(p.Size()),
			strconv.FormatFloat(p.Density(), 'g', -1, 64),
			strconv.FormatFloat(p.EdgeDensity(), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatDelta string-encodes δ for JSON/CSV surfaces: "inf" for +Inf
// (raw JSON numbers cannot carry it), shortest round-trip decimal
// otherwise. Exported so server responses and batch exports cannot
// diverge.
func FormatDelta(d float64) string {
	if math.IsInf(d, 1) {
		return "inf"
	}
	return strconv.FormatFloat(d, 'g', -1, 64)
}
