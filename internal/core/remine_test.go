package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/scpm/scpm/internal/graph"
)

// remineGraph builds a randomized attributed graph with planted
// attribute-correlated cliques, large enough that the sampled ε path
// engages (supports beyond 2·m for the test's Hoeffding sample size).
func remineGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 160
	const numAttrs = 6
	b := graph.NewBuilder()
	for v := 0; v < n; v++ {
		var attrs []string
		for a := 0; a < numAttrs; a++ {
			if rng.Float64() < 0.55 {
				attrs = append(attrs, fmt.Sprintf("a%d", a))
			}
		}
		if _, err := b.AddVertex(fmt.Sprintf("v%d", v), attrs...); err != nil {
			t.Fatal(err)
		}
	}
	// Background edges.
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			if err := b.AddEdge(int32(u), int32(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Planted near-cliques among random vertex groups, so coverage
	// searches actually find quasi-cliques.
	for c := 0; c < 10; c++ {
		var group []int32
		for len(group) < 6 {
			group = append(group, int32(rng.Intn(n)))
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if group[i] != group[j] && rng.Float64() < 0.9 {
					if err := b.AddEdge(group[i], group[j]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomRemineDelta records 1–10 random operations against g, touching
// existing attributes, occasionally new vocabulary and new vertices.
func randomRemineDelta(t *testing.T, g *graph.Graph, rng *rand.Rand) *graph.Delta {
	t.Helper()
	d := g.NewDelta()
	n := g.NumVertices()
	name := func(v int) string { return g.VertexName(int32(v)) }
	ops := 1 + rng.Intn(10)
	for i := 0; i < ops; i++ {
		switch rng.Intn(6) {
		case 0:
			attrs := []string{fmt.Sprintf("a%d", rng.Intn(7))}
			d.AddVertex(fmt.Sprintf("new%d", i), attrs...) //nolint:errcheck // duplicates skipped
		case 1, 2:
			d.AddEdge(name(rng.Intn(n)), name(rng.Intn(n))) //nolint:errcheck
		case 3:
			u := int32(rng.Intn(n))
			if nbrs := g.Neighbors(u); len(nbrs) > 0 {
				d.RemoveEdge(name(int(u)), name(int(nbrs[rng.Intn(len(nbrs))]))) //nolint:errcheck
			}
		case 4:
			d.SetAttr(name(rng.Intn(n)), fmt.Sprintf("a%d", rng.Intn(7))) //nolint:errcheck
		case 5:
			d.UnsetAttr(name(rng.Intn(n)), fmt.Sprintf("a%d", rng.Intn(6))) //nolint:errcheck
		}
	}
	if d.Empty() {
		if err := d.SetAttr(name(0), "a0"); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// sharedAttrs counts the common elements of two sorted id lists.
func sharedAttrs(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// remineParams returns the two parameter blocks (exact and sampled)
// the equivalence tests run under.
func remineParams() map[string]Params {
	base := Params{
		SigmaMin:      20,
		Gamma:         0.5,
		MinSize:       4,
		EpsMin:        0.05,
		K:             3,
		MaxAttrs:      3,
		RecordLattice: true,
	}
	sampled := base
	sampled.EpsilonMode = EpsilonSampled
	sampled.SampleEps = 0.2
	sampled.SampleDelta = 0.1
	sampled.Seed = 42
	return map[string]Params{"exact": base, "sampled": sampled}
}

// setFingerprints renders every field of every set, including the
// stable id, so equivalence checks catch any drift.
func setFingerprints(res *Result) []string {
	out := make([]string, len(res.Sets))
	for i, s := range res.Sets {
		out[i] = fmt.Sprintf("%s|%s|σ=%d|ε=%.9f|εexp=%.9f|δ=%.9g|cov=%d|est=%v|err=%.9f|samp=%d",
			s.ID(), s.Key(), s.Support, s.Epsilon, s.ExpEps, s.Delta, s.Covered,
			s.Estimated, s.EpsilonErr, s.SampledVertices)
	}
	return out
}

func patternFingerprints(res *Result) []string {
	out := make([]string, len(res.Patterns))
	for i, p := range res.Patterns {
		out[i] = fmt.Sprintf("%s|%s|%v|deg=%d|e=%d", p.ID(), p.SetID(), p.Vertices, p.MinDeg, p.Edges)
	}
	return out
}

func requireEqualResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	gs, ws := setFingerprints(got), setFingerprints(want)
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d sets, want %d\ngot:  %v\nwant: %v", label, len(gs), len(ws), gs, ws)
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("%s: set[%d]\ngot:  %s\nwant: %s", label, i, gs[i], ws[i])
		}
	}
	gp, wp := patternFingerprints(got), patternFingerprints(want)
	if len(gp) != len(wp) {
		t.Fatalf("%s: %d patterns, want %d", label, len(gp), len(wp))
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: pattern[%d]\ngot:  %s\nwant: %s", label, i, gp[i], wp[i])
		}
	}
}

// TestRemineEquivalence is the incremental-mining equivalence property
// test: for randomized graphs and random deltas, Remine over the old
// result must produce output identical to mining the updated graph
// from scratch — sets, ε, δ, patterns and stable ids — in both exact
// and sampled ε modes.
func TestRemineEquivalence(t *testing.T) {
	ctx := context.Background()
	for mode, p := range remineParams() {
		t.Run(mode, func(t *testing.T) {
			var totalReused, totalRecomputed int64
			for trial := 0; trial < 6; trial++ {
				g := remineGraph(t, int64(500+trial))
				old, err := Mine(ctx, g, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !old.HasLattice() {
					t.Fatal("RecordLattice run did not record a lattice")
				}
				rng := rand.New(rand.NewSource(int64(900 + trial)))
				d := randomRemineDelta(t, g, rng)
				ng, cs, err := g.Apply(d)
				if err != nil {
					t.Fatal(err)
				}

				scratch, err := Mine(ctx, ng, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				inc, err := Remine(ctx, ng, p, old, cs, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireEqualResults(t, fmt.Sprintf("%s trial %d (%s)", mode, trial, cs), inc, scratch)
				totalReused += inc.Stats.ReusedSets
				totalRecomputed += inc.Stats.RecomputedSets
				if inc.Stats.ReusedSets+inc.Stats.RecomputedSets == 0 && len(scratch.Sets) > 0 {
					t.Fatalf("trial %d: remine did no work yet scratch found %d sets", trial, len(scratch.Sets))
				}
			}
			if totalReused == 0 {
				t.Fatal("incremental remine never reused a single evaluation across all trials")
			}
			t.Logf("%s: reused %d evaluations, recomputed %d", mode, totalReused, totalRecomputed)
		})
	}
}

// TestRemineSingleOpDeltas pins the headline cases — one edge, one
// attribute toggle — where reuse should dominate recomputation.
func TestRemineSingleOpDeltas(t *testing.T) {
	ctx := context.Background()
	for mode, p := range remineParams() {
		t.Run(mode, func(t *testing.T) {
			g := remineGraph(t, 7)
			old, err := Mine(ctx, g, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			// The edge delta joins two non-adjacent vertices sharing no
			// attribute, the shape a single-edge update has on a real
			// large-vocabulary dataset: it dirties no attribute at all.
			var eu, ev int32 = -1, -1
		pairSearch:
			for u := int32(0); u < int32(g.NumVertices()); u++ {
				for v := u + 1; v < int32(g.NumVertices()); v++ {
					if !g.HasEdge(u, v) && len(g.VertexAttrs(u)) > 0 &&
						sharedAttrs(g.VertexAttrs(u), g.VertexAttrs(v)) == 0 {
						eu, ev = u, v
						break pairSearch
					}
				}
			}
			if eu < 0 {
				t.Fatal("no attribute-disjoint non-adjacent pair in the test graph")
			}
			deltas := map[string]func(d *graph.Delta) error{
				"edge": func(d *graph.Delta) error {
					return d.AddEdge(g.VertexName(eu), g.VertexName(ev))
				},
				"attr": func(d *graph.Delta) error {
					return d.SetAttr(g.VertexName(3), "a5")
				},
			}
			for name, build := range deltas {
				d := g.NewDelta()
				if err := build(d); err != nil {
					// The randomized graph may already have this
					// attribute on the vertex; toggle it off instead.
					d = g.NewDelta()
					if err := d.UnsetAttr(g.VertexName(3), "a5"); err != nil {
						t.Fatal(err)
					}
				}
				ng, cs, err := g.Apply(d)
				if err != nil {
					t.Fatal(err)
				}
				scratch, err := Mine(ctx, ng, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				inc, err := Remine(ctx, ng, p, old, cs, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireEqualResults(t, mode+"/"+name, inc, scratch)
				if inc.Stats.ReusedSets <= inc.Stats.RecomputedSets {
					t.Fatalf("%s/%s: expected reuse to dominate on a single-op delta, reused=%d recomputed=%d",
						mode, name, inc.Stats.ReusedSets, inc.Stats.RecomputedSets)
				}
			}
		})
	}
}

// TestRemineParallelMatches checks the lattice replay under worker
// parallelism: scheduling must not change the incremental output.
func TestRemineParallelMatches(t *testing.T) {
	ctx := context.Background()
	p := remineParams()["exact"]
	g := remineGraph(t, 11)
	old, err := Mine(ctx, g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := g.NewDelta()
	if err := d.SetAttr(g.VertexName(5), "a4"); err != nil {
		if err := d.UnsetAttr(g.VertexName(5), "a4"); err != nil {
			t.Fatal(err)
		}
	}
	ng, cs, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Remine(ctx, ng, p, old, cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	pp := p
	pp.Parallelism = 4
	// The parallel remine consumes a lattice recorded by a parallel
	// mine, covering concurrent put as well as concurrent get.
	oldPar, err := Mine(ctx, g, pp, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Remine(ctx, ng, pp, oldPar, cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "parallel remine", par, seq)
}

// TestRemineFallbacks covers the degraded paths: no lattice or no
// change set mean a correct full re-mine with zero reuse, and stale
// change sets are rejected.
func TestRemineFallbacks(t *testing.T) {
	ctx := context.Background()
	p := remineParams()["exact"]
	noLat := p
	noLat.RecordLattice = false
	g := remineGraph(t, 21)
	old, err := Mine(ctx, g, noLat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if old.HasLattice() {
		t.Fatal("lattice recorded without RecordLattice")
	}
	d := g.NewDelta()
	if err := d.AddVertex("fresh", "a0"); err != nil {
		t.Fatal(err)
	}
	ng, cs, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := Mine(ctx, ng, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Remine(ctx, ng, p, old, cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "lattice-less fallback", inc, scratch)
	if inc.Stats.ReusedSets != 0 {
		t.Fatalf("lattice-less remine reports %d reused sets", inc.Stats.ReusedSets)
	}
	if !inc.HasLattice() {
		t.Fatal("remine with RecordLattice did not record a fresh lattice")
	}

	// A change set that does not lead to this graph version is refused.
	withLat, err := Mine(ctx, g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	stale := *cs
	stale.ToVersion++
	if _, err := Remine(ctx, ng, p, withLat, &stale, nil); err == nil {
		t.Fatal("stale change set accepted")
	}

	// Skipping an intermediate ChangeSet (forgetting to Merge) is
	// refused too: the lattice records the version it was mined at.
	d2 := ng.NewDelta()
	if err := d2.AddVertex("fresh2", "a1"); err != nil {
		t.Fatal(err)
	}
	ng2, cs2, err := ng.Apply(d2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Remine(ctx, ng2, p, withLat, cs2, nil); err == nil {
		t.Fatal("change set skipping an intermediate update accepted")
	}
	merged := *cs
	if err := merged.Merge(cs2); err != nil {
		t.Fatal(err)
	}
	scratch2, err := Mine(ctx, ng2, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	inc3, err := Remine(ctx, ng2, p, withLat, &merged, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "merged change sets", inc3, scratch2)

	// nil changes degrade to a full mine too.
	inc2, err := Remine(ctx, ng, p, withLat, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "nil-changes fallback", inc2, scratch)
}

// TestRemineChained applies two consecutive deltas, remining after
// each from the previous incremental result, to prove lattices chain.
func TestRemineChained(t *testing.T) {
	ctx := context.Background()
	for mode, p := range remineParams() {
		t.Run(mode, func(t *testing.T) {
			g := remineGraph(t, 31)
			res, err := Mine(ctx, g, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(77))
			for step := 0; step < 3; step++ {
				d := randomRemineDelta(t, g, rng)
				ng, cs, err := g.Apply(d)
				if err != nil {
					t.Fatal(err)
				}
				scratch, err := Mine(ctx, ng, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				res, err = Remine(ctx, ng, p, res, cs, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireEqualResults(t, fmt.Sprintf("%s chained step %d", mode, step), res, scratch)
				g = ng
			}
		})
	}
}
