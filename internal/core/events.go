package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sink receives mining events while a run is in flight. Callbacks are
// serialized: the miner never invokes two sink methods concurrently,
// and a qualifying attribute set is always delivered as one atomic
// burst — OnAttributeSet followed immediately by OnPattern for each of
// its top-k patterns (best first). With Parallelism ≤ 1 bursts arrive
// in search order; with workers the burst order is nondeterministic but
// the per-set grouping still holds.
//
// Sink callbacks run on miner goroutines; slow callbacks stall the
// search, so hand heavy work off to a channel.
type Sink interface {
	// OnAttributeSet is called once per attribute set that passes all
	// output thresholds.
	OnAttributeSet(AttributeSet)
	// OnPattern is called for each reported (S, Q) pattern, after the
	// OnAttributeSet call for S.
	OnPattern(Pattern)
	// OnProgress is called periodically (every Params.ProgressEvery
	// evaluations, default 64) and once when the run ends.
	OnProgress(Stats)
}

// SinkFuncs adapts plain functions to the Sink interface; nil fields
// are skipped.
type SinkFuncs struct {
	AttributeSet func(AttributeSet)
	Pattern      func(Pattern)
	Progress     func(Stats)
}

// OnAttributeSet forwards to the AttributeSet func when set.
func (s SinkFuncs) OnAttributeSet(a AttributeSet) {
	if s.AttributeSet != nil {
		s.AttributeSet(a)
	}
}

// OnPattern forwards to the Pattern func when set.
func (s SinkFuncs) OnPattern(p Pattern) {
	if s.Pattern != nil {
		s.Pattern(p)
	}
}

// OnProgress forwards to the Progress func when set.
func (s SinkFuncs) OnProgress(st Stats) {
	if s.Progress != nil {
		s.Progress(st)
	}
}

// emitter serializes sink callbacks across mining workers and keeps the
// global run counters that progress snapshots report. A nil *emitter or
// an emitter with a nil sink degrades every method to counter updates
// only, so the hot path needs no branching at call sites.
type emitter struct {
	sink  Sink
	every int64
	start time.Time

	evaluated atomic.Int64
	emitted   atomic.Int64
	patterns  atomic.Int64
	nodes     atomic.Int64
	sampled   atomic.Int64
	reused    atomic.Int64
	verdicts  atomic.Int64

	mu sync.Mutex
}

func newEmitter(sink Sink, every int, start time.Time) *emitter {
	if every <= 0 {
		every = 64
	}
	return &emitter{sink: sink, every: int64(every), start: start}
}

// snapshot builds a Stats view of the run so far.
func (e *emitter) snapshot() Stats {
	evaluated := e.evaluated.Load()
	return Stats{
		SetsEvaluated:   evaluated,
		SetsEmitted:     e.emitted.Load(),
		PatternsEmitted: e.patterns.Load(),
		SearchNodes:     e.nodes.Load(),
		SampledVertices: e.sampled.Load(),
		ReusedSets:      e.reused.Load(),
		RecomputedSets:  evaluated,
		ReusedVerdicts:  e.verdicts.Load(),
		Duration:        time.Since(e.start),
	}
}

// noteReused records one attribute set carried over from a previous
// run's lattice instead of being recomputed.
func (e *emitter) noteReused() { e.reused.Add(1) }

// noteVerdictReplayed records one level-1 single served from sealed
// verdicts instead of searched.
func (e *emitter) noteVerdictReplayed() { e.verdicts.Add(1) }

// tally is a per-worker counter block for the scheduling-sensitive run
// totals: search nodes and membership samples, the columns the bench
// JSON reports. Each forEach worker accumulates locally and merges into
// the emitter exactly once when it finishes, so a run's totals are a
// plain sum of per-evaluation counts — identical for every Parallelism
// value — and the evaluation hot path pays no atomic traffic.
type tally struct {
	nodes   int64
	sampled int64
}

// noteSampled adds one evaluation's membership-sample count.
func (t *tally) noteSampled(n int64) { t.sampled += n }

// noteSearchNodes adds one coverage search's node count (the bench
// harness reports the run total as nodes visited).
func (t *tally) noteSearchNodes(n int64) { t.nodes += n }

// merge folds one worker's tally into the run counters. Progress
// snapshots taken before a worker merges lag its in-flight counts; the
// final snapshot runs after every worker has merged and is exact. A
// nil emitter (dispatcher tests) discards the tally.
func (e *emitter) merge(t *tally) {
	if e == nil {
		return
	}
	if t.nodes != 0 {
		e.nodes.Add(t.nodes)
	}
	if t.sampled != 0 {
		e.sampled.Add(t.sampled)
	}
}

// noteEvaluated records one ε evaluation and fires OnProgress on every
// `every`-th one. The snapshot is taken inside the critical section so
// concurrently-delivered progress events never show counters going
// backwards.
func (e *emitter) noteEvaluated() {
	n := e.evaluated.Add(1)
	if e.sink == nil || n%e.every != 0 {
		return
	}
	e.mu.Lock()
	e.sink.OnProgress(e.snapshot())
	e.mu.Unlock()
}

// emitSet delivers one qualifying set and its patterns as an atomic
// burst.
func (e *emitter) emitSet(set AttributeSet, pats []Pattern) {
	e.emitted.Add(1)
	e.patterns.Add(int64(len(pats)))
	if e.sink == nil {
		return
	}
	e.mu.Lock()
	e.sink.OnAttributeSet(set)
	for _, p := range pats {
		e.sink.OnPattern(p)
	}
	e.mu.Unlock()
}

// finish fires the terminal OnProgress carrying the final counters.
func (e *emitter) finish() {
	if e.sink == nil {
		return
	}
	e.mu.Lock()
	e.sink.OnProgress(e.snapshot())
	e.mu.Unlock()
}
