package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/epsilon"
	"github.com/scpm/scpm/internal/graph"
)

// Lattice is the memoized attribute-set search lattice of one mining
// run: for every evaluated set it retains exactly what a later
// incremental run needs to carry the evaluation over without touching
// the quasi-clique engine — the ε estimate, the covered-set hand-downs
// (Theorem 3) and the mined patterns. Results record one when
// Params.RecordLattice is set; Remine consumes it.
//
// The paper's ε(S) depends only on V(S) and the subgraph it induces,
// so a graph update leaves every attribute set disjoint from the
// ChangeSet's dirty attributes bit-identical (see graph.ChangeSet);
// those are the entries a Remine replays from here.
type Lattice struct {
	// version is the data version of the graph the lattice was
	// recorded against; Remine requires the ChangeSet it is given to
	// start exactly there, so a skipped intermediate update cannot
	// silently replay stale evaluations.
	version uint64
	mu      sync.Mutex
	m       map[string]*latticeEntry
}

// latticeEntry memoizes one evaluated attribute set.
type latticeEntry struct {
	// members is V(S) with sigma = |V(S)|, retained so a replay skips
	// the Eclat tidset intersection entirely for clean sets (the
	// dominant cost on attribute-heavy datasets).
	members *bitset.Set
	sigma   int
	// The ε estimate's scalar fields, verbatim.
	eps             float64
	covered         int
	kmass           float64
	estimated       bool
	errBound        float64
	sampledVertices int
	// handdown is the estimator's covered-set hand-down as returned
	// (the exact K_S in exact mode, the sampled superset otherwise).
	handdown *bitset.Set
	// exact is the lazily-refined exact K_S hand-down, recorded only
	// when the run computed it (sampled mode, emitted set); nil
	// otherwise.
	exact *bitset.Set
	// pats are the patterns mined for the set when the run mined them
	// (hasPats distinguishes "mined, none found" from "never mined").
	pats    []Pattern
	hasPats bool
}

// newLattice builds an empty lattice for the given graph data version.
func newLattice(version uint64) *Lattice {
	return &Lattice{version: version, m: make(map[string]*latticeEntry)}
}

// Size returns the number of memoized attribute sets.
func (l *Lattice) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// get looks up a memoized evaluation. It is called without the lock by
// Remine workers: the consumed lattice belongs to a finished run and
// is never written again.
func (l *Lattice) get(key string) (*latticeEntry, bool) {
	e, ok := l.m[key]
	return e, ok
}

// put records an evaluation; workers of the recording run call it
// concurrently.
func (l *Lattice) put(key string, e *latticeEntry) {
	l.mu.Lock()
	l.m[key] = e
	l.mu.Unlock()
}

// grownTo returns s at capacity n, reusing s itself when it already
// has that capacity (recorded bitsets are immutable, so sharing across
// lattices and graph versions is safe).
func grownTo(s *bitset.Set, n int) *bitset.Set {
	if s == nil || s.Len() == n {
		return s
	}
	return s.Grown(n)
}

// estimate reconstitutes the memoized evaluation as an ε estimate over
// a graph with n vertices.
func (e *latticeEntry) estimate(n int) epsilon.Estimate {
	return epsilon.Estimate{
		Epsilon:         e.eps,
		Covered:         e.covered,
		Handdown:        grownTo(e.handdown, n),
		KMass:           e.kmass,
		Estimated:       e.estimated,
		SampledVertices: e.sampledVertices,
		ErrBound:        e.errBound,
	}
}

// Remine incrementally re-mines g — a graph obtained from a previous
// version by one or more Graph.Apply updates — reusing the previous
// run's result where the update provably cannot have changed it.
//
// old must be the result of mining the previous graph version with the
// same Params (thresholds, γ, min_size, ε mode, seed …) and with
// RecordLattice set; changes must be the ChangeSet of the update (or
// the Merge of the consecutive ChangeSets) leading from that version
// to g. Remine then walks the same search lattice a full Mine of g
// would, but every attribute set disjoint from changes.DirtyAttrs is
// replayed from the recorded lattice instead of re-searched: its ε,
// covered counts and patterns are carried over by value, only the
// δ-normalization is re-derived (the null model depends on the global
// degree distribution, so δ can shift for every set after any edge
// change). Stats.ReusedSets / Stats.RecomputedSets report the split.
//
// The output is identical — sets, ε, δ, patterns and therefore stable
// ids — to Mine(ctx, g, p, sink), in both exact and sampled ε modes
// (sampled estimates are deterministic in the seed and the set, and
// clean sets replay the exact covered-set hand-downs, so the sampling
// chain replays bit-for-bit).
//
// When old carries no lattice or changes is nil, Remine degrades to a
// full Mine (everything recomputed, ReusedSets = 0). Context and sink
// follow the Mine contract.
func Remine(ctx context.Context, g *graph.Graph, p Params, old *Result, changes *graph.ChangeSet, sink Sink) (*Result, error) {
	if old == nil || old.lattice == nil || changes == nil {
		return mine(ctx, g, p, sink, nil, nil)
	}
	if got, want := changes.DirtyAttrs.Len(), g.NumAttributes(); got != want {
		return nil, fmt.Errorf("core: change set covers %d attributes, graph has %d (stale ChangeSet?)", got, want)
	}
	if changes.ToVersion != g.Version() {
		return nil, fmt.Errorf("core: change set leads to graph version %d, got version %d", changes.ToVersion, g.Version())
	}
	if changes.FromVersion != old.lattice.version {
		return nil, fmt.Errorf("core: change set starts at graph version %d but the old result was mined at version %d (merge the intermediate ChangeSets)",
			changes.FromVersion, old.lattice.version)
	}
	return mine(ctx, g, p, sink, old.lattice, changes)
}
