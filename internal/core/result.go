package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/scpm/scpm/internal/graph"
)

// AttributeSet is one mined attribute set with its correlation metrics.
type AttributeSet struct {
	// Attrs are the attribute ids, ascending.
	Attrs []int32
	// Names are the attribute names, aligned with Attrs.
	Names []string
	// Support is σ(S) = |V(S)|.
	Support int
	// Epsilon is the structural correlation ε(S) = |K_S|/|V(S)|.
	Epsilon float64
	// ExpEps is εexp(σ(S)) under the run's null model.
	ExpEps float64
	// Delta is the normalized structural correlation ε/εexp (math.Inf
	// when εexp underflows to 0 while ε > 0).
	Delta float64
	// Covered is |K_S|, the number of vertices inside quasi-cliques. In
	// sampled mode it is the rounded estimate ε̂·σ.
	Covered int
	// Estimated reports whether Epsilon (and Covered) come from the
	// sampling estimator rather than an exact coverage search.
	Estimated bool
	// EpsilonErr is the Hoeffding half-width of an estimated Epsilon:
	// the true ε lies in [Epsilon−EpsilonErr, Epsilon+EpsilonErr] with
	// probability ≥ 1−δ. 0 when exact.
	EpsilonErr float64
	// SampledVertices is the number of membership samples drawn for an
	// estimated Epsilon; 0 when exact.
	SampledVertices int
}

// Key renders the attribute set canonically ("a,b,c") for map joins.
func (s AttributeSet) Key() string { return strings.Join(s.Names, ",") }

// ID returns the stable identifier of the attribute set: a 16-hex-digit
// hash of the attribute names that does not depend on name order,
// mining order or run parameters, so the CLI exports, the pattern index
// and the HTTP server all agree on it. Two runs over the same dataset
// assign the same id to the same set.
func (s AttributeSet) ID() string { return SetID(s.Names) }

// SetID computes the stable attribute-set identifier for the given
// attribute names (any order): the FNV-1a 64-bit hash of the sorted
// names, NUL-separated, rendered as 16 hex digits.
func SetID(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	h := fnv.New64a()
	for _, n := range sorted {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// String renders the set like the paper's tables.
func (s AttributeSet) String() string {
	return fmt.Sprintf("{%s} σ=%d ε=%.3f δ=%.3g", strings.Join(s.Names, " "), s.Support, s.Epsilon, s.Delta)
}

// Pattern is a structural correlation pattern (S, Q): a quasi-clique Q
// of the graph induced by attribute set S.
type Pattern struct {
	// Attrs and Names identify S (ascending ids).
	Attrs []int32
	Names []string
	// Vertices are Q's members as parent-graph vertex ids, ascending.
	Vertices []int32
	// MinDeg is the minimum internal degree of Q.
	MinDeg int
	// Edges is the number of internal edges of Q.
	Edges int
}

// Size returns |Q|.
func (p Pattern) Size() int { return len(p.Vertices) }

// SetID returns the stable identifier of the pattern's attribute set S
// (see AttributeSet.ID), joining a pattern to its set across exports
// and server responses.
func (p Pattern) SetID() string { return SetID(p.Names) }

// ID returns the stable identifier of the pattern (S, Q): a
// 16-hex-digit hash over the set identifier and Q's vertex ids. It is
// deterministic for a given dataset — the same (S, Q) pair hashes
// identically in every run and export.
func (p Pattern) ID() string {
	h := fnv.New64a()
	h.Write([]byte(p.SetID()))
	var buf [4]byte
	for _, v := range p.Vertices {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Density returns min_v deg_Q(v)/(|Q|−1) — the γ column of Table 1.
func (p Pattern) Density() float64 {
	if len(p.Vertices) <= 1 {
		return 0
	}
	return float64(p.MinDeg) / float64(len(p.Vertices)-1)
}

// EdgeDensity returns 2|E_Q|/(|Q|(|Q|−1)).
func (p Pattern) EdgeDensity() float64 {
	s := len(p.Vertices)
	if s <= 1 {
		return 0
	}
	return 2 * float64(p.Edges) / float64(s*(s-1))
}

// VertexNames resolves Q's members to their labels in g.
func (p Pattern) VertexNames(g *graph.Graph) []string {
	out := make([]string, len(p.Vertices))
	for i, v := range p.Vertices {
		out[i] = g.VertexName(v)
	}
	return out
}

// String renders the pattern like the paper's Table 1 rows.
func (p Pattern) String() string {
	return fmt.Sprintf("({%s},%v) size=%d γ=%.2f",
		strings.Join(p.Names, ","), p.Vertices, p.Size(), p.Density())
}

// Stats aggregates run counters.
type Stats struct {
	// SetsEvaluated counts attribute sets whose ε was computed.
	SetsEvaluated int64
	// SetsEmitted counts attribute sets passing all output thresholds.
	SetsEmitted int64
	// PatternsEmitted counts (S, Q) pairs reported.
	PatternsEmitted int64
	// SearchNodes counts quasi-clique candidate-tree nodes processed by
	// the coverage searches (the dominant cost of a run; the bench
	// harness records it as a hardware-independent work measure).
	SearchNodes int64
	// SampledVertices counts the membership samples drawn by the
	// sampled ε estimator across all evaluations (0 in exact mode).
	SampledVertices int64
	// ReusedSets counts attribute sets whose evaluation was carried
	// over from a previous run's lattice by Remine instead of being
	// recomputed (always 0 for a full Mine).
	ReusedSets int64
	// RecomputedSets counts attribute sets whose ε the run actually
	// computed — for a full Mine it equals SetsEvaluated; for a Remine
	// the ReusedSets/RecomputedSets split is the incremental saving.
	RecomputedSets int64
	// ReusedVerdicts counts level-1 singles replayed from sealed
	// verdicts (Params.Level1Verdicts) instead of searched. Such singles
	// still count as evaluated — their sealed search-node bill is
	// credited to SearchNodes — so every other counter stays
	// bit-identical to a verdict-free run; like Duration, this counter
	// is excluded from the merge-equivalence contract.
	ReusedVerdicts int64
	// Duration is the wall-clock mining time.
	Duration time.Duration
}

// Result is the output of a mining run, canonically sorted (attribute
// sets by size then lexicographic ids; patterns grouped per set, larger
// and denser first).
type Result struct {
	Sets     []AttributeSet
	Patterns []Pattern
	Stats    Stats

	// lattice memoizes every evaluated attribute set of the run when
	// Params.RecordLattice is on; Remine consumes it to skip clean
	// evaluations. nil otherwise.
	lattice *Lattice
}

// HasLattice reports whether the result carries the memoized search
// lattice Remine needs for incremental re-mining (recorded when
// Params.RecordLattice is set).
func (r *Result) HasLattice() bool { return r.lattice != nil }

// SetByNames finds an attribute set result by its names (any order),
// or nil.
func (r *Result) SetByNames(names ...string) *AttributeSet {
	want := append([]string(nil), names...)
	sort.Strings(want)
	for i := range r.Sets {
		got := append([]string(nil), r.Sets[i].Names...)
		sort.Strings(got)
		if len(got) != len(want) {
			continue
		}
		match := true
		for j := range got {
			if got[j] != want[j] {
				match = false
				break
			}
		}
		if match {
			return &r.Sets[i]
		}
	}
	return nil
}

// PatternsOf returns the patterns mined for the given attribute ids.
func (r *Result) PatternsOf(attrs []int32) []Pattern {
	key := attrKey(attrs)
	var out []Pattern
	for _, p := range r.Patterns {
		if attrKey(p.Attrs) == key {
			out = append(out, p)
		}
	}
	return out
}

// attrKey renders sorted attribute ids as a compact map key. It sits
// on the lattice replay hot path (one call per evaluated set), so it
// avoids fmt.
func attrKey(attrs []int32) string {
	buf := make([]byte, 0, 8*len(attrs))
	for _, a := range attrs {
		buf = strconv.AppendInt(buf, int64(a), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// sortResult puts sets and patterns in canonical order.
func sortResult(r *Result) {
	sort.Slice(r.Sets, func(i, j int) bool {
		return lessAttrs(r.Sets[i].Attrs, r.Sets[j].Attrs)
	})
	sort.Slice(r.Patterns, func(i, j int) bool {
		a, b := r.Patterns[i], r.Patterns[j]
		if c := compareAttrSlices(a.Attrs, b.Attrs); c != 0 {
			return c < 0
		}
		if a.Size() != b.Size() {
			return a.Size() > b.Size()
		}
		da, db := a.Density(), b.Density()
		if da != db {
			return da > db
		}
		return lessVertices(a.Vertices, b.Vertices)
	})
}

func lessAttrs(a, b []int32) bool { return compareAttrSlices(a, b) < 0 }

func compareAttrSlices(a, b []int32) int {
	if len(a) != len(b) {
		return len(a) - len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return int(a[i]) - int(b[i])
		}
	}
	return 0
}

func lessVertices(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// NormalizeDelta computes δ = ε/εexp with the documented conventions:
// +Inf when εexp underflows to 0 while ε > 0, and 0 when both are 0.
// Exported so the serving layer reports on-demand answers with exactly
// the mining-side semantics.
func NormalizeDelta(eps, exp float64) float64 {
	switch {
	case exp > 0:
		return eps / exp
	case eps > 0:
		return math.Inf(1)
	default:
		return 0
	}
}
