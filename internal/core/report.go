package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ranking selects the ordering criterion of TopSets.
type Ranking int

const (
	// BySupport ranks by σ descending (first column block of Tables
	// 2–4).
	BySupport Ranking = iota
	// ByEpsilon ranks by ε descending (second block).
	ByEpsilon
	// ByDelta ranks by δ descending (third block).
	ByDelta
)

// String names the ranking for table headers.
func (r Ranking) String() string {
	switch r {
	case BySupport:
		return "σ"
	case ByEpsilon:
		return "ε"
	default:
		return "δ"
	}
}

// TopSets returns the n best attribute sets under the given ranking,
// breaking ties by the other metrics and finally canonically. Infinite
// δ values rank first under ByDelta (they arise when εexp underflows).
func TopSets(sets []AttributeSet, r Ranking, n int) []AttributeSet {
	out := append([]AttributeSet(nil), sets...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch r {
		case BySupport:
			if a.Support != b.Support {
				return a.Support > b.Support
			}
		case ByEpsilon:
			if a.Epsilon != b.Epsilon {
				return a.Epsilon > b.Epsilon
			}
		case ByDelta:
			if a.Delta != b.Delta {
				return greaterWithInf(a.Delta, b.Delta)
			}
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		return lessAttrs(a.Attrs, b.Attrs)
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func greaterWithInf(a, b float64) bool {
	if math.IsInf(a, 1) {
		return !math.IsInf(b, 1)
	}
	if math.IsInf(b, 1) {
		return false
	}
	return a > b
}

// FormatSetsTable renders attribute sets as an aligned text table with
// the σ/ε/δ columns of the paper's case-study tables.
func FormatSetsTable(sets []AttributeSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %8s %8s %12s\n", "S", "σ", "ε", "δ")
	for _, s := range sets {
		fmt.Fprintf(&sb, "%-42s %8d %8.3f %12.4g\n",
			strings.Join(s.Names, " "), s.Support, s.Epsilon, s.Delta)
	}
	return sb.String()
}

// FormatPatternsTable renders patterns like Table 1.
func FormatPatternsTable(pats []Pattern) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-52s %6s %6s\n", "pattern", "size", "γ")
	for _, p := range pats {
		fmt.Fprintf(&sb, "({%s},%v) %*d %6.2f\n",
			strings.Join(p.Names, ","), p.Vertices,
			52-len(patternPrefix(p))+6, p.Size(), p.Density())
	}
	return sb.String()
}

func patternPrefix(p Pattern) string {
	return fmt.Sprintf("({%s},%v)", strings.Join(p.Names, ","), p.Vertices)
}
