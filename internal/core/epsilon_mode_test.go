package core

import (
	"math"
	"reflect"
	"testing"

	"github.com/scpm/scpm/internal/datagen"
	"github.com/scpm/scpm/internal/epsilon"
	"github.com/scpm/scpm/internal/graph"
)

// synthGraph generates a small planted-community graph whose attribute
// supports are large enough for the sampling path to engage.
func synthGraph(t *testing.T) *graph.Graph {
	t.Helper()
	prof := datagen.SmallDBLP(0.2)
	g, _, err := datagen.Generate(prof.Config)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sampledParams configures a run whose thresholds are fully open, so
// exact and sampled mode explore the identical attribute-set tree and
// per-set ε values can be compared one to one.
func sampledParams() Params {
	return Params{
		SigmaMin:    25,
		Gamma:       0.5,
		MinSize:     4,
		MaxAttrs:    2,
		EpsilonMode: EpsilonSampled,
		SampleEps:   0.2,
		SampleDelta: 0.1,
		Seed:        99,
	}
}

// TestSampledModeWithinBound mines the same graph in exact and sampled
// mode with open thresholds and checks every ε̂ against the exact ε
// under the configured Hoeffding bound (δ-bounded violations allowed).
func TestSampledModeWithinBound(t *testing.T) {
	g := synthGraph(t)
	p := sampledParams()
	approx, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	p.EpsilonMode = EpsilonExact
	exact, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx.Sets) != len(exact.Sets) {
		t.Fatalf("set trees diverged: %d vs %d sets", len(approx.Sets), len(exact.Sets))
	}
	m := epsilon.SampleSize(p.SampleEps, p.SampleDelta)
	sampledSets, violations := 0, 0
	for i := range exact.Sets {
		a, e := approx.Sets[i], exact.Sets[i]
		if !reflect.DeepEqual(a.Attrs, e.Attrs) || a.Support != e.Support {
			t.Fatalf("set %d identity differs: %v vs %v", i, a, e)
		}
		if !a.Estimated {
			// Sets below the sampling-worth threshold fall back to the
			// exact search and must be bit-identical.
			if a.Epsilon != e.Epsilon || a.Covered != e.Covered {
				t.Fatalf("fallback set %v differs: ε %v vs %v", a.Names, a.Epsilon, e.Epsilon)
			}
			if a.Support > epsilon.SampleWorthFactor*m {
				t.Fatalf("set %v has σ=%d > %d·m=%d but was not sampled",
					a.Names, a.Support, epsilon.SampleWorthFactor, epsilon.SampleWorthFactor*m)
			}
			continue
		}
		sampledSets++
		if a.EpsilonErr != p.SampleEps || a.SampledVertices != m {
			t.Fatalf("estimate metadata wrong: %+v", a)
		}
		if math.Abs(a.Epsilon-e.Epsilon) > p.SampleEps {
			violations++
		}
	}
	if sampledSets == 0 {
		t.Fatal("no set took the sampling path")
	}
	if allowed := int(2*p.SampleDelta*float64(sampledSets)) + 1; violations > allowed {
		t.Fatalf("%d/%d sampled sets outside ±%g (allowed %d)", violations, sampledSets, p.SampleEps, allowed)
	}
	if approx.Stats.SampledVertices != int64(sampledSets*m) {
		t.Fatalf("Stats.SampledVertices = %d, want %d", approx.Stats.SampledVertices, sampledSets*m)
	}
	if exact.Stats.SampledVertices != 0 {
		t.Fatalf("exact mode recorded samples: %d", exact.Stats.SampledVertices)
	}
}

// TestSampledModeDeterminism: the same seed reproduces the sampled run
// bit-for-bit, including under a worker pool.
func TestSampledModeDeterminism(t *testing.T) {
	g := synthGraph(t)
	p := sampledParams()
	p.K = 3
	p.Parallelism = 4
	first, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := mineBatch(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Sets, again.Sets) || !sameResult(first, again) {
			t.Fatalf("run %d diverged under a fixed seed", i)
		}
	}
}

// TestExactModeIgnoresSamplingKnobs: exact runs are identical whatever
// the sampling parameters say — the refactored estimator layer must not
// perturb the default path.
func TestExactModeIgnoresSamplingKnobs(t *testing.T) {
	g := graph.PaperExample()
	base, err := mineBatch(g, paperParams())
	if err != nil {
		t.Fatal(err)
	}
	p := paperParams()
	p.EpsilonMode = EpsilonExact
	p.SampleEps = 0.3
	p.SampleDelta = 0.3
	p.Seed = 1234
	got, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, got, base)
	for _, s := range got.Sets {
		if s.Estimated || s.EpsilonErr != 0 || s.SampledVertices != 0 {
			t.Fatalf("exact set carries estimate metadata: %+v", s)
		}
	}
}

// TestSampledModeEmitsPatterns: pattern mining still works when ε is
// estimated (patterns come from the hand-down superset of K_S).
func TestSampledModeEmitsPatterns(t *testing.T) {
	g := synthGraph(t)
	p := sampledParams()
	p.K = 2
	p.EpsMin = 0.05
	res, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) == 0 || len(res.Patterns) == 0 {
		t.Fatalf("sampled run found %d sets, %d patterns", len(res.Sets), len(res.Patterns))
	}
	qp := p.QuasiCliqueParams()
	for _, pat := range res.Patterns {
		if pat.Size() < p.MinSize || pat.Density() < qp.Gamma-1e-9 {
			t.Fatalf("invalid pattern from sampled run: %v", pat)
		}
	}
}

// TestEpsilonParamsValidate covers the new parameter ranges.
func TestEpsilonParamsValidate(t *testing.T) {
	bad := []Params{
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, EpsilonMode: 7},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, SampleEps: 1},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, SampleEps: -0.1},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, SampleDelta: 1},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, SampleDelta: -0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	ok := sampledParams()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid sampled params rejected: %v", err)
	}
	if EpsilonExact.String() != "exact" || EpsilonSampled.String() != "sampled" {
		t.Error("mode names")
	}
}
