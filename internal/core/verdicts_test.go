package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestLevel1VerdictReplay is the sealed-verdict equivalence property:
// mining with precomputed level-1 verdicts injected produces output —
// sets, ε, δ, patterns, stable ids, recorded lattice AND every stats
// counter including SearchNodes — bit-identical to evaluating level 1
// live, in exact and sampled ε modes, unsharded and sharded, while
// actually replaying (ReusedVerdicts > 0).
func TestLevel1VerdictReplay(t *testing.T) {
	ctx := context.Background()
	for mode, base := range remineParams() {
		t.Run(mode, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				g := remineGraph(t, int64(2700+trial))
				label := fmt.Sprintf("%s trial %d", mode, trial)
				want, err := Mine(ctx, g, base, nil)
				if err != nil {
					t.Fatal(err)
				}

				verdicts, err := ComputeLevel1(ctx, g, base)
				if err != nil {
					t.Fatal(err)
				}
				p := base
				p.Level1Verdicts = verdicts
				got, err := Mine(ctx, g, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireEqualResults(t, label+" unsharded", got, want)
				if got.Stats.ReusedVerdicts == 0 {
					t.Fatalf("%s: verdict run replayed nothing", label)
				}
				gs, ws := got.Stats, want.Stats
				gs.Duration, ws.Duration = 0, 0
				gs.ReusedVerdicts, ws.ReusedVerdicts = 0, 0
				if gs != ws {
					t.Fatalf("%s: stats diverge\ngot:  %+v\nwant: %+v", label, gs, ws)
				}

				// Sharded: every shard replays the shared verdicts; the
				// merged counters still sum to the single-process run.
				const n = 2
				parts := make([]*Result, n)
				for k := 0; k < n; k++ {
					sp := p
					sp.ShardOwner = parityOwner(k)
					if parts[k], err = Mine(ctx, g, sp, nil); err != nil {
						t.Fatal(err)
					}
				}
				merged, err := MergeResults(parts...)
				if err != nil {
					t.Fatal(err)
				}
				requireEqualResults(t, label+" sharded", merged, want)
				ms := merged.Stats
				ms.Duration, ms.ReusedVerdicts = 0, 0
				if ms != ws {
					t.Fatalf("%s: merged stats diverge\ngot:  %+v\nwant: %+v", label, ms, ws)
				}
			}
		})
	}
}

// TestLevel1VerdictGuards pins the two injection guards: a parameter-
// fingerprint mismatch fails loudly (silently mining the wrong numbers
// is the one unacceptable outcome), while a graph-version mismatch —
// the expected state after live updates — silently falls back to live
// level-1 evaluation.
func TestLevel1VerdictGuards(t *testing.T) {
	ctx := context.Background()
	base := remineParams()["exact"]
	g := remineGraph(t, 2800)
	verdicts, err := ComputeLevel1(ctx, g, base)
	if err != nil {
		t.Fatal(err)
	}

	// Fingerprint mismatch: loud.
	p := base
	p.EpsMin = base.EpsMin + 0.01
	p.Level1Verdicts = verdicts
	if _, err := Mine(ctx, g, p, nil); err == nil || !strings.Contains(err.Error(), "level-1 verdicts sealed under") {
		t.Fatalf("mismatched fingerprint not rejected (err=%v)", err)
	}

	// Graph-version mismatch: silent fallback, correct output.
	d := g.NewDelta()
	victim := g.VertexName(0)
	if err := d.UnsetAttr(victim, "a0"); err != nil {
		d = g.NewDelta()
		if err := d.SetAttr(victim, "a0"); err != nil {
			t.Fatal(err)
		}
	}
	ng, _, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	p = base
	p.Level1Verdicts = verdicts
	got, err := Mine(ctx, ng, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(ctx, ng, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "stale verdicts", got, want)
	if got.Stats.ReusedVerdicts != 0 {
		t.Fatalf("stale verdicts were replayed %d times", got.Stats.ReusedVerdicts)
	}
}
