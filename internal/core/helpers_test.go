package core

import (
	"context"

	"github.com/scpm/scpm/internal/graph"
)

// mineBatch and mineNaiveBatch keep the pre-streaming test call sites
// readable: background context, no sink.
func mineBatch(g *graph.Graph, p Params) (*Result, error) {
	return Mine(context.Background(), g, p, nil)
}

func mineNaiveBatch(g *graph.Graph, p Params) (*Result, error) {
	return MineNaive(context.Background(), g, p, nil)
}
