package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestForEachProcessesEveryIndexOnce hammers the atomic task dispatcher
// with many workers: every index must run exactly once and no error
// must surface. Run under -race this exercises the counter and the
// one-shot error recording concurrently.
func TestForEachProcessesEveryIndexOnce(t *testing.T) {
	const n = 4096
	m := &miner{p: Params{Parallelism: 16}}
	seen := make([]atomic.Int32, n)
	if err := m.forEach(context.Background(), n, func(i int, _ *tally) error {
		seen[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

// TestForEachFirstErrorWins injects failures from many concurrent
// tasks: exactly one of the injected errors must come back (the first
// recorded), tasks must never run twice, and dispatch must stop
// claiming new work after the failure is published.
func TestForEachFirstErrorWins(t *testing.T) {
	const n = 2048
	errBoom := errors.New("boom")
	for round := 0; round < 8; round++ {
		m := &miner{p: Params{Parallelism: 8}}
		seen := make([]atomic.Int32, n)
		var ran atomic.Int64
		err := m.forEach(context.Background(), n, func(i int, _ *tally) error {
			if seen[i].Add(1) != 1 {
				return fmt.Errorf("index %d ran twice", i)
			}
			ran.Add(1)
			if i%64 == 7 {
				return fmt.Errorf("task %d failed: %w", i, errBoom)
			}
			return nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("round %d: err = %v, want injected failure", round, err)
		}
		// With 8 workers and a failure every 64 tasks, dispatch must stop
		// long before the full range is claimed.
		if got := ran.Load(); got == n {
			t.Fatalf("round %d: all %d tasks ran despite early failure", round, got)
		}
	}
}

// TestForEachSequentialFirstError pins the deterministic sequential
// path: the error of the lowest failing index is returned and no later
// task runs.
func TestForEachSequentialFirstError(t *testing.T) {
	m := &miner{p: Params{Parallelism: 1}}
	var calls int
	wantErr := errors.New("stop at three")
	err := m.forEach(context.Background(), 10, func(i int, _ *tally) error {
		calls++
		if i == 3 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("ran %d tasks, want 4", calls)
	}
}

// TestForEachCancellation cancels the context mid-run; the dispatcher
// must return ErrCanceled without running every task.
func TestForEachCancellation(t *testing.T) {
	const n = 1 << 20
	m := &miner{p: Params{Parallelism: 8}}
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := m.forEach(ctx, n, func(i int, _ *tally) error {
		if ran.Add(1) == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := ran.Load(); got == n {
		t.Fatalf("all %d tasks ran despite cancellation", got)
	}
}
