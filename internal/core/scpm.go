package core

import (
	"sort"
	"sync"
	"time"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/nullmodel"
	"github.com/scpm/scpm/internal/quasiclique"
)

// Mine runs the SCPM algorithm (Algorithm 2) on g and returns the
// attribute sets satisfying σmin/εmin/δmin together with the top-k
// structural correlation patterns of each.
func Mine(g *graph.Graph, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &miner{
		g:      g,
		p:      p,
		qp:     p.QuasiCliqueParams(),
		qcOpts: p.qcOptions(),
		model:  p.model(g),
	}
	// Theorem 5's pruning bound needs εexp(σmin) once.
	m.expSigmaMin = m.model.Exp(p.SigmaMin)

	// Level 1 (Algorithm 2 lines 3–15): evaluate every frequent
	// attribute. These evaluations are independent, so they parallelize
	// directly.
	singles := m.frequentSingles()
	level1 := make([]evalOutcome, len(singles))
	if err := m.forEach(len(singles), func(i int) error {
		a := singles[i]
		members := g.AttrMembers(a)
		out, err := m.evaluate([]int32{a}, members, members)
		if err != nil {
			return err
		}
		level1[i] = out
		return nil
	}); err != nil {
		return nil, err
	}

	res := &Result{}
	var survivors []classItem
	for _, out := range level1 {
		m.collect(res, out)
		if out.survive {
			survivors = append(survivors, out.item)
		}
	}

	// Extension ordering: ascending support keeps intermediate tidsets
	// small (standard Eclat heuristic); ids break ties for determinism.
	sort.Slice(survivors, func(i, j int) bool {
		si, sj := survivors[i].members.Count(), survivors[j].members.Count()
		if si != sj {
			return si < sj
		}
		return survivors[i].attrs[0] < survivors[j].attrs[0]
	})

	// enumerate-patterns (Algorithm 3): each top-level subtree is
	// independent given its right-sibling list, so subtrees parallelize.
	buckets := make([]*Result, len(survivors))
	if err := m.forEach(len(survivors), func(i int) error {
		buckets[i] = &Result{}
		return m.extendSubtree(survivors[i], survivors[i+1:], buckets[i])
	}); err != nil {
		return nil, err
	}
	for _, b := range buckets {
		res.Sets = append(res.Sets, b.Sets...)
		res.Patterns = append(res.Patterns, b.Patterns...)
		res.Stats.SetsEvaluated += b.Stats.SetsEvaluated
		res.Stats.SetsEmitted += b.Stats.SetsEmitted
		res.Stats.PatternsEmitted += b.Stats.PatternsEmitted
	}
	res.Stats.SetsEvaluated += int64(len(level1))
	sortResult(res)
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// miner carries the immutable run state shared by all workers.
type miner struct {
	g           *graph.Graph
	p           Params
	qp          quasiclique.Params
	qcOpts      quasiclique.Options
	model       nullmodel.Model
	expSigmaMin float64
}

// classItem is a node of the attribute-set search tree: the set, its
// member vertices and its covered set K_S (Theorem 3 hands K_S down to
// restrict the children's quasi-clique searches).
type classItem struct {
	attrs   []int32
	members *bitset.Set
	covered *bitset.Set
}

// evalOutcome couples an evaluated item with its bucket contributions.
type evalOutcome struct {
	item    classItem
	survive bool
	set     *AttributeSet
	pats    []Pattern
}

// frequentSingles returns the attribute ids with support ≥ σmin,
// ascending.
func (m *miner) frequentSingles() []int32 {
	var out []int32
	for a := int32(0); a < int32(m.g.NumAttributes()); a++ {
		if m.g.AttrSupport(a) >= m.p.SigmaMin {
			out = append(out, a)
		}
	}
	return out
}

// forEach runs fn(0..n-1) either sequentially or on the configured
// worker pool, propagating the first error.
func (m *miner) forEach(n int, fn func(i int) error) error {
	workers := m.p.Parallelism
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		rerr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if rerr != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if rerr == nil {
						rerr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return rerr
}

// extendSubtree explores all attribute sets extending item with
// attributes from its right-sibling list (Algorithm 3), collecting
// emissions into out.
func (m *miner) extendSubtree(item classItem, siblings []classItem, out *Result) error {
	if m.p.MaxAttrs > 0 && len(item.attrs) >= m.p.MaxAttrs {
		return nil
	}
	var children []classItem
	for _, sib := range siblings {
		members := item.members.Intersect(sib.members)
		if members.Count() < m.p.SigmaMin {
			continue
		}
		attrs := append(append([]int32(nil), item.attrs...), sib.attrs[len(sib.attrs)-1])
		// Theorem 3: quasi-cliques of G(S) lie inside both parents'
		// covered sets, so the search may be restricted to their
		// intersection.
		candidates := members
		if !m.p.DisableVertexPruning {
			candidates = item.covered.Intersect(sib.covered)
		}
		res, err := m.evaluate(attrs, members, candidates)
		if err != nil {
			return err
		}
		out.Stats.SetsEvaluated++
		m.collect(out, res)
		if res.survive {
			children = append(children, res.item)
		}
	}
	for i := range children {
		if err := m.extendSubtree(children[i], children[i+1:], out); err != nil {
			return err
		}
	}
	return nil
}

// evaluate computes ε(S) and δ(S) for one attribute set, decides
// emission and survival, and mines the top-k patterns when S qualifies.
//
//   - members is V(S);
//   - candidates ⊆ members restricts the coverage search (Theorem 3).
func (m *miner) evaluate(attrs []int32, members, candidates *bitset.Set) (evalOutcome, error) {
	sigma := members.Count()
	sub := m.g.InducedByMembers(candidates)
	cov, err := quasiclique.Coverage(quasiclique.NewGraph(sub.Adj), m.qp, m.qcOpts)
	if err != nil {
		return evalOutcome{}, err
	}
	covered := bitset.New(m.g.NumVertices())
	cov.Covered.ForEach(func(local int) bool {
		covered.Add(int(sub.Orig[local]))
		return true
	})
	nCov := covered.Count()
	eps := 0.0
	if sigma > 0 {
		eps = float64(nCov) / float64(sigma)
	}
	expEps := m.model.Exp(sigma)
	delta := normalizeDelta(eps, expEps)

	out := evalOutcome{item: classItem{attrs: attrs, members: members, covered: covered}}

	// Theorem 4 (ε) and Theorem 5 (δ) survival bounds: a superset S'
	// has ε(S')·σ(S') ≤ ε(S)·σ(S) = |K_S|, so S is extended only when
	// |K_S| could still satisfy both output thresholds at support σmin.
	if m.p.DisableSetPruning {
		out.survive = true
	} else {
		kMass := float64(nCov)
		out.survive = kMass >= m.p.EpsMin*float64(m.p.SigmaMin) &&
			kMass >= m.p.DeltaMin*m.expSigmaMin*float64(m.p.SigmaMin)
	}

	if eps >= m.p.EpsMin && delta >= m.p.DeltaMin && len(attrs) >= m.p.minAttrs() {
		sorted := append([]int32(nil), attrs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out.set = &AttributeSet{
			Attrs:   sorted,
			Names:   m.g.AttrSetNames(sorted),
			Support: sigma,
			Epsilon: eps,
			ExpEps:  expEps,
			Delta:   delta,
			Covered: nCov,
		}
		if (m.p.K > 0 || m.p.AllPatterns) && nCov > 0 {
			pats, err := m.topPatterns(sorted, covered)
			if err != nil {
				return evalOutcome{}, err
			}
			out.pats = pats
		}
	}
	return out, nil
}

// topPatterns mines the top-k quasi-cliques of G(S) — or, in SCORP
// mode, all of them. Since every quasi-clique lives inside K_S, the
// search runs on the covered set.
func (m *miner) topPatterns(attrs []int32, covered *bitset.Set) ([]Pattern, error) {
	sub := m.g.InducedByMembers(covered)
	var top []quasiclique.Pattern
	var err error
	if m.p.AllPatterns {
		top, err = quasiclique.EnumerateMaximal(quasiclique.NewGraph(sub.Adj), m.qp, m.qcOpts)
	} else {
		top, err = quasiclique.TopK(quasiclique.NewGraph(sub.Adj), m.qp, m.p.K, m.qcOpts)
	}
	if err != nil {
		return nil, err
	}
	names := m.g.AttrSetNames(attrs)
	out := make([]Pattern, len(top))
	for i, q := range top {
		verts := make([]int32, len(q.Vertices))
		for j, lv := range q.Vertices {
			verts[j] = sub.Orig[lv]
		}
		out[i] = Pattern{
			Attrs:    attrs,
			Names:    names,
			Vertices: verts,
			MinDeg:   q.MinDeg,
			Edges:    q.Edges,
		}
	}
	return out, nil
}

// collect moves an outcome's emissions into a result bucket.
func (m *miner) collect(res *Result, out evalOutcome) {
	if out.set == nil {
		return
	}
	res.Sets = append(res.Sets, *out.set)
	res.Stats.SetsEmitted++
	res.Patterns = append(res.Patterns, out.pats...)
	res.Stats.PatternsEmitted += int64(len(out.pats))
}
