package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/epsilon"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/nullmodel"
	"github.com/scpm/scpm/internal/quasiclique"
)

// ErrCanceled is returned (wrapped around context.Cause) when the
// context passed to Mine or MineNaive is done before the search
// finishes. The accompanying *Result holds the well-formed partial
// output collected so far.
var ErrCanceled = quasiclique.ErrCanceled

// ErrBudget is returned when Params.SearchBudget is exhausted; like
// cancellation it comes with the partial result collected so far.
var ErrBudget = quasiclique.ErrBudget

// Mine runs the SCPM algorithm (Algorithm 2) on g and returns the
// attribute sets satisfying σmin/εmin/δmin together with the top-k
// structural correlation patterns of each.
//
// The context is observed throughout the search, including inside the
// quasi-clique engine: when it is done, Mine stops in bounded time and
// returns the partial result alongside an error satisfying
// errors.Is(err, ErrCanceled). A non-nil sink receives streaming events
// as mining proceeds (see Sink for the delivery contract); pass nil for
// batch-only operation.
func Mine(ctx context.Context, g *graph.Graph, p Params, sink Sink) (*Result, error) {
	return mine(ctx, g, p, sink, nil, nil)
}

// mine is the shared walk behind Mine and Remine: when reuse and
// changes are non-nil, evaluations of attribute sets disjoint from the
// dirty attributes are replayed from the recorded lattice instead of
// recomputed.
func mine(ctx context.Context, g *graph.Graph, p Params, sink Sink, reuse *Lattice, changes *graph.ChangeSet) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	qcOpts := p.qcOptions()
	qcOpts.Ctx = ctx
	m := &miner{
		g:        g,
		p:        p,
		qp:       p.QuasiCliqueParams(),
		qcOpts:   qcOpts,
		est:      p.estimator(qcOpts),
		exactEst: epsilon.NewExact(p.QuasiCliqueParams(), qcOpts),
		model:    p.model(g),
		em:       newEmitter(sink, p.ProgressEvery, start),
		reuse:    reuse,
		changes:  changes,
	}
	if p.RecordLattice {
		m.record = newLattice(g.Version())
	}
	if p.ShardOwner != nil {
		m.owner = func(root int32) bool { return p.ShardOwner(g, root) }
	}
	// Sealed level-1 verdicts replay every single-attribute evaluation
	// without touching the engine. A verdict set sealed at a different
	// graph version is silently ignored (live updates fall back to the
	// legacy path, which re-evaluates level 1); a verdict set sealed
	// under different mining parameters is a configuration error and
	// refuses loudly rather than replaying subtly wrong state.
	if p.Level1Verdicts != nil && reuse == nil && p.Level1Verdicts.GraphVersion() == g.Version() {
		if got, want := p.Level1Verdicts.ParamsKey(), p.Level1Fingerprint(); got != want {
			return nil, fmt.Errorf("core: level-1 verdicts sealed under parameters %q, run uses %q", got, want)
		}
		m.verdicts = p.Level1Verdicts
	}
	// Theorem 5's pruning bound needs εexp(σmin) once.
	m.expSigmaMin = m.model.Exp(p.SigmaMin)

	// Level 1 (Algorithm 2 lines 3–15): evaluate every frequent
	// attribute. These evaluations are independent, so they parallelize
	// directly. A sharded run evaluates every single — the non-owned
	// ones muted, because their hand-downs and survival verdicts feed
	// the owned subtrees' sibling lists — but emits/records/counts only
	// the owned slice.
	singles := m.frequentSingles()
	level1 := make([]evalOutcome, len(singles))
	runErr := m.forEach(ctx, len(singles), func(i int, tl *tally) error {
		attrs := []int32{singles[i]}
		muted := m.owner != nil && !m.owner(singles[i])
		// Each level-1 evaluation gets its own certificate store, which
		// then travels down its subtree (walked sequentially below), so
		// certificate reuse never crosses a scheduling boundary.
		store := m.newCertStore()
		out, handled, err := m.replay(attrs, muted, store, tl)
		if err != nil {
			return err
		}
		if !handled && m.verdicts != nil {
			out, handled, err = m.replayVerdict(singles[i], attrs, muted, store, tl)
			if err != nil {
				return err
			}
		}
		if !handled {
			members := g.AttrMembers(singles[i])
			out, err = m.evaluate(attrs, members, members, muted, store, tl)
			if err != nil {
				return err
			}
		}
		level1[i] = out
		return nil
	})

	res := &Result{}
	var survivors []classItem
	for _, out := range level1 {
		m.collect(res, out)
		if out.survive {
			survivors = append(survivors, out.item)
		}
	}
	if runErr != nil {
		res.lattice = m.record
		return finalizeResult(res, m.em, runErr)
	}

	// Extension ordering: ascending support keeps intermediate tidsets
	// small (standard Eclat heuristic); ids break ties for determinism.
	sort.Slice(survivors, func(i, j int) bool {
		si, sj := survivors[i].members.Count(), survivors[j].members.Count()
		if si != sj {
			return si < sj
		}
		return survivors[i].attrs[0] < survivors[j].attrs[0]
	})

	// Promote the level-1 certificate discoveries to one global base:
	// every single's private store is absorbed in extension order — the
	// same canonical order at any Parallelism and shard count, since
	// every run evaluates (or verdict-replays) every frequent single —
	// and each surviving subtree walks over a private copy-on-write
	// layer. Subtree-local discoveries still never cross a scheduling
	// boundary, so per-set search-node counts stay deterministic, while
	// all subtrees now start from all siblings' certificates instead of
	// only their own root's.
	if !m.p.DisableCertSharing && len(survivors) > 0 {
		order := make([]int, len(level1))
		counts := make([]int, len(level1))
		for i := range level1 {
			order[i] = i
			counts[i] = level1[i].item.members.Count()
		}
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if counts[ia] != counts[ib] {
				return counts[ia] < counts[ib]
			}
			return level1[ia].item.attrs[0] < level1[ib].item.attrs[0]
		})
		global := epsilon.NewCertStore()
		for _, i := range order {
			global.Absorb(level1[i].item.certs)
		}
		for i := range survivors {
			survivors[i].certs = epsilon.NewCertStoreFrom(global)
		}
	}

	// enumerate-patterns (Algorithm 3): each top-level subtree is
	// independent given its right-sibling list, so subtrees parallelize.
	// A sharded run descends only the subtrees it owns; every attribute
	// set below an owned root belongs to this shard by the prefix
	// ownership rule, so everything in the subtree is unmuted.
	buckets := make([]*Result, len(survivors))
	runErr = m.forEach(ctx, len(survivors), func(i int, tl *tally) error {
		if m.owner != nil && !m.owner(survivors[i].attrs[0]) {
			return nil
		}
		buckets[i] = &Result{}
		return m.extendSubtree(ctx, survivors[i], survivors[i+1:], buckets[i], tl)
	})
	// Pre-size the merged slices from the per-subtree counts: appending
	// bucket by bucket into growing slices re-copies the whole result
	// O(log) times, a visible slice of the allocation tail on runs
	// emitting tens of thousands of sets.
	nSets, nPats := len(res.Sets), len(res.Patterns)
	for _, b := range buckets {
		if b != nil {
			nSets += len(b.Sets)
			nPats += len(b.Patterns)
		}
	}
	res.Sets = append(make([]AttributeSet, 0, nSets), res.Sets...)
	res.Patterns = append(make([]Pattern, 0, nPats), res.Patterns...)
	for _, b := range buckets {
		if b == nil {
			continue
		}
		res.Sets = append(res.Sets, b.Sets...)
		res.Patterns = append(res.Patterns, b.Patterns...)
	}
	res.lattice = m.record
	return finalizeResult(res, m.em, runErr)
}

// finalizeResult puts a run's output in canonical order and stamps the
// final counters. Cancellation and budget exhaustion surface the
// partial result alongside the error; any other error discards it.
func finalizeResult(res *Result, em *emitter, err error) (*Result, error) {
	// The terminal OnProgress fires however the run ends — the Sink
	// contract promises it, and sinks flush on it.
	defer em.finish()
	if err != nil && !errors.Is(err, ErrCanceled) && !errors.Is(err, ErrBudget) {
		return nil, err
	}
	sortResult(res)
	res.Stats = em.snapshot()
	return res, err
}

// miner carries the immutable run state shared by all workers.
type miner struct {
	g           *graph.Graph
	p           Params
	qp          quasiclique.Params
	qcOpts      quasiclique.Options
	est         epsilon.Estimator
	exactEst    *epsilon.Exact
	model       nullmodel.Model
	em          *emitter
	expSigmaMin float64

	// owner, when non-nil, claims the top-level roots this run owns
	// (Params.ShardOwner bound to the mined graph); nil owns everything.
	owner func(root int32) bool

	// verdicts, when non-nil, replays level-1 single-attribute
	// evaluations from sealed state instead of searching
	// (Params.Level1Verdicts, validated against the graph version and
	// the parameter fingerprint).
	verdicts *Level1Verdicts

	// Incremental re-mining state: reuse is the previous run's lattice
	// and changes the graph update it is valid across (both nil for a
	// full mine); record, when non-nil, collects this run's lattice.
	reuse   *Lattice
	changes *graph.ChangeSet
	record  *Lattice
}

// classItem is a node of the attribute-set search tree: the set, its
// member vertices and its covered set K_S (Theorem 3 hands K_S down to
// restrict the children's quasi-clique searches).
type classItem struct {
	attrs   []int32
	members *bitset.Set
	covered *bitset.Set
	// certs is the coverage certificate store shared by this item's
	// whole subtree. It is created once per level-1 evaluation and
	// handed down; the subtree is walked sequentially, so the store
	// needs no locking and the per-set search-node counts stay
	// independent of worker scheduling. Nil when sharing is disabled.
	certs *epsilon.CertStore
}

// evalOutcome couples an evaluated item with its bucket contributions.
type evalOutcome struct {
	item    classItem
	survive bool
	set     *AttributeSet
	pats    []Pattern
}

// childAttrs forms the attribute set of the child obtained by
// extending item with its sibling's last attribute.
func childAttrs(item, sib classItem) []int32 {
	return append(append(make([]int32, 0, len(item.attrs)+1), item.attrs...), sib.attrs[len(sib.attrs)-1])
}

// frequentSingles returns the attribute ids with support ≥ σmin,
// ascending.
func (m *miner) frequentSingles() []int32 {
	var out []int32
	for a := int32(0); a < int32(m.g.NumAttributes()); a++ {
		if m.g.AttrSupport(a) >= m.p.SigmaMin {
			out = append(out, a)
		}
	}
	return out
}

// forEach runs fn(0..n-1) either sequentially or on the configured
// worker pool, propagating the first error. The context is checked
// before each task so cancellation is observed between evaluations even
// when the individual searches are too small to poll it themselves.
//
// Task dispatch is a lock-free atomic counter: workers claim indices
// with next.Add and bail out once failed flips, so the only
// synchronization on the hot path is one fetch-add per task. The first
// error to arrive wins (recorded exactly once through errOnce); workers
// that already claimed a task finish it, but no new tasks are claimed
// after the failure is published.
//
// Each worker owns a tally for the scheduling-sensitive counters and
// merges it into the emitter when it exits (errors included), so the
// run totals are identical for every Parallelism value.
func (m *miner) forEach(ctx context.Context, n int, fn func(i int, tl *tally) error) error {
	workers := m.p.Parallelism
	if workers <= 1 || n <= 1 {
		var tl tally
		defer m.em.merge(&tl)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return quasiclique.Canceled(ctx)
			}
			if err := fn(i, &tl); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		rerr    error
	)
	record := func(err error) {
		errOnce.Do(func() { rerr = err })
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tl tally
			defer m.em.merge(&tl)
			for !failed.Load() {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				err := ctx.Err()
				if err != nil {
					err = quasiclique.Canceled(ctx)
				} else {
					err = fn(int(i), &tl)
				}
				if err != nil {
					record(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return rerr
}

// extendSubtree explores all attribute sets extending item with
// attributes from its right-sibling list (Algorithm 3), collecting
// emissions into out.
func (m *miner) extendSubtree(ctx context.Context, item classItem, siblings []classItem, out *Result, tl *tally) error {
	if m.p.MaxAttrs > 0 && len(item.attrs) >= m.p.MaxAttrs {
		return nil
	}
	var children []classItem
	for _, sib := range siblings {
		if ctx.Err() != nil {
			return quasiclique.Canceled(ctx)
		}
		var (
			attrs   []int32
			res     evalOutcome
			handled bool
			err     error
		)
		// Incremental runs consult the lattice before doing any tidset
		// work — a clean cached child costs one map lookup instead of a
		// bitset intersection plus a coverage search.
		if m.reuse != nil {
			attrs = childAttrs(item, sib)
			res, handled, err = m.replay(attrs, false, item.certs, tl)
			if err != nil {
				return err
			}
		}
		if !handled {
			members := item.members.Intersect(sib.members)
			if members.Count() < m.p.SigmaMin {
				continue
			}
			if attrs == nil {
				attrs = childAttrs(item, sib)
			}
			// Theorem 3: quasi-cliques of G(S) lie inside both parents'
			// covered sets, so the search may be restricted to their
			// intersection.
			candidates := members
			if !m.p.DisableVertexPruning {
				candidates = item.covered.Intersect(sib.covered)
			}
			res, err = m.evaluate(attrs, members, candidates, false, item.certs, tl)
			if err != nil {
				return err
			}
		}
		m.collect(out, res)
		if res.survive {
			children = append(children, res.item)
		}
	}
	for i := range children {
		if err := m.extendSubtree(ctx, children[i], children[i+1:], out, tl); err != nil {
			return err
		}
	}
	return nil
}

// evaluate computes ε(S) and δ(S) for one attribute set, decides
// emission and survival, and mines the top-k patterns when S qualifies.
//
//   - members is V(S);
//   - candidates ⊆ members restricts the coverage search (Theorem 3).
//
// The ε computation itself is delegated to the run's estimator layer
// (exact coverage search or Hoeffding-bounded vertex sampling); the
// estimate carries the covered-set hand-down and the |K_S| upper bound
// the pruning rules below rely on, so Theorems 3–5 stay sound in both
// modes.
//
// muted marks a non-owned level-1 evaluation of a sharded run: the item
// (hand-down included) is computed bit-identically, but nothing is
// emitted, recorded or counted — the owning shard does that exactly
// once.
func (m *miner) evaluate(attrs []int32, members, candidates *bitset.Set, muted bool, certs *epsilon.CertStore, tl *tally) (evalOutcome, error) {
	est, err := m.est.EstimateWithCerts(m.g, attrs, members, candidates, certs)
	if err != nil {
		return evalOutcome{}, err
	}
	if !muted {
		m.em.noteEvaluated()
		tl.noteSearchNodes(est.Nodes)
		tl.noteSampled(int64(est.SampledVertices))
	}
	return m.score(attrKey(attrs), attrs, members, members.Count(), est, nil, muted, certs, tl)
}

// newCertStore returns a fresh certificate store, or nil when sharing
// is disabled (a nil store degrades every consumer to store-free
// behavior).
func (m *miner) newCertStore() *epsilon.CertStore {
	if m.p.DisableCertSharing {
		return nil
	}
	return epsilon.NewCertStore()
}

// replay serves one attribute set from the previous run's lattice when
// the update provably left it unchanged: a set disjoint from the dirty
// attributes has identical V(S) and G(S) in both graph versions, so
// the memoized evaluation — member set included, which skips even the
// Eclat tidset intersection — is the current one. Only the
// δ-normalization (recomputed by score either way) can differ. handled
// reports whether the cache answered.
func (m *miner) replay(attrs []int32, muted bool, certs *epsilon.CertStore, tl *tally) (out evalOutcome, handled bool, err error) {
	if m.reuse == nil || m.changes.Touches(attrs) {
		return evalOutcome{}, false, nil
	}
	key := attrKey(attrs)
	ent, ok := m.reuse.get(key)
	if !ok {
		return evalOutcome{}, false, nil
	}
	if !muted {
		m.em.noteReused()
	}
	members := grownTo(ent.members, m.g.NumVertices())
	out, err = m.score(key, attrs, members, ent.sigma, ent.estimate(m.g.NumVertices()), ent, muted, certs, tl)
	return out, true, err
}

// score turns one ε estimate — freshly computed, or replayed from a
// previous run's lattice (cached non-nil) — into the evaluation
// outcome: survival under Theorems 4–5, emission against the output
// thresholds, and pattern mining for qualifying sets. It also records
// the evaluation into the run's lattice when recording is on.
//
// A muted call (non-owned level-1 single of a sharded run) produces the
// same classItem — including the lazy exact hand-down refinement of
// sampled mode, which siblings' children consume — but suppresses
// emission, pattern mining, lattice recording and counter updates.
func (m *miner) score(key string, attrs []int32, members *bitset.Set, sigma int, est epsilon.Estimate, cached *latticeEntry, muted bool, certs *epsilon.CertStore, tl *tally) (evalOutcome, error) {
	eps := est.Epsilon
	expEps := m.model.Exp(sigma)
	delta := NormalizeDelta(eps, expEps)

	out := evalOutcome{item: classItem{attrs: attrs, members: members, covered: est.Handdown, certs: certs}}

	var rec *latticeEntry
	if m.record != nil && !muted {
		rec = &latticeEntry{
			members:         members,
			sigma:           sigma,
			eps:             eps,
			covered:         est.Covered,
			kmass:           est.KMass,
			estimated:       est.Estimated,
			errBound:        est.ErrBound,
			sampledVertices: est.SampledVertices,
			handdown:        est.Handdown,
		}
		m.record.put(key, rec)
	}

	// Theorem 4 (ε) and Theorem 5 (δ) survival bounds: a superset S'
	// has ε(S')·σ(S') ≤ ε(S)·σ(S) = |K_S|, so S is extended only when
	// |K_S| could still satisfy both output thresholds at support σmin.
	// In sampled mode est.KMass upper-bounds |K_S| (w.p. 1−δ), keeping
	// the pruning sound at the configured confidence.
	if m.p.DisableSetPruning {
		out.survive = true
	} else {
		out.survive = est.KMass >= m.p.EpsMin*float64(m.p.SigmaMin) &&
			est.KMass >= m.p.DeltaMin*m.expSigmaMin*float64(m.p.SigmaMin)
	}

	if eps >= m.p.EpsMin && delta >= m.p.DeltaMin && len(attrs) >= m.p.minAttrs() {
		sorted := append([]int32(nil), attrs...)
		slices.Sort(sorted)
		if !muted {
			out.set = &AttributeSet{
				Attrs:           sorted,
				Names:           m.g.AttrSetNames(sorted),
				Support:         sigma,
				Epsilon:         eps,
				ExpEps:          expEps,
				Delta:           delta,
				Covered:         est.Covered,
				Estimated:       est.Estimated,
				EpsilonErr:      est.ErrBound,
				SampledVertices: est.SampledVertices,
			}
		}
		// Patterns are mined from K_S. An estimated evaluation does not
		// know K_S, so it is computed lazily here — restricted to the
		// hand-down superset (Theorem 3), and only for sets that
		// actually pass the output thresholds, which keeps the sampling
		// speedup intact while the reported patterns stay exact.
		if (m.p.K > 0 || m.p.AllPatterns) && !est.Handdown.IsEmpty() {
			base := est.Handdown
			if est.Estimated {
				if cached != nil && cached.exact != nil {
					base = grownTo(cached.exact, m.g.NumVertices())
				} else {
					exact, err := m.exactEst.EstimateWithCerts(m.g, attrs, members, est.Handdown, certs)
					if err != nil {
						return evalOutcome{}, err
					}
					if !muted {
						tl.noteSearchNodes(exact.Nodes)
					}
					base = exact.Handdown
				}
				// The exact K_S is in hand now — hand it down to the
				// children instead of the looser sampled superset, just
				// like exact mode would (Theorem 3). Muted evaluations
				// refine too: a sibling's child in an owned subtree
				// intersects this hand-down, so it must match the
				// single-process one bit for bit.
				out.item.covered = base
				if rec != nil {
					rec.exact = base
				}
			}
			if !base.IsEmpty() && !muted {
				if cached != nil && cached.hasPats {
					out.pats = cached.pats
				} else {
					pats, err := m.topPatterns(sorted, base)
					if err != nil {
						return evalOutcome{}, err
					}
					out.pats = pats
				}
				if rec != nil {
					rec.pats = out.pats
					rec.hasPats = true
				}
			}
		}
	}
	return out, nil
}

// topPatterns mines the top-k quasi-cliques of G(S) — or, in SCORP
// mode, all of them. Since every quasi-clique lives inside K_S, the
// search runs on the covered set.
func (m *miner) topPatterns(attrs []int32, covered *bitset.Set) ([]Pattern, error) {
	sub := m.g.InducedByMembers(covered)
	qg := quasiclique.NewGraphCSR(sub.CSR())
	var top []quasiclique.Pattern
	var err error
	if m.p.AllPatterns {
		top, err = quasiclique.EnumerateMaximal(qg, m.qp, m.qcOpts)
	} else {
		top, err = quasiclique.TopK(qg, m.qp, m.p.K, m.qcOpts)
	}
	if err != nil {
		return nil, err
	}
	names := m.g.AttrSetNames(attrs)
	out := make([]Pattern, len(top))
	for i, q := range top {
		verts := make([]int32, len(q.Vertices))
		for j, lv := range q.Vertices {
			verts[j] = sub.Orig[lv]
		}
		out[i] = Pattern{
			Attrs:    attrs,
			Names:    names,
			Vertices: verts,
			MinDeg:   q.MinDeg,
			Edges:    q.Edges,
		}
	}
	return out, nil
}

// collect moves an outcome's emissions into a result bucket and streams
// them to the sink.
func (m *miner) collect(res *Result, out evalOutcome) {
	if out.set == nil {
		return
	}
	res.Sets = append(res.Sets, *out.set)
	res.Patterns = append(res.Patterns, out.pats...)
	m.em.emitSet(*out.set, out.pats)
}
