package core

// Cross-cutting invariant tests: properties the paper states (or that
// follow from its definitions) checked on random attributed graphs.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scpm/scpm/internal/bitset"
)

// TestQuickTheorem4Invariant checks |K_Sj| ≤ |K_Si| for Si ⊆ Sj on the
// mined output: ε(S)·σ(S) is anti-monotone under attribute extension,
// which is exactly what the Theorem-4 pruning rule relies on.
func TestQuickTheorem4Invariant(t *testing.T) {
	f := func(seed int64) bool {
		g := randomAttributedGraph(seed, 14)
		p := Params{SigmaMin: 1, Gamma: 0.5, MinSize: 3}
		res, err := mineBatch(g, p)
		if err != nil {
			return false
		}
		byKey := map[string]AttributeSet{}
		for _, s := range res.Sets {
			byKey[attrKey(s.Attrs)] = s
		}
		for _, s := range res.Sets {
			if len(s.Attrs) < 2 {
				continue
			}
			// every (|S|-1)-subset must cover at least as many vertices
			for drop := range s.Attrs {
				sub := make([]int32, 0, len(s.Attrs)-1)
				for i, a := range s.Attrs {
					if i != drop {
						sub = append(sub, a)
					}
				}
				parent, ok := byKey[attrKey(sub)]
				if !ok {
					// the subset always has support ≥ superset ≥ σmin,
					// so with εmin = δmin = 0 it must have been emitted
					return false
				}
				if s.Covered > parent.Covered {
					t.Logf("K anti-monotonicity violated: %v (%d) ⊃ %v (%d)",
						s.Names, s.Covered, parent.Names, parent.Covered)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEpsilonBounds checks 0 ≤ ε ≤ 1 and Covered = ε·σ exactly.
func TestQuickEpsilonBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := randomAttributedGraph(seed, 15)
		res, err := mineBatch(g, Params{SigmaMin: 2, Gamma: 0.6, MinSize: 3})
		if err != nil {
			return false
		}
		for _, s := range res.Sets {
			if s.Epsilon < 0 || s.Epsilon > 1 {
				return false
			}
			if s.Covered < 0 || s.Covered > s.Support {
				return false
			}
			want := float64(s.Covered) / float64(s.Support)
			if diff := s.Epsilon - want; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPatternsLiveInsideTheirInducedGraph checks Definition 3:
// every reported pattern (S, Q) satisfies Q ⊆ V(S), the quasi-clique
// degree constraint within G(S), and min-size.
func TestQuickPatternsLiveInsideTheirInducedGraph(t *testing.T) {
	f := func(seed int64) bool {
		g := randomAttributedGraph(seed, 15)
		p := Params{SigmaMin: 2, Gamma: 0.5, MinSize: 3, K: 4}
		res, err := mineBatch(g, p)
		if err != nil {
			return false
		}
		qp := p.QuasiCliqueParams()
		for _, pat := range res.Patterns {
			members := g.Members(pat.Attrs)
			inQ := bitset.New(g.NumVertices())
			for _, v := range pat.Vertices {
				if !members.Contains(int(v)) {
					return false // Q ⊄ V(S)
				}
				inQ.Add(int(v))
			}
			if pat.Size() < p.MinSize {
				return false
			}
			need := qp.MinDegree(pat.Size())
			for _, v := range pat.Vertices {
				deg := 0
				for _, u := range g.Neighbors(v) {
					if inQ.Contains(int(u)) {
						deg++
					}
				}
				if deg < need {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPatternVerticesAreCovered checks that every pattern vertex
// is counted in its set's K_S (patterns are witnesses of coverage).
func TestQuickPatternVerticesAreCovered(t *testing.T) {
	f := func(seed int64) bool {
		g := randomAttributedGraph(seed, 14)
		res, err := mineBatch(g, Params{SigmaMin: 2, Gamma: 0.5, MinSize: 3, K: 3})
		if err != nil {
			return false
		}
		for _, s := range res.Sets {
			cov := map[int32]bool{}
			for _, pat := range res.PatternsOf(s.Attrs) {
				for _, v := range pat.Vertices {
					cov[v] = true
				}
			}
			// pattern vertices are a subset of K_S, so never exceed it
			if len(cov) > s.Covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeltaConsistentWithModel re-derives δ from ε and the model.
func TestQuickDeltaConsistentWithModel(t *testing.T) {
	f := func(seed int64) bool {
		g := randomAttributedGraph(seed, 16)
		p := Params{SigmaMin: 2, Gamma: 0.5, MinSize: 3}
		model := p.model(g)
		res, err := mineBatch(g, p)
		if err != nil {
			return false
		}
		for _, s := range res.Sets {
			// +Inf == +Inf holds in Go, so plain equality covers the
			// εexp-underflow case too
			if s.Delta != NormalizeDelta(s.Epsilon, model.Exp(s.Support)) {
				return false
			}
			if s.ExpEps != model.Exp(s.Support) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSupportsRespectSigmaMin checks the σmin contract on output.
func TestQuickSupportsRespectSigmaMin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigmaMin := 2 + rng.Intn(4)
		g := randomAttributedGraph(seed, 15)
		res, err := mineBatch(g, Params{SigmaMin: sigmaMin, Gamma: 0.5, MinSize: 3})
		if err != nil {
			return false
		}
		for _, s := range res.Sets {
			if s.Support < sigmaMin {
				return false
			}
			if s.Support != g.Support(s.Attrs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
