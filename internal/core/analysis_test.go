package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/scpm/scpm/internal/graph"
)

func mineExample(t *testing.T, mutate func(*Params)) (*graph.Graph, *Result) {
	t.Helper()
	g := graph.PaperExample()
	p := paperParams()
	if mutate != nil {
		mutate(&p)
	}
	res, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestAllPatternsMatchesTopKOnExample(t *testing.T) {
	// Table 1 is the COMPLETE pattern set, so SCORP mode must
	// reproduce it too.
	_, topk := mineExample(t, nil)
	_, all := mineExample(t, func(p *Params) { p.AllPatterns = true; p.K = 0 })
	if len(all.Patterns) != len(topk.Patterns) {
		t.Fatalf("AllPatterns %d vs topk %d", len(all.Patterns), len(topk.Patterns))
	}
	for i := range all.Patterns {
		if all.Patterns[i].String() != topk.Patterns[i].String() {
			t.Fatalf("pattern %d differs: %v vs %v", i, all.Patterns[i], topk.Patterns[i])
		}
	}
}

func TestAllPatternsMatchesNaive(t *testing.T) {
	g := randomAttributedGraph(1234, 14)
	p := Params{SigmaMin: 2, Gamma: 0.5, MinSize: 3, AllPatterns: true}
	want, err := mineNaiveBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, got, want)
	if len(got.Patterns) == 0 {
		t.Fatal("expected some patterns")
	}
}

func TestGlobalTopPatterns(t *testing.T) {
	_, res := mineExample(t, nil)
	top := GlobalTopPatterns(res.Patterns, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	// the three 6-sets rank first (size 6 beats size 4)
	for _, p := range top {
		if p.Size() != 6 {
			t.Fatalf("expected size-6 patterns first, got %v", p)
		}
	}
	if got := GlobalTopPatterns(res.Patterns, 100); len(got) != len(res.Patterns) {
		t.Fatal("n beyond len should return all")
	}
}

func TestDedupPatterns(t *testing.T) {
	g, res := mineExample(t, nil)
	// Table 1 has {6..11} three times (for {A}, {B}, {A,B}); dedup at
	// Jaccard 1.0 keeps one of them.
	dedup := DedupPatterns(res.Patterns, g.NumVertices(), 1.0)
	count6 := 0
	for _, p := range dedup {
		if p.Size() == 6 {
			count6++
		}
	}
	if count6 != 1 {
		t.Fatalf("expected one 6-set after dedup, got %d\n%v", count6, dedup)
	}
	// lower threshold also collapses the overlapping 4-sets
	aggressive := DedupPatterns(res.Patterns, g.NumVertices(), 0.3)
	if len(aggressive) >= len(dedup) {
		t.Fatalf("aggressive dedup should drop more: %d vs %d", len(aggressive), len(dedup))
	}
	if len(DedupPatterns(nil, g.NumVertices(), 0.5)) != 0 {
		t.Fatal("empty input")
	}
}

func TestPatternCoverage(t *testing.T) {
	g, res := mineExample(t, nil)
	cov := PatternCoverage(res.Patterns, g.NumVertices())
	// Table 1 patterns cover vertices 3..11 (ids 2..10)
	if cov.Count() != 9 {
		t.Fatalf("coverage = %v", cov)
	}
	if cov.Contains(0) || cov.Contains(1) {
		t.Fatal("vertices 1,2 should be uncovered")
	}
}

func TestWriteJSON(t *testing.T) {
	g, res := mineExample(t, nil)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Sets []struct {
			Attrs   []string `json:"attrs"`
			Support int      `json:"support"`
			Delta   string   `json:"delta"`
		} `json:"sets"`
		Patterns []struct {
			Vertices []string `json:"vertices"`
			Size     int      `json:"size"`
		} `json:"patterns"`
		Stats struct {
			SetsEmitted int64 `json:"sets_emitted"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Sets) != 3 || len(decoded.Patterns) != 7 {
		t.Fatalf("decoded %d sets, %d patterns", len(decoded.Sets), len(decoded.Patterns))
	}
	if decoded.Stats.SetsEmitted != 3 {
		t.Fatalf("stats: %+v", decoded.Stats)
	}
	for _, p := range decoded.Patterns {
		if len(p.Vertices) != p.Size {
			t.Fatalf("vertex names not resolved: %+v", p)
		}
	}
}

func TestJSONDeltaInf(t *testing.T) {
	if FormatDelta(math.Inf(1)) != "inf" {
		t.Fatal("inf formatting")
	}
	if FormatDelta(2.5) != "2.5" {
		t.Fatal("finite formatting")
	}
}

func TestWriteCSVs(t *testing.T) {
	g, res := mineExample(t, nil)
	var sets, pats bytes.Buffer
	if err := res.WriteSetsCSV(&sets); err != nil {
		t.Fatal(err)
	}
	if err := res.WritePatternsCSV(&pats, g); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sets.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 sets
		t.Fatalf("sets csv rows = %d", len(rows))
	}
	if rows[0][0] != "id" || rows[0][1] != "attrs" {
		t.Fatalf("header = %v", rows[0])
	}
	prows, err := csv.NewReader(strings.NewReader(pats.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(prows) != 8 { // header + 7 patterns
		t.Fatalf("patterns csv rows = %d", len(prows))
	}
}
