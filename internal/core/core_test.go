package core

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/nullmodel"
	"github.com/scpm/scpm/internal/quasiclique"
)

// paperParams are the worked-example parameters of §2.1.2 (Table 1).
func paperParams() Params {
	return Params{
		SigmaMin: 3,
		Gamma:    0.6,
		MinSize:  4,
		EpsMin:   0.5,
		K:        10,
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{SigmaMin: 0, Gamma: 0.5, MinSize: 4},
		{SigmaMin: 1, Gamma: 0, MinSize: 4},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 1},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, EpsMin: -0.1},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, EpsMin: 1.1},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, DeltaMin: -1},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, K: -1},
		{SigmaMin: 1, Gamma: 0.5, MinSize: 4, MinAttrs: 3, MaxAttrs: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	if err := paperParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

// TestTable1 reproduces Table 1 of the paper exactly.
func TestTable1(t *testing.T) {
	g := graph.PaperExample()
	res, err := mineBatch(g, paperParams())
	if err != nil {
		t.Fatal(err)
	}

	// Attribute sets: {A} ε=0.82, {B} ε=1, {A,B} ε=1.
	if len(res.Sets) != 3 {
		t.Fatalf("got %d sets, want 3: %v", len(res.Sets), res.Sets)
	}
	checkSet := func(names []string, sigma int, eps float64) {
		t.Helper()
		s := res.SetByNames(names...)
		if s == nil {
			t.Fatalf("set %v missing", names)
		}
		if s.Support != sigma {
			t.Errorf("σ(%v) = %d, want %d", names, s.Support, sigma)
		}
		if math.Abs(s.Epsilon-eps) > 1e-9 {
			t.Errorf("ε(%v) = %v, want %v", names, s.Epsilon, eps)
		}
	}
	checkSet([]string{"A"}, 11, 9.0/11)
	checkSet([]string{"B"}, 6, 1)
	checkSet([]string{"A", "B"}, 6, 1)

	// Patterns: exactly the 7 rows of Table 1.
	if len(res.Patterns) != 7 {
		t.Fatalf("got %d patterns, want 7:\n%s", len(res.Patterns), FormatPatternsTable(res.Patterns))
	}
	type row struct {
		attrs    string
		vertices []string
		size     int
		density  float64
	}
	wantRows := []row{
		{"A", []string{"6", "7", "8", "9", "10", "11"}, 6, 0.60},
		{"A", []string{"3", "4", "5", "6"}, 4, 1},
		{"A", []string{"3", "4", "6", "7"}, 4, 2.0 / 3},
		{"A", []string{"3", "5", "6", "7"}, 4, 2.0 / 3},
		{"A", []string{"3", "6", "7", "8"}, 4, 2.0 / 3},
		{"B", []string{"6", "7", "8", "9", "10", "11"}, 6, 0.60},
		{"A,B", []string{"6", "7", "8", "9", "10", "11"}, 6, 0.60},
	}
	got := map[string]bool{}
	for _, p := range res.Patterns {
		key := keyAttrs(p.Names) + "|" + keyNames(p.VertexNames(g))
		got[key] = true
	}
	for _, w := range wantRows {
		key := w.attrs + "|" + keyNames(w.vertices)
		if !got[key] {
			t.Errorf("missing pattern %v", w)
		}
	}
	// spot-check the density column
	for _, p := range res.Patterns {
		if p.Size() == 6 && math.Abs(p.Density()-0.6) > 1e-9 {
			t.Errorf("6-set density = %v", p.Density())
		}
	}
	if res.Stats.SetsEmitted != 3 || res.Stats.PatternsEmitted != 7 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func keyAttrs(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

func keyNames(names []string) string {
	out := ""
	for _, n := range names {
		out += n + ";"
	}
	return out
}

// TestTable1Naive checks the naive baseline produces the same output.
func TestTable1Naive(t *testing.T) {
	g := graph.PaperExample()
	want, err := mineBatch(g, paperParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := mineNaiveBatch(g, paperParams())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, got, want)
}

func assertSameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Sets) != len(want.Sets) {
		t.Fatalf("set count %d vs %d\ngot: %v\nwant: %v",
			len(got.Sets), len(want.Sets), got.Sets, want.Sets)
	}
	for i := range want.Sets {
		a, b := got.Sets[i], want.Sets[i]
		if !reflect.DeepEqual(a.Attrs, b.Attrs) || a.Support != b.Support ||
			a.Covered != b.Covered || math.Abs(a.Epsilon-b.Epsilon) > 1e-12 {
			t.Fatalf("set %d differs: %+v vs %+v", i, a, b)
		}
		if !(math.IsInf(a.Delta, 1) && math.IsInf(b.Delta, 1)) &&
			math.Abs(a.Delta-b.Delta) > 1e-9*(1+math.Abs(b.Delta)) {
			t.Fatalf("set %d delta differs: %v vs %v", i, a.Delta, b.Delta)
		}
	}
	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("pattern count %d vs %d\ngot: %v\nwant: %v",
			len(got.Patterns), len(want.Patterns), got.Patterns, want.Patterns)
	}
	for i := range want.Patterns {
		a, b := got.Patterns[i], want.Patterns[i]
		if !reflect.DeepEqual(a.Attrs, b.Attrs) || !reflect.DeepEqual(a.Vertices, b.Vertices) ||
			a.MinDeg != b.MinDeg || a.Edges != b.Edges {
			t.Fatalf("pattern %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// randomAttributedGraph builds a deterministic attributed graph with a
// handful of attributes and ER edges.
func randomAttributedGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	attrNames := []string{"p", "q", "r", "s"}
	for i := 0; i < n; i++ {
		var attrs []string
		for _, a := range attrNames {
			if rng.Float64() < 0.45 {
				attrs = append(attrs, a)
			}
		}
		if _, err := b.AddVertex("v"+strconv.Itoa(i), attrs...); err != nil {
			panic(err)
		}
	}
	p := 0.25 + rng.Float64()*0.3
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if rng.Float64() < p {
				if err := b.AddEdge(i, j); err != nil {
					panic(err)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestQuickSCPMMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAttributedGraph(seed, 10+rng.Intn(8))
		p := Params{
			SigmaMin: 2 + rng.Intn(3),
			Gamma:    []float64{0.5, 0.6, 0.8}[rng.Intn(3)],
			MinSize:  3,
			EpsMin:   []float64{0, 0.2, 0.5}[rng.Intn(3)],
			DeltaMin: []float64{0, 0.5}[rng.Intn(2)],
			K:        1 + rng.Intn(4),
		}
		want, err := mineNaiveBatch(g, p)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, variant := range []Params{
			p,
			withOrder(p, quasiclique.BFS),
			withParallel(p, 4),
			withFlag(p, "novertex"),
			withFlag(p, "noset"),
			withFlag(p, "nolookahead"),
			withFlag(p, "nodiameter"),
			withFlag(p, "nojumps"),
		} {
			got, err := mineBatch(g, variant)
			if err != nil {
				t.Log(err)
				return false
			}
			if !sameResult(got, want) {
				t.Logf("seed=%d params=%+v variant=%+v", seed, p, variant)
				t.Logf("got sets: %v", got.Sets)
				t.Logf("want sets: %v", want.Sets)
				t.Logf("got pats: %v", got.Patterns)
				t.Logf("want pats: %v", want.Patterns)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func withOrder(p Params, o quasiclique.SearchOrder) Params { p.Order = o; return p }
func withParallel(p Params, n int) Params                  { p.Parallelism = n; return p }
func withFlag(p Params, f string) Params {
	switch f {
	case "novertex":
		p.DisableVertexPruning = true
	case "noset":
		p.DisableSetPruning = true
	case "nolookahead":
		p.DisableLookahead = true
	case "nodiameter":
		p.DisableDiameterPruning = true
	case "nojumps":
		p.DisableJumps = true
	}
	return p
}

func sameResult(a, b *Result) bool {
	if len(a.Sets) != len(b.Sets) || len(a.Patterns) != len(b.Patterns) {
		return false
	}
	for i := range a.Sets {
		x, y := a.Sets[i], b.Sets[i]
		if !reflect.DeepEqual(x.Attrs, y.Attrs) || x.Support != y.Support || x.Covered != y.Covered {
			return false
		}
	}
	for i := range a.Patterns {
		x, y := a.Patterns[i], b.Patterns[i]
		if !reflect.DeepEqual(x.Attrs, y.Attrs) || !reflect.DeepEqual(x.Vertices, y.Vertices) {
			return false
		}
	}
	return true
}

func TestParallelDeterminism(t *testing.T) {
	g := randomAttributedGraph(411, 16)
	p := Params{SigmaMin: 2, Gamma: 0.5, MinSize: 3, K: 3, Parallelism: 8}
	first, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := mineBatch(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(first, again) {
			t.Fatalf("run %d differed", i)
		}
	}
}

func TestMinAttrsFilter(t *testing.T) {
	g := graph.PaperExample()
	p := paperParams()
	p.MinAttrs = 2
	res, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 1 || res.Sets[0].Key() != "A,B" {
		t.Fatalf("sets = %v", res.Sets)
	}
}

func TestMaxAttrsBound(t *testing.T) {
	g := graph.PaperExample()
	p := paperParams()
	p.MaxAttrs = 1
	res, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sets {
		if len(s.Attrs) > 1 {
			t.Fatalf("set %v exceeds MaxAttrs", s.Names)
		}
	}
	naive, err := mineNaiveBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, res, naive)
}

func TestDeltaMinFilters(t *testing.T) {
	g := graph.PaperExample()
	p := paperParams()
	p.DeltaMin = 1e18 // absurd: nothing passes
	res, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 0 || len(res.Patterns) != 0 {
		t.Fatalf("got %v", res.Sets)
	}
}

func TestEpsMinFilters(t *testing.T) {
	g := graph.PaperExample()
	p := paperParams()
	p.EpsMin = 0.9 // only {B} and {A,B} (ε = 1) pass
	res, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 2 {
		t.Fatalf("sets = %v", res.Sets)
	}
	for _, s := range res.Sets {
		if s.Epsilon < 0.9 {
			t.Fatalf("set %v below EpsMin", s)
		}
	}
}

func TestKZeroSkipsPatterns(t *testing.T) {
	g := graph.PaperExample()
	p := paperParams()
	p.K = 0
	res, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 || len(res.Sets) != 3 {
		t.Fatalf("K=0: %d patterns, %d sets", len(res.Patterns), len(res.Sets))
	}
}

func TestKLimitsPatterns(t *testing.T) {
	g := graph.PaperExample()
	p := paperParams()
	p.K = 1
	res, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// one pattern per qualifying set
	if len(res.Patterns) != 3 {
		t.Fatalf("K=1: %d patterns", len(res.Patterns))
	}
	for _, pat := range res.Patterns {
		if pat.Size() != 6 {
			t.Fatalf("top-1 should be the 6-set, got %v", pat)
		}
	}
}

func TestSimulationModelPlugsIn(t *testing.T) {
	g := graph.PaperExample()
	p := paperParams()
	p.Model = nullmodel.NewSimulation(g, p.QuasiCliqueParams(), 10, 5)
	res, err := mineBatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 3 {
		t.Fatalf("sets = %v", res.Sets)
	}
	for _, s := range res.Sets {
		if s.Delta < 0 {
			t.Fatalf("negative delta: %v", s)
		}
	}
}

func TestTopSetsRanking(t *testing.T) {
	sets := []AttributeSet{
		{Attrs: []int32{0}, Names: []string{"a"}, Support: 10, Epsilon: 0.1, Delta: 5},
		{Attrs: []int32{1}, Names: []string{"b"}, Support: 5, Epsilon: 0.9, Delta: 2},
		{Attrs: []int32{2}, Names: []string{"c"}, Support: 7, Epsilon: 0.5, Delta: math.Inf(1)},
	}
	if got := TopSets(sets, BySupport, 1); got[0].Names[0] != "a" {
		t.Errorf("BySupport top = %v", got[0])
	}
	if got := TopSets(sets, ByEpsilon, 1); got[0].Names[0] != "b" {
		t.Errorf("ByEpsilon top = %v", got[0])
	}
	if got := TopSets(sets, ByDelta, 2); got[0].Names[0] != "c" || got[1].Names[0] != "a" {
		t.Errorf("ByDelta top = %v", got)
	}
	if got := TopSets(sets, ByDelta, 10); len(got) != 3 {
		t.Errorf("n beyond len = %v", got)
	}
	if BySupport.String() != "σ" || ByEpsilon.String() != "ε" || ByDelta.String() != "δ" {
		t.Error("ranking names")
	}
}

func TestResultHelpers(t *testing.T) {
	g := graph.PaperExample()
	res, err := mineBatch(g, paperParams())
	if err != nil {
		t.Fatal(err)
	}
	ab := res.SetByNames("B", "A") // order must not matter
	if ab == nil || ab.Support != 6 {
		t.Fatalf("SetByNames failed: %v", ab)
	}
	if res.SetByNames("A", "Z") != nil {
		t.Fatal("nonexistent set found")
	}
	pats := res.PatternsOf(ab.Attrs)
	if len(pats) != 1 || pats[0].Size() != 6 {
		t.Fatalf("PatternsOf({A,B}) = %v", pats)
	}
	if FormatSetsTable(res.Sets) == "" || FormatPatternsTable(res.Patterns) == "" {
		t.Fatal("format helpers empty")
	}
	if res.Sets[0].String() == "" || res.Patterns[0].String() == "" {
		t.Fatal("stringers empty")
	}
}

func TestSearchBudgetPropagates(t *testing.T) {
	g := randomAttributedGraph(7, 18)
	p := Params{SigmaMin: 1, Gamma: 0.5, MinSize: 3, K: 2, SearchBudget: 1}
	if _, err := mineBatch(g, p); err == nil {
		t.Fatal("expected budget error")
	}
	if _, err := mineNaiveBatch(g, p); err == nil {
		t.Fatal("expected budget error (naive)")
	}
}

func TestNormalizeDelta(t *testing.T) {
	if NormalizeDelta(0.5, 0.1) != 5 {
		t.Error("plain division")
	}
	if !math.IsInf(NormalizeDelta(0.5, 0), 1) {
		t.Error("ε>0, exp=0 should be +Inf")
	}
	if NormalizeDelta(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
}
