package core

import (
	"fmt"
)

// MergeResults combines the per-shard results of a partitioned mining
// run (Params.ShardOwner) into the single-process result, deterministically.
// Each part arrives in canonical order (every Mine output is), and the
// shards of a disjoint partition emit disjoint set families, so the
// merge is a k-way merge of presorted runs: no re-sort, no dedup map —
// the per-shard orders interleave directly into the canonical global
// order. Stats counters are summed and the recorded lattices unioned.
// When every shard of a disjoint, complete partition mined the same
// graph with the same parameters, the merged output — sets, ε, δ,
// patterns, stable ids, counter totals and the lattice a later Remine
// consumes — is bit-identical to one Mine over the whole lattice; only
// Stats.Duration (the slowest shard, the wall time of a perfectly
// parallel run) and Stats.ReusedVerdicts (an accounting counter, not an
// output property) differ.
//
// Overlapping partitions are caught: a set emitted by two shards is a
// partition bug, and MergeResults refuses to merge it rather than
// silently double-reporting — two parts presenting the same set meet
// head-to-head during the merge. Lattices must all come from the same
// graph version; the merged result carries a lattice only when every
// part recorded one (a single lattice-less shard would leave holes that
// a Remine would silently treat as never-evaluated).
func MergeResults(parts ...*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: MergeResults needs at least one result")
	}
	merged := &Result{}
	allLattices := true
	var nSets, nPats int
	for i, part := range parts {
		if part == nil {
			return nil, fmt.Errorf("core: MergeResults part %d is nil", i)
		}
		nSets += len(part.Sets)
		nPats += len(part.Patterns)
		merged.Stats.SetsEvaluated += part.Stats.SetsEvaluated
		merged.Stats.SetsEmitted += part.Stats.SetsEmitted
		merged.Stats.PatternsEmitted += part.Stats.PatternsEmitted
		merged.Stats.SearchNodes += part.Stats.SearchNodes
		merged.Stats.SampledVertices += part.Stats.SampledVertices
		merged.Stats.ReusedSets += part.Stats.ReusedSets
		merged.Stats.RecomputedSets += part.Stats.RecomputedSets
		merged.Stats.ReusedVerdicts += part.Stats.ReusedVerdicts
		if part.Stats.Duration > merged.Stats.Duration {
			merged.Stats.Duration = part.Stats.Duration
		}
		if part.lattice == nil {
			allLattices = false
		}
	}

	merged.Sets = make([]AttributeSet, 0, nSets)
	heads := make([]int, len(parts))
	for {
		best := -1
		for i, part := range parts {
			if heads[i] >= len(part.Sets) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			c := compareAttrSlices(part.Sets[heads[i]].Attrs, parts[best].Sets[heads[best]].Attrs)
			if c == 0 {
				return nil, fmt.Errorf("core: attribute set {%s} emitted by more than one shard (overlapping partition?)",
					part.Sets[heads[i]].Key())
			}
			if c < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		merged.Sets = append(merged.Sets, parts[best].Sets[heads[best]])
		heads[best]++
	}

	// Patterns group under their attribute set, and sets are disjoint
	// across parts, so the pattern comparator never ties across parts
	// either — the attrs comparison alone picks the run to drain from.
	merged.Patterns = make([]Pattern, 0, nPats)
	for i := range heads {
		heads[i] = 0
	}
	for {
		best := -1
		for i, part := range parts {
			if heads[i] >= len(part.Patterns) {
				continue
			}
			if best < 0 || compareAttrSlices(part.Patterns[heads[i]].Attrs, parts[best].Patterns[heads[best]].Attrs) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		merged.Patterns = append(merged.Patterns, parts[best].Patterns[heads[best]])
		heads[best]++
	}

	if allLattices {
		lat, err := mergeLattices(parts)
		if err != nil {
			return nil, err
		}
		merged.lattice = lat
	}
	return merged, nil
}

// mergeLattices unions the per-shard lattices into one. Entries are
// disjoint by the prefix ownership rule (muted evaluations are never
// recorded), so the union is a plain map copy.
func mergeLattices(parts []*Result) (*Lattice, error) {
	version := parts[0].lattice.version
	out := newLattice(version)
	for i, part := range parts {
		if part.lattice.version != version {
			return nil, fmt.Errorf("core: shard %d lattice is at graph version %d, shard 0 at %d",
				i, part.lattice.version, version)
		}
		for key, ent := range part.lattice.m {
			out.m[key] = ent
		}
	}
	return out, nil
}
