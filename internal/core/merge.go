package core

import (
	"fmt"
)

// MergeResults combines the per-shard results of a partitioned mining
// run (Params.ShardOwner) into the single-process result, deterministically:
// sets and patterns are concatenated and re-sorted into the canonical
// order, the stats counters are summed, and the recorded lattices are
// unioned. When every shard of a disjoint, complete partition mined the
// same graph with the same parameters, the merged output — sets, ε, δ,
// patterns, stable ids, counter totals and the lattice a later Remine
// consumes — is bit-identical to one Mine over the whole lattice; only
// Stats.Duration differs (it reports the slowest shard, the wall time
// of a perfectly parallel run).
//
// Overlapping partitions are caught: a set emitted by two shards is a
// partition bug, and MergeResults refuses to merge it rather than
// silently double-reporting. Lattices must all come from the same graph
// version; the merged result carries a lattice only when every part
// recorded one (a single lattice-less shard would leave holes that a
// Remine would silently treat as never-evaluated).
func MergeResults(parts ...*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: MergeResults needs at least one result")
	}
	merged := &Result{}
	allLattices := true
	seen := make(map[string]bool)
	for i, part := range parts {
		if part == nil {
			return nil, fmt.Errorf("core: MergeResults part %d is nil", i)
		}
		for _, s := range part.Sets {
			key := attrKey(s.Attrs)
			if seen[key] {
				return nil, fmt.Errorf("core: attribute set {%s} emitted by more than one shard (overlapping partition?)", s.Key())
			}
			seen[key] = true
		}
		merged.Sets = append(merged.Sets, part.Sets...)
		merged.Patterns = append(merged.Patterns, part.Patterns...)
		merged.Stats.SetsEvaluated += part.Stats.SetsEvaluated
		merged.Stats.SetsEmitted += part.Stats.SetsEmitted
		merged.Stats.PatternsEmitted += part.Stats.PatternsEmitted
		merged.Stats.SearchNodes += part.Stats.SearchNodes
		merged.Stats.SampledVertices += part.Stats.SampledVertices
		merged.Stats.ReusedSets += part.Stats.ReusedSets
		merged.Stats.RecomputedSets += part.Stats.RecomputedSets
		if part.Stats.Duration > merged.Stats.Duration {
			merged.Stats.Duration = part.Stats.Duration
		}
		if part.lattice == nil {
			allLattices = false
		}
	}
	if allLattices {
		lat, err := mergeLattices(parts)
		if err != nil {
			return nil, err
		}
		merged.lattice = lat
	}
	sortResult(merged)
	return merged, nil
}

// mergeLattices unions the per-shard lattices into one. Entries are
// disjoint by the prefix ownership rule (muted evaluations are never
// recorded), so the union is a plain map copy.
func mergeLattices(parts []*Result) (*Lattice, error) {
	version := parts[0].lattice.version
	out := newLattice(version)
	for i, part := range parts {
		if part.lattice.version != version {
			return nil, fmt.Errorf("core: shard %d lattice is at graph version %d, shard 0 at %d",
				i, part.lattice.version, version)
		}
		for key, ent := range part.lattice.m {
			out.m[key] = ent
		}
	}
	return out, nil
}
