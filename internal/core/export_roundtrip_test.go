package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// roundTripResult mines the paper example in the requested mode and
// fabricates the edge cases the export schema must carry (an infinite δ
// and, in sampled runs, the Estimated/EpsilonErr annotations from PR 3).
func roundTripResult(t *testing.T, sampled bool) (*Result, func()) {
	t.Helper()
	_, res := mineExample(t, func(p *Params) {
		if sampled {
			// Force the sampling estimator to engage on the tiny example:
			// a huge half-width makes the Hoeffding sample smaller than
			// every support.
			p.EpsilonMode = EpsilonSampled
			p.SampleEps = 0.9
			p.SampleDelta = 0.5
			p.Seed = 42
		}
	})
	if len(res.Sets) == 0 || len(res.Patterns) == 0 {
		t.Fatal("example mining produced no output")
	}
	res.Sets[0].Delta = math.Inf(1) // exercise the "inf" encoding
	return res, func() {}
}

// exportedSet is the projection of AttributeSet that crosses the export
// boundary (ids are resolved to names there, so Attrs is not compared).
type exportedSet struct {
	id         string
	names      []string
	support    int
	epsilon    float64
	expEps     float64
	delta      float64
	covered    int
	estimated  bool
	epsilonErr float64
	sampled    int
}

func projectSet(s AttributeSet) exportedSet {
	return exportedSet{
		id: s.ID(), names: s.Names, support: s.Support,
		epsilon: s.Epsilon, expEps: s.ExpEps, delta: s.Delta,
		covered: s.Covered, estimated: s.Estimated,
		epsilonErr: s.EpsilonErr, sampled: s.SampledVertices,
	}
}

func sameExportedSet(a, b exportedSet) bool {
	if a.id != b.id || strings.Join(a.names, "\x00") != strings.Join(b.names, "\x00") {
		return false
	}
	if a.support != b.support || a.covered != b.covered || a.estimated != b.estimated || a.sampled != b.sampled {
		return false
	}
	sameF := func(x, y float64) bool {
		if math.IsInf(x, 1) || math.IsInf(y, 1) {
			return math.IsInf(x, 1) && math.IsInf(y, 1)
		}
		return x == y
	}
	return sameF(a.epsilon, b.epsilon) && sameF(a.expEps, b.expEps) &&
		sameF(a.delta, b.delta) && sameF(a.epsilonErr, b.epsilonErr)
}

func parseDelta(t *testing.T, s string) float64 {
	t.Helper()
	if s == "inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad delta %q: %v", s, err)
	}
	return v
}

func testJSONRoundTrip(t *testing.T, sampled bool) {
	g, _ := mineExample(t, nil)
	res, done := roundTripResult(t, sampled)
	defer done()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Sets []struct {
			ID         string   `json:"id"`
			Attrs      []string `json:"attrs"`
			Support    int      `json:"support"`
			Epsilon    float64  `json:"epsilon"`
			ExpEps     float64  `json:"expected_epsilon"`
			Delta      string   `json:"delta"`
			Covered    int      `json:"covered"`
			Estimated  bool     `json:"estimated"`
			EpsilonErr float64  `json:"epsilon_err"`
			Sampled    int      `json:"sampled_vertices"`
		} `json:"sets"`
		Patterns []struct {
			ID          string   `json:"id"`
			SetID       string   `json:"set"`
			Attrs       []string `json:"attrs"`
			Vertices    []string `json:"vertices"`
			Size        int      `json:"size"`
			Density     float64  `json:"density"`
			EdgeDensity float64  `json:"edge_density"`
			Edges       int      `json:"edges"`
		} `json:"patterns"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Sets) != len(res.Sets) || len(decoded.Patterns) != len(res.Patterns) {
		t.Fatalf("decoded %d sets / %d patterns, want %d / %d",
			len(decoded.Sets), len(decoded.Patterns), len(res.Sets), len(res.Patterns))
	}
	for i, d := range decoded.Sets {
		got := exportedSet{
			id: d.ID, names: d.Attrs, support: d.Support,
			epsilon: d.Epsilon, expEps: d.ExpEps, delta: parseDelta(t, d.Delta),
			covered: d.Covered, estimated: d.Estimated,
			epsilonErr: d.EpsilonErr, sampled: d.Sampled,
		}
		if want := projectSet(res.Sets[i]); !sameExportedSet(got, want) {
			t.Fatalf("set %d: got %+v want %+v", i, got, want)
		}
	}
	for i, d := range decoded.Patterns {
		p := res.Patterns[i]
		if d.ID != p.ID() || d.SetID != p.SetID() {
			t.Fatalf("pattern %d ids: got (%s,%s) want (%s,%s)", i, d.ID, d.SetID, p.ID(), p.SetID())
		}
		if strings.Join(d.Attrs, ",") != strings.Join(p.Names, ",") {
			t.Fatalf("pattern %d attrs: %v vs %v", i, d.Attrs, p.Names)
		}
		if strings.Join(d.Vertices, ",") != strings.Join(p.VertexNames(g), ",") {
			t.Fatalf("pattern %d vertices: %v", i, d.Vertices)
		}
		if d.Size != p.Size() || d.Density != p.Density() || d.EdgeDensity != p.EdgeDensity() || d.Edges != p.Edges {
			t.Fatalf("pattern %d metrics differ: %+v", i, d)
		}
	}
}

func TestJSONExportRoundTrip(t *testing.T)        { testJSONRoundTrip(t, false) }
func TestJSONExportRoundTripSampled(t *testing.T) { testJSONRoundTrip(t, true) }

func testCSVRoundTrip(t *testing.T, sampled bool) {
	g, _ := mineExample(t, nil)
	res, done := roundTripResult(t, sampled)
	defer done()

	var sets bytes.Buffer
	if err := res.WriteSetsCSV(&sets); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sets.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := "id,attrs,support,epsilon,expected_epsilon,delta,covered,estimated,epsilon_err"
	if got := strings.Join(rows[0], ","); got != wantHeader {
		t.Fatalf("sets header = %q", got)
	}
	if len(rows)-1 != len(res.Sets) {
		t.Fatalf("sets csv has %d rows, want %d", len(rows)-1, len(res.Sets))
	}
	mustFloat := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad float %q: %v", s, err)
		}
		return v
	}
	mustInt := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad int %q: %v", s, err)
		}
		return v
	}
	for i, row := range rows[1:] {
		got := exportedSet{
			id: row[0], names: strings.Fields(row[1]), support: mustInt(row[2]),
			epsilon: mustFloat(row[3]), expEps: mustFloat(row[4]), delta: parseDelta(t, row[5]),
			covered: mustInt(row[6]), estimated: row[7] == "true",
			epsilonErr: mustFloat(row[8]), sampled: res.Sets[i].SampledVertices,
		}
		if want := projectSet(res.Sets[i]); !sameExportedSet(got, want) {
			t.Fatalf("set row %d: got %+v want %+v", i, got, want)
		}
	}

	var pats bytes.Buffer
	if err := res.WritePatternsCSV(&pats, g); err != nil {
		t.Fatal(err)
	}
	prows, err := csv.NewReader(strings.NewReader(pats.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(prows[0], ","); got != "id,set,attrs,vertices,size,density,edge_density" {
		t.Fatalf("patterns header = %q", got)
	}
	if len(prows)-1 != len(res.Patterns) {
		t.Fatalf("patterns csv has %d rows, want %d", len(prows)-1, len(res.Patterns))
	}
	for i, row := range prows[1:] {
		p := res.Patterns[i]
		if row[0] != p.ID() || row[1] != p.SetID() {
			t.Fatalf("pattern row %d ids: %v", i, row[:2])
		}
		if strings.Join(strings.Fields(row[2]), ",") != strings.Join(p.Names, ",") {
			t.Fatalf("pattern row %d attrs: %q", i, row[2])
		}
		if strings.Join(strings.Fields(row[3]), ",") != strings.Join(p.VertexNames(g), ",") {
			t.Fatalf("pattern row %d vertices: %q", i, row[3])
		}
		if mustInt(row[4]) != p.Size() || mustFloat(row[5]) != p.Density() || mustFloat(row[6]) != p.EdgeDensity() {
			t.Fatalf("pattern row %d metrics: %v", i, row)
		}
	}
}

func TestCSVExportRoundTrip(t *testing.T)        { testCSVRoundTrip(t, false) }
func TestCSVExportRoundTripSampled(t *testing.T) { testCSVRoundTrip(t, true) }

// TestStableIDs pins the identifier contract: order-independent over
// names, stable across runs, distinct across sets.
func TestStableIDs(t *testing.T) {
	if SetID([]string{"b", "a"}) != SetID([]string{"a", "b"}) {
		t.Fatal("SetID must be order-independent")
	}
	if SetID([]string{"a"}) == SetID([]string{"b"}) {
		t.Fatal("distinct sets must get distinct ids")
	}
	if len(SetID(nil)) != 16 {
		t.Fatalf("id length = %d, want 16", len(SetID(nil)))
	}
	_, res1 := mineExample(t, nil)
	_, res2 := mineExample(t, nil)
	for i := range res1.Sets {
		if res1.Sets[i].ID() != res2.Sets[i].ID() {
			t.Fatal("set ids must be stable across runs")
		}
	}
	for i := range res1.Patterns {
		if res1.Patterns[i].ID() != res2.Patterns[i].ID() {
			t.Fatal("pattern ids must be stable across runs")
		}
		if res1.Patterns[i].SetID() != SetID(res1.Patterns[i].Names) {
			t.Fatal("pattern SetID must match its set's id")
		}
	}
}
