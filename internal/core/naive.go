package core

import (
	"context"
	"sort"
	"time"

	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/itemset"
	"github.com/scpm/scpm/internal/quasiclique"
)

// MineNaive runs the naive algorithm of §3.1: Eclat enumerates every
// frequent attribute set, and for each induced graph the complete set of
// maximal quasi-cliques is mined. It produces the same output as Mine
// (modulo run statistics) and serves as the performance baseline of the
// paper's Figure 8.
//
// Context and sink follow the same contract as Mine: cancellation
// surfaces as ErrCanceled with the partial result intact, and a non-nil
// sink streams each qualifying set as it is found.
func MineNaive(ctx context.Context, g *graph.Graph, p Params, sink Sink) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	em := newEmitter(sink, p.ProgressEvery, start)
	model := p.model(g)
	qp := p.QuasiCliqueParams()
	opts := p.qcOptions()
	opts.Ctx = ctx

	db := itemset.NewDatabase(g.NumVertices())
	for a := int32(0); a < int32(g.NumAttributes()); a++ {
		if err := db.AddItem(a, g.AttrMembers(a)); err != nil {
			return nil, err
		}
	}
	im := &itemset.Miner{MinSupport: p.SigmaMin, MaxLen: p.MaxAttrs}

	res := &Result{}
	var mineErr error
	err := im.Mine(db, func(s itemset.Itemset) bool {
		if ctx.Err() != nil {
			mineErr = quasiclique.Canceled(ctx)
			return false
		}
		sub := g.InducedByMembers(s.Tids)
		pats, err := quasiclique.EnumerateMaximal(quasiclique.NewGraphCSR(sub.CSR()), qp, opts)
		if err != nil {
			mineErr = err
			return false
		}
		em.noteEvaluated()
		covered := make(map[int32]bool)
		for _, q := range pats {
			for _, lv := range q.Vertices {
				covered[sub.Orig[lv]] = true
			}
		}
		sigma := s.Support()
		eps := 0.0
		if sigma > 0 {
			eps = float64(len(covered)) / float64(sigma)
		}
		expEps := model.Exp(sigma)
		delta := NormalizeDelta(eps, expEps)
		if eps < p.EpsMin || delta < p.DeltaMin || len(s.Items) < p.minAttrs() {
			return true
		}
		attrs := append([]int32(nil), s.Items...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
		set := AttributeSet{
			Attrs:   attrs,
			Names:   g.AttrSetNames(attrs),
			Support: sigma,
			Epsilon: eps,
			ExpEps:  expEps,
			Delta:   delta,
			Covered: len(covered),
		}
		res.Sets = append(res.Sets, set)
		var emitted []Pattern
		if p.K > 0 || p.AllPatterns {
			top := pats
			if !p.AllPatterns && len(top) > p.K {
				top = top[:p.K]
			}
			names := g.AttrSetNames(attrs)
			for _, q := range top {
				verts := make([]int32, len(q.Vertices))
				for j, lv := range q.Vertices {
					verts[j] = sub.Orig[lv]
				}
				emitted = append(emitted, Pattern{
					Attrs:    attrs,
					Names:    names,
					Vertices: verts,
					MinDeg:   q.MinDeg,
					Edges:    q.Edges,
				})
			}
			res.Patterns = append(res.Patterns, emitted...)
		}
		em.emitSet(set, emitted)
		return true
	})
	if mineErr != nil {
		err = mineErr
	}
	return finalizeResult(res, em, err)
}
