package core

import (
	"sort"
	"time"

	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/itemset"
	"github.com/scpm/scpm/internal/quasiclique"
)

// MineNaive runs the naive algorithm of §3.1: Eclat enumerates every
// frequent attribute set, and for each induced graph the complete set of
// maximal quasi-cliques is mined. It produces the same output as Mine
// (modulo run statistics) and serves as the performance baseline of the
// paper's Figure 8.
func MineNaive(g *graph.Graph, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	model := p.model(g)
	qp := p.QuasiCliqueParams()
	opts := p.qcOptions()

	db := itemset.NewDatabase(g.NumVertices())
	for a := int32(0); a < int32(g.NumAttributes()); a++ {
		if err := db.AddItem(a, g.AttrMembers(a)); err != nil {
			return nil, err
		}
	}
	em := &itemset.Miner{MinSupport: p.SigmaMin, MaxLen: p.MaxAttrs}

	res := &Result{}
	var mineErr error
	err := em.Mine(db, func(s itemset.Itemset) bool {
		res.Stats.SetsEvaluated++
		sub := g.InducedByMembers(s.Tids)
		pats, err := quasiclique.EnumerateMaximal(quasiclique.NewGraph(sub.Adj), qp, opts)
		if err != nil {
			mineErr = err
			return false
		}
		covered := make(map[int32]bool)
		for _, q := range pats {
			for _, lv := range q.Vertices {
				covered[sub.Orig[lv]] = true
			}
		}
		sigma := s.Support()
		eps := 0.0
		if sigma > 0 {
			eps = float64(len(covered)) / float64(sigma)
		}
		expEps := model.Exp(sigma)
		delta := normalizeDelta(eps, expEps)
		if eps < p.EpsMin || delta < p.DeltaMin || len(s.Items) < p.minAttrs() {
			return true
		}
		attrs := append([]int32(nil), s.Items...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
		res.Sets = append(res.Sets, AttributeSet{
			Attrs:   attrs,
			Names:   g.AttrSetNames(attrs),
			Support: sigma,
			Epsilon: eps,
			ExpEps:  expEps,
			Delta:   delta,
			Covered: len(covered),
		})
		res.Stats.SetsEmitted++
		if p.K > 0 || p.AllPatterns {
			top := pats
			if !p.AllPatterns && len(top) > p.K {
				top = top[:p.K]
			}
			names := g.AttrSetNames(attrs)
			for _, q := range top {
				verts := make([]int32, len(q.Vertices))
				for j, lv := range q.Vertices {
					verts[j] = sub.Orig[lv]
				}
				res.Patterns = append(res.Patterns, Pattern{
					Attrs:    attrs,
					Names:    names,
					Vertices: verts,
					MinDeg:   q.MinDeg,
					Edges:    q.Edges,
				})
				res.Stats.PatternsEmitted++
			}
		}
		return true
	})
	if mineErr != nil {
		return nil, mineErr
	}
	if err != nil {
		return nil, err
	}
	sortResult(res)
	res.Stats.Duration = time.Since(start)
	return res, nil
}
