package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/scpm/scpm/internal/graph"
)

// parityOwner is a minimal complete, disjoint 2-shard partition of the
// level-1 roots: shard k owns the attributes whose id has parity k.
// (internal/shard builds balanced partitions; the property under test —
// merge equivalence — only needs completeness and disjointness, and an
// inline owner avoids the import cycle.)
func parityOwner(k int) func(*graph.Graph, int32) bool {
	return func(_ *graph.Graph, root int32) bool { return int(root)%2 == k }
}

// TestCertSharingEquivalence is the certificate-store soundness
// property test: mining with the cross-set coverage certificate store
// (the default) must produce output bit-identical to mining with
// DisableCertSharing — sets, ε, δ, patterns and stable ids — in exact
// and sampled ε modes, sequentially and with parallel workers, and the
// equivalence must survive the full result lifecycle: an incremental
// Remine chained on top, and a 2-shard mine + merge. Only search-node
// counts may differ.
func TestCertSharingEquivalence(t *testing.T) {
	ctx := context.Background()
	for mode, base := range remineParams() {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s-parallel%d", mode, workers), func(t *testing.T) {
				p := base
				p.Parallelism = workers
				off := p
				off.DisableCertSharing = true

				for trial := 0; trial < 3; trial++ {
					g := remineGraph(t, int64(1300+trial))
					resOn, err := Mine(ctx, g, p, nil)
					if err != nil {
						t.Fatal(err)
					}
					resOff, err := Mine(ctx, g, off, nil)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s trial %d", mode, trial)
					requireEqualResults(t, label+" mine", resOn, resOff)

					// Chained Remine: both pipelines absorb the same delta.
					rng := rand.New(rand.NewSource(int64(1700 + trial)))
					d := randomRemineDelta(t, g, rng)
					ng, cs, err := g.Apply(d)
					if err != nil {
						t.Fatal(err)
					}
					incOn, err := Remine(ctx, ng, p, resOn, cs, nil)
					if err != nil {
						t.Fatal(err)
					}
					incOff, err := Remine(ctx, ng, off, resOff, cs, nil)
					if err != nil {
						t.Fatal(err)
					}
					requireEqualResults(t, label+" remine", incOn, incOff)

					// 2-shard mine + merge on each side, checked against the
					// unsharded certificate-sharing run.
					merged := make(map[string]*Result, 2)
					for name, pp := range map[string]Params{"on": p, "off": off} {
						parts := make([]*Result, 2)
						for k := 0; k < 2; k++ {
							sp := pp
							sp.ShardOwner = parityOwner(k)
							if parts[k], err = Mine(ctx, g, sp, nil); err != nil {
								t.Fatal(err)
							}
						}
						if merged[name], err = MergeResults(parts...); err != nil {
							t.Fatal(err)
						}
					}
					requireEqualResults(t, label+" sharded on/off", merged["on"], merged["off"])
					requireEqualResults(t, label+" sharded vs whole", merged["on"], resOn)
				}
			})
		}
	}
}

// modOwner is parityOwner generalized to n shards: shard k owns the
// roots whose id ≡ k (mod n) — complete and disjoint, which is all the
// merge needs.
func modOwner(k, n int) func(*graph.Graph, int32) bool {
	return func(_ *graph.Graph, root int32) bool { return int(root)%n == k }
}

// TestGlobalStoreDeterminism pins the merge-ordered global certificate
// store's determinism contract: with sharing on or off, in exact and
// sampled ε modes, the output AND the SearchNodes counter are
// identical at any worker count (1/4/8) and any shard count (1/2/4).
// Level-1 stores absorb into the global store in extension order —
// an order every process derives identically — so the certificates a
// level-2+ search can hit no longer depend on scheduling or
// partitioning.
func TestGlobalStoreDeterminism(t *testing.T) {
	ctx := context.Background()
	for mode, base := range remineParams() {
		for _, sharing := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s-sharing=%t", mode, sharing), func(t *testing.T) {
				g := remineGraph(t, 2600)
				var want *Result
				check := func(label string, res *Result) {
					t.Helper()
					if want == nil {
						want = res
						return
					}
					requireEqualResults(t, label, res, want)
					if res.Stats.SearchNodes != want.Stats.SearchNodes {
						t.Fatalf("%s: %d search nodes, baseline %d — store contents drifted",
							label, res.Stats.SearchNodes, want.Stats.SearchNodes)
					}
				}
				for _, workers := range []int{1, 4, 8} {
					p := base
					p.Parallelism = workers
					p.DisableCertSharing = !sharing
					res, err := Mine(ctx, g, p, nil)
					if err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("parallel=%d", workers), res)
				}
				for _, n := range []int{1, 2, 4} {
					p := base
					p.Parallelism = 4
					p.DisableCertSharing = !sharing
					parts := make([]*Result, n)
					for k := 0; k < n; k++ {
						sp := p
						sp.ShardOwner = modOwner(k, n)
						var err error
						if parts[k], err = Mine(ctx, g, sp, nil); err != nil {
							t.Fatal(err)
						}
					}
					merged, err := MergeResults(parts...)
					if err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("shards=%d", n), merged)
				}
			})
		}
	}
}

// TestCertSharingReducesSearch pins that the store actually does
// something: on a graph with overlapping attribute-correlated cliques,
// the shared-certificate run must spend strictly fewer search nodes
// than the disabled run while producing the same output (covered by
// TestCertSharingEquivalence).
func TestCertSharingReducesSearch(t *testing.T) {
	ctx := context.Background()
	p := remineParams()["exact"]
	g := remineGraph(t, 4242)
	on, err := Mine(ctx, g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	off := p
	off.DisableCertSharing = true
	base, err := Mine(ctx, g, off, nil)
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.SearchNodes >= base.Stats.SearchNodes {
		t.Fatalf("cert sharing did not reduce search: %d nodes with store, %d without",
			on.Stats.SearchNodes, base.Stats.SearchNodes)
	}
	t.Logf("search nodes: %d with certificate store, %d without", on.Stats.SearchNodes, base.Stats.SearchNodes)
}
