package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"github.com/scpm/scpm/internal/core"
)

// Snapshot format (see docs/FILE_FORMATS.md for the full
// specification). The file is the canonical index payload — the
// set/pattern tables with names resolved plus the mining counters —
// framed by an 8-byte magic (7 identifying bytes + 1 version byte) and
// closed by a CRC-32 (IEEE) of everything before it. Derived structures
// (trie, postings, id maps) are intentionally absent: Load rebuilds
// them deterministically, which keeps the format minimal and makes
// Save→Load→Save bit-identical by construction.
const (
	snapshotMagic = "SCPMIDX"
	// Version 2 added the incremental-mining counters (ReusedSets,
	// RecomputedSets) to the stats block.
	snapshotVersion = 2
	// maxSnapshotLen is the coarse sanity cap on plain value fields
	// (support, degree, dataset shape). Allocation-sizing counts are
	// bounded much tighter — by the payload byte size (decoder.count).
	maxSnapshotLen = 1 << 30
)

// Save writes the index as a versioned binary snapshot. The encoding is
// deterministic: the same index always produces the same bytes, and a
// Load followed by another Save reproduces them bit-identically.
func (x *Index) Save(w io.Writer) error {
	x.tables()
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	e := &encoder{w: bw}
	e.bytes([]byte(snapshotMagic))
	e.byte(snapshotVersion)
	e.uvarint(uint64(x.dsVertices))
	e.uvarint(uint64(x.dsEdges))
	e.uvarint(uint64(x.dsAttributes))

	e.uvarint(uint64(len(x.sets)))
	for i := range x.sets {
		s := &x.sets[i]
		e.uvarint(uint64(len(s.Attrs)))
		for _, a := range s.Attrs {
			e.uvarint(uint64(uint32(a)))
		}
		for _, n := range s.Names {
			e.str(n)
		}
		e.uvarint(uint64(s.Support))
		e.f64(s.Epsilon)
		e.f64(s.ExpEps)
		e.f64(s.Delta)
		e.uvarint(uint64(s.Covered))
		e.bool(s.Estimated)
		e.f64(s.EpsilonErr)
		e.uvarint(uint64(s.SampledVertices))
	}

	e.uvarint(uint64(len(x.patterns)))
	for i := range x.patterns {
		p := &x.patterns[i]
		e.uvarint(uint64(len(p.Attrs)))
		for _, a := range p.Attrs {
			e.uvarint(uint64(uint32(a)))
		}
		for _, n := range p.Names {
			e.str(n)
		}
		e.uvarint(uint64(len(p.Vertices)))
		for _, v := range p.Vertices {
			e.uvarint(uint64(uint32(v)))
		}
		for _, n := range x.patVerts[i] {
			e.str(n)
		}
		e.uvarint(uint64(p.MinDeg))
		e.uvarint(uint64(p.Edges))
	}

	e.uvarint(uint64(x.mining.SetsEvaluated))
	e.uvarint(uint64(x.mining.SetsEmitted))
	e.uvarint(uint64(x.mining.PatternsEmitted))
	e.uvarint(uint64(x.mining.SearchNodes))
	e.uvarint(uint64(x.mining.SampledVertices))
	e.uvarint(uint64(x.mining.ReusedSets))
	e.uvarint(uint64(x.mining.RecomputedSets))
	e.uvarint(uint64(x.mining.Duration))

	if e.err != nil {
		return fmt.Errorf("index: saving snapshot: %w", e.err)
	}
	// The CRC covers everything written so far; flush the buffer into
	// both the sink and the hasher before reading the sum.
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("index: saving snapshot: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("index: saving snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save and rebuilds the full index,
// verifying the magic, version and checksum.
func Load(r io.Reader) (*Index, error) {
	data, err := readSnapshotBytes(r)
	if err != nil {
		return nil, fmt.Errorf("index: loading snapshot: %w", err)
	}
	if len(data) < len(snapshotMagic)+1+4 {
		return nil, fmt.Errorf("index: snapshot truncated (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-4], data[len(data)-4:]
	// Every decoded element consumes at least one payload byte, so no
	// honest length field can exceed the payload size; bounding counts
	// by it stops a small crafted file (the CRC is trivially forgeable)
	// from forcing a gigantic allocation before decoding fails.
	d := &decoder{r: bufio.NewReader(bytes.NewReader(payload)), limit: len(payload)}

	magic := d.bytes(len(snapshotMagic))
	if d.err == nil && string(magic) != snapshotMagic {
		return nil, fmt.Errorf("index: not a snapshot (bad magic %q)", magic)
	}
	if v := d.byte(); d.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("index: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	// Checksum before decoding the body: a corrupt file fails here with
	// the precise diagnosis rather than as an arbitrary decode error.
	if got, want := binary.LittleEndian.Uint32(sum), crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("index: snapshot checksum mismatch (file %08x, computed %08x)", got, want)
	}

	x := &Index{}
	x.dsVertices = d.intVal()
	x.dsEdges = d.intVal()
	x.dsAttributes = d.intVal()
	numSets := d.count()
	x.sets = make([]core.AttributeSet, 0, min(numSets, 1<<20))
	for i := 0; i < numSets && d.err == nil; i++ {
		var s core.AttributeSet
		na := d.count()
		s.Attrs = make([]int32, na)
		for j := range s.Attrs {
			s.Attrs[j] = int32(d.uvarint())
		}
		s.Names = make([]string, na)
		for j := range s.Names {
			s.Names[j] = d.str()
		}
		s.Support = d.intVal()
		s.Epsilon = d.f64()
		s.ExpEps = d.f64()
		s.Delta = d.f64()
		s.Covered = d.intVal()
		s.Estimated = d.bool()
		s.EpsilonErr = d.f64()
		s.SampledVertices = d.intVal()
		x.sets = append(x.sets, s)
	}

	numPats := d.count()
	x.patterns = make([]core.Pattern, 0, min(numPats, 1<<20))
	x.patVerts = make([][]string, 0, min(numPats, 1<<20))
	for i := 0; i < numPats && d.err == nil; i++ {
		var p core.Pattern
		na := d.count()
		p.Attrs = make([]int32, na)
		for j := range p.Attrs {
			p.Attrs[j] = int32(d.uvarint())
		}
		p.Names = make([]string, na)
		for j := range p.Names {
			p.Names[j] = d.str()
		}
		nv := d.count()
		p.Vertices = make([]int32, nv)
		for j := range p.Vertices {
			p.Vertices[j] = int32(d.uvarint())
		}
		verts := make([]string, nv)
		for j := range verts {
			verts[j] = d.str()
		}
		p.MinDeg = d.intVal()
		p.Edges = d.intVal()
		x.patterns = append(x.patterns, p)
		x.patVerts = append(x.patVerts, verts)
	}

	x.mining.SetsEvaluated = int64(d.uvarint())
	x.mining.SetsEmitted = int64(d.uvarint())
	x.mining.PatternsEmitted = int64(d.uvarint())
	x.mining.SearchNodes = int64(d.uvarint())
	x.mining.SampledVertices = int64(d.uvarint())
	x.mining.ReusedSets = int64(d.uvarint())
	x.mining.RecomputedSets = int64(d.uvarint())
	x.mining.Duration = time.Duration(d.uvarint())

	if d.err != nil {
		return nil, fmt.Errorf("index: loading snapshot: %w", d.err)
	}
	if _, err := d.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("index: snapshot has trailing bytes after the payload")
	}
	x.freeze()
	return x, nil
}

// readSnapshotBytes slurps the snapshot into one exactly-sized buffer.
// io.ReadAll would repeatedly grow-and-copy, ~2× the snapshot size in
// transient garbage; for readers of knowable size (*os.File and
// friends) the remaining length is computed from Stat and the current
// offset, the buffer pre-sized, and one io.ReadFull pass fills it —
// which also bounds a crafted file's allocation before any decoding.
func readSnapshotBytes(r io.Reader) ([]byte, error) {
	f, ok := r.(interface {
		io.ReadSeeker
		Stat() (os.FileInfo, error)
	})
	if !ok {
		return io.ReadAll(r)
	}
	st, err := f.Stat()
	if err != nil || !st.Mode().IsRegular() {
		return io.ReadAll(r)
	}
	cur, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return io.ReadAll(r)
	}
	size := st.Size() - cur
	if size < 0 {
		size = 0
	}
	if size > maxSnapshotLen {
		return nil, fmt.Errorf("snapshot is %d bytes (cap %d)", size, maxSnapshotLen)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// encoder writes the snapshot primitives, latching the first error.
type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) f64(v float64) {
	binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(v))
	e.bytes(e.buf[:8])
}

func (e *encoder) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

// decoder reads the snapshot primitives, latching the first error.
type decoder struct {
	r *bufio.Reader
	// limit bounds length fields: a count of decoded elements can never
	// exceed the payload byte size, so larger values are corruption.
	limit int
	err   error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return nil
	}
	return b
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
	}
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

// count reads a uvarint that sizes an allocation (element or byte
// count): no honest count can exceed the payload size in bytes, since
// each counted element consumes at least one byte, so larger values
// fail before any allocation.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(d.limit) {
		d.err = fmt.Errorf("corrupt count %d (payload is %d bytes)", v, d.limit)
		return 0
	}
	return int(v)
}

// intVal reads a uvarint carrying a plain value (support, degree, …):
// bounded only by the coarse maxSnapshotLen sanity cap, since values
// may legitimately exceed the payload size.
func (d *decoder) intVal() int {
	v := d.uvarint()
	if d.err == nil && v > maxSnapshotLen {
		d.err = fmt.Errorf("corrupt value %d", v)
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.count()
	return string(d.bytes(n))
}

func (d *decoder) f64() float64 {
	b := d.bytes(8)
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *decoder) bool() bool { return d.byte() != 0 }
