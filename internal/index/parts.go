package index

import (
	"fmt"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/core"
)

// Parts is the raw material of an Index with its expensive derived
// state precomputed: the canonical tables plus the stable ids and
// inverted postings that freeze would otherwise re-hash and re-scan on
// every load. The v3 snapshot stores all of it verbatim, so a boot
// skips the id hashing (FNV over every set and pattern) and the
// posting construction (a pass over every set name and pattern
// vertex); only the pointer-shaped remainder — trie, id maps, patsOf —
// is rebuilt, eagerly or on first lookup per EagerDerived.
type Parts struct {
	Sets     []core.AttributeSet
	Patterns []core.Pattern
	// PatVerts[i] holds the resolved vertex labels of Patterns[i].
	PatVerts [][]string
	Mining   core.Stats
	// Dataset shape of the producing graph (DatasetShape).
	DSVertices   int
	DSEdges      int
	DSAttributes int

	// Precomputed stable ids, aligned with Sets/Patterns. Every entry
	// must be non-empty — FromParts trusts them instead of re-hashing
	// (the snapshot checksum vouches for their integrity).
	SetIDs    []string
	PatIDs    []string
	PatSetIDs []string

	// Precomputed inverted postings: attribute name → set indices
	// (capacity len(Sets)) and vertex label → pattern indices
	// (capacity len(Patterns)).
	AttrPost map[string]*bitset.Set
	VertPost map[string]*bitset.Set

	// EagerDerived builds the pointer-shaped lookup structures (id
	// maps, attribute-set trie, per-set pattern lists) before FromParts
	// returns — O(sets + patterns) map inserts and trie nodes. When
	// false they are built once on the first lookup that needs them,
	// which is what keeps an mmap boot at O(sections): materialize mode
	// pays here, mmap mode pays on first query.
	EagerDerived bool

	// Rows, when non-nil, defers the canonical row tables themselves:
	// Sets, Patterns, PatVerts and the id tables above may be nil, and
	// Rows is invoked exactly once, on the first access to any of them,
	// to produce the lot. The callback must be infallible — the caller
	// validates the underlying bytes before constructing the index —
	// and NSets/NPatterns must carry the table sizes so postings can be
	// capacity-checked without hydrating. This is the second half of
	// the lazy mmap boot: not even the O(sets) row fill (struct
	// assembly, name resolution, id string headers) runs at open time.
	Rows             func() Rows
	NSets, NPatterns int
}

// Rows is the canonical row-table bundle produced by a deferred
// Parts.Rows callback: everything FromParts would otherwise take from
// the eager fields, aligned and fully populated.
type Rows struct {
	Sets      []core.AttributeSet
	Patterns  []core.Pattern
	PatVerts  [][]string
	SetIDs    []string
	PatIDs    []string
	PatSetIDs []string
}

// FromParts assembles an Index from precomputed tables, validating
// alignment and posting capacities. Slices and sets are used by
// reference — views over a read-only mapping must outlive the index.
func FromParts(p Parts) (*Index, error) {
	nS, nP := len(p.Sets), len(p.Patterns)
	if p.Rows != nil {
		nS, nP = p.NSets, p.NPatterns
	} else {
		if len(p.PatVerts) != nP {
			return nil, fmt.Errorf("index: %d vertex-label rows for %d patterns", len(p.PatVerts), nP)
		}
		if len(p.SetIDs) != nS {
			return nil, fmt.Errorf("index: %d set ids for %d sets", len(p.SetIDs), nS)
		}
		if len(p.PatIDs) != nP || len(p.PatSetIDs) != nP {
			return nil, fmt.Errorf("index: %d/%d pattern ids for %d patterns", len(p.PatIDs), len(p.PatSetIDs), nP)
		}

		// The id tables must be fully populated — FromParts trusts them
		// instead of re-hashing, and the lazy derived build has no error
		// path, so holes are rejected here (a length check is not
		// enough: the check is O(n) pointer loads, no hashing). A
		// deferred Rows callback vouches for its own output instead.
		for i, id := range p.SetIDs {
			if id == "" {
				return nil, fmt.Errorf("index: empty id for set %d", i)
			}
		}
		for i := range p.PatIDs {
			if p.PatIDs[i] == "" || p.PatSetIDs[i] == "" {
				return nil, fmt.Errorf("index: empty id for pattern %d", i)
			}
		}
	}
	for name, post := range p.AttrPost {
		if post.Len() != nS {
			return nil, fmt.Errorf("index: attribute posting %q has capacity %d, want %d", name, post.Len(), nS)
		}
	}
	for label, post := range p.VertPost {
		if post.Len() != nP {
			return nil, fmt.Errorf("index: vertex posting %q has capacity %d, want %d", label, post.Len(), nP)
		}
	}

	x := &Index{
		sets:         p.Sets,
		patterns:     p.Patterns,
		patVerts:     p.PatVerts,
		mining:       p.Mining,
		dsVertices:   p.DSVertices,
		dsEdges:      p.DSEdges,
		dsAttributes: p.DSAttributes,
		setIDs:       p.SetIDs,
		patIDs:       p.PatIDs,
		patSetIDs:    p.PatSetIDs,
		attrPost:     p.AttrPost,
		vertPost:     p.VertPost,
		nSets:        nS,
		nPatterns:    nP,
		hydrate:      p.Rows,
	}
	if p.EagerDerived {
		x.derived()
	}
	return x, nil
}

// PostingTables exposes the index's inverted postings by reference —
// attribute name → set indices and vertex label → pattern indices —
// for the snapshot writer. The caller must not modify the maps or the
// sets they hold.
func (x *Index) PostingTables() (attrPost, vertPost map[string]*bitset.Set) {
	return x.attrPost, x.vertPost
}
