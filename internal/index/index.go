// Package index is the read-optimized pattern-serving layer of SCPM: an
// immutable Index built once from a mining Result (plus the graph that
// produced it) and then queried concurrently — by stable id, by
// attribute containment, by subset/superset relation over the
// attribute-set trie, by vertex membership over inverted postings, or
// as a top-k ranking.
//
// The Index is self-contained: every name it serves (attribute names,
// vertex labels) is resolved at build time, so a loaded snapshot can
// answer every lookup without the originating graph. Derived structures
// (trie, postings, id maps) are rebuilt deterministically from the
// canonical set/pattern tables, which keeps the snapshot format small
// and the Save→Load→Save cycle bit-identical.
package index

import (
	"sort"
	"sync"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
)

// Index is an immutable, concurrently-queryable view of one mining
// run's output. Build one with Build or Load; all methods are safe for
// concurrent use.
type Index struct {
	// Canonical tables, in Result order (sets by size then
	// lexicographic attribute ids; patterns grouped per set). When
	// hydrate is non-nil they start empty and are filled exactly once,
	// on first access — route every read through tables(). nSets and
	// nPatterns always hold the table sizes, hydrated or not.
	sets      []core.AttributeSet
	patterns  []core.Pattern
	nSets     int
	nPatterns int
	// patVerts[i] holds the resolved vertex labels of patterns[i],
	// aligned with Pattern.Vertices.
	patVerts [][]string
	// hydrate defers the row-table fill for lazily assembled indexes
	// (Parts.Rows); nil everywhere else.
	hydrate  func() Rows
	rowsOnce sync.Once
	// mining carries the run counters of the producing Result.
	mining core.Stats
	// dsVertices/dsEdges/dsAttributes record the shape of the graph the
	// result was mined from, so a restored snapshot can be checked
	// against the dataset it is served with.
	dsVertices   int
	dsEdges      int
	dsAttributes int

	// Derived structures, rebuilt deterministically on Build and Load.
	setIDs    []string // setIDs[i] = sets[i].ID()
	patIDs    []string // patIDs[i] = patterns[i].ID()
	patSetIDs []string // patSetIDs[i] = patterns[i].SetID()

	// Pointer-shaped lookup structures, built from the canonical tables
	// by buildDerived. Build and Load pay for them up front; a lazily
	// assembled index (FromParts without EagerDerived, the mmap boot
	// path) defers them to the first query that needs one, so opening a
	// snapshot stays O(sections) instead of O(sets). Access only through
	// derived().
	derivedOnce sync.Once
	byID        map[string]int32 // set id → sets index
	patByID     map[string]int32 // pattern id → patterns index
	patsOf      [][]int32        // sets index → patterns indices, in order
	root        *trieNode        // attribute-set trie over sorted attr ids
	attrIDs     map[string]int32 // attribute name → id (for trie walks)

	// Inverted postings on the shared bitset machinery.
	attrPost map[string]*bitset.Set // attribute name → set indices
	vertPost map[string]*bitset.Set // vertex label → pattern indices
}

// Build constructs an Index from a mining result. The graph must be the
// one res was mined from — it resolves pattern vertex ids to labels so
// the index (and its snapshots) are self-contained. res is not retained;
// its tables are copied.
func Build(res *core.Result, g *graph.Graph) *Index {
	x := &Index{
		sets:         append([]core.AttributeSet(nil), res.Sets...),
		patterns:     append([]core.Pattern(nil), res.Patterns...),
		patVerts:     make([][]string, len(res.Patterns)),
		mining:       res.Stats,
		dsVertices:   g.NumVertices(),
		dsEdges:      g.NumEdges(),
		dsAttributes: g.NumAttributes(),
	}
	for i, p := range x.patterns {
		x.patVerts[i] = p.VertexNames(g)
	}
	x.freeze()
	return x
}

// freeze rebuilds every derived structure from the canonical tables.
// It runs after Build copies a Result, after Load decodes a snapshot
// and after Rebuild matches donor content; all paths converge here, so
// every index answers queries identically however it was constructed.
// Pre-filled (non-empty) id entries are kept — that is how Rebuild
// carries interned ids over — and only missing ones are hashed.
// freeze may only run on a freshly constructed Index (its derivedOnce
// must not have fired).
func (x *Index) freeze() {
	x.nSets = len(x.sets)
	x.nPatterns = len(x.patterns)
	if x.setIDs == nil {
		x.setIDs = make([]string, len(x.sets))
	}
	x.attrPost = make(map[string]*bitset.Set)
	for i := range x.sets {
		s := &x.sets[i]
		if x.setIDs[i] == "" {
			x.setIDs[i] = s.ID()
		}
		for _, name := range s.Names {
			post := x.attrPost[name]
			if post == nil {
				post = bitset.New(len(x.sets))
				x.attrPost[name] = post
			}
			post.Add(i)
		}
	}

	if x.patIDs == nil {
		x.patIDs = make([]string, len(x.patterns))
	}
	if x.patSetIDs == nil {
		x.patSetIDs = make([]string, len(x.patterns))
	}
	x.vertPost = make(map[string]*bitset.Set)
	for i := range x.patterns {
		p := &x.patterns[i]
		if x.patIDs[i] == "" {
			x.patIDs[i] = p.ID()
		}
		if x.patSetIDs[i] == "" {
			x.patSetIDs[i] = p.SetID()
		}
		for _, label := range x.patVerts[i] {
			post := x.vertPost[label]
			if post == nil {
				post = bitset.New(len(x.patterns))
				x.vertPost[label] = post
			}
			post.Add(i)
		}
	}
	x.derived()
}

// derived builds the pointer-shaped lookup structures (id maps, trie,
// per-set pattern lists) exactly once. Build and Load call it eagerly;
// a lazily assembled index pays on the first lookup that needs one.
// Safe for concurrent use — callers may race on a cold index and block
// behind one build.
func (x *Index) derived() { x.derivedOnce.Do(x.buildDerived) }

// tables fills the canonical row tables of a lazily assembled index on
// first use. A no-op (one nil check) everywhere else. Safe for
// concurrent use.
func (x *Index) tables() {
	if x.hydrate == nil {
		return
	}
	x.rowsOnce.Do(func() {
		r := x.hydrate()
		x.sets = r.Sets
		x.patterns = r.Patterns
		x.patVerts = r.PatVerts
		x.setIDs = r.SetIDs
		x.patIDs = r.PatIDs
		x.patSetIDs = r.PatSetIDs
	})
}

func (x *Index) buildDerived() {
	x.tables()
	x.byID = make(map[string]int32, len(x.sets))
	x.root = &trieNode{set: -1}
	x.attrIDs = make(map[string]int32)
	for i := range x.sets {
		s := &x.sets[i]
		x.byID[x.setIDs[i]] = int32(i)
		x.root.insert(s.Attrs, int32(i))
		for j, name := range s.Names {
			x.attrIDs[name] = s.Attrs[j]
		}
	}
	x.patByID = make(map[string]int32, len(x.patterns))
	x.patsOf = make([][]int32, len(x.sets))
	for i := range x.patterns {
		x.patByID[x.patIDs[i]] = int32(i)
		if si, ok := x.byID[x.patSetIDs[i]]; ok {
			x.patsOf[si] = append(x.patsOf[si], int32(i))
		}
	}
}

// NumSets returns the number of indexed attribute sets.
func (x *Index) NumSets() int { return x.nSets }

// NumPatterns returns the number of indexed patterns.
func (x *Index) NumPatterns() int { return x.nPatterns }

// MiningStats returns the run counters of the producing mining run.
func (x *Index) MiningStats() core.Stats { return x.mining }

// DatasetShape returns the |V|, |E|, |A| of the graph the indexed
// result was mined from — recorded at build time and carried through
// snapshots, so a server can refuse to pair a restored index with the
// wrong dataset.
func (x *Index) DatasetShape() (vertices, edges, attributes int) {
	return x.dsVertices, x.dsEdges, x.dsAttributes
}

// Sets returns the indexed attribute sets in canonical order. The
// caller must not modify the returned slice.
func (x *Index) Sets() []core.AttributeSet {
	x.tables()
	return x.sets
}

// Patterns returns the indexed patterns in canonical order. The caller
// must not modify the returned slice.
func (x *Index) Patterns() []core.Pattern {
	x.tables()
	return x.patterns
}

// SetID returns the stable id of the i-th indexed set.
func (x *Index) SetID(i int) string {
	x.tables()
	return x.setIDs[i]
}

// PatternID returns the stable id of the i-th indexed pattern.
func (x *Index) PatternID(i int) string {
	x.tables()
	return x.patIDs[i]
}

// PatternSetID returns the stable id of the set owning the i-th
// indexed pattern, precomputed at build time so render paths never
// re-hash per request.
func (x *Index) PatternSetID(i int) string {
	x.tables()
	return x.patSetIDs[i]
}

// SetIndexByID returns the index of the set with the given stable id,
// or -1.
func (x *Index) SetIndexByID(id string) int {
	x.derived()
	i, ok := x.byID[id]
	if !ok {
		return -1
	}
	return int(i)
}

// PatternsOfSetByIndex returns the pattern indices of the i-th indexed
// set, in canonical order. The caller must not modify the returned
// slice.
func (x *Index) PatternsOfSetByIndex(i int) []int32 {
	x.derived()
	return x.patsOf[i]
}

// PatternVertexNames returns the resolved vertex labels of the i-th
// indexed pattern, aligned with its Vertices. The caller must not
// modify the returned slice.
func (x *Index) PatternVertexNames(i int) []string {
	x.tables()
	return x.patVerts[i]
}

// SetByID finds an attribute set by its stable id.
func (x *Index) SetByID(id string) (core.AttributeSet, bool) {
	x.derived()
	i, ok := x.byID[id]
	if !ok {
		return core.AttributeSet{}, false
	}
	return x.sets[i], true
}

// PatternByID finds a pattern by its stable id.
func (x *Index) PatternByID(id string) (core.Pattern, bool) {
	x.derived()
	i, ok := x.patByID[id]
	if !ok {
		return core.Pattern{}, false
	}
	return x.patterns[i], true
}

// PatternsOfSet returns the indices of the patterns mined for the set
// with the given stable id, in canonical order. The caller must not
// modify the returned slice.
func (x *Index) PatternsOfSet(id string) []int32 {
	x.derived()
	i, ok := x.byID[id]
	if !ok {
		return nil
	}
	return x.patsOf[i]
}

// attrSet resolves attribute names to their sorted canonical ids. ok is
// false when any name never occurs in an indexed set — no indexed set
// can match it, whatever the relation.
func (x *Index) attrSet(names []string) (attrs []int32, ok bool) {
	x.derived()
	attrs = make([]int32, 0, len(names))
	for _, n := range names {
		id, found := x.attrIDs[n]
		if !found {
			return nil, false
		}
		attrs = append(attrs, id)
	}
	sortDedup(&attrs)
	return attrs, true
}

// Exact returns the index of the set whose attributes are exactly the
// given names (any order), or -1.
func (x *Index) Exact(names []string) int {
	attrs, ok := x.attrSet(names)
	if !ok {
		return -1
	}
	return int(x.root.exact(attrs))
}

// Supersets returns the indices of every indexed set that contains all
// of the given attribute names (S ⊇ query), ascending. An empty query
// matches every set.
func (x *Index) Supersets(names []string) []int {
	attrs, ok := x.attrSet(names)
	if !ok {
		return nil
	}
	var out []int
	x.root.supersets(attrs, func(set int32) { out = append(out, int(set)) })
	sort.Ints(out) // trie walks run in path order; callers get index order
	return out
}

// Subsets returns the indices of every indexed set whose attributes are
// all among the given names (S ⊆ query), ascending.
func (x *Index) Subsets(names []string) []int {
	x.derived()
	attrs := make([]int32, 0, len(names))
	for _, n := range names {
		// Names the index has never seen simply cannot contribute
		// attributes; a subset query ignores them instead of failing.
		if id, ok := x.attrIDs[n]; ok {
			attrs = append(attrs, id)
		}
	}
	sortDedup(&attrs)
	var out []int
	x.root.subsets(attrs, func(set int32) { out = append(out, int(set)) })
	sort.Ints(out)
	return out
}

// WithAttr returns the indices of the sets containing the named
// attribute, ascending — the inverted-posting fast path of the
// one-attribute containment query.
func (x *Index) WithAttr(name string) []int {
	post := x.attrPost[name]
	if post == nil {
		return nil
	}
	out := make([]int, 0, post.Count())
	post.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// PatternsWithVertex returns the indices of the patterns containing the
// labeled vertex, ascending.
func (x *Index) PatternsWithVertex(label string) []int {
	post := x.vertPost[label]
	if post == nil {
		return nil
	}
	out := make([]int, 0, post.Count())
	post.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// HasVertex reports whether the labeled vertex occurs in any indexed
// pattern.
func (x *Index) HasVertex(label string) bool { return x.vertPost[label] != nil }

// TopSets returns the n best indexed sets under the given ranking
// (σ, ε or δ), like the paper's case-study tables.
func (x *Index) TopSets(r core.Ranking, n int) []core.AttributeSet {
	x.tables()
	return core.TopSets(x.sets, r, n)
}

// Stats summarizes the index shape.
type Stats struct {
	// Sets and Patterns count the indexed tables.
	Sets     int
	Patterns int
	// Attributes counts distinct attribute names across indexed sets.
	Attributes int
	// PatternVertices counts distinct vertex labels across patterns.
	PatternVertices int
	// Mining carries the producing run's counters.
	Mining core.Stats
}

// Stats returns the index shape summary.
func (x *Index) Stats() Stats {
	return Stats{
		Sets:            x.nSets,
		Patterns:        x.nPatterns,
		Attributes:      len(x.attrPost),
		PatternVertices: len(x.vertPost),
		Mining:          x.mining,
	}
}
