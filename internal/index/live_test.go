package index

import (
	"context"
	"sync"
	"testing"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
)

// minePaper mines the worked example with the Table 1 parameters.
func minePaper(t *testing.T) (*graph.Graph, *core.Result) {
	t.Helper()
	g := graph.PaperExample()
	res, err := core.Mine(context.Background(), g,
		core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10, RecordLattice: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

// TestRebuildReusesInternedContent checks that Rebuild over an update
// answers identically to a fresh Build, and that ids and resolved
// vertex labels of unchanged content are carried over by reference,
// not re-derived.
func TestRebuildReusesInternedContent(t *testing.T) {
	g, res := minePaper(t)
	x := Build(res, g)

	// An edge between two attribute-disjoint vertices leaves every
	// mined set untouched.
	d := g.NewDelta()
	if err := d.AddVertex("loner"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("loner", g.VertexName(0)); err != nil {
		t.Fatal(err)
	}
	ng, cs, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.Remine(context.Background(), ng,
		core.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10, RecordLattice: true},
		res, cs, nil)
	if err != nil {
		t.Fatal(err)
	}

	nx := x.Rebuild(res2, ng)
	fresh := Build(res2, ng)
	if nx.NumSets() != fresh.NumSets() || nx.NumPatterns() != fresh.NumPatterns() {
		t.Fatalf("rebuild shape %d/%d, fresh %d/%d", nx.NumSets(), nx.NumPatterns(), fresh.NumSets(), fresh.NumPatterns())
	}
	for i := 0; i < fresh.NumSets(); i++ {
		if nx.SetID(i) != fresh.SetID(i) {
			t.Fatalf("set %d id %q vs fresh %q", i, nx.SetID(i), fresh.SetID(i))
		}
		// Unchanged content keeps the donor's interned string.
		if j := x.SetIndexByID(nx.SetID(i)); j >= 0 {
			if &nx.setIDs[i] == &x.setIDs[j] {
				continue // same backing — cannot happen for distinct slices, but cheap to allow
			}
		}
	}
	for i := 0; i < fresh.NumPatterns(); i++ {
		if nx.PatternID(i) != fresh.PatternID(i) {
			t.Fatalf("pattern %d id mismatch", i)
		}
	}
	// The real interning assertion: pattern vertex-label slices of
	// unchanged patterns are shared with the donor index.
	shared := 0
	for i := 0; i < nx.NumPatterns(); i++ {
		if donor, ok := x.PatternByID(nx.PatternID(i)); ok {
			_ = donor
			di := -1
			for j := 0; j < x.NumPatterns(); j++ {
				if x.PatternID(j) == nx.PatternID(i) {
					di = j
					break
				}
			}
			if di >= 0 && len(nx.patVerts[i]) > 0 && &nx.patVerts[i][0] == &x.patVerts[di][0] {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("Rebuild resolved every pattern's vertex labels from scratch; expected donor reuse")
	}
	// The dataset shape reflects the new graph.
	v, e, a := nx.DatasetShape()
	if v != ng.NumVertices() || e != ng.NumEdges() || a != ng.NumAttributes() {
		t.Fatalf("rebuilt shape (%d,%d,%d) does not match updated graph", v, e, a)
	}
}

// TestLiveSwap exercises the copy-on-write handle under concurrent
// readers: reads never block, never see nil and always see a complete
// index while swaps happen.
func TestLiveSwap(t *testing.T) {
	g, res := minePaper(t)
	a := Build(res, g)
	live := NewLive(a)
	if live.Index() != a {
		t.Fatal("NewLive does not serve the initial index")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				x := live.Index()
				if x == nil {
					t.Error("reader saw nil index")
					return
				}
				if x.NumSets() != a.NumSets() {
					t.Errorf("reader saw %d sets", x.NumSets())
					return
				}
				for i := 0; i < x.NumSets(); i++ {
					if x.SetID(i) == "" {
						t.Error("reader saw incomplete index")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		next := a.Rebuild(res, g)
		old := live.Swap(next)
		if old == nil {
			t.Fatal("swap returned nil previous index")
		}
		// The swapped-out index stays fully queryable.
		if old.NumSets() != a.NumSets() {
			t.Fatal("previous index mutated by swap")
		}
	}
	close(stop)
	wg.Wait()
}
