package index

import "slices"

// trieNode is a node of the attribute-set trie. Each indexed set is a
// root-to-node path over its sorted attribute ids, so subset and
// superset queries become ordered walks: every key along a path is
// strictly larger than its parent's, which is what the pruning in
// supersets relies on.
type trieNode struct {
	// set is the index of the attribute set ending at this node, or -1.
	set int32
	// keys are the child edge labels (attribute ids), sorted ascending;
	// children is aligned with keys.
	keys     []int32
	children []*trieNode
}

// child returns the child along edge a, or nil.
func (n *trieNode) child(a int32) *trieNode {
	i, ok := slices.BinarySearch(n.keys, a)
	if !ok {
		return nil
	}
	return n.children[i]
}

// insert adds the sorted attribute list as a path ending at set index
// set. Inserting sets in canonical (Result) order yields a
// deterministic trie, but no ordering is required for correctness.
func (n *trieNode) insert(attrs []int32, set int32) {
	for _, a := range attrs {
		i, ok := slices.BinarySearch(n.keys, a)
		if !ok {
			c := &trieNode{set: -1}
			n.keys = slices.Insert(n.keys, i, a)
			n.children = slices.Insert(n.children, i, c)
		}
		n = n.children[i]
	}
	n.set = set
}

// exact returns the set index stored at the exact path attrs (sorted),
// or -1.
func (n *trieNode) exact(attrs []int32) int32 {
	for _, a := range attrs {
		if n = n.child(a); n == nil {
			return -1
		}
	}
	return n.set
}

// supersets visits every stored set whose attribute list contains all
// of attrs (sorted), in ascending set-path order. At each node the walk
// may descend any edge whose key is ≤ the next required attribute —
// larger keys can be pruned outright, because path keys only grow and
// the required attribute could never be matched deeper down.
func (n *trieNode) supersets(attrs []int32, visit func(set int32)) {
	if len(attrs) == 0 {
		n.collect(visit)
		return
	}
	need := attrs[0]
	for i, k := range n.keys {
		switch {
		case k < need:
			n.children[i].supersets(attrs, visit)
		case k == need:
			n.children[i].supersets(attrs[1:], visit)
		default:
			return
		}
	}
}

// collect visits every set stored in the subtree.
func (n *trieNode) collect(visit func(set int32)) {
	if n.set >= 0 {
		visit(n.set)
	}
	for _, c := range n.children {
		c.collect(visit)
	}
}

// subsets visits every stored set whose attribute list is contained in
// attrs (sorted): the walk only descends edges labeled with query
// attributes, reporting each terminal node it passes.
func (n *trieNode) subsets(attrs []int32, visit func(set int32)) {
	if n.set >= 0 {
		visit(n.set)
	}
	for i, a := range attrs {
		if c := n.child(a); c != nil {
			c.subsets(attrs[i+1:], visit)
		}
	}
}

// sortDedup sorts *attrs ascending and removes duplicates in place.
func sortDedup(attrs *[]int32) {
	slices.Sort(*attrs)
	*attrs = slices.Compact(*attrs)
}
