package index

import (
	"context"
	"reflect"
	"testing"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
)

// buildExample mines the paper's worked example (Figure 1 / Table 1:
// sets {A}, {B}, {A,B}; 7 patterns) and indexes it.
func buildExample(t *testing.T) (*graph.Graph, *core.Result, *Index) {
	t.Helper()
	g := graph.PaperExample()
	res, err := core.Mine(context.Background(), g, core.Params{
		SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 3 || len(res.Patterns) != 7 {
		t.Fatalf("example mined %d sets / %d patterns", len(res.Sets), len(res.Patterns))
	}
	return g, res, Build(res, g)
}

func setNames(x *Index, idxs []int) [][]string {
	out := make([][]string, len(idxs))
	for i, si := range idxs {
		out[i] = x.Sets()[si].Names
	}
	return out
}

func TestBuildShape(t *testing.T) {
	_, res, x := buildExample(t)
	if x.NumSets() != 3 || x.NumPatterns() != 7 {
		t.Fatalf("index holds %d sets / %d patterns", x.NumSets(), x.NumPatterns())
	}
	st := x.Stats()
	if st.Sets != 3 || st.Patterns != 7 || st.Attributes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Mining.SetsEmitted != res.Stats.SetsEmitted {
		t.Fatalf("mining stats not carried: %+v", st.Mining)
	}
	// Table 1 patterns cover vertices 3..11 → 9 distinct labels.
	if st.PatternVertices != 9 {
		t.Fatalf("pattern vertices = %d", st.PatternVertices)
	}
}

func TestSetAndPatternByID(t *testing.T) {
	_, res, x := buildExample(t)
	for i, s := range res.Sets {
		got, ok := x.SetByID(s.ID())
		if !ok || !reflect.DeepEqual(got, s) {
			t.Fatalf("SetByID(%s) = %+v, %v", s.ID(), got, ok)
		}
		if x.SetID(i) != s.ID() {
			t.Fatalf("SetID(%d) mismatch", i)
		}
	}
	for i, p := range res.Patterns {
		got, ok := x.PatternByID(p.ID())
		if !ok || !reflect.DeepEqual(got, p) {
			t.Fatalf("PatternByID(%s) failed", p.ID())
		}
		if x.PatternID(i) != p.ID() {
			t.Fatalf("PatternID(%d) mismatch", i)
		}
	}
	if _, ok := x.SetByID("no-such-id"); ok {
		t.Fatal("unknown set id must miss")
	}
	if _, ok := x.PatternByID("no-such-id"); ok {
		t.Fatal("unknown pattern id must miss")
	}
}

func TestPatternsOfSetGrouping(t *testing.T) {
	_, res, x := buildExample(t)
	total := 0
	for _, s := range res.Sets {
		pats := x.PatternsOfSet(s.ID())
		total += len(pats)
		for _, pi := range pats {
			if x.Patterns()[pi].SetID() != s.ID() {
				t.Fatalf("pattern %d grouped under wrong set", pi)
			}
		}
	}
	if total != len(res.Patterns) {
		t.Fatalf("grouped %d of %d patterns", total, len(res.Patterns))
	}
	if x.PatternsOfSet("missing") != nil {
		t.Fatal("unknown set id must yield nil")
	}
}

func TestExactLookup(t *testing.T) {
	_, res, x := buildExample(t)
	for i, s := range res.Sets {
		if got := x.Exact(s.Names); got != i {
			t.Fatalf("Exact(%v) = %d, want %d", s.Names, got, i)
		}
	}
	// Order independence: {A,B} must be found as {B,A} too.
	if got := x.Exact([]string{"B", "A"}); got < 0 || x.Sets()[got].Support != 6 {
		t.Fatalf("Exact(B,A) = %d", got)
	}
	if x.Exact([]string{"A", "C"}) != -1 {
		t.Fatal("unindexed set must miss")
	}
	if x.Exact([]string{"nope"}) != -1 {
		t.Fatal("unknown attribute must miss")
	}
}

func TestSupersetsSubsetsContainment(t *testing.T) {
	_, _, x := buildExample(t)
	// Supersets of {A}: {A} and {A,B}.
	if got := setNames(x, x.Supersets([]string{"A"})); !reflect.DeepEqual(got, [][]string{{"A"}, {"A", "B"}}) {
		t.Fatalf("Supersets(A) = %v", got)
	}
	// Supersets of {} = every set.
	if got := x.Supersets(nil); len(got) != 3 {
		t.Fatalf("Supersets({}) = %v", got)
	}
	// Supersets of an unknown attribute: none.
	if got := x.Supersets([]string{"Z"}); got != nil {
		t.Fatalf("Supersets(Z) = %v", got)
	}
	// Subsets of {A,B}: all three sets.
	if got := x.Subsets([]string{"A", "B"}); len(got) != 3 {
		t.Fatalf("Subsets(A,B) = %v", got)
	}
	// Subsets of {B}: just {B}.
	if got := setNames(x, x.Subsets([]string{"B"})); !reflect.DeepEqual(got, [][]string{{"B"}}) {
		t.Fatalf("Subsets(B) = %v", got)
	}
	// Unknown names in a subset query are ignored, not fatal.
	if got := setNames(x, x.Subsets([]string{"B", "Z"})); !reflect.DeepEqual(got, [][]string{{"B"}}) {
		t.Fatalf("Subsets(B,Z) = %v", got)
	}
	// Containment postings agree with the trie.
	if got := x.WithAttr("A"); !reflect.DeepEqual(got, x.Supersets([]string{"A"})) {
		t.Fatalf("WithAttr(A) = %v", got)
	}
	if x.WithAttr("Z") != nil {
		t.Fatal("unknown attribute posting must be empty")
	}
}

func TestVertexPostings(t *testing.T) {
	g, res, x := buildExample(t)
	// Vertex "6" sits in the large {6..11} quasi-cliques of all three
	// sets plus the {3,4,6,7} / {6,7,10,11}-style 4-sets; count against
	// a direct scan.
	for _, label := range []string{"1", "3", "6", "11"} {
		var want []int
		for i, p := range res.Patterns {
			for _, v := range p.Vertices {
				if g.VertexName(v) == label {
					want = append(want, i)
					break
				}
			}
		}
		got := x.PatternsWithVertex(label)
		if len(want) == 0 {
			if got != nil || x.HasVertex(label) {
				t.Fatalf("vertex %s should be absent", label)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("PatternsWithVertex(%s) = %v, want %v", label, got, want)
		}
		if !x.HasVertex(label) {
			t.Fatalf("HasVertex(%s) = false", label)
		}
	}
}

func TestTopSetsRanking(t *testing.T) {
	_, res, x := buildExample(t)
	top := x.TopSets(core.BySupport, 2)
	if len(top) != 2 {
		t.Fatalf("top-2 returned %d", len(top))
	}
	if top[0].Support < top[1].Support {
		t.Fatal("not ranked by support")
	}
	if got := x.TopSets(core.ByEpsilon, 100); len(got) != len(res.Sets) {
		t.Fatal("overlong top-k must return all sets")
	}
}

func TestBuildDoesNotRetainResult(t *testing.T) {
	_, res, x := buildExample(t)
	id := res.Sets[0].ID()
	res.Sets[0] = core.AttributeSet{} // mutate the source
	if _, ok := x.SetByID(id); !ok {
		t.Fatal("index must copy the result tables")
	}
}
