package index

import (
	"slices"
	"sync/atomic"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
)

// Rebuild constructs the index for a new mining result — typically an
// incremental Remine after a graph update — reusing this index's
// interned work for content that did not change: stable set and
// pattern id strings and resolved pattern vertex-label slices are
// carried over instead of being re-hashed and re-resolved, so a small
// delta re-interns only what it actually touched.
//
// Reuse is keyed on identity the update path guarantees stable —
// attribute ids, attribute names and vertex ids/labels are append-only
// across Graph.Apply — so a set or pattern with the same attribute ids
// (and, for patterns, the same vertex ids) is the same content and
// keeps the same id. g must be the graph res was mined from; the
// receiver is not modified.
func (x *Index) Rebuild(res *core.Result, g *graph.Graph) *Index {
	x.derived() // reuse walks the trie and patsOf; also hydrates lazy row tables
	nx := &Index{
		sets:         append([]core.AttributeSet(nil), res.Sets...),
		patterns:     append([]core.Pattern(nil), res.Patterns...),
		patVerts:     make([][]string, len(res.Patterns)),
		mining:       res.Stats,
		dsVertices:   g.NumVertices(),
		dsEdges:      g.NumEdges(),
		dsAttributes: g.NumAttributes(),
		setIDs:       make([]string, len(res.Sets)),
		patIDs:       make([]string, len(res.Patterns)),
		patSetIDs:    make([]string, len(res.Patterns)),
	}
	for i := range nx.sets {
		s := &nx.sets[i]
		if j := x.root.exact(s.Attrs); j >= 0 && slices.Equal(x.sets[j].Names, s.Names) {
			nx.setIDs[i] = x.setIDs[j]
		}
	}
	for i := range nx.patterns {
		p := &nx.patterns[i]
		if j := x.root.exact(p.Attrs); j >= 0 && slices.Equal(x.sets[j].Names, p.Names) {
			for _, pj := range x.patsOf[j] {
				if slices.Equal(x.patterns[pj].Vertices, p.Vertices) {
					nx.patIDs[i] = x.patIDs[pj]
					nx.patSetIDs[i] = x.patSetIDs[pj]
					nx.patVerts[i] = x.patVerts[pj]
					break
				}
			}
		}
		if nx.patVerts[i] == nil {
			nx.patVerts[i] = p.VertexNames(g)
		}
	}
	nx.freeze()
	return nx
}

// Live is an atomically swappable handle on an immutable Index: the
// copy-on-write primitive of the update path. Readers call Index and
// query the snapshot they got — a concurrent Swap never blocks them
// and never mutates an index they are holding; the writer builds the
// next index off to the side (Build or Rebuild) and publishes it with
// one atomic pointer swap.
type Live struct {
	p atomic.Pointer[Index]
}

// NewLive wraps an index in a live handle. x must not be nil.
func NewLive(x *Index) *Live {
	l := &Live{}
	l.p.Store(x)
	return l
}

// Index returns the current index snapshot. The result is immutable
// and stays valid (and queryable) after any number of swaps.
func (l *Live) Index() *Index { return l.p.Load() }

// Swap publishes a new index and returns the previous one. In-flight
// readers keep the snapshot they already hold.
func (l *Live) Swap(x *Index) *Index { return l.p.Swap(x) }
