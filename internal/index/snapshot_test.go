package index

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	_, _, x := buildExample(t)
	var first bytes.Buffer
	if err := x.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("Save→Load→Save differs: %d vs %d bytes", first.Len(), second.Len())
	}
}

func TestSnapshotLoadedIndexAnswersIdentically(t *testing.T) {
	_, res, x := buildExample(t)
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x.Sets(), y.Sets()) {
		t.Fatal("sets differ after round trip")
	}
	if !reflect.DeepEqual(x.Patterns(), y.Patterns()) {
		t.Fatal("patterns differ after round trip")
	}
	if !reflect.DeepEqual(x.MiningStats(), y.MiningStats()) {
		t.Fatal("mining stats differ after round trip")
	}
	xv, xe, xa := x.DatasetShape()
	yv, ye, ya := y.DatasetShape()
	if xv != yv || xe != ye || xa != ya || xv != 11 || xe != 19 || xa != 5 {
		t.Fatalf("dataset shape lost: (%d,%d,%d) vs (%d,%d,%d)", xv, xe, xa, yv, ye, ya)
	}
	for _, s := range res.Sets {
		if _, ok := y.SetByID(s.ID()); !ok {
			t.Fatalf("loaded index misses set %s", s.ID())
		}
	}
	if !reflect.DeepEqual(x.Supersets([]string{"A"}), y.Supersets([]string{"A"})) {
		t.Fatal("trie queries differ after round trip")
	}
	if !reflect.DeepEqual(x.PatternsWithVertex("6"), y.PatternsWithVertex("6")) {
		t.Fatal("vertex postings differ after round trip")
	}
}

func TestSnapshotCarriesEstimationAndInf(t *testing.T) {
	_, res, _ := buildExample(t)
	res.Sets[0].Delta = math.Inf(1)
	res.Sets[1].Estimated = true
	res.Sets[1].EpsilonErr = 0.125
	res.Sets[1].SampledVertices = 185
	g, _, _ := buildExample(t)
	x := Build(res, g)
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(y.Sets()[0].Delta, 1) {
		t.Fatal("+Inf delta lost")
	}
	s := y.Sets()[1]
	if !s.Estimated || s.EpsilonErr != 0.125 || s.SampledVertices != 185 {
		t.Fatalf("estimation fields lost: %+v", s)
	}
}

// TestSnapshotGolden pins the on-disk format: the committed snapshot of
// the deterministic paper-example index must keep loading, and saving
// the freshly built index must reproduce it byte for byte. A diff here
// means the format changed — bump snapshotVersion and regenerate with
// `go test ./internal/index -run Golden -update`.
func TestSnapshotGolden(t *testing.T) {
	_, _, x := buildExample(t)
	// Mining is deterministic except for the wall-clock Duration
	// counter; pin it so the snapshot bytes are reproducible.
	x.mining.Duration = 0
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "quickstart.idx")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("snapshot differs from golden (%d vs %d bytes); run with -update after a deliberate format change",
			buf.Len(), len(want))
	}
	y, err := Load(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if y.NumSets() != 3 || y.NumPatterns() != 7 {
		t.Fatalf("golden snapshot decodes to %d sets / %d patterns", y.NumSets(), y.NumPatterns())
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	_, _, x := buildExample(t)
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Load(bytes.NewReader(nil)); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("empty file: %v", err)
	}
	bad := append([]byte("NOTSCPM"), good[7:]...)
	if _, err := Load(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[7] = 99 // version byte
	if _, err := Load(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xff // flip a payload byte
	if _, err := Load(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt payload: %v", err)
	}
	bad = append(append([]byte(nil), good...), 0) // trailing garbage
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
	if _, err := Load(bytes.NewReader(good[:len(good)-8])); err == nil {
		t.Fatal("truncated payload must be rejected")
	}
}
