// Package graph implements the attributed graph model of Silva, Meira and
// Zaki (VLDB 2012): an undirected simple graph G = (V, E, A, F) whose
// vertices carry attribute sets, together with induced-subgraph
// extraction (G(S)), a vertical attribute index, degree statistics and a
// plain-text dataset format.
//
// # Representation
//
// Both the adjacency structure and the per-vertex attribute lists are
// stored in compressed-sparse-row (CSR) form: one flat []int32 arena
// holding every neighbor (or attribute) id back to back, plus an
// offsets array with len(offsets) = |V|+1 so that the entries of vertex
// v occupy arena[offsets[v]:offsets[v+1]]. Neighbor ranges are sorted
// ascending, which makes HasEdge a binary search and set operations
// over adjacency allocation-free merges. The two flat slices are shared
// by reference with the quasi-clique miner (see CSR), so a mining run
// never copies the graph.
package graph

import (
	"fmt"
	"slices"
	"sync"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/mmapio"
	"github.com/scpm/scpm/internal/stats"
)

// Graph is an immutable attributed graph. Construct one with a Builder or
// by reading a dataset; the zero value is an empty graph.
//
// Vertices and attributes are identified by dense int32 ids. Adjacency
// and per-vertex attribute lists are sorted ascending and stored in CSR
// form (see the package comment).
type Graph struct {
	// CSR adjacency: the neighbors of v are nbrs[off[v]:off[v+1]],
	// sorted ascending, with len(off) = |V|+1.
	off  []int64
	nbrs []int32

	// CSR vertex→attribute lists, same layout as the adjacency.
	attrOff   []int64
	attrArena []int32

	attrNames []string
	attrIndex map[string]int32

	numVertices int

	// Vertex labels come in one of two shapes. Built graphs carry the
	// eager vertexNames table. View-backed graphs (FromParts over a
	// mapped snapshot) leave it nil and serve VertexName as zero-copy
	// string views over nameBlob, delimited by nameOffs (len |V|+1) —
	// so booting never touches the label region at all.
	vertexNames []string
	nameBlob    []byte
	nameOffs    []int64

	// nameIndex is the label→id map behind VertexID. View-backed
	// graphs build it lazily on first lookup (nameOnce) to keep boot
	// cost independent of |V|; built graphs fill it eagerly.
	nameIndex map[string]int32
	nameOnce  sync.Once

	numEdges int

	// attrMembers[a] is the set of vertices carrying attribute a
	// (the vertical index used for induced subgraphs and Eclat).
	attrMembers []*bitset.Set

	// version tags this immutable snapshot of the data: Builder.Build
	// produces version 1 and every Apply increments it. The serving
	// layer uses it to tag cache entries and report what data a result
	// reflects.
	version uint64
}

// Version returns the graph's data version: 1 for a freshly built
// graph, incremented by every Apply. The zero-value empty graph is
// version 0.
func (g *Graph) Version() uint64 { return g.version }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumAttributes returns |A|.
func (g *Graph) NumAttributes() int { return len(g.attrNames) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbor list of v as a view into the
// graph's CSR arena. The caller must not modify the returned slice; it
// stays valid for the lifetime of the graph.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.nbrs[g.off[v]:g.off[v+1]:g.off[v+1]]
}

// CSR exposes the raw adjacency backbone by reference — the offsets
// array (len |V|+1) and the flat neighbor arena it indexes — so
// structural miners can wrap the graph without copying it. The caller
// must not modify either slice.
func (g *Graph) CSR() (offsets []int64, neighbors []int32) { return g.off, g.nbrs }

// AttrCSR exposes the raw attribute backbone by reference — the
// offsets array (len |V|+1) and the flat attribute-id arena — the
// attribute-side mirror of CSR. The snapshot writer serializes the
// graph through it; the caller must not modify either slice.
func (g *Graph) AttrCSR() (offsets []int64, attrs []int32) { return g.attrOff, g.attrArena }

// VertexAttrs returns the sorted attribute ids of v as a view into the
// graph's attribute arena. The caller must not modify the returned
// slice.
func (g *Graph) VertexAttrs(v int32) []int32 {
	return g.attrArena[g.attrOff[v]:g.attrOff[v+1]:g.attrOff[v+1]]
}

// HasEdge reports whether {u, v} is an edge, by binary search over u's
// sorted neighbor range.
func (g *Graph) HasEdge(u, v int32) bool {
	_, ok := slices.BinarySearch(g.nbrs[g.off[u]:g.off[u+1]], v)
	return ok
}

// AttrName returns the name of attribute id a.
func (g *Graph) AttrName(a int32) string { return g.attrNames[a] }

// AttrID returns the id of the named attribute, or (-1, false) when the
// attribute does not occur in the graph.
func (g *Graph) AttrID(name string) (int32, bool) {
	id, ok := g.attrIndex[name]
	if !ok {
		return -1, false
	}
	return id, true
}

// VertexName returns the external label of vertex v. For view-backed
// graphs the result is a zero-copy view into the snapshot mapping and
// stays valid for the mapping's lifetime.
func (g *Graph) VertexName(v int32) string {
	if g.vertexNames != nil {
		return g.vertexNames[v]
	}
	return mmapio.ViewString(g.nameBlob[g.nameOffs[v]:g.nameOffs[v+1]])
}

// VertexID returns the id of the named vertex, or (-1, false). On a
// view-backed graph the first call pays the one-time O(|V|) index
// build that boot deferred.
func (g *Graph) VertexID(name string) (int32, bool) {
	g.nameOnce.Do(g.initNameIndex)
	id, ok := g.nameIndex[name]
	if !ok {
		return -1, false
	}
	return id, true
}

func (g *Graph) initNameIndex() {
	if g.nameIndex != nil {
		return
	}
	idx := make(map[string]int32, g.numVertices)
	for v := int32(0); int(v) < g.numVertices; v++ {
		idx[g.VertexName(v)] = v
	}
	g.nameIndex = idx
}

// AttrSupport returns σ({a}): the number of vertices carrying a.
func (g *Graph) AttrSupport(a int32) int { return g.attrMembers[a].Count() }

// AttrMembers returns the set of vertices carrying attribute a. The
// caller must not modify the returned set.
func (g *Graph) AttrMembers(a int32) *bitset.Set { return g.attrMembers[a] }

// AttrSetNames resolves a slice of attribute ids to their names.
func (g *Graph) AttrSetNames(S []int32) []string {
	out := make([]string, len(S))
	for i, a := range S {
		out[i] = g.attrNames[a]
	}
	return out
}

// DegreeHistogram returns the empirical degree distribution p(α) of G,
// the input of the analytical null model (Theorem 2).
func (g *Graph) DegreeHistogram() *stats.IntHistogram {
	h := &stats.IntHistogram{}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		h.Observe(g.Degree(v))
	}
	return h
}

// MaxDegree returns the maximum vertex degree m of G.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns the mean vertex degree 2|E|/|V|.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return 2 * float64(g.numEdges) / float64(g.NumVertices())
}

// String summarizes the graph for logs.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d |A|=%d}",
		g.NumVertices(), g.NumEdges(), g.NumAttributes())
}
