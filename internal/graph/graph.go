// Package graph implements the attributed graph model of Silva, Meira and
// Zaki (VLDB 2012): an undirected simple graph G = (V, E, A, F) whose
// vertices carry attribute sets, together with induced-subgraph
// extraction (G(S)), a vertical attribute index, degree statistics and a
// plain-text dataset format.
package graph

import (
	"fmt"
	"sort"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/stats"
)

// Graph is an immutable attributed graph. Construct one with a Builder or
// by reading a dataset; the zero value is an empty graph.
//
// Vertices and attributes are identified by dense int32 ids. Adjacency
// and per-vertex attribute lists are sorted ascending.
type Graph struct {
	adj         [][]int32
	vertexAttrs [][]int32
	attrNames   []string
	attrIndex   map[string]int32
	vertexNames []string
	nameIndex   map[string]int32
	numEdges    int

	// attrMembers[a] is the set of vertices carrying attribute a
	// (the vertical index used for induced subgraphs and Eclat).
	attrMembers []*bitset.Set
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumAttributes returns |A|.
func (g *Graph) NumAttributes() int { return len(g.attrNames) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The caller must not
// modify the returned slice.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[v] }

// Adjacency exposes the full adjacency structure by reference, indexed
// by vertex id, so structural miners can wrap the graph without copying
// it. The caller must not modify the returned slices.
func (g *Graph) Adjacency() [][]int32 { return g.adj }

// VertexAttrs returns the sorted attribute ids of v. The caller must not
// modify the returned slice.
func (g *Graph) VertexAttrs(v int32) []int32 { return g.vertexAttrs[v] }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int32) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// AttrName returns the name of attribute id a.
func (g *Graph) AttrName(a int32) string { return g.attrNames[a] }

// AttrID returns the id of the named attribute, or (-1, false) when the
// attribute does not occur in the graph.
func (g *Graph) AttrID(name string) (int32, bool) {
	id, ok := g.attrIndex[name]
	return id, ok
}

// VertexName returns the external label of vertex v.
func (g *Graph) VertexName(v int32) string { return g.vertexNames[v] }

// VertexID returns the id of the named vertex, or (-1, false).
func (g *Graph) VertexID(name string) (int32, bool) {
	id, ok := g.nameIndex[name]
	if !ok {
		return -1, false
	}
	return id, true
}

// AttrSupport returns σ({a}): the number of vertices carrying a.
func (g *Graph) AttrSupport(a int32) int { return g.attrMembers[a].Count() }

// AttrMembers returns the set of vertices carrying attribute a. The
// caller must not modify the returned set.
func (g *Graph) AttrMembers(a int32) *bitset.Set { return g.attrMembers[a] }

// AttrSetNames resolves a slice of attribute ids to their names.
func (g *Graph) AttrSetNames(S []int32) []string {
	out := make([]string, len(S))
	for i, a := range S {
		out[i] = g.attrNames[a]
	}
	return out
}

// DegreeHistogram returns the empirical degree distribution p(α) of G,
// the input of the analytical null model (Theorem 2).
func (g *Graph) DegreeHistogram() *stats.IntHistogram {
	h := &stats.IntHistogram{}
	for v := range g.adj {
		h.Observe(len(g.adj[v]))
	}
	return h
}

// MaxDegree returns the maximum vertex degree m of G.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns the mean vertex degree 2|E|/|V|.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.numEdges) / float64(len(g.adj))
}

// String summarizes the graph for logs.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d |A|=%d}",
		g.NumVertices(), g.NumEdges(), g.NumAttributes())
}
