package graph

import (
	"math/rand"
	"strconv"
	"testing"
)

func benchAttrGraph(b *testing.B, n int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	bl := NewBuilder()
	attrs := make([]string, 40)
	for i := range attrs {
		attrs[i] = "a" + strconv.Itoa(i)
	}
	for v := 0; v < n; v++ {
		var va []string
		for _, a := range attrs[:10] {
			if rng.Float64() < 0.3 {
				va = append(va, a)
			}
		}
		if _, err := bl.AddVertex("v"+strconv.Itoa(v), va...); err != nil {
			b.Fatal(err)
		}
	}
	m := n * 3
	for i := 0; i < m; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			if err := bl.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
	}
	g, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = benchAttrGraph(b, 2000)
	}
}

func BenchmarkInducedByAttrs(b *testing.B) {
	g := benchAttrGraph(b, 5000)
	a0, _ := g.AttrID("a0")
	a1, _ := g.AttrID("a1")
	S := []int32{a0, a1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.InducedByAttrs(S)
	}
}

func BenchmarkMembers(b *testing.B) {
	g := benchAttrGraph(b, 5000)
	a0, _ := g.AttrID("a0")
	a1, _ := g.AttrID("a1")
	S := []int32{a0, a1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Members(S)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchAttrGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HasEdge(int32(i%5000), int32((i*7)%5000))
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchAttrGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ConnectedComponents()
	}
}

func BenchmarkAvgClustering(b *testing.B) {
	g := benchAttrGraph(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.AvgClustering()
	}
}
