package graph

import (
	"fmt"
	"sort"

	"github.com/scpm/scpm/internal/bitset"
)

// ConnectedComponents returns the vertex sets of G's connected
// components, largest first (ties by smallest member).
func (g *Graph) ConnectedComponents() [][]int32 {
	n := g.NumVertices()
	seen := bitset.New(n)
	var comps [][]int32
	var stack []int32
	for s := 0; s < n; s++ {
		if seen.Contains(s) {
			continue
		}
		seen.Add(s)
		stack = append(stack[:0], int32(s))
		var comp []int32
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.Neighbors(v) {
				if !seen.Contains(int(u)) {
					seen.Add(int(u))
					stack = append(stack, u)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// LocalClustering returns the local clustering coefficient of v: the
// fraction of pairs of v's neighbors that are themselves adjacent.
// Vertices of degree < 2 have coefficient 0.
func (g *Graph) LocalClustering(v int32) float64 {
	nbrs := g.Neighbors(v)
	d := len(nbrs)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// AvgClustering returns the mean local clustering coefficient over all
// vertices (degree-<2 vertices contribute 0, the common convention).
func (g *Graph) AvgClustering() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	s := 0.0
	for v := int32(0); v < int32(n); v++ {
		s += g.LocalClustering(v)
	}
	return s / float64(n)
}

// Triangles returns the number of triangles in G.
func (g *Graph) Triangles() int64 {
	var t int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		nbrs := g.Neighbors(v)
		for i := 0; i < len(nbrs); i++ {
			if nbrs[i] < v {
				continue
			}
			for j := i + 1; j < len(nbrs); j++ {
				if g.HasEdge(nbrs[i], nbrs[j]) {
					t++
				}
			}
		}
	}
	return t
}

// Summary describes G's shape for dataset reports.
type Summary struct {
	Vertices      int
	Edges         int
	Attributes    int
	AvgDegree     float64
	MaxDegree     int
	Components    int
	LargestComp   int
	AvgClustering float64
	// TopAttrSupports holds the supports of the most frequent
	// attributes, descending.
	TopAttrSupports []int
}

// Summarize computes a Summary (topAttrs bounds the support list).
func Summarize(g *Graph, topAttrs int) Summary {
	comps := g.ConnectedComponents()
	largest := 0
	if len(comps) > 0 {
		largest = len(comps[0])
	}
	sups := make([]int, g.NumAttributes())
	for a := range sups {
		sups[a] = g.AttrSupport(int32(a))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sups)))
	if len(sups) > topAttrs {
		sups = sups[:topAttrs]
	}
	return Summary{
		Vertices:        g.NumVertices(),
		Edges:           g.NumEdges(),
		Attributes:      g.NumAttributes(),
		AvgDegree:       g.AvgDegree(),
		MaxDegree:       g.MaxDegree(),
		Components:      len(comps),
		LargestComp:     largest,
		AvgClustering:   g.AvgClustering(),
		TopAttrSupports: sups,
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d |A|=%d avg_deg=%.2f max_deg=%d comps=%d (largest %d) clustering=%.3f",
		s.Vertices, s.Edges, s.Attributes, s.AvgDegree, s.MaxDegree,
		s.Components, s.LargestComp, s.AvgClustering)
}
