package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func buildTrianglePlusEdge(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		if _, err := b.AddVertex(n, "x"); err != nil {
			t.Fatal(err)
		}
	}
	// triangle a-b-c, separate edge d-e
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return mustBuild(t, b)
}

func TestConnectedComponents(t *testing.T) {
	g := buildTrianglePlusEdge(t)
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Fatalf("sizes: %v", comps)
	}
	if comps[0][0] != 0 || comps[1][0] != 3 {
		t.Fatalf("members: %v", comps)
	}
}

func TestClusteringAndTriangles(t *testing.T) {
	g := buildTrianglePlusEdge(t)
	if got := g.LocalClustering(0); got != 1 {
		t.Fatalf("triangle vertex clustering = %v", got)
	}
	if got := g.LocalClustering(3); got != 0 {
		t.Fatalf("degree-1 vertex clustering = %v", got)
	}
	if got := g.Triangles(); got != 1 {
		t.Fatalf("triangles = %d", got)
	}
	want := 3.0 / 5.0
	if got := g.AvgClustering(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("avg clustering = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	g := buildTrianglePlusEdge(t)
	s := Summarize(g, 3)
	if s.Vertices != 5 || s.Edges != 4 || s.Attributes != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Components != 2 || s.LargestComp != 3 {
		t.Fatalf("components: %+v", s)
	}
	if len(s.TopAttrSupports) != 1 || s.TopAttrSupports[0] != 5 {
		t.Fatalf("supports: %v", s.TopAttrSupports)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	g := mustBuild(t, NewBuilder())
	s := Summarize(g, 5)
	if s.Vertices != 0 || s.Components != 0 || s.LargestComp != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if g.AvgClustering() != 0 {
		t.Fatal("empty clustering")
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40, 0.05)
		comps := g.ConnectedComponents()
		seen := map[int32]int{}
		total := 0
		for _, comp := range comps {
			total += len(comp)
			for _, v := range comp {
				seen[v]++
			}
		}
		if total != g.NumVertices() || len(seen) != g.NumVertices() {
			return false
		}
		// edges never cross components
		compOf := map[int32]int{}
		for ci, comp := range comps {
			for _, v := range comp {
				compOf[v] = ci
			}
		}
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			for _, u := range g.Neighbors(v) {
				if compOf[v] != compOf[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTrianglesConsistentWithClustering(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 0.2)
		// sum over v of (links among neighbors) = 3 * triangles
		var sum int64
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			nbrs := g.Neighbors(v)
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if g.HasEdge(nbrs[i], nbrs[j]) {
						sum++
					}
				}
			}
		}
		return sum == 3*g.Triangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
