package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	v0, err := b.AddVertex("alice", "go", "db")
	if err != nil {
		t.Fatal(err)
	}
	v1, err := b.AddVertex("bob", "go")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(v0, v1); err != nil {
		t.Fatal(err)
	}
	// duplicate edge + reversed edge should collapse to one
	if err := b.AddEdge(v1, v0); err != nil {
		t.Fatal(err)
	}
	g := mustBuild(t, b)

	if g.NumVertices() != 2 || g.NumEdges() != 1 || g.NumAttributes() != 2 {
		t.Fatalf("got %v", g)
	}
	if !g.HasEdge(v0, v1) || !g.HasEdge(v1, v0) {
		t.Fatal("edge missing")
	}
	if g.Degree(v0) != 1 || g.Degree(v1) != 1 {
		t.Fatal("degree wrong")
	}
	goID, ok := g.AttrID("go")
	if !ok || g.AttrSupport(goID) != 2 {
		t.Fatalf("go support = %d", g.AttrSupport(goID))
	}
	dbID, _ := g.AttrID("db")
	if g.AttrSupport(dbID) != 1 {
		t.Fatal("db support wrong")
	}
	if _, ok := g.AttrID("nope"); ok {
		t.Fatal("unknown attr resolved")
	}
	if id, ok := g.VertexID("alice"); !ok || id != v0 {
		t.Fatal("VertexID failed")
	}
	if _, ok := g.VertexID("nope"); ok {
		t.Fatal("unknown vertex resolved")
	}
	if g.VertexName(v1) != "bob" {
		t.Fatal("VertexName failed")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddVertex("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddVertex("x"); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
	if err := b.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.AddEdge(0, 5); err == nil {
		t.Fatal("dangling edge accepted")
	}
	if _, err := b.AddVertexAttrIDs("y", []int32{99}); err == nil {
		t.Fatal("unknown attribute id accepted")
	}
}

func TestVertexAttrsDeduped(t *testing.T) {
	b := NewBuilder()
	a := b.InternAttr("a")
	c := b.InternAttr("c")
	if _, err := b.AddVertexAttrIDs("v", []int32{c, a, a, c}); err != nil {
		t.Fatal(err)
	}
	g := mustBuild(t, b)
	got := g.VertexAttrs(0)
	want := []int32{a, c}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("attrs = %v, want %v", got, want)
	}
}

func TestPaperExampleShape(t *testing.T) {
	g := PaperExample()
	if g.NumVertices() != 11 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	if g.NumEdges() != 19 {
		t.Fatalf("|E| = %d", g.NumEdges())
	}
	if g.NumAttributes() != 5 {
		t.Fatalf("|A| = %d", g.NumAttributes())
	}
	a, _ := g.AttrID("A")
	bAttr, _ := g.AttrID("B")
	c, _ := g.AttrID("C")
	if g.AttrSupport(a) != 11 || g.AttrSupport(bAttr) != 6 || g.AttrSupport(c) != 3 {
		t.Fatalf("supports: A=%d B=%d C=%d",
			g.AttrSupport(a), g.AttrSupport(bAttr), g.AttrSupport(c))
	}
}

func TestMembersAndSupport(t *testing.T) {
	g := PaperExample()
	a, _ := g.AttrID("A")
	bAttr, _ := g.AttrID("B")
	ab := []int32{a, bAttr}
	if got := g.Support(ab); got != 6 {
		t.Fatalf("σ({A,B}) = %d, want 6", got)
	}
	members := g.Members(ab)
	for _, name := range []string{"6", "7", "8", "9", "10", "11"} {
		id, _ := g.VertexID(name)
		if !members.Contains(int(id)) {
			t.Fatalf("vertex %s missing from V({A,B})", name)
		}
	}
	if g.Members(nil).Count() != 11 {
		t.Fatal("empty S should induce all vertices")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := PaperExample()
	a, _ := g.AttrID("A")
	bAttr, _ := g.AttrID("B")
	sg := g.InducedByAttrs([]int32{a, bAttr})
	if sg.NumVertices() != 6 {
		t.Fatalf("induced |V| = %d", sg.NumVertices())
	}
	// the induced graph on {6..11} has exactly 9 edges
	if sg.NumEdges() != 9 {
		t.Fatalf("induced |E| = %d, want 9", sg.NumEdges())
	}
	for i := int32(0); i < int32(sg.NumVertices()); i++ {
		if sg.Degree(i) != 3 {
			t.Fatalf("vertex %s degree %d, want 3",
				g.VertexName(sg.Orig[i]), sg.Degree(i))
		}
	}
	// local ids follow ascending orig ids
	for i := 1; i < len(sg.Orig); i++ {
		if sg.Orig[i-1] >= sg.Orig[i] {
			t.Fatal("Orig not ascending")
		}
	}
	v6, _ := g.VertexID("6")
	if sg.LocalOf(v6) != 0 {
		t.Fatalf("LocalOf(6) = %d", sg.LocalOf(v6))
	}
	v1, _ := g.VertexID("1")
	if sg.LocalOf(v1) != -1 {
		t.Fatal("LocalOf(nonmember) should be -1")
	}
}

func TestInducedByVertices(t *testing.T) {
	g := PaperExample()
	ids := func(names ...string) []int32 {
		out := make([]int32, len(names))
		for i, n := range names {
			id, ok := g.VertexID(n)
			if !ok {
				t.Fatalf("no vertex %s", n)
			}
			out[i] = id
		}
		return out
	}
	sg := g.InducedByVertices(ids("3", "4", "5", "6"))
	if sg.NumVertices() != 4 || sg.NumEdges() != 6 {
		t.Fatalf("clique induced: |V|=%d |E|=%d", sg.NumVertices(), sg.NumEdges())
	}
}

func TestRestrictTo(t *testing.T) {
	g := PaperExample()
	all := g.Members(nil)
	sg := g.InducedByMembers(all)
	keep := sg.OrigSet(g.NumVertices()) // same ids since whole graph
	// drop vertices 1 and 2 (local = orig here)
	keep.Remove(0)
	keep.Remove(1)
	rs := sg.RestrictTo(keep)
	if rs.NumVertices() != 9 {
		t.Fatalf("restricted |V| = %d", rs.NumVertices())
	}
	// edges 1-2, 1-3, 2-3 are gone: 19-3 = 16
	if rs.NumEdges() != 16 {
		t.Fatalf("restricted |E| = %d, want 16", rs.NumEdges())
	}
}

func TestDegreeStats(t *testing.T) {
	g := PaperExample()
	h := g.DegreeHistogram()
	if h.Total != 11 {
		t.Fatalf("histogram total = %d", h.Total)
	}
	if g.MaxDegree() != 6 {
		t.Fatalf("max degree = %d, want 6 (vertex 6)", g.MaxDegree())
	}
	want := 2 * 19.0 / 11.0
	if got := g.AvgDegree(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("avg degree = %v, want %v", got, want)
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	g := PaperExample()
	var ab, eb bytes.Buffer
	if err := WriteDataset(g, &ab, &eb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDataset(bytes.NewReader(ab.Bytes()), bytes.NewReader(eb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() ||
		g2.NumAttributes() != g.NumAttributes() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		name := g.VertexName(v)
		v2, ok := g2.VertexID(name)
		if !ok {
			t.Fatalf("vertex %s lost", name)
		}
		if g2.Degree(v2) != g.Degree(v) {
			t.Fatalf("vertex %s degree changed", name)
		}
		if len(g2.VertexAttrs(v2)) != len(g.VertexAttrs(v)) {
			t.Fatalf("vertex %s attrs changed", name)
		}
	}
}

func TestReadDatasetErrors(t *testing.T) {
	_, err := ReadDataset(strings.NewReader("v1 a\nv1 b\n"), strings.NewReader(""))
	if err == nil {
		t.Fatal("duplicate vertex not rejected")
	}
	_, err = ReadDataset(strings.NewReader("v1 a\n"), strings.NewReader("v1\n"))
	if err == nil {
		t.Fatal("malformed edge not rejected")
	}
	_, err = ReadDataset(strings.NewReader("v1 a\n"), strings.NewReader("v1 v1\n"))
	if err == nil {
		t.Fatal("self-loop not rejected")
	}
}

func TestReadDatasetCommentsAndDanglingVertices(t *testing.T) {
	attrs := "# comment\nv1 a b\n\nv2 a\n"
	edges := "# comment\nv1 v3\n"
	g, err := ReadDataset(strings.NewReader(attrs), strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("|V| = %d, want 3 (v3 auto-created)", g.NumVertices())
	}
	v3, ok := g.VertexID("v3")
	if !ok || len(g.VertexAttrs(v3)) != 0 {
		t.Fatal("v3 should exist without attributes")
	}
}

func TestWriteDatasetRejectsWhitespaceNames(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddVertex("has space", "a"); err != nil {
		t.Fatal(err)
	}
	g := mustBuild(t, b)
	var ab, eb bytes.Buffer
	if err := WriteDataset(g, &ab, &eb); err == nil {
		t.Fatal("whitespace vertex name not rejected")
	}
}

func TestSortedAttrNames(t *testing.T) {
	g := PaperExample()
	names := SortedAttrNames(g)
	if names[0] != "A" || names[1] != "B" {
		t.Fatalf("top attrs = %v", names[:2])
	}
}

// randomGraph builds a deterministic Erdős–Rényi-ish graph for property
// tests.
func randomGraph(seed int64, n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		attrs := []string{"base"}
		if rng.Float64() < 0.5 {
			attrs = append(attrs, "x")
		}
		if rng.Float64() < 0.3 {
			attrs = append(attrs, "y")
		}
		if _, err := b.AddVertex("v"+itoa(i+1), attrs...); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := b.AddEdge(int32(i), int32(j)); err != nil {
					panic(err)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestQuickInducedMatchesDefinition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 0.2)
		x, _ := g.AttrID("x")
		y, _ := g.AttrID("y")
		S := []int32{x, y}
		members := g.Members(S)
		sg := g.InducedByAttrs(S)
		if sg.NumVertices() != members.Count() {
			return false
		}
		// every induced edge must exist in G between members, and every
		// G-edge between members must appear induced.
		for li, v := range sg.Orig {
			deg := 0
			for _, u := range g.Neighbors(v) {
				if members.Contains(int(u)) {
					deg++
				}
			}
			if deg != sg.Degree(int32(li)) {
				return false
			}
			for _, lu := range sg.Neighbors(int32(li)) {
				if !g.HasEdge(v, sg.Orig[lu]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSupportAntiMonotone(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40, 0.1)
		base, _ := g.AttrID("base")
		x, _ := g.AttrID("x")
		y, _ := g.AttrID("y")
		s1 := g.Support([]int32{x})
		s2 := g.Support([]int32{x, y})
		s3 := g.Support([]int32{x, y, base})
		return s1 >= s2 && s2 >= s3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
