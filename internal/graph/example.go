package graph

// PaperExample returns the 11-vertex attributed graph of Figure 1 of the
// paper, used throughout the tests and the quickstart example. Vertex
// names are "1".."11" and attributes "A".."E"; the edge set is
// reconstructed so that the mining output matches Table 1 exactly under
// σmin=3, γmin=0.6, min_size=4, εmin=0.5:
//
//	ε({A}) = 9/11, ε({C}) = 0, ε({A,B}) = 1, and the seven patterns of
//	Table 1 are precisely the maximal quasi-cliques of the induced
//	graphs.
func PaperExample() *Graph {
	b := NewBuilder()
	attrs := map[string][]string{
		"1":  {"A", "C"},
		"2":  {"A"},
		"3":  {"A", "C", "D"},
		"4":  {"A", "D"},
		"5":  {"A", "E"},
		"6":  {"A", "B", "C"},
		"7":  {"A", "B", "E"},
		"8":  {"A", "B"},
		"9":  {"A", "B"},
		"10": {"A", "B", "D"},
		"11": {"A", "B"},
	}
	for i := 1; i <= 11; i++ {
		name := itoa(i)
		if _, err := b.AddVertex(name, attrs[name]...); err != nil {
			panic(err)
		}
	}
	edges := [][2]string{
		{"1", "2"}, {"1", "3"}, {"2", "3"},
		{"3", "4"}, {"3", "5"}, {"3", "6"}, {"3", "7"},
		{"4", "5"}, {"4", "6"}, {"5", "6"},
		{"6", "7"}, {"6", "8"}, {"6", "11"},
		{"7", "8"}, {"7", "9"},
		{"8", "10"},
		{"9", "10"}, {"9", "11"},
		{"10", "11"},
	}
	for _, e := range edges {
		if err := b.AddEdgeByName(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
