package graph

import (
	"fmt"

	"github.com/scpm/scpm/internal/bitset"
)

// Parts is the raw material of a Graph: the CSR arenas, name tables
// and vertical index in their final in-memory representation. The v3
// snapshot loader assembles one from typed views over the mapped file
// (zero copies) or from heap copies of the same sections, and
// FromParts turns it into a Graph after validating the structural
// invariants a Builder would have guaranteed.
type Parts struct {
	// Adjacency CSR: AdjOff has len NumVertices+1 and brackets sorted
	// neighbor ranges in AdjArena.
	AdjOff   []int64
	AdjArena []int32

	// Attribute CSR, same layout over attribute ids.
	AttrOff   []int64
	AttrArena []int32

	// AttrNames maps attribute id → name; always eager (|A| is small).
	AttrNames []string

	NumVertices int
	NumEdges    int
	Version     uint64

	// Vertex labels, exactly one of two shapes: an eager VertexNames
	// table (heap-owned; label→id map built eagerly too), or a
	// NameBlob + NameOffs pair served lazily as zero-copy views.
	VertexNames []string
	NameBlob    []byte
	NameOffs    []int64

	// Members is the vertical index: Members[a] holds the vertices
	// carrying attribute a, each of capacity NumVertices.
	Members []*bitset.Set

	// ValidateElements additionally scans every arena element (sorted
	// strictly ascending ranges, ids in bounds, no self-loops) — O(|E|
	// + Σ|F(v)|) work the mmap boot path skips to avoid faulting every
	// page in, and the full-verify path insists on.
	ValidateElements bool
}

// FromParts assembles an immutable Graph from pre-built arenas. The
// cheap structural checks (offset-table shape, table lengths, edge
// count) always run; per-element scans are gated on ValidateElements.
// The arenas are used by reference — for views over a read-only
// mapping the caller keeps the mapping open for the graph's lifetime.
func FromParts(p Parts) (*Graph, error) {
	n := p.NumVertices
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if err := checkOffsets("adjacency", p.AdjOff, n, len(p.AdjArena)); err != nil {
		return nil, err
	}
	if err := checkOffsets("attribute", p.AttrOff, n, len(p.AttrArena)); err != nil {
		return nil, err
	}
	if int64(len(p.AdjArena)) != 2*int64(p.NumEdges) {
		return nil, fmt.Errorf("graph: adjacency arena has %d entries, want 2·|E| = %d", len(p.AdjArena), 2*p.NumEdges)
	}
	eager := p.VertexNames != nil
	if eager {
		if len(p.VertexNames) != n {
			return nil, fmt.Errorf("graph: %d vertex names for %d vertices", len(p.VertexNames), n)
		}
	} else if err := checkOffsets("vertex-name", p.NameOffs, n, len(p.NameBlob)); err != nil {
		return nil, err
	}
	if len(p.Members) != len(p.AttrNames) {
		return nil, fmt.Errorf("graph: %d member sets for %d attributes", len(p.Members), len(p.AttrNames))
	}
	for a, m := range p.Members {
		if m == nil || m.Len() != n {
			return nil, fmt.Errorf("graph: member set %d has capacity %v, want %d", a, setLen(m), n)
		}
	}
	if p.ValidateElements {
		if err := checkElements(p); err != nil {
			return nil, err
		}
	}

	g := &Graph{
		off:         p.AdjOff,
		nbrs:        p.AdjArena,
		attrOff:     p.AttrOff,
		attrArena:   p.AttrArena,
		attrNames:   p.AttrNames,
		attrIndex:   make(map[string]int32, len(p.AttrNames)),
		numVertices: n,
		numEdges:    p.NumEdges,
		attrMembers: p.Members,
		version:     p.Version,
	}
	for a, name := range p.AttrNames {
		g.attrIndex[name] = int32(a)
	}
	if eager {
		g.vertexNames = p.VertexNames
		g.nameIndex = make(map[string]int32, n)
		for v, name := range p.VertexNames {
			g.nameIndex[name] = int32(v)
		}
	} else {
		g.nameBlob = p.NameBlob
		g.nameOffs = p.NameOffs
	}
	return g, nil
}

func setLen(m *bitset.Set) any {
	if m == nil {
		return nil
	}
	return m.Len()
}

func checkOffsets(what string, off []int64, n, arenaLen int) error {
	if len(off) != n+1 {
		return fmt.Errorf("graph: %s offsets have %d entries, want |V|+1 = %d", what, len(off), n+1)
	}
	if off[0] != 0 {
		return fmt.Errorf("graph: %s offsets start at %d, want 0", what, off[0])
	}
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return fmt.Errorf("graph: %s offsets decrease at vertex %d", what, v)
		}
	}
	if off[n] != int64(arenaLen) {
		return fmt.Errorf("graph: %s offsets end at %d, arena has %d entries", what, off[n], arenaLen)
	}
	return nil
}

func checkElements(p Parts) error {
	n, a := int32(p.NumVertices), int32(len(p.AttrNames))
	for v := int32(0); int(v) < p.NumVertices; v++ {
		seg := p.AdjArena[p.AdjOff[v]:p.AdjOff[v+1]]
		prev := int32(-1)
		for _, u := range seg {
			if u < 0 || u >= n {
				return fmt.Errorf("graph: neighbor %d of vertex %d out of range [0,%d)", u, v, n)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop on vertex %d", v)
			}
			if u <= prev {
				return fmt.Errorf("graph: neighbors of vertex %d not strictly ascending", v)
			}
			prev = u
		}
		attrs := p.AttrArena[p.AttrOff[v]:p.AttrOff[v+1]]
		prev = -1
		for _, x := range attrs {
			if x < 0 || x >= a {
				return fmt.Errorf("graph: attribute %d of vertex %d out of range [0,%d)", x, v, a)
			}
			if x <= prev {
				return fmt.Errorf("graph: attributes of vertex %d not strictly ascending", v)
			}
			prev = x
		}
	}
	return nil
}
