package graph

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// applyOps mirrors a recorded delta onto a fresh Builder so tests can
// compare Apply's incremental CSR rebuild against a from-scratch build.
type refOp struct {
	kind  string // add_vertex, add_edge, remove_edge, set_attr, unset_attr
	a, b  string
	attrs []string
}

// buildRef replays the base graph's content plus the ops into a new
// Builder. Edge removals and attribute unsets are applied by filtering.
func buildRef(t *testing.T, g *Graph, ops []refOp) *Graph {
	t.Helper()
	removedEdge := make(map[[2]string]bool)
	unset := make(map[[2]string]bool)
	set := make(map[string][]string)
	var added []refOp
	for _, op := range ops {
		switch op.kind {
		case "remove_edge":
			u, v := op.a, op.b
			if u > v {
				u, v = v, u
			}
			removedEdge[[2]string{u, v}] = true
		case "unset_attr":
			unset[[2]string{op.a, op.b}] = true
		case "set_attr":
			set[op.a] = append(set[op.a], op.b)
		default:
			added = append(added, op)
		}
	}

	b := NewBuilder()
	// Attribute ids must come out identical to Apply's (append-only
	// interning), so intern the base vocabulary first, in id order.
	for a := int32(0); a < int32(g.NumAttributes()); a++ {
		b.InternAttr(g.AttrName(a))
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		name := g.VertexName(v)
		var attrs []string
		for _, a := range g.VertexAttrs(v) {
			an := g.AttrName(a)
			if !unset[[2]string{name, an}] {
				attrs = append(attrs, an)
			}
		}
		attrs = append(attrs, set[name]...)
		if _, err := b.AddVertex(name, attrs...); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range added {
		if op.kind == "add_vertex" {
			if _, err := b.AddVertex(op.a, op.attrs...); err != nil {
				t.Fatal(err)
			}
		}
	}
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			un, vn := g.VertexName(u), g.VertexName(v)
			a, c := un, vn
			if a > c {
				a, c = c, a
			}
			if removedEdge[[2]string{a, c}] {
				continue
			}
			if err := b.AddEdgeByName(un, vn); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, op := range added {
		if op.kind == "add_edge" {
			if err := b.AddEdgeByName(op.a, op.b); err != nil {
				t.Fatal(err)
			}
		}
	}
	ref, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// equalGraphs compares every observable surface of two graphs.
func equalGraphs(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() ||
		got.NumAttributes() != want.NumAttributes() {
		t.Fatalf("%s: shape %v vs %v", label, got, want)
	}
	for v := int32(0); v < int32(want.NumVertices()); v++ {
		if got.VertexName(v) != want.VertexName(v) {
			t.Fatalf("%s: vertex %d name %q vs %q", label, v, got.VertexName(v), want.VertexName(v))
		}
		if !slices.Equal(got.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("%s: vertex %d neighbors %v vs %v", label, v, got.Neighbors(v), want.Neighbors(v))
		}
		if !slices.Equal(got.VertexAttrs(v), want.VertexAttrs(v)) {
			t.Fatalf("%s: vertex %d attrs %v vs %v", label, v, got.VertexAttrs(v), want.VertexAttrs(v))
		}
	}
	for a := int32(0); a < int32(want.NumAttributes()); a++ {
		if got.AttrName(a) != want.AttrName(a) {
			t.Fatalf("%s: attr %d name %q vs %q", label, a, got.AttrName(a), want.AttrName(a))
		}
		if !got.AttrMembers(a).Equal(want.AttrMembers(a)) {
			t.Fatalf("%s: attr %q members %v vs %v", label, want.AttrName(a), got.AttrMembers(a), want.AttrMembers(a))
		}
	}
}

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	verts := []struct {
		name  string
		attrs []string
	}{
		{"v0", []string{"A", "B"}},
		{"v1", []string{"A"}},
		{"v2", []string{"B", "C"}},
		{"v3", []string{"A", "C"}},
		{"v4", nil},
	}
	for _, v := range verts {
		if _, err := b.AddVertex(v.name, v.attrs...); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"v0", "v1"}, {"v0", "v2"}, {"v1", "v2"}, {"v2", "v3"}, {"v3", "v4"}} {
		if err := b.AddEdgeByName(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyBasic(t *testing.T) {
	g := smallGraph(t)
	if g.Version() != 1 {
		t.Fatalf("fresh graph version = %d, want 1", g.Version())
	}
	d := g.NewDelta()
	if !d.Empty() {
		t.Fatal("new delta not empty")
	}
	ops := []refOp{
		{kind: "add_vertex", a: "v5", attrs: []string{"A", "D"}},
		{kind: "add_edge", a: "v5", b: "v0"},
		{kind: "add_edge", a: "v1", b: "v3"},
		{kind: "remove_edge", a: "v2", b: "v3"},
		{kind: "set_attr", a: "v4", b: "B"},
		{kind: "unset_attr", a: "v0", b: "A"},
	}
	if err := d.AddVertex("v5", "A", "D"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("v5", "v0"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("v1", "v3"); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge("v2", "v3"); err != nil {
		t.Fatal(err)
	}
	if err := d.SetAttr("v4", "B"); err != nil {
		t.Fatal(err)
	}
	if err := d.UnsetAttr("v0", "A"); err != nil {
		t.Fatal(err)
	}
	if d.Ops() != 6 {
		t.Fatalf("Ops = %d, want 6", d.Ops())
	}

	ng, cs, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, "basic", ng, buildRef(t, g, ops))
	if ng.Version() != 2 || cs.FromVersion != 1 || cs.ToVersion != 2 {
		t.Fatalf("versions: graph %d, change %d→%d", ng.Version(), cs.FromVersion, cs.ToVersion)
	}
	if cs.AddedVertices != 1 || cs.AddedEdges != 2 || cs.RemovedEdges != 1 || cs.AttrsSet != 1 || cs.AttrsUnset != 1 {
		t.Fatalf("change counters: %+v", cs)
	}
	// The base graph is untouched.
	if g.NumVertices() != 5 || g.NumEdges() != 5 || g.Version() != 1 {
		t.Fatalf("base graph mutated: %v v%d", g, g.Version())
	}
	if g.HasEdge(1, 3) {
		t.Fatal("base graph gained an edge")
	}
	if !ng.HasEdge(1, 3) || ng.HasEdge(2, 3) {
		t.Fatal("new graph edges wrong")
	}
	// Dirty attributes must include the toggled A/B, and D (new vertex).
	for _, name := range []string{"A", "B", "D"} {
		id, ok := ng.AttrID(name)
		if !ok || !cs.DirtyAttrs.Contains(int(id)) {
			t.Fatalf("attribute %q should be dirty: %v", name, cs)
		}
	}
}

// TestApplySharesCleanMembers pins the copy-on-write behavior: with no
// vertex additions, untouched vertical-index bitsets are shared by
// reference between versions.
func TestApplySharesCleanMembers(t *testing.T) {
	g := smallGraph(t)
	d := g.NewDelta()
	// v0-v4 edge touches no common attribute (v4 has none), so only the
	// endpoints' shared attrs go dirty — here, none.
	if err := d.AddEdge("v0", "v4"); err != nil {
		t.Fatal(err)
	}
	ng, cs, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if cs.DirtyAttrs.Count() != 0 {
		t.Fatalf("no common attrs on the new edge, dirty = %v", cs.DirtyAttrs)
	}
	for a := int32(0); a < int32(g.NumAttributes()); a++ {
		if ng.AttrMembers(a) != g.AttrMembers(a) {
			t.Fatalf("attr %d members not shared", a)
		}
	}
	if cs.DirtyVertices.Count() != 2 {
		t.Fatalf("dirty vertices = %v, want the two endpoints", cs.DirtyVertices)
	}
}

func TestDeltaValidation(t *testing.T) {
	g := smallGraph(t)
	d := g.NewDelta()
	cases := []struct {
		name string
		op   func() error
	}{
		{"duplicate vertex", func() error { return d.AddVertex("v0") }},
		{"unknown endpoint", func() error { return d.AddEdge("v0", "nope") }},
		{"self-loop", func() error { return d.AddEdge("v1", "v1") }},
		{"existing edge", func() error { return d.AddEdge("v0", "v1") }},
		{"missing edge remove", func() error { return d.RemoveEdge("v0", "v3") }},
		{"set existing attr", func() error { return d.SetAttr("v0", "A") }},
		{"unset missing attr", func() error { return d.UnsetAttr("v0", "C") }},
		{"unset unknown vertex", func() error { return d.UnsetAttr("nope", "A") }},
	}
	for _, c := range cases {
		if err := c.op(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	// Duplicate ops on the same pair.
	if err := d.AddEdge("v1", "v4"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("v4", "v1"); err == nil {
		t.Error("duplicate edge op accepted")
	}
	if err := d.RemoveEdge("v1", "v4"); err == nil {
		t.Error("remove of pending-added edge accepted")
	}
	if err := d.SetAttr("v4", "Z"); err != nil {
		t.Fatal(err)
	}
	if err := d.UnsetAttr("v4", "Z"); err == nil {
		t.Error("duplicate toggle accepted")
	}
	// A delta from another graph is rejected by Apply.
	other := smallGraph(t)
	if _, _, err := other.Apply(d); err == nil {
		t.Error("cross-graph delta accepted")
	}
}

// TestDeltaPendingVertexEdits: attribute toggles on a vertex added in
// the same delta edit its pending list rather than recording toggles.
func TestDeltaPendingVertexEdits(t *testing.T) {
	g := smallGraph(t)
	d := g.NewDelta()
	if err := d.AddVertex("v9", "A"); err != nil {
		t.Fatal(err)
	}
	if err := d.SetAttr("v9", "E"); err != nil {
		t.Fatal(err)
	}
	if err := d.UnsetAttr("v9", "A"); err != nil {
		t.Fatal(err)
	}
	if err := d.UnsetAttr("v9", "A"); err == nil {
		t.Fatal("double unset on pending vertex accepted")
	}
	ng, _, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	v9, ok := ng.VertexID("v9")
	if !ok {
		t.Fatal("v9 missing")
	}
	e, _ := ng.AttrID("E")
	if attrs := ng.VertexAttrs(v9); len(attrs) != 1 || attrs[0] != e {
		t.Fatalf("v9 attrs = %v, want [E]", attrs)
	}
}

// TestApplyRandomizedAgainstRebuild cross-checks Apply against a
// from-scratch Builder on randomized graphs and deltas, and verifies
// the ChangeSet guarantee: attribute sets disjoint from DirtyAttrs
// keep V(S) and G(S) bit-identical.
func TestApplyRandomizedAgainstRebuild(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 10 + rng.Intn(30)
		numAttrs := 3 + rng.Intn(5)
		b := NewBuilder()
		for v := 0; v < n; v++ {
			var attrs []string
			for a := 0; a < numAttrs; a++ {
				if rng.Float64() < 0.4 {
					attrs = append(attrs, fmt.Sprintf("a%d", a))
				}
			}
			if _, err := b.AddVertex(fmt.Sprintf("v%d", v), attrs...); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				if err := b.AddEdge(int32(u), int32(v)); err != nil {
					t.Fatal(err)
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		d := g.NewDelta()
		var ops []refOp
		vname := func(v int) string { return fmt.Sprintf("v%d", v) }
		for i := 0; i < 1+rng.Intn(8); i++ {
			switch rng.Intn(5) {
			case 0: // add vertex
				name := fmt.Sprintf("w%d-%d", trial, i)
				var attrs []string
				for a := 0; a < numAttrs+1; a++ {
					if rng.Float64() < 0.3 {
						attrs = append(attrs, fmt.Sprintf("a%d", a))
					}
				}
				if err := d.AddVertex(name, attrs...); err == nil {
					ops = append(ops, refOp{kind: "add_vertex", a: name, attrs: attrs})
				}
			case 1: // add edge
				u, v := vname(rng.Intn(n)), vname(rng.Intn(n))
				if err := d.AddEdge(u, v); err == nil {
					ops = append(ops, refOp{kind: "add_edge", a: u, b: v})
				}
			case 2: // remove edge
				u := int32(rng.Intn(n))
				nbrs := g.Neighbors(u)
				if len(nbrs) == 0 {
					continue
				}
				v := nbrs[rng.Intn(len(nbrs))]
				if err := d.RemoveEdge(vname(int(u)), vname(int(v))); err == nil {
					ops = append(ops, refOp{kind: "remove_edge", a: vname(int(u)), b: vname(int(v))})
				}
			case 3: // set attr
				v, a := vname(rng.Intn(n)), fmt.Sprintf("a%d", rng.Intn(numAttrs+1))
				if err := d.SetAttr(v, a); err == nil {
					ops = append(ops, refOp{kind: "set_attr", a: v, b: a})
				}
			case 4: // unset attr
				v, a := vname(rng.Intn(n)), fmt.Sprintf("a%d", rng.Intn(numAttrs))
				if err := d.UnsetAttr(v, a); err == nil {
					ops = append(ops, refOp{kind: "unset_attr", a: v, b: a})
				}
			}
		}

		ng, cs, err := g.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		equalGraphs(t, fmt.Sprintf("trial %d", trial), ng, buildRef(t, g, ops))

		// The clean-set guarantee, over all 1- and 2-attribute sets of
		// the OLD vocabulary that avoid the dirty attributes.
		for a := int32(0); a < int32(g.NumAttributes()); a++ {
			for b2 := a; b2 < int32(g.NumAttributes()); b2++ {
				S := []int32{a}
				if b2 > a {
					S = []int32{a, b2}
				}
				if cs.Touches(S) {
					continue
				}
				oldM := g.Members(S)
				newM := ng.Members(S)
				if !oldM.Grown(ng.NumVertices()).Equal(newM) {
					t.Fatalf("trial %d: clean set %v changed members", trial, S)
				}
				oldSub := g.InducedByMembers(oldM)
				newSub := ng.InducedByMembers(newM)
				if !slices.Equal(oldSub.Orig, newSub.Orig) {
					t.Fatalf("trial %d: clean set %v changed induced vertices", trial, S)
				}
				for li := int32(0); li < int32(oldSub.NumVertices()); li++ {
					if !slices.Equal(oldSub.Neighbors(li), newSub.Neighbors(li)) {
						t.Fatalf("trial %d: clean set %v changed induced adjacency at %d", trial, S, li)
					}
				}
			}
		}
	}
}

// TestChangeSetMerge checks version chaining and dirty-set unioning
// across consecutive deltas.
func TestChangeSetMerge(t *testing.T) {
	g := smallGraph(t)
	d1 := g.NewDelta()
	if err := d1.SetAttr("v1", "C"); err != nil {
		t.Fatal(err)
	}
	g2, cs1, err := g.Apply(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := g2.NewDelta()
	if err := d2.AddVertex("v5", "D"); err != nil {
		t.Fatal(err)
	}
	g3, cs2, err := g2.Apply(d2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs1.Merge(cs2); err != nil {
		t.Fatal(err)
	}
	if cs1.FromVersion != 1 || cs1.ToVersion != 3 || g3.Version() != 3 {
		t.Fatalf("merged versions %d→%d, graph v%d", cs1.FromVersion, cs1.ToVersion, g3.Version())
	}
	cID, _ := g3.AttrID("C")
	dID, _ := g3.AttrID("D")
	if !cs1.DirtyAttrs.Contains(int(cID)) || !cs1.DirtyAttrs.Contains(int(dID)) {
		t.Fatalf("merged dirty attrs missing: %v", cs1.DirtyAttrs)
	}
	if cs1.AddedVertices != 1 || cs1.AttrsSet != 1 {
		t.Fatalf("merged counters: %+v", cs1)
	}
	// Out-of-order merges are rejected.
	if err := cs2.Merge(cs2); err == nil {
		t.Fatal("merging a change set onto itself must fail")
	}
}
