package graph

import (
	"fmt"
	"slices"

	"github.com/scpm/scpm/internal/bitset"
)

// Delta accumulates a batch of updates against one immutable base
// graph: edge additions and removals, new vertices, and per-vertex
// attribute set/unset toggles. Build one with Graph.NewDelta, record
// operations (each validated immediately against the base graph plus
// the pending operations), then produce the next graph version with
// Graph.Apply.
//
// A Delta is strict: each edge pair and each (vertex, attribute) pair
// of a pre-existing vertex admits at most one operation per batch,
// additions of existing edges/attributes and removals of absent ones
// are errors, and vertex names must be unique. This keeps every
// recorded operation a real net change, so the ChangeSet reported by
// Apply is exact. (Attribute operations on a vertex added by the same
// delta simply amend its pending attribute list — they are part of
// the addition, validated against the pending state, and not counted
// as toggles.)
//
// Vertices are append-only — existing vertex and attribute ids stay
// stable across Apply, which is what lets mined results, covered-set
// hand-downs and cache keys survive updates.
//
// A Delta is not safe for concurrent use; Apply does not consume it
// (the same Delta can be inspected afterwards) but reusing it across
// graphs is rejected.
type Delta struct {
	g *Graph

	// Appended vertices, in add order; ids follow the base graph's.
	newNames []string
	newAttrs [][]int32
	newIndex map[string]int32

	// Attributes interned by this delta, ids following the base graph's.
	newAttrNames []string
	newAttrIndex map[string]int32

	// edges maps a canonical (min,max) vertex pair to its operation:
	// true = add, false = remove.
	edges map[[2]int32]bool

	// toggles maps (vertex, attribute) to its operation: true = set,
	// false = unset. Only base-graph vertices appear here; attribute
	// edits on vertices added by this delta mutate newAttrs directly.
	toggles map[[2]int32]bool

	setCount, unsetCount int
}

// NewDelta starts an empty update batch against g.
func (g *Graph) NewDelta() *Delta {
	return &Delta{
		g:            g,
		newIndex:     make(map[string]int32),
		newAttrIndex: make(map[string]int32),
		edges:        make(map[[2]int32]bool),
		toggles:      make(map[[2]int32]bool),
	}
}

// Empty reports whether the delta records no operations.
func (d *Delta) Empty() bool {
	return len(d.newNames) == 0 && len(d.edges) == 0 && len(d.toggles) == 0
}

// Ops returns the number of recorded operations (each added vertex,
// edge operation and attribute toggle counts as one).
func (d *Delta) Ops() int {
	return len(d.newNames) + len(d.edges) + len(d.toggles)
}

// vertexID resolves a vertex name against the base graph and the
// pending additions.
func (d *Delta) vertexID(name string) (int32, bool) {
	if id, ok := d.g.VertexID(name); ok {
		return id, true
	}
	if id, ok := d.newIndex[name]; ok {
		return id, true
	}
	return -1, false
}

// internAttr resolves an attribute name, creating a pending id on
// first use of a name the base graph has never seen.
func (d *Delta) internAttr(name string) int32 {
	if id, ok := d.g.AttrID(name); ok {
		return id
	}
	if id, ok := d.newAttrIndex[name]; ok {
		return id
	}
	id := int32(d.g.NumAttributes() + len(d.newAttrNames))
	d.newAttrIndex[name] = id
	d.newAttrNames = append(d.newAttrNames, name)
	return id
}

// AddVertex records a new vertex with the given unique name and
// attribute names (deduplicated; unseen attribute names are interned).
func (d *Delta) AddVertex(name string, attrs ...string) error {
	if _, dup := d.vertexID(name); dup {
		return fmt.Errorf("graph: delta: vertex %q already exists", name)
	}
	ids := make([]int32, len(attrs))
	for i, a := range attrs {
		ids[i] = d.internAttr(a)
	}
	id := int32(d.g.NumVertices() + len(d.newNames))
	d.newIndex[name] = id
	d.newNames = append(d.newNames, name)
	d.newAttrs = append(d.newAttrs, dedupSorted(ids))
	return nil
}

// edgeKey canonicalizes an endpoint pair, rejecting self-loops and
// unknown names.
func (d *Delta) edgeKey(a, b string) ([2]int32, error) {
	u, ok := d.vertexID(a)
	if !ok {
		return [2]int32{}, fmt.Errorf("graph: delta: unknown vertex %q", a)
	}
	v, ok := d.vertexID(b)
	if !ok {
		return [2]int32{}, fmt.Errorf("graph: delta: unknown vertex %q", b)
	}
	if u == v {
		return [2]int32{}, fmt.Errorf("graph: delta: self-loop on vertex %q", a)
	}
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}, nil
}

// hasBaseEdge reports whether {u, v} is an edge of the base graph
// (pending vertices have no base edges).
func (d *Delta) hasBaseEdge(u, v int32) bool {
	n := int32(d.g.NumVertices())
	return u < n && v < n && d.g.HasEdge(u, v)
}

// AddEdge records the undirected edge {a, b} between existing or
// pending vertices. Adding an edge the base graph already has, or
// operating twice on the same pair, is an error.
func (d *Delta) AddEdge(a, b string) error {
	key, err := d.edgeKey(a, b)
	if err != nil {
		return err
	}
	if _, dup := d.edges[key]; dup {
		return fmt.Errorf("graph: delta: duplicate operation on edge {%s, %s}", a, b)
	}
	if d.hasBaseEdge(key[0], key[1]) {
		return fmt.Errorf("graph: delta: edge {%s, %s} already exists", a, b)
	}
	d.edges[key] = true
	return nil
}

// RemoveEdge records the removal of the undirected edge {a, b}, which
// must exist in the base graph.
func (d *Delta) RemoveEdge(a, b string) error {
	key, err := d.edgeKey(a, b)
	if err != nil {
		return err
	}
	if _, dup := d.edges[key]; dup {
		return fmt.Errorf("graph: delta: duplicate operation on edge {%s, %s}", a, b)
	}
	if !d.hasBaseEdge(key[0], key[1]) {
		return fmt.Errorf("graph: delta: edge {%s, %s} does not exist", a, b)
	}
	d.edges[key] = false
	return nil
}

// pendingHasAttr reports whether pending vertex id v (≥ |V| of the
// base graph) carries attribute a.
func (d *Delta) pendingHasAttr(v, a int32) bool {
	attrs := d.newAttrs[int(v)-d.g.NumVertices()]
	_, ok := slices.BinarySearch(attrs, a)
	return ok
}

// setPendingAttr edits a pending vertex's attribute list in place.
func (d *Delta) setPendingAttr(v, a int32, add bool) {
	i := int(v) - d.g.NumVertices()
	attrs := d.newAttrs[i]
	if add {
		pos, _ := slices.BinarySearch(attrs, a)
		d.newAttrs[i] = slices.Insert(attrs, pos, a)
	} else {
		pos, _ := slices.BinarySearch(attrs, a)
		d.newAttrs[i] = slices.Delete(attrs, pos, pos+1)
	}
}

// baseHasAttr reports whether base vertex v carries attribute a (which
// may be a pending attribute id, carried by no base vertex).
func (d *Delta) baseHasAttr(v, a int32) bool {
	if int(a) >= d.g.NumAttributes() {
		return false
	}
	attrs := d.g.VertexAttrs(v)
	_, ok := slices.BinarySearch(attrs, a)
	return ok
}

// SetAttr records adding the named attribute to the named vertex. The
// vertex must exist (in the base graph or pending); the attribute name
// is interned on first use. Setting an attribute the vertex already
// carries, or toggling the same (vertex, attribute) pair twice, is an
// error.
func (d *Delta) SetAttr(vertex, attr string) error {
	v, ok := d.vertexID(vertex)
	if !ok {
		return fmt.Errorf("graph: delta: unknown vertex %q", vertex)
	}
	a := d.internAttr(attr)
	if v >= int32(d.g.NumVertices()) {
		if d.pendingHasAttr(v, a) {
			return fmt.Errorf("graph: delta: vertex %q already has attribute %q", vertex, attr)
		}
		// Editing a vertex added by this delta just amends its pending
		// attribute list — the vertex has no previous state, so this is
		// part of the addition, not a toggle, and the ChangeSet tallies
		// only count toggles on pre-existing vertices.
		d.setPendingAttr(v, a, true)
		return nil
	}
	key := [2]int32{v, a}
	if _, dup := d.toggles[key]; dup {
		return fmt.Errorf("graph: delta: duplicate toggle of attribute %q on vertex %q", attr, vertex)
	}
	if d.baseHasAttr(v, a) {
		return fmt.Errorf("graph: delta: vertex %q already has attribute %q", vertex, attr)
	}
	d.toggles[key] = true
	d.setCount++
	return nil
}

// UnsetAttr records removing the named attribute from the named
// vertex, which must currently carry it.
func (d *Delta) UnsetAttr(vertex, attr string) error {
	v, ok := d.vertexID(vertex)
	if !ok {
		return fmt.Errorf("graph: delta: unknown vertex %q", vertex)
	}
	a := d.internAttr(attr)
	if v >= int32(d.g.NumVertices()) {
		if !d.pendingHasAttr(v, a) {
			return fmt.Errorf("graph: delta: vertex %q does not have attribute %q", vertex, attr)
		}
		d.setPendingAttr(v, a, false)
		return nil
	}
	key := [2]int32{v, a}
	if _, dup := d.toggles[key]; dup {
		return fmt.Errorf("graph: delta: duplicate toggle of attribute %q on vertex %q", attr, vertex)
	}
	if !d.baseHasAttr(v, a) {
		return fmt.Errorf("graph: delta: vertex %q does not have attribute %q", vertex, attr)
	}
	d.toggles[key] = false
	d.unsetCount++
	return nil
}

// ChangeSet reports exactly which parts of the data a Graph.Apply
// touched, in terms the mining layers consume.
//
// The load-bearing guarantee is on DirtyAttrs: for any attribute set S
// with S ∩ DirtyAttrs = ∅, both V(S) and the induced subgraph G(S) are
// identical in the old and new graphs, so every result derived from S
// alone — support, ε(S), K_S, its quasi-cliques — carries over
// unchanged. (Attribute toggles dirty the toggled attribute; a changed
// edge {u, v} only alters G(S) when both endpoints lie in V(S), which
// forces S ⊆ F(u) ∩ F(v), so marking that intersection dirty covers
// every affected set; a new vertex joins V(S) only for S within its
// attribute set.) Normalized correlations (δ) are NOT covered: the
// null model depends on the global degree distribution, so δ must be
// re-normalized for every set after any edge change.
type ChangeSet struct {
	// FromVersion and ToVersion are the data versions the change leads
	// between (ToVersion = FromVersion + 1 for a single Apply; merged
	// change sets span more).
	FromVersion, ToVersion uint64

	// DirtyVertices are the vertices whose adjacency or attribute list
	// changed, plus all added vertices, as a bitset over the new
	// graph's vertex ids.
	DirtyVertices *bitset.Set

	// DirtyAttrs is the sound over-approximation of the affected
	// attributes described above, over the new graph's attribute ids.
	DirtyAttrs *bitset.Set

	// Operation tallies.
	AddedVertices int
	AddedEdges    int
	RemovedEdges  int
	AttrsSet      int
	AttrsUnset    int
}

// Touches reports whether any of the given attribute ids is dirty —
// the test the incremental miner applies to decide whether an
// attribute set can be carried over.
func (c *ChangeSet) Touches(attrs []int32) bool {
	for _, a := range attrs {
		if c.DirtyAttrs.Contains(int(a)) {
			return true
		}
	}
	return false
}

// Merge folds a later change set into c, producing the change set of
// the composed update (dirty sets union, counters sum, version range
// extended). o must start where c ends.
func (c *ChangeSet) Merge(o *ChangeSet) error {
	if o.FromVersion != c.ToVersion {
		return fmt.Errorf("graph: merging change set v%d→v%d onto v%d→v%d",
			o.FromVersion, o.ToVersion, c.FromVersion, c.ToVersion)
	}
	c.ToVersion = o.ToVersion
	// The later set's bitsets are at least as large (vertices and
	// attributes are append-only), so grow ours and union.
	c.DirtyVertices = c.DirtyVertices.Grown(o.DirtyVertices.Len())
	c.DirtyVertices.UnionWith(o.DirtyVertices)
	c.DirtyAttrs = c.DirtyAttrs.Grown(o.DirtyAttrs.Len())
	c.DirtyAttrs.UnionWith(o.DirtyAttrs)
	c.AddedVertices += o.AddedVertices
	c.AddedEdges += o.AddedEdges
	c.RemovedEdges += o.RemovedEdges
	c.AttrsSet += o.AttrsSet
	c.AttrsUnset += o.AttrsUnset
	return nil
}

// String summarizes the change set for logs.
func (c *ChangeSet) String() string {
	return fmt.Sprintf("changes{v%d→v%d +V=%d +E=%d -E=%d ±attr=%d dirtyV=%d dirtyA=%d}",
		c.FromVersion, c.ToVersion, c.AddedVertices, c.AddedEdges, c.RemovedEdges,
		c.AttrsSet+c.AttrsUnset, c.DirtyVertices.Count(), c.DirtyAttrs.Count())
}

// Apply produces the next version of the graph with the delta's
// operations applied, plus the exact ChangeSet. The receiver is not
// modified — both versions stay valid and immutable, and untouched
// adjacency runs, attribute runs and vertical-index bitsets are reused
// (shared by reference where capacities allow, bulk-copied otherwise)
// rather than recomputed: only the dirty vertices' runs are rebuilt.
func (g *Graph) Apply(d *Delta) (*Graph, *ChangeSet, error) {
	if d.g != g {
		return nil, nil, fmt.Errorf("graph: delta was built against a different graph")
	}
	n := g.NumVertices()
	nNew := n + len(d.newNames)
	oldA := g.NumAttributes()
	aNew := oldA + len(d.newAttrNames)

	// Per-vertex edge add/remove lists, sorted, plus the touched map.
	adds := make(map[int32][]int32)
	rems := make(map[int32][]int32)
	addedEdges, removedEdges := 0, 0
	for e, isAdd := range d.edges {
		u, v := e[0], e[1]
		if isAdd {
			adds[u] = append(adds[u], v)
			adds[v] = append(adds[v], u)
			addedEdges++
		} else {
			rems[u] = append(rems[u], v)
			rems[v] = append(rems[v], u)
			removedEdges++
		}
	}
	for _, m := range []map[int32][]int32{adds, rems} {
		for v := range m {
			slices.Sort(m[v])
		}
	}

	// Adjacency CSR: offsets are rewritten for every vertex (they are
	// cheap), the neighbor arena is bulk-copied span by span between
	// dirty vertices and merge-rebuilt only for them.
	off := make([]int64, nNew+1)
	arena := make([]int32, 0, int64(len(g.nbrs))+2*int64(addedEdges)-2*int64(removedEdges))
	spanStart := 0 // first old vertex of the current untouched span
	flush := func(until int) {
		if spanStart < until {
			arena = append(arena, g.nbrs[g.off[spanStart]:g.off[until]]...)
			spanStart = until
		}
	}
	for v := 0; v < n; v++ {
		av, rv := adds[int32(v)], rems[int32(v)]
		if len(av) == 0 && len(rv) == 0 {
			off[v+1] = off[v] + int64(g.Degree(int32(v)))
			continue
		}
		flush(v)
		spanStart = v + 1
		arena = mergeRun(arena, g.Neighbors(int32(v)), av, rv)
		off[v+1] = int64(len(arena))
	}
	flush(n)
	// New vertices: adjacency comes from the add lists alone.
	for v := n; v < nNew; v++ {
		arena = append(arena, adds[int32(v)]...)
		off[v+1] = int64(len(arena))
	}

	// Attribute CSR: same span-copy scheme keyed on toggled vertices.
	tsets := make(map[int32][]int32)
	for key, isSet := range d.toggles {
		v := key[0]
		if isSet {
			tsets[v] = append(tsets[v], key[1])
		} else {
			tsets[v] = append(tsets[v], -key[1]-1) // negative encodes unset
		}
	}
	attrOff := make([]int64, nNew+1)
	attrArena := make([]int32, 0, len(g.attrArena)+d.setCount-d.unsetCount+totalLen(d.newAttrs))
	spanStart = 0
	flushAttrs := func(until int) {
		if spanStart < until {
			attrArena = append(attrArena, g.attrArena[g.attrOff[spanStart]:g.attrOff[until]]...)
			spanStart = until
		}
	}
	for v := 0; v < n; v++ {
		ops := tsets[int32(v)]
		if len(ops) == 0 {
			attrOff[v+1] = attrOff[v] + (g.attrOff[v+1] - g.attrOff[v])
			continue
		}
		var setIDs, unsetIDs []int32
		for _, op := range ops {
			if op >= 0 {
				setIDs = append(setIDs, op)
			} else {
				unsetIDs = append(unsetIDs, -op-1)
			}
		}
		slices.Sort(setIDs)
		slices.Sort(unsetIDs)
		flushAttrs(v)
		spanStart = v + 1
		attrArena = mergeRun(attrArena, g.VertexAttrs(int32(v)), setIDs, unsetIDs)
		attrOff[v+1] = int64(len(attrArena))
	}
	flushAttrs(n)
	for i, attrs := range d.newAttrs {
		attrArena = append(attrArena, attrs...)
		attrOff[n+i+1] = int64(len(attrArena))
	}

	// Vertical index. Attributes whose member set is untouched are
	// shared by reference when the vertex capacity is unchanged, and
	// grown otherwise; dirty-membership attributes are cloned and
	// patched.
	memberDirty := bitset.New(aNew)
	for key := range d.toggles {
		memberDirty.Add(int(key[1]))
	}
	for _, attrs := range d.newAttrs {
		for _, a := range attrs {
			memberDirty.Add(int(a))
		}
	}
	attrMembers := make([]*bitset.Set, aNew)
	for a := 0; a < oldA; a++ {
		if !memberDirty.Contains(a) && nNew == n {
			attrMembers[a] = g.attrMembers[a]
		} else {
			attrMembers[a] = g.attrMembers[a].Grown(nNew)
		}
	}
	for a := oldA; a < aNew; a++ {
		attrMembers[a] = bitset.New(nNew)
	}
	for key, isSet := range d.toggles {
		if isSet {
			attrMembers[key[1]].Add(int(key[0]))
		} else {
			attrMembers[key[1]].Remove(int(key[0]))
		}
	}
	for i, attrs := range d.newAttrs {
		for _, a := range attrs {
			attrMembers[a].Add(n + i)
		}
	}

	// Name tables.
	attrNames := append(append(make([]string, 0, aNew), g.attrNames...), d.newAttrNames...)
	attrIndex := make(map[string]int32, aNew)
	for i, name := range attrNames {
		attrIndex[name] = int32(i)
	}
	// The base graph may be view-backed (lazy labels), so go through
	// VertexName rather than its eager table; the new generation is
	// always eager and independent of any snapshot mapping.
	vertexNames := make([]string, 0, nNew)
	for v := int32(0); int(v) < n; v++ {
		vertexNames = append(vertexNames, g.VertexName(v))
	}
	vertexNames = append(vertexNames, d.newNames...)
	nameIndex := make(map[string]int32, nNew)
	for i, name := range vertexNames {
		nameIndex[name] = int32(i)
	}

	ng := &Graph{
		off:         off,
		nbrs:        arena,
		attrOff:     attrOff,
		attrArena:   attrArena,
		attrNames:   attrNames,
		attrIndex:   attrIndex,
		numVertices: nNew,
		vertexNames: vertexNames,
		nameIndex:   nameIndex,
		numEdges:    g.numEdges + addedEdges - removedEdges,
		attrMembers: attrMembers,
		version:     g.version + 1,
	}

	// ChangeSet: dirty vertices are the edge endpoints, toggled
	// vertices and additions; dirty attributes are the toggled and
	// new-vertex attributes plus F(u) ∩ F(v) for every changed edge
	// (see the ChangeSet doc for why that is sound), taken over the
	// NEW attribute lists — toggled attributes are dirty regardless,
	// which covers the old lists.
	dirtyV := bitset.New(nNew)
	dirtyA := memberDirty // already holds toggled + new-vertex attrs
	for e := range d.edges {
		dirtyV.Add(int(e[0]))
		dirtyV.Add(int(e[1]))
		markCommonAttrs(dirtyA, ng.VertexAttrs(e[0]), ng.VertexAttrs(e[1]))
	}
	for key := range d.toggles {
		dirtyV.Add(int(key[0]))
	}
	for v := n; v < nNew; v++ {
		dirtyV.Add(v)
	}

	return ng, &ChangeSet{
		FromVersion:   g.version,
		ToVersion:     ng.version,
		DirtyVertices: dirtyV,
		DirtyAttrs:    dirtyA,
		AddedVertices: len(d.newNames),
		AddedEdges:    addedEdges,
		RemovedEdges:  removedEdges,
		AttrsSet:      d.setCount,
		AttrsUnset:    d.unsetCount,
	}, nil
}

// mergeRun appends (base ∪ add) \ remove to dst in one linear merge;
// all three inputs are sorted ascending and disjoint where the delta
// invariants require (add ∩ base = ∅, remove ⊆ base).
func mergeRun(dst, base, add, remove []int32) []int32 {
	ai, ri := 0, 0
	for _, x := range base {
		for ai < len(add) && add[ai] < x {
			dst = append(dst, add[ai])
			ai++
		}
		if ri < len(remove) && remove[ri] == x {
			ri++
			continue
		}
		dst = append(dst, x)
	}
	return append(dst, add[ai:]...)
}

// markCommonAttrs adds the intersection of two sorted attribute lists
// to the dirty set.
func markCommonAttrs(dirty *bitset.Set, a, b []int32) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dirty.Add(int(a[i]))
			i++
			j++
		}
	}
}

// totalLen sums the lengths of the attribute lists.
func totalLen(lists [][]int32) int {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	return total
}
