package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Dataset text format
//
// Attribute file: one vertex per line,
//
//	<vertexName> <attr1> <attr2> ...
//
// Edge file: one undirected edge per line,
//
//	<vertexNameA> <vertexNameB>
//
// Blank lines and lines starting with '#' are ignored in both files.
// Fields are whitespace-separated. This mirrors the flat files used by
// the paper's released datasets (vertex/attribute table + edge list).

// ReadDataset parses an attribute file and an edge file into a Graph.
// Edges may reference vertices absent from the attribute file; such
// vertices are created without attributes.
func ReadDataset(attrsR, edgesR io.Reader) (*Graph, error) {
	b := NewBuilder()
	if err := readAttrLines(b, attrsR); err != nil {
		return nil, err
	}
	if err := readEdgeLines(b, edgesR); err != nil {
		return nil, err
	}
	return b.Build()
}

func readAttrLines(b *Builder, r io.Reader) error {
	sc := newScanner(r)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if _, err := b.AddVertex(fields[0], fields[1:]...); err != nil {
			return fmt.Errorf("attrs line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graph: reading attribute file: %w", err)
	}
	return nil
}

func readEdgeLines(b *Builder, r io.Reader) error {
	sc := newScanner(r)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 2 {
			return fmt.Errorf("edges line %d: want 2 fields, got %d", line, len(fields))
		}
		if err := b.AddEdgeByName(fields[0], fields[1]); err != nil {
			return fmt.Errorf("edges line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graph: reading edge file: %w", err)
	}
	return nil
}

func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return sc
}

// WriteDataset writes g in the dataset text format. Attribute names
// containing whitespace would corrupt the format and yield an error.
func WriteDataset(g *Graph, attrsW, edgesW io.Writer) error {
	aw := bufio.NewWriter(attrsW)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		name := g.VertexName(v)
		if strings.ContainsAny(name, " \t\n") {
			return fmt.Errorf("graph: vertex name %q contains whitespace", name)
		}
		if _, err := aw.WriteString(name); err != nil {
			return err
		}
		for _, a := range g.VertexAttrs(v) {
			an := g.AttrName(a)
			if strings.ContainsAny(an, " \t\n") {
				return fmt.Errorf("graph: attribute name %q contains whitespace", an)
			}
			if _, err := aw.WriteString(" " + an); err != nil {
				return err
			}
		}
		if err := aw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if err := aw.Flush(); err != nil {
		return err
	}

	ew := bufio.NewWriter(edgesW)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				if _, err := fmt.Fprintf(ew, "%s %s\n", g.VertexName(v), g.VertexName(u)); err != nil {
					return err
				}
			}
		}
	}
	return ew.Flush()
}

// SortedAttrNames returns all attribute names sorted by descending
// support (ties broken by name); handy for dataset summaries.
func SortedAttrNames(g *Graph) []string {
	names := make([]string, g.NumAttributes())
	for a := range names {
		names[a] = g.AttrName(int32(a))
	}
	sort.Slice(names, func(i, j int) bool {
		ai, _ := g.AttrID(names[i])
		aj, _ := g.AttrID(names[j])
		si, sj := g.AttrSupport(ai), g.AttrSupport(aj)
		if si != sj {
			return si > sj
		}
		return names[i] < names[j]
	})
	return names
}
