package graph

import (
	"slices"
	"sort"

	"github.com/scpm/scpm/internal/bitset"
)

// Subgraph is the graph induced by a vertex subset, re-indexed with dense
// local ids 0..n-1 and stored in the same CSR layout as Graph. Orig maps
// local ids back to the parent graph's ids (ascending), so local
// ordering is consistent with global ordering.
type Subgraph struct {
	// Orig[i] is the parent-graph id of local vertex i; sorted ascending.
	// The caller must not modify it.
	Orig []int32

	// CSR adjacency over local ids: the neighbors of local vertex i are
	// nbrs[off[i]:off[i+1]], sorted ascending.
	off  []int64
	nbrs []int32
}

// NumVertices returns the number of vertices in the subgraph.
func (s *Subgraph) NumVertices() int { return len(s.Orig) }

// NumEdges returns the number of undirected edges.
func (s *Subgraph) NumEdges() int { return len(s.nbrs) / 2 }

// Degree returns the degree of local vertex i.
func (s *Subgraph) Degree(i int32) int { return int(s.off[i+1] - s.off[i]) }

// Neighbors returns the sorted local-id neighbor list of local vertex i
// as a view into the subgraph's CSR arena. The caller must not modify
// the returned slice.
func (s *Subgraph) Neighbors(i int32) []int32 {
	return s.nbrs[s.off[i]:s.off[i+1]:s.off[i+1]]
}

// CSR exposes the subgraph's raw adjacency backbone by reference (see
// Graph.CSR); this is what the quasi-clique engine consumes. The caller
// must not modify either slice.
func (s *Subgraph) CSR() (offsets []int64, neighbors []int32) { return s.off, s.nbrs }

// LocalOf returns the local id of a parent-graph vertex, or -1 when the
// vertex is not a member of the subgraph.
func (s *Subgraph) LocalOf(orig int32) int32 {
	i := sort.Search(len(s.Orig), func(i int) bool { return s.Orig[i] >= orig })
	if i < len(s.Orig) && s.Orig[i] == orig {
		return int32(i)
	}
	return -1
}

// OrigSet returns the members as a bitset over the parent graph (whose
// vertex count is n).
func (s *Subgraph) OrigSet(n int) *bitset.Set {
	return bitset.FromSlice(n, s.Orig)
}

// Members returns V(S): the set of vertices carrying every attribute of
// S. An empty S yields all vertices. Unknown ids panic (callers pass ids
// obtained from this graph).
func (g *Graph) Members(S []int32) *bitset.Set {
	n := g.NumVertices()
	if len(S) == 0 {
		all := bitset.New(n)
		for v := 0; v < n; v++ {
			all.Add(v)
		}
		return all
	}
	m := g.attrMembers[S[0]].Clone()
	for _, a := range S[1:] {
		m.IntersectWith(g.attrMembers[a])
	}
	return m
}

// Support returns σ(S) = |V(S)|.
func (g *Graph) Support(S []int32) int { return g.Members(S).Count() }

// InducedByAttrs returns G(S), the subgraph induced by attribute set S.
func (g *Graph) InducedByAttrs(S []int32) *Subgraph {
	return g.InducedByMembers(g.Members(S))
}

// InducedByMembers returns the subgraph induced by an arbitrary vertex
// set given as a bitset over this graph.
func (g *Graph) InducedByMembers(members *bitset.Set) *Subgraph {
	orig := members.Slice()
	return g.inducedFromSorted(orig, members)
}

// InducedByVertices returns the subgraph induced by the given vertex
// list (need not be sorted; duplicates are ignored).
func (g *Graph) InducedByVertices(vs []int32) *Subgraph {
	members := bitset.FromSlice(g.NumVertices(), vs)
	return g.inducedFromSorted(members.Slice(), members)
}

// inducedFromSorted slices the parent CSR down to the member set in one
// pass: O(Σ_{v∈S} deg(v)) membership tests and a single arena
// allocation, instead of rebuilding per-vertex adjacency slices. orig
// must be sorted ascending and agree with members.
func (g *Graph) inducedFromSorted(orig []int32, members *bitset.Set) *Subgraph {
	n := len(orig)
	off := make([]int64, n+1)
	var degSum int64
	for _, v := range orig {
		degSum += int64(g.Degree(v))
	}
	nbrs := make([]int32, 0, degSum)
	if degSum >= int64(g.NumVertices()) {
		// Dense member set: a parent-sized translation array makes each
		// surviving edge O(1) instead of a binary search over orig.
		localOf := make([]int32, g.NumVertices())
		for li, v := range orig {
			localOf[v] = int32(li)
		}
		for li, v := range orig {
			for _, u := range g.Neighbors(v) {
				if members.Contains(int(u)) {
					nbrs = append(nbrs, localOf[u])
				}
			}
			off[li+1] = int64(len(nbrs))
		}
	} else {
		// Sparse member set (|edges| below parent n): binary search over
		// orig avoids allocating and zeroing the translation array.
		for li, v := range orig {
			for _, u := range g.Neighbors(v) {
				if members.Contains(int(u)) {
					i, _ := slices.BinarySearch(orig, u)
					nbrs = append(nbrs, int32(i))
				}
			}
			off[li+1] = int64(len(nbrs))
		}
	}
	return &Subgraph{Orig: orig, off: off, nbrs: nbrs}
}

// RestrictTo returns the subgraph of s induced by the local-vertex set
// keep (a bitset over s's local ids). Orig ids are preserved.
func (s *Subgraph) RestrictTo(keep *bitset.Set) *Subgraph {
	locals := keep.Slice()
	orig := make([]int32, len(locals))
	newOf := make([]int32, len(s.Orig))
	for i := range newOf {
		newOf[i] = -1
	}
	for ni, li := range locals {
		orig[ni] = s.Orig[li]
		newOf[li] = int32(ni)
	}
	off := make([]int64, len(locals)+1)
	var degSum int64
	for _, li := range locals {
		degSum += int64(s.Degree(li))
	}
	nbrs := make([]int32, 0, degSum)
	for ni, li := range locals {
		for _, u := range s.Neighbors(li) {
			if nu := newOf[u]; nu >= 0 {
				nbrs = append(nbrs, nu)
			}
		}
		off[ni+1] = int64(len(nbrs))
	}
	return &Subgraph{Orig: orig, off: off, nbrs: nbrs}
}
