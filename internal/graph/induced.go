package graph

import (
	"sort"

	"github.com/scpm/scpm/internal/bitset"
)

// Subgraph is the graph induced by a vertex subset, re-indexed with dense
// local ids 0..n-1. Orig maps local ids back to the parent graph's ids
// (ascending), so local ordering is consistent with global ordering.
type Subgraph struct {
	// Orig[i] is the parent-graph id of local vertex i; sorted ascending.
	Orig []int32
	// Adj is the local adjacency (sorted neighbor lists of local ids).
	Adj [][]int32
}

// NumVertices returns the number of vertices in the subgraph.
func (s *Subgraph) NumVertices() int { return len(s.Orig) }

// NumEdges returns the number of undirected edges.
func (s *Subgraph) NumEdges() int {
	m := 0
	for _, a := range s.Adj {
		m += len(a)
	}
	return m / 2
}

// Degree returns the degree of local vertex i.
func (s *Subgraph) Degree(i int32) int { return len(s.Adj[i]) }

// LocalOf returns the local id of a parent-graph vertex, or -1 when the
// vertex is not a member of the subgraph.
func (s *Subgraph) LocalOf(orig int32) int32 {
	i := sort.Search(len(s.Orig), func(i int) bool { return s.Orig[i] >= orig })
	if i < len(s.Orig) && s.Orig[i] == orig {
		return int32(i)
	}
	return -1
}

// OrigSet returns the members as a bitset over the parent graph.
func (s *Subgraph) OrigSet(n int) *bitset.Set {
	return bitset.FromSlice(n, s.Orig)
}

// Members returns V(S): the set of vertices carrying every attribute of
// S. An empty S yields all vertices. Unknown ids panic (callers pass ids
// obtained from this graph).
func (g *Graph) Members(S []int32) *bitset.Set {
	n := g.NumVertices()
	if len(S) == 0 {
		all := bitset.New(n)
		for v := 0; v < n; v++ {
			all.Add(v)
		}
		return all
	}
	m := g.attrMembers[S[0]].Clone()
	for _, a := range S[1:] {
		m.IntersectWith(g.attrMembers[a])
	}
	return m
}

// Support returns σ(S) = |V(S)|.
func (g *Graph) Support(S []int32) int { return g.Members(S).Count() }

// InducedByAttrs returns G(S), the subgraph induced by attribute set S.
func (g *Graph) InducedByAttrs(S []int32) *Subgraph {
	return g.InducedByMembers(g.Members(S))
}

// InducedByMembers returns the subgraph induced by an arbitrary vertex
// set given as a bitset over this graph.
func (g *Graph) InducedByMembers(members *bitset.Set) *Subgraph {
	orig := members.Slice()
	return g.inducedFromSorted(orig, members)
}

// InducedByVertices returns the subgraph induced by the given vertex
// list (need not be sorted; duplicates are ignored).
func (g *Graph) InducedByVertices(vs []int32) *Subgraph {
	members := bitset.FromSlice(g.NumVertices(), vs)
	return g.inducedFromSorted(members.Slice(), members)
}

func (g *Graph) inducedFromSorted(orig []int32, members *bitset.Set) *Subgraph {
	sg := &Subgraph{Orig: orig, Adj: make([][]int32, len(orig))}
	// localIndex: binary search over orig (sorted). For the typical
	// |orig| ≪ |V| this avoids allocating an n-sized translation array.
	localOf := func(v int32) int32 {
		i := sort.Search(len(orig), func(i int) bool { return orig[i] >= v })
		return int32(i)
	}
	for li, v := range orig {
		var nbrs []int32
		for _, u := range g.adj[v] {
			if members.Contains(int(u)) {
				nbrs = append(nbrs, localOf(u))
			}
		}
		sg.Adj[li] = nbrs
	}
	return sg
}

// RestrictTo returns the subgraph of s induced by the local-vertex set
// keep (a bitset over s's local ids). Orig ids are preserved.
func (s *Subgraph) RestrictTo(keep *bitset.Set) *Subgraph {
	locals := keep.Slice()
	orig := make([]int32, len(locals))
	newOf := make([]int32, len(s.Orig))
	for i := range newOf {
		newOf[i] = -1
	}
	for ni, li := range locals {
		orig[ni] = s.Orig[li]
		newOf[li] = int32(ni)
	}
	adj := make([][]int32, len(locals))
	for ni, li := range locals {
		var nbrs []int32
		for _, u := range s.Adj[li] {
			if nu := newOf[u]; nu >= 0 {
				nbrs = append(nbrs, nu)
			}
		}
		adj[ni] = nbrs
	}
	return &Subgraph{Orig: orig, Adj: adj}
}
