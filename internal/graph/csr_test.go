package graph_test

import (
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/scpm/scpm/internal/datagen"
	"github.com/scpm/scpm/internal/graph"
)

// refAdjacency builds the old slice-of-slices adjacency independently
// of the CSR builder: append both edge directions, then sort and
// deduplicate per vertex. It is the reference the property tests
// compare the CSR backbone against.
func refAdjacency(n int, edges [][2]int32) [][]int32 {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		w := 0
		for i, u := range adj[v] {
			if i == 0 || u != adj[v][i-1] {
				adj[v][w] = u
				w++
			}
		}
		adj[v] = adj[v][:w]
	}
	return adj
}

// randomEdges draws m edge attempts over n vertices, with duplicates
// and both orientations so the builder's dedup path is exercised.
func randomEdges(rng *rand.Rand, n, m int) [][2]int32 {
	var edges [][2]int32
	for i := 0; i < m; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, [2]int32{u, v})
		if rng.Float64() < 0.2 { // parallel duplicate, possibly flipped
			edges = append(edges, [2]int32{v, u})
		}
	}
	return edges
}

func buildFromEdges(t *testing.T, n int, edges [][2]int32) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for v := 0; v < n; v++ {
		if _, err := b.AddVertex("v" + strconv.Itoa(v)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// agreesWithRef checks Degree, Neighbors, HasEdge and NumEdges of g
// against the reference adjacency.
func agreesWithRef(t *testing.T, g *graph.Graph, adj [][]int32) bool {
	t.Helper()
	n := len(adj)
	m := 0
	for v := 0; v < n; v++ {
		m += len(adj[v])
		if g.Degree(int32(v)) != len(adj[v]) {
			t.Logf("degree(%d) = %d, want %d", v, g.Degree(int32(v)), len(adj[v]))
			return false
		}
		nbrs := g.Neighbors(int32(v))
		if len(nbrs) != len(adj[v]) {
			t.Logf("neighbors(%d) len mismatch", v)
			return false
		}
		for i, u := range adj[v] {
			if nbrs[i] != u {
				t.Logf("neighbors(%d)[%d] = %d, want %d", v, i, nbrs[i], u)
				return false
			}
		}
		for u := int32(0); u < int32(n); u++ {
			want := false
			for _, w := range adj[v] {
				if w == u {
					want = true
					break
				}
			}
			if g.HasEdge(int32(v), u) != want {
				t.Logf("HasEdge(%d,%d) = %v, want %v", v, u, g.HasEdge(int32(v), u), want)
				return false
			}
		}
	}
	if g.NumEdges() != m/2 {
		t.Logf("NumEdges = %d, want %d", g.NumEdges(), m/2)
		return false
	}
	return true
}

// TestQuickCSRMatchesReference is the CSR-invariant property test: on
// random multigraph edge lists, the CSR builder must agree with the
// independent slice-of-slices reference on every accessor.
func TestQuickCSRMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		edges := randomEdges(rng, n, rng.Intn(4*n))
		g := buildFromEdges(t, n, edges)
		return agreesWithRef(t, g, refAdjacency(n, edges))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCSRMatchesReferenceOnDatagen runs the same equivalence on
// realistic datagen graphs (power-law background + planted dense
// communities), reconstructing the reference adjacency from the edge
// set reported by the graph itself and verifying symmetry on the way.
func TestCSRMatchesReferenceOnDatagen(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		g, _, err := datagen.Generate(datagen.Config{
			Name: "csr", Seed: seed, NumVertices: 400,
			AvgDegree: 5, DegreeExponent: 2.5,
			NumCommunities: 6, CommunitySizeMin: 8, CommunitySizeMax: 14,
			IntraProb: 0.7,
		})
		if err != nil {
			t.Fatal(err)
		}
		var edges [][2]int32
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			for _, u := range g.Neighbors(v) {
				if !g.HasEdge(u, v) {
					t.Fatalf("seed %d: edge (%d,%d) not symmetric", seed, v, u)
				}
				if u > v {
					edges = append(edges, [2]int32{v, u})
				}
			}
		}
		if !agreesWithRef(t, g, refAdjacency(g.NumVertices(), edges)) {
			t.Fatalf("seed %d: CSR disagrees with reference", seed)
		}
	}
}

// TestQuickInducedMatchesReference is the induced-subgraph equivalence
// test: G(S) built by the CSR slicing path must match a from-scratch
// reference construction over the member list.
func TestQuickInducedMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		edges := randomEdges(rng, n, rng.Intn(5*n))
		g := buildFromEdges(t, n, edges)

		// random member subset
		var members []int32
		for v := int32(0); v < int32(n); v++ {
			if rng.Float64() < 0.4 {
				members = append(members, v)
			}
		}
		sg := g.InducedByVertices(members)

		// reference: re-number members, keep edges with both endpoints in
		var orig []int32
		orig = append(orig, members...)
		sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
		local := make(map[int32]int32, len(orig))
		for li, v := range orig {
			local[v] = int32(li)
		}
		var refEdges [][2]int32
		for _, v := range orig {
			for _, u := range g.Neighbors(v) {
				if lu, ok := local[u]; ok && u > v {
					refEdges = append(refEdges, [2]int32{local[v], lu})
				}
			}
		}
		ref := refAdjacency(len(orig), refEdges)

		if sg.NumVertices() != len(orig) {
			return false
		}
		for li := range orig {
			if sg.Orig[li] != orig[li] {
				return false
			}
			if sg.Degree(int32(li)) != len(ref[li]) {
				return false
			}
			nbrs := sg.Neighbors(int32(li))
			for i, u := range ref[li] {
				if nbrs[i] != u {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCSRViewIsShared pins the zero-copy contract: the slices returned
// by CSR alias the graph's arenas, and Neighbors views are capacity-
// clamped so an append cannot clobber a sibling's range.
func TestCSRViewIsShared(t *testing.T) {
	g := graph.PaperExample()
	off, nbrs := g.CSR()
	if len(off) != g.NumVertices()+1 {
		t.Fatalf("offsets len %d, want %d", len(off), g.NumVertices()+1)
	}
	if int(off[len(off)-1]) != len(nbrs) || len(nbrs) != 2*g.NumEdges() {
		t.Fatalf("arena len %d, offsets end %d, edges %d", len(nbrs), off[len(off)-1], g.NumEdges())
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		view := g.Neighbors(v)
		if len(view) > 0 && &view[0] != &nbrs[off[v]] {
			t.Fatalf("Neighbors(%d) does not alias the arena", v)
		}
		if cap(view) != len(view) {
			t.Fatalf("Neighbors(%d) view not capacity-clamped", v)
		}
	}
}
