package graph

import (
	"fmt"
	"slices"

	"github.com/scpm/scpm/internal/bitset"
)

// Builder accumulates vertices, attributes and edges and produces an
// immutable Graph. It deduplicates parallel edges and rejects self-loops
// and dangling endpoints.
type Builder struct {
	attrIndex   map[string]int32
	attrNames   []string
	nameIndex   map[string]int32
	vertexNames []string
	vertexAttrs [][]int32
	edges       [][2]int32
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		attrIndex: make(map[string]int32),
		nameIndex: make(map[string]int32),
	}
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.vertexNames) }

// InternAttr returns the id for the named attribute, creating it on
// first use.
func (b *Builder) InternAttr(name string) int32 {
	if id, ok := b.attrIndex[name]; ok {
		return id
	}
	id := int32(len(b.attrNames))
	b.attrIndex[name] = id
	b.attrNames = append(b.attrNames, name)
	return id
}

// AddVertex adds a vertex with the given unique name and attribute
// names, returning its id. Adding the same name twice is an error.
func (b *Builder) AddVertex(name string, attrs ...string) (int32, error) {
	ids := make([]int32, len(attrs))
	for i, a := range attrs {
		ids[i] = b.InternAttr(a)
	}
	return b.AddVertexAttrIDs(name, ids)
}

// AddVertexAttrIDs adds a vertex whose attributes are given as
// previously interned ids. It deduplicates the attribute list.
func (b *Builder) AddVertexAttrIDs(name string, attrIDs []int32) (int32, error) {
	if _, dup := b.nameIndex[name]; dup {
		return -1, fmt.Errorf("graph: duplicate vertex %q", name)
	}
	for _, a := range attrIDs {
		if a < 0 || int(a) >= len(b.attrNames) {
			return -1, fmt.Errorf("graph: vertex %q references unknown attribute id %d", name, a)
		}
	}
	id := int32(len(b.vertexNames))
	b.nameIndex[name] = id
	b.vertexNames = append(b.vertexNames, name)
	b.vertexAttrs = append(b.vertexAttrs, dedupSorted(attrIDs))
	return id, nil
}

// EnsureVertex returns the id of the named vertex, creating an
// attribute-less vertex when it does not exist yet.
func (b *Builder) EnsureVertex(name string) int32 {
	if id, ok := b.nameIndex[name]; ok {
		return id
	}
	id, _ := b.AddVertexAttrIDs(name, nil)
	return id
}

// AddEdge records the undirected edge {u, v}. Self-loops and
// out-of-range endpoints are errors; parallel edges are deduplicated at
// Build time.
func (b *Builder) AddEdge(u, v int32) error {
	n := int32(len(b.vertexNames))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{u, v})
	return nil
}

// AddEdgeByName records the undirected edge between two named vertices,
// creating missing endpoints as attribute-less vertices.
func (b *Builder) AddEdgeByName(a, c string) error {
	return b.AddEdge(b.EnsureVertex(a), b.EnsureVertex(c))
}

// Build finalizes the graph into its CSR form: neighbor ranges are
// sorted, parallel edges removed and the vertical attribute index
// constructed, all into two flat arenas (adjacency and attributes)
// instead of per-vertex slices. The Builder can keep accumulating
// afterwards (Build copies what it needs).
func (b *Builder) Build() (*Graph, error) {
	n := len(b.vertexNames)

	// Adjacency CSR: counting sort the directed edge copies into one
	// arena, then sort and deduplicate each vertex range in place.
	off := make([]int64, n+1)
	for _, e := range b.edges {
		off[e[0]+1]++
		off[e[1]+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	nbrs := make([]int32, off[n])
	cursor := make([]int64, n)
	for _, e := range b.edges {
		u, v := e[0], e[1]
		nbrs[off[u]+cursor[u]] = v
		cursor[u]++
		nbrs[off[v]+cursor[v]] = u
		cursor[v]++
	}
	// Compact left to right: the write cursor w never passes the read
	// range of the segment being processed, so this is safe in place.
	var w int64
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		seg := nbrs[lo:hi]
		slices.Sort(seg)
		off[v] = w
		prev := int32(-1)
		for _, u := range seg {
			if u != prev {
				nbrs[w] = u
				w++
				prev = u
			}
		}
	}
	off[n] = w
	nbrs = nbrs[:w:w]

	// Attribute CSR + vertical index. Per-vertex lists were deduplicated
	// and sorted on insertion, so this is a straight concatenation.
	attrOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		attrOff[v+1] = attrOff[v] + int64(len(b.vertexAttrs[v]))
	}
	attrArena := make([]int32, attrOff[n])
	attrMembers := make([]*bitset.Set, len(b.attrNames))
	for a := range attrMembers {
		attrMembers[a] = bitset.New(n)
	}
	for v := 0; v < n; v++ {
		copy(attrArena[attrOff[v]:attrOff[v+1]], b.vertexAttrs[v])
		for _, a := range b.vertexAttrs[v] {
			attrMembers[a].Add(v)
		}
	}

	attrIndex := make(map[string]int32, len(b.attrNames))
	for name, id := range b.attrIndex {
		attrIndex[name] = id
	}
	nameIndex := make(map[string]int32, n)
	for name, id := range b.nameIndex {
		nameIndex[name] = id
	}

	return &Graph{
		off:         off,
		nbrs:        nbrs,
		attrOff:     attrOff,
		attrArena:   attrArena,
		attrNames:   append([]string(nil), b.attrNames...),
		attrIndex:   attrIndex,
		numVertices: n,
		vertexNames: append([]string(nil), b.vertexNames...),
		nameIndex:   nameIndex,
		numEdges:    int(w / 2),
		attrMembers: attrMembers,
		version:     1,
	}, nil
}

// dedupSorted returns a sorted copy of xs with duplicates removed.
func dedupSorted(xs []int32) []int32 {
	if len(xs) == 0 {
		return nil
	}
	out := append([]int32(nil), xs...)
	slices.Sort(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
