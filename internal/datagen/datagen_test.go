package datagen

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scpm/scpm/internal/core"
)

func smallConfig(seed int64) Config {
	return Config{
		Name:             "test",
		Seed:             seed,
		NumVertices:      600,
		AvgDegree:        4,
		DegreeExponent:   2.4,
		VocabSize:        150,
		AttrsPerVertex:   4,
		ZipfS:            1.5,
		NumCommunities:   12,
		CommunitySizeMin: 6,
		CommunitySizeMax: 10,
		IntraProb:        0.8,
		TopicAttrs:       2,
		NumAreas:         4,
		TopicAdoption:    0.9,
		TopicNoise:       0.5,
		SparseFrac:       0.25,
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := smallConfig(1)
	mutations := []func(*Config){
		func(c *Config) { c.NumVertices = 0 },
		func(c *Config) { c.AvgDegree = -1 },
		func(c *Config) { c.DegreeExponent = 2.0 },
		func(c *Config) { c.ZipfS = 0 },
		func(c *Config) { c.NumCommunities = -1 },
		func(c *Config) { c.CommunitySizeMin = 1 },
		func(c *Config) { c.CommunitySizeMax = 2 },
		func(c *Config) { c.IntraProb = 1.5 },
		func(c *Config) { c.TopicAdoption = -0.1 },
		func(c *Config) { c.TopicNoise = -1 },
		func(c *Config) { c.NumAreas = -2 },
		func(c *Config) { c.SparseFrac = 2 },
		func(c *Config) { c.NumCommunities = 200 }, // needs > NumVertices
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, c)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, gt1, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	g2, gt2, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() ||
		g1.NumAttributes() != g2.NumAttributes() {
		t.Fatalf("same seed produced different graphs: %v vs %v", g1, g2)
	}
	for v := int32(0); v < int32(g1.NumVertices()); v++ {
		if g1.Degree(v) != g2.Degree(v) {
			t.Fatalf("vertex %d degree differs", v)
		}
	}
	if len(gt1.Communities) != len(gt2.Communities) {
		t.Fatal("ground truth differs")
	}
	g3, _, err := Generate(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() == g1.NumEdges() && g3.NumAttributes() == g1.NumAttributes() {
		t.Log("warning: different seed produced same shape (possible, unlikely)")
	}
}

func TestGeneratedShape(t *testing.T) {
	c := smallConfig(42)
	g, gt, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != c.NumVertices {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	// average degree should be within a factor ~2 of the target plus
	// community edges
	avg := g.AvgDegree()
	if avg < c.AvgDegree/2 || avg > c.AvgDegree*3 {
		t.Fatalf("avg degree %v far from target %v", avg, c.AvgDegree)
	}
	if len(gt.Communities) != c.NumCommunities {
		t.Fatalf("communities = %d", len(gt.Communities))
	}
	if len(gt.Areas) != c.NumAreas {
		t.Fatalf("areas = %d", len(gt.Areas))
	}
	// communities must be disjoint and within size bounds
	seen := map[int32]bool{}
	for ci, members := range gt.Communities {
		if len(members) < c.CommunitySizeMin || len(members) > c.CommunitySizeMax {
			t.Fatalf("community %d size %d outside [%d,%d]",
				ci, len(members), c.CommunitySizeMin, c.CommunitySizeMax)
		}
		for _, v := range members {
			if seen[v] {
				t.Fatalf("vertex %d in two communities", v)
			}
			seen[v] = true
		}
	}
	// topic attributes must exist with plausible support
	for ci, names := range gt.Topics {
		for _, name := range names {
			id, ok := g.AttrID(name)
			if !ok {
				t.Fatalf("topic attr %s missing", name)
			}
			if g.AttrSupport(id) < len(gt.Communities[ci])/3 {
				t.Fatalf("topic %s support %d suspiciously low", name, g.AttrSupport(id))
			}
		}
	}
	// dense flags populated
	if len(gt.Dense) != c.NumCommunities {
		t.Fatal("dense flags missing")
	}
}

func TestDenseCommunitiesAreDenser(t *testing.T) {
	c := smallConfig(99)
	c.SparseFrac = 0.5
	g, gt, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	denseSum, denseN, sparseSum, sparseN := 0.0, 0, 0.0, 0
	for ci, members := range gt.Communities {
		sub := g.InducedByVertices(members)
		s := len(members)
		density := 2 * float64(sub.NumEdges()) / float64(s*(s-1))
		if gt.Dense[ci] {
			denseSum += density
			denseN++
		} else {
			sparseSum += density
			sparseN++
		}
	}
	if denseN == 0 || sparseN == 0 {
		t.Skip("degenerate split")
	}
	if denseSum/float64(denseN) < 3*sparseSum/float64(sparseN) {
		t.Fatalf("dense avg %v not ≫ sparse avg %v",
			denseSum/float64(denseN), sparseSum/float64(sparseN))
	}
}

func TestZipfHeadIsPopularButUncorrelated(t *testing.T) {
	c := smallConfig(5)
	g, _, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	// background word w0 should have much higher support than topics
	w0, ok := g.AttrID("w0")
	if !ok {
		t.Fatal("w0 missing")
	}
	t0, ok := g.AttrID("topic0_0")
	if !ok {
		t.Fatal("topic0_0 missing")
	}
	if g.AttrSupport(w0) < 2*g.AttrSupport(t0) {
		t.Fatalf("head word support %d vs topic %d — Zipf head too weak",
			g.AttrSupport(w0), g.AttrSupport(t0))
	}
}

// TestTopicsAreRecovered is the key integration test: SCPM must surface
// the planted topic sets with high ε, and the Zipf head words with low ε.
func TestTopicsAreRecovered(t *testing.T) {
	c := smallConfig(11)
	g, gt, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Mine(context.Background(), g, core.Params{
		SigmaMin: 8,
		Gamma:    0.5,
		MinSize:  4,
		K:        1,
		MaxAttrs: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	var topicEps, headEps float64
	for _, area := range gt.Areas {
		if s := res.SetByNames(area...); s != nil && s.Epsilon > 0 {
			found++
			topicEps += s.Epsilon
		}
	}
	if found < len(gt.Areas)/2 {
		t.Fatalf("only %d/%d planted topic sets recovered", found, len(gt.Areas))
	}
	topicEps /= float64(found)
	if w := res.SetByNames("w0"); w != nil {
		headEps = w.Epsilon
	}
	if topicEps <= headEps {
		t.Fatalf("topic ε %v not above head-word ε %v", topicEps, headEps)
	}
}

func TestProfilesValidate(t *testing.T) {
	for _, pr := range []Profile{
		SynthDBLP(1), SynthLastFm(1), SynthCiteSeer(1), SmallDBLP(1),
		SynthDBLP(0.1), SynthLastFm(0.1), SynthCiteSeer(0.1), SmallDBLP(0.1),
	} {
		if err := pr.Config.Validate(); err != nil {
			t.Errorf("%s: %v", pr.Config.Name, err)
		}
		if pr.SigmaMin < 1 || pr.MinSize < 2 || pr.Gamma <= 0 {
			t.Errorf("%s: bad mining params", pr.Config.Name)
		}
	}
}

func TestProfileGenerationSmallScale(t *testing.T) {
	for _, pr := range []Profile{
		SynthDBLP(0.08), SynthLastFm(0.08), SynthCiteSeer(0.08), SmallDBLP(0.15),
	} {
		g, gt, err := Generate(pr.Config)
		if err != nil {
			t.Fatalf("%s: %v", pr.Config.Name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 || g.NumAttributes() == 0 {
			t.Fatalf("%s: degenerate graph %v", pr.Config.Name, g)
		}
		if len(gt.Communities) == 0 {
			t.Fatalf("%s: no communities", pr.Config.Name)
		}
	}
}

func TestPoisson(t *testing.T) {
	rngLike := struct{ mean float64 }{3.0}
	_ = rngLike
	// mean of many draws should approximate lambda
	sum := 0
	const trials = 20000
	rng := newRng(123)
	for i := 0; i < trials; i++ {
		sum += poisson(rng, 3.0)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("poisson mean = %v, want ≈3", mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive lambda should give 0")
	}
}

func TestQuickGenerateAlwaysBuilds(t *testing.T) {
	f := func(seed int64) bool {
		c := smallConfig(seed)
		c.NumVertices = 200
		c.NumCommunities = 5
		g, gt, err := Generate(c)
		if err != nil || g == nil || gt == nil {
			return false
		}
		// no self loops, symmetric adjacency
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			for _, u := range g.Neighbors(v) {
				if u == v || !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// newRng is a tiny helper for tests.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
