// Package datagen generates synthetic attributed graphs that stand in
// for the paper's DBLP, LastFm and CiteSeer crawls (see DESIGN.md §3 for
// the substitution rationale). A generated graph is the superposition of
//
//   - a Chung–Lu background with power-law expected degrees (the heavy
//     tail real co-authorship/friendship/citation graphs exhibit);
//   - planted communities: dense Erdős–Rényi blocks over disjoint vertex
//     groups, standing in for research groups / friend circles;
//   - Zipf-popular background attributes (the "base/system/paper" head
//     terms with high support and no structural correlation);
//   - per-community topic attribute sets adopted by most members and
//     sprinkled over random outsiders — these are the attribute sets
//     that genuinely induce dense subgraphs, i.e. what SCPM should find.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"github.com/scpm/scpm/internal/graph"
)

// Config parameterizes one synthetic dataset.
type Config struct {
	// Name labels the dataset in reports.
	Name string
	// Seed drives all randomness; equal configs generate equal graphs.
	Seed int64

	// NumVertices is |V|.
	NumVertices int

	// AvgDegree is the target mean degree of the Chung–Lu background.
	AvgDegree float64
	// DegreeExponent is the power-law exponent of the expected degree
	// sequence (> 2; real graphs sit around 2.1–3).
	DegreeExponent float64
	// MaxDegreeFactor caps hub expected degrees at this multiple of
	// AvgDegree (0 = default 6). Without the cap Chung–Lu graphs grow a
	// dense "rich club" of hubs that real collaboration/friendship
	// graphs lack — and whose near-critical density makes quasi-clique
	// refutation blow up.
	MaxDegreeFactor float64

	// VocabSize is the number of background attributes.
	VocabSize int
	// AttrsPerVertex is the mean number of background attributes per
	// vertex (Poisson distributed).
	AttrsPerVertex float64
	// ZipfS is the Zipf exponent of background attribute popularity
	// (> 0; larger = more skewed head). Values below 1 give the flat
	// heads real term distributions show once the vocabulary is large
	// relative to the corpus.
	ZipfS float64
	// PhraseProb is the probability that a drawn background attribute
	// brings its phrase sibling along (words 2k and 2k+1 pair up).
	// This models title/abstract bigrams — the reason generic pairs
	// like "base system" have huge support in the paper's DBLP table —
	// without it, independent draws make every pair support ≈ σ1·σ2/n.
	PhraseProb float64

	// NumCommunities is the number of planted communities.
	NumCommunities int
	// CommunitySizeMin/Max bound the (uniform) community sizes.
	CommunitySizeMin int
	CommunitySizeMax int
	// IntraProb is the edge probability inside a community.
	IntraProb float64
	// TopicAttrs is the number of dedicated topic attributes per
	// area (the attribute set that "explains" the area's communities).
	TopicAttrs int
	// NumAreas is the number of distinct topic attribute sets; the
	// communities share them round-robin (several research groups work
	// on the same topic). 0 means one area per community.
	NumAreas int
	// TopicAdoption is the probability that a member carries each of
	// its community's topic attributes.
	TopicAdoption float64
	// TopicNoise scales how many random outsiders also carry a topic
	// attribute: ⌈TopicNoise·size⌉ per community per attribute. This is
	// what keeps topic support above σmin without those vertices being
	// densely connected.
	TopicNoise float64
	// SparseFrac is the fraction of communities planted *without* the
	// dense intra edges: their members carry the topic attributes but
	// stay at background density, which drags ε(topic set) below 1 the
	// way real datasets do.
	SparseFrac float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumVertices < 1:
		return fmt.Errorf("datagen: NumVertices %d < 1", c.NumVertices)
	case c.AvgDegree < 0:
		return fmt.Errorf("datagen: negative AvgDegree")
	case c.AvgDegree > 0 && c.DegreeExponent <= 2:
		return fmt.Errorf("datagen: DegreeExponent must be > 2, got %v", c.DegreeExponent)
	case c.VocabSize < 0 || c.AttrsPerVertex < 0:
		return fmt.Errorf("datagen: negative attribute config")
	case c.VocabSize > 0 && c.AttrsPerVertex > 0 && c.ZipfS <= 0:
		return fmt.Errorf("datagen: ZipfS must be > 0, got %v", c.ZipfS)
	case c.NumCommunities < 0:
		return fmt.Errorf("datagen: negative NumCommunities")
	case c.NumCommunities > 0 && (c.CommunitySizeMin < 2 || c.CommunitySizeMax < c.CommunitySizeMin):
		return fmt.Errorf("datagen: bad community size range [%d,%d]",
			c.CommunitySizeMin, c.CommunitySizeMax)
	case c.IntraProb < 0 || c.IntraProb > 1:
		return fmt.Errorf("datagen: IntraProb %v outside [0,1]", c.IntraProb)
	case c.TopicAdoption < 0 || c.TopicAdoption > 1:
		return fmt.Errorf("datagen: TopicAdoption %v outside [0,1]", c.TopicAdoption)
	case c.TopicNoise < 0:
		return fmt.Errorf("datagen: negative TopicNoise")
	case c.PhraseProb < 0 || c.PhraseProb > 1:
		return fmt.Errorf("datagen: PhraseProb %v outside [0,1]", c.PhraseProb)
	case c.NumAreas < 0:
		return fmt.Errorf("datagen: negative NumAreas")
	case c.SparseFrac < 0 || c.SparseFrac > 1:
		return fmt.Errorf("datagen: SparseFrac %v outside [0,1]", c.SparseFrac)
	case c.NumCommunities*c.CommunitySizeMax > c.NumVertices:
		return fmt.Errorf("datagen: communities need up to %d vertices, graph has %d",
			c.NumCommunities*c.CommunitySizeMax, c.NumVertices)
	}
	return nil
}

// GroundTruth records what was planted, for evaluation.
type GroundTruth struct {
	// Communities holds the member vertex ids of each community.
	Communities [][]int32
	// Topics holds the topic attribute names of each community,
	// aligned with Communities (communities of one area share them).
	Topics [][]string
	// Dense flags communities that received intra edges.
	Dense []bool
	// Areas holds the distinct topic attribute sets.
	Areas [][]string
}

// Generate builds the dataset. The same Config always yields the same
// graph.
func Generate(c Config) (*graph.Graph, *GroundTruth, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	n := c.NumVertices

	// --- communities: disjoint chunks of a random permutation
	perm := rng.Perm(n)
	gt := &GroundTruth{}
	next := 0
	for ci := 0; ci < c.NumCommunities; ci++ {
		size := c.CommunitySizeMin
		if c.CommunitySizeMax > c.CommunitySizeMin {
			size += rng.Intn(c.CommunitySizeMax - c.CommunitySizeMin + 1)
		}
		members := make([]int32, size)
		for i := 0; i < size; i++ {
			members[i] = int32(perm[next])
			next++
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		gt.Communities = append(gt.Communities, members)
	}

	// --- attributes
	b := graph.NewBuilder()
	vertexAttrs := make([][]int32, n)

	if c.VocabSize > 0 && c.AttrsPerVertex > 0 {
		zipf := newZipfSampler(c.ZipfS, c.VocabSize)
		for v := 0; v < n; v++ {
			k := poisson(rng, c.AttrsPerVertex)
			for i := 0; i < k; i++ {
				w := zipf.sample(rng)
				vertexAttrs[v] = append(vertexAttrs[v], b.InternAttr("w"+strconv.Itoa(w)))
				if c.PhraseProb > 0 && rng.Float64() < c.PhraseProb {
					sib := w ^ 1
					if sib < c.VocabSize {
						vertexAttrs[v] = append(vertexAttrs[v], b.InternAttr("w"+strconv.Itoa(sib)))
					}
				}
			}
		}
	}
	numAreas := c.NumAreas
	if numAreas == 0 || numAreas > c.NumCommunities {
		numAreas = c.NumCommunities
	}
	for ai := 0; ai < numAreas; ai++ {
		var names []string
		for t := 0; t < c.TopicAttrs; t++ {
			names = append(names, "topic"+strconv.Itoa(ai)+"_"+strconv.Itoa(t))
		}
		gt.Areas = append(gt.Areas, names)
	}
	for ci, members := range gt.Communities {
		var names []string
		if numAreas > 0 {
			names = gt.Areas[ci%numAreas]
		}
		for _, name := range names {
			a := b.InternAttr(name)
			for _, v := range members {
				if rng.Float64() < c.TopicAdoption {
					vertexAttrs[v] = append(vertexAttrs[v], a)
				}
			}
			// sprinkle the topic over random outsiders so its support
			// is not a perfect community indicator
			noise := int(math.Ceil(c.TopicNoise * float64(len(members))))
			for i := 0; i < noise; i++ {
				vertexAttrs[rng.Intn(n)] = append(vertexAttrs[rng.Intn(n)], a)
			}
		}
		gt.Topics = append(gt.Topics, names)
		gt.Dense = append(gt.Dense, rng.Float64() >= c.SparseFrac)
	}

	for v := 0; v < n; v++ {
		if _, err := b.AddVertexAttrIDs("v"+strconv.Itoa(v), vertexAttrs[v]); err != nil {
			return nil, nil, err
		}
	}

	// --- background edges (Chung–Lu)
	if c.AvgDegree > 0 && n > 1 {
		maxFactor := c.MaxDegreeFactor
		if maxFactor <= 0 {
			maxFactor = 6
		}
		addChungLuEdges(b, rng, n, c.AvgDegree, c.DegreeExponent, maxFactor*c.AvgDegree)
	}

	// --- community edges (dense communities only)
	for ci, members := range gt.Communities {
		if !gt.Dense[ci] {
			continue
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if rng.Float64() < c.IntraProb {
					if err := b.AddEdge(members[i], members[j]); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, gt, nil
}

// addChungLuEdges samples ~n·avg/2 edges with endpoint probability
// proportional to power-law weights (truncated at wmax), approximating
// a scale-free background without a dense hub core.
func addChungLuEdges(b *graph.Builder, rng *rand.Rand, n int, avg, alpha, wmax float64) {
	// Pareto weights with mean `avg`: wmin·(α−1)/(α−2) = avg.
	wmin := avg * (alpha - 2) / (alpha - 1)
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		w := wmin * math.Pow(1-rng.Float64(), -1/(alpha-1))
		if w > wmax {
			w = wmax
		}
		weights[i] = w
		total += w
	}
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	pick := func() int32 {
		x := rng.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	m := int(float64(n) * avg / 2)
	for i := 0; i < m; i++ {
		u, v := pick(), pick()
		if u == v {
			continue
		}
		// Builder dedups parallel edges at Build time.
		if err := b.AddEdge(u, v); err != nil {
			panic(err) // unreachable: endpoints are always in range
		}
	}
}

// zipfSampler draws ranks 0..n−1 with P(k) ∝ 1/(k+1)^s for any s > 0
// (math/rand's Zipf requires s > 1, which is too head-heavy for term
// distributions over vocabularies large relative to the corpus).
type zipfSampler struct {
	cum []float64
}

func newZipfSampler(s float64, n int) *zipfSampler {
	cum := make([]float64, n)
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += math.Pow(float64(k+1), -s)
		cum[k] = acc
	}
	return &zipfSampler{cum: cum}
}

func (z *zipfSampler) sample(rng *rand.Rand) int {
	x := rng.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// poisson draws from Poisson(lambda) via Knuth's method (fine for the
// small means used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // guard against pathological lambdas
		}
	}
}
