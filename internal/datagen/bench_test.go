package datagen

import "testing"

func BenchmarkGenerateSmall(b *testing.B) {
	c := smallConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Generate(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSmallDBLPProfile(b *testing.B) {
	c := SmallDBLP(1).Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Generate(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZipfSampler(b *testing.B) {
	z := newZipfSampler(0.6, 5000)
	rng := newRng(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.sample(rng)
	}
}
