package datagen

import "math"

// Profile couples a generator Config with the mining parameters the
// experiment harness uses on it — the paper's per-dataset settings,
// scaled to the synthetic sizes (DESIGN.md §3 documents the scaling).
type Profile struct {
	Config   Config
	SigmaMin int
	Gamma    float64
	MinSize  int
	// MinAttrs mirrors the paper's "attribute sets of size at least 2"
	// filter for the DBLP case study.
	MinAttrs int
	// EpsMin / DeltaMin are the output thresholds the harness applies
	// (0 = fully open, the historical default of the first profiles).
	EpsMin   float64
	DeltaMin float64
}

// scaleInt scales a count, keeping at least min.
func scaleInt(base int, scale float64, min int) int {
	v := int(math.Round(float64(base) * scale))
	if v < min {
		return min
	}
	return v
}

// SynthDBLP approximates the DBLP co-authorship graph of §4.1.1
// (108,030 vertices / 276,658 edges / 23,285 title-term attributes;
// σmin=400, min_size=10, γmin=0.5, sets ≥ 2 attributes) at roughly 1/15
// size by default (scale=1 → ~7,200 vertices). min_size shrinks with
// the community sizes.
func SynthDBLP(scale float64) Profile {
	return Profile{
		Config: Config{
			Name:             "SynthDBLP",
			Seed:             1201,
			NumVertices:      scaleInt(7200, scale, 400),
			AvgDegree:        5.1,
			DegreeExponent:   2.3,
			VocabSize:        scaleInt(1550, scale, 120),
			AttrsPerVertex:   6,
			ZipfS:            0.55,
			PhraseProb:       0.35,
			NumCommunities:   scaleInt(260, scale, 16),
			CommunitySizeMin: 8,
			CommunitySizeMax: 18,
			IntraProb:        0.70,
			TopicAttrs:       2,
			NumAreas:         scaleInt(40, scale, 4),
			TopicAdoption:    0.85,
			TopicNoise:       1.0,
			SparseFrac:       0.40,
		},
		SigmaMin: scaleInt(27, scale, 5),
		Gamma:    0.5,
		MinSize:  5,
		MinAttrs: 2,
	}
}

// SynthLastFm approximates the LastFm friendship graph of §4.1.2
// (272,412 vertices / 350,239 edges / 3.93M artist attributes;
// σmin=27,000 ≈ 10% of the users, min_size=5, γmin=0.5). Artists have
// enormous supports driven by popularity, while the correlation signal
// comes from small dense friend circles — hence the large TopicNoise.
func SynthLastFm(scale float64) Profile {
	return Profile{
		Config: Config{
			Name:             "SynthLastFm",
			Seed:             1202,
			NumVertices:      scaleInt(6000, scale, 400),
			AvgDegree:        2.6,
			DegreeExponent:   2.6,
			VocabSize:        scaleInt(12000, scale, 400),
			AttrsPerVertex:   25,
			ZipfS:            0.75,
			NumCommunities:   scaleInt(120, scale, 10),
			CommunitySizeMin: 6,
			CommunitySizeMax: 16,
			IntraProb:        0.80,
			TopicAttrs:       2,
			NumAreas:         scaleInt(24, scale, 4),
			TopicAdoption:    0.90,
			TopicNoise:       9,
			SparseFrac:       0.35,
		},
		SigmaMin: scaleInt(300, scale, 20),
		Gamma:    0.5,
		MinSize:  5,
		MinAttrs: 1,
	}
}

// SynthCiteSeer approximates the CiteSeerX citation graph of §4.1.3
// (294,104 vertices / 782,147 edges / 206,430 abstract-term attributes;
// σmin=2,000, min_size=5, γmin=0.5).
func SynthCiteSeer(scale float64) Profile {
	return Profile{
		Config: Config{
			Name:             "SynthCiteSeer",
			Seed:             1203,
			NumVertices:      scaleInt(7350, scale, 400),
			AvgDegree:        5.3,
			DegreeExponent:   2.2,
			VocabSize:        scaleInt(5200, scale, 250),
			AttrsPerVertex:   9,
			ZipfS:            0.72,
			PhraseProb:       0.30,
			NumCommunities:   scaleInt(150, scale, 12),
			CommunitySizeMin: 6,
			CommunitySizeMax: 13,
			IntraProb:        0.75,
			TopicAttrs:       2,
			NumAreas:         scaleInt(16, scale, 4),
			TopicAdoption:    0.90,
			TopicNoise:       2.0,
			SparseFrac:       0.35,
		},
		SigmaMin: scaleInt(50, scale, 8),
		Gamma:    0.5,
		MinSize:  5,
		MinAttrs: 2,
	}
}

// SynthDense is the approximate-mode showcase dataset: a small
// attribute vocabulary over a comparatively dense community-rich graph,
// so attribute supports dwarf the Hoeffding sample size (~185 at the
// defaults) and the quasi-clique coverage search — not attribute-set
// enumeration — dominates exact mining. This is the regime §6 of the
// paper targets with sampling; the bench harness uses it to track the
// exact-vs-sampled speedup. Counts stop shrinking below scale 0.4 (the
// floors): smaller generated instances of this shape get relatively
// denser and stop being representative.
func SynthDense(scale float64) Profile {
	return Profile{
		Config: Config{
			Name:             "SynthDense",
			Seed:             4242,
			NumVertices:      scaleInt(3000, scale, 1200),
			AvgDegree:        7,
			DegreeExponent:   2.5,
			VocabSize:        scaleInt(24, scale, 9),
			AttrsPerVertex:   5,
			ZipfS:            0.6,
			NumCommunities:   scaleInt(90, scale, 36),
			CommunitySizeMin: 10,
			CommunitySizeMax: 20,
			IntraProb:        0.65,
			TopicAttrs:       2,
			NumAreas:         scaleInt(8, scale, 4),
			TopicAdoption:    0.9,
			TopicNoise:       2.0,
			SparseFrac:       0.3,
		},
		SigmaMin: scaleInt(300, scale, 120),
		Gamma:    0.5,
		MinSize:  5,
		MinAttrs: 1,
		EpsMin:   0.2,
		DeltaMin: 1,
	}
}

// SmallDBLP approximates the SmallDBLP performance dataset of §4.2
// (32,908 vertices / 82,376 edges / 11,192 attributes; defaults
// γmin=0.5, min_size=11, σmin=100, εmin=0.1, δmin=1, k=5) at ~1/14
// size. The harness scales min_size to 5 and σmin to 12 accordingly.
func SmallDBLP(scale float64) Profile {
	return Profile{
		Config: Config{
			Name:             "SmallDBLP",
			Seed:             1204,
			NumVertices:      scaleInt(2400, scale, 300),
			AvgDegree:        5.0,
			DegreeExponent:   2.3,
			VocabSize:        scaleInt(800, scale, 80),
			AttrsPerVertex:   5,
			ZipfS:            0.50,
			PhraseProb:       0.35,
			NumCommunities:   scaleInt(100, scale, 8),
			CommunitySizeMin: 6,
			CommunitySizeMax: 12,
			IntraProb:        0.75,
			TopicAttrs:       2,
			NumAreas:         scaleInt(25, scale, 3),
			TopicAdoption:    0.85,
			TopicNoise:       1.0,
			SparseFrac:       0.35,
		},
		SigmaMin: scaleInt(12, scale, 4),
		Gamma:    0.5,
		MinSize:  5,
		MinAttrs: 1,
	}
}
