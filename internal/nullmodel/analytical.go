package nullmodel

import (
	"math"
	"sync"

	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/quasiclique"
)

// Analytical is max-εexp (Theorem 2): an upper bound on the expected
// structural correlation of an attribute set with support σ, equal to
// the probability that a random vertex of G keeps degree at least
// z = ⌈γmin·(min_size−1)⌉ inside a uniformly random σ-vertex subgraph:
//
//	max-εexp(σ) = Σ_{α=z}^{m} p(α) · Σ_{β=z}^{α} C(α,β) ρ^β (1−ρ)^{α−β}
//
// with ρ = (σ−1)/(|V|−1) (Theorem 1) and p the degree distribution.
type Analytical struct {
	n      int
	z      int
	degCnt []int64 // degCnt[α] = number of vertices of degree α
	total  int64

	mu    sync.Mutex
	cache map[int]float64
}

// NewAnalytical captures the degree distribution of g and the
// quasi-clique parameters.
func NewAnalytical(g *graph.Graph, p quasiclique.Params) *Analytical {
	h := g.DegreeHistogram()
	return &Analytical{
		n:      g.NumVertices(),
		z:      p.MinDegree(p.MinSize),
		degCnt: append([]int64(nil), h.Counts...),
		total:  h.Total,
		cache:  make(map[int]float64),
	}
}

// Name implements Model.
func (a *Analytical) Name() string { return "max-exp" }

// Exp implements Model; results are memoized per support.
func (a *Analytical) Exp(sigma int) float64 {
	a.mu.Lock()
	if v, ok := a.cache[sigma]; ok {
		a.mu.Unlock()
		return v
	}
	a.mu.Unlock()
	v := a.compute(sigma)
	a.mu.Lock()
	a.cache[sigma] = v
	a.mu.Unlock()
	return v
}

func (a *Analytical) compute(sigma int) float64 {
	if a.total == 0 || sigma <= 1 || a.n <= 1 {
		return 0
	}
	rho := float64(sigma-1) / float64(a.n-1)
	if rho > 1 {
		rho = 1
	}
	sum := 0.0
	for alpha := a.z; alpha < len(a.degCnt); alpha++ {
		if a.degCnt[alpha] == 0 {
			continue
		}
		p := float64(a.degCnt[alpha]) / float64(a.total)
		sum += p * binomialSurvival(alpha, a.z, rho)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// binomialSurvival returns P[Bin(n, p) ≥ k] with a numerically stable
// evaluation: the first term is computed in log space and subsequent
// terms by the ratio recurrence. Assumes 0 ≤ k ≤ n.
func binomialSurvival(n, k int, p float64) float64 {
	switch {
	case k <= 0:
		return 1
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	case k > n:
		return 0
	}
	logTerm := lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	term := math.Exp(logTerm)
	sum := term
	ratio := p / (1 - p)
	for b := k; b < n; b++ {
		term *= float64(n-b) / float64(b+1) * ratio
		sum += term
		if term < 1e-18*sum {
			break
		}
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// lchoose returns log C(n, k).
func lchoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
