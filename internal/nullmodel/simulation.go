package nullmodel

import (
	"math/rand"
	"sync"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/epsilon"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/quasiclique"
	"github.com/scpm/scpm/internal/stats"
)

// Simulation is sim-εexp: the Monte-Carlo expected structural
// correlation. For a given support σ it draws R uniform σ-vertex samples
// of G, runs the quasi-clique coverage search on each induced subgraph
// and averages the covered fraction.
//
// Sample randomness is derived from (Seed, σ, sample index), so results
// are deterministic and independent of call order — including calls from
// concurrent SCPM workers.
type Simulation struct {
	g    *graph.Graph
	p    quasiclique.Params
	R    int
	seed int64
	est  epsilon.Estimator

	mu    sync.Mutex
	cache map[int]meanStd
}

type meanStd struct{ mean, std float64 }

// NewSimulation configures a simulation model with R samples per
// support value; each sample's covered fraction is computed with the
// exact coverage search.
func NewSimulation(g *graph.Graph, p quasiclique.Params, r int, seed int64) *Simulation {
	if r < 1 {
		r = 1
	}
	return &Simulation{g: g, p: p, R: r, seed: seed, cache: make(map[int]meanStd)}
}

// NewSimulationApprox configures a simulation model whose per-sample
// covered fraction is itself estimated with the sampled ε estimator:
// instead of one full coverage search per Monte-Carlo draw, each draw
// runs a Hoeffding-bounded batch of early-exit membership queries
// (anchored quasi-clique searches). For supports well above the sample
// size this removes most of the simulation's cost; small draws still
// run the exact search. Non-positive sampleEps / sampleDelta use the
// estimator defaults. The estimator's randomness is derived from seed,
// so results stay deterministic.
func NewSimulationApprox(g *graph.Graph, p quasiclique.Params, r int, seed int64, sampleEps, sampleDelta float64) *Simulation {
	s := NewSimulation(g, p, r, seed)
	s.est = epsilon.NewSampled(p, quasiclique.Options{}, sampleEps, sampleDelta, seed)
	return s
}

// Name implements Model ("sim-exp-approx" when the covered fraction is
// itself estimated by membership sampling).
func (s *Simulation) Name() string {
	if s.est != nil {
		return "sim-exp-approx"
	}
	return "sim-exp"
}

// Exp implements Model.
func (s *Simulation) Exp(sigma int) float64 {
	m, _ := s.ExpStd(sigma)
	return m
}

// ExpStd returns the sample mean and standard deviation of the
// structural correlation over the R random samples (the error bars of
// Figures 4, 7 and 9).
func (s *Simulation) ExpStd(sigma int) (mean, std float64) {
	s.mu.Lock()
	if v, ok := s.cache[sigma]; ok {
		s.mu.Unlock()
		return v.mean, v.std
	}
	s.mu.Unlock()

	n := s.g.NumVertices()
	if sigma < s.p.MinSize || n == 0 {
		// no sample smaller than min_size can contain a quasi-clique
		s.store(sigma, 0, 0)
		return 0, 0
	}
	if sigma > n {
		sigma = n
	}
	vals := make([]float64, s.R)
	for i := 0; i < s.R; i++ {
		vals[i] = s.sampleOnce(sigma, i, s.sampleSeed(sigma, i))
	}
	mean, std = stats.MeanStd(vals)
	s.store(sigma, mean, std)
	return mean, std
}

func (s *Simulation) store(sigma int, mean, std float64) {
	s.mu.Lock()
	s.cache[sigma] = meanStd{mean, std}
	s.mu.Unlock()
}

func (s *Simulation) sampleSeed(sigma, i int) int64 {
	h := uint64(s.seed)
	h = h*1000003 + uint64(sigma)
	h = h*1000003 + uint64(i)
	// full avalanche so nearby (σ, i) pairs decorrelate
	return int64(stats.Mix64(h))
}

// sampleOnce draws one σ-vertex sample and returns its covered
// fraction — exactly, or through the configured estimator (whose own
// membership sampling only does the work the mean actually needs).
func (s *Simulation) sampleOnce(sigma, idx int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	n := s.g.NumVertices()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	// partial Fisher–Yates: the first σ entries become the sample
	for i := 0; i < sigma; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	sample := perm[:sigma]
	if s.est != nil {
		// The estimator keys its per-call randomness on the "attribute
		// set" identity; (σ, draw index) plays that role here.
		members := bitset.FromSlice(n, sample)
		e, err := s.est.Estimate(s.g, []int32{int32(sigma), int32(idx)}, members, members)
		if err != nil {
			// The sampled estimator runs without budget or context, so
			// like Coverage below it cannot fail on valid params.
			panic(err)
		}
		return e.Epsilon
	}
	sg := s.g.InducedByVertices(sample)
	res, err := quasiclique.Coverage(quasiclique.NewGraphCSR(sg.CSR()), s.p, quasiclique.Options{})
	if err != nil {
		// Coverage only errors on invalid params or an explicit node
		// budget; neither applies here.
		panic(err)
	}
	return float64(res.Covered.Count()) / float64(sigma)
}
