package nullmodel

import (
	"math/rand"
	"sync"

	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/quasiclique"
	"github.com/scpm/scpm/internal/stats"
)

// Simulation is sim-εexp: the Monte-Carlo expected structural
// correlation. For a given support σ it draws R uniform σ-vertex samples
// of G, runs the quasi-clique coverage search on each induced subgraph
// and averages the covered fraction.
//
// Sample randomness is derived from (Seed, σ, sample index), so results
// are deterministic and independent of call order — including calls from
// concurrent SCPM workers.
type Simulation struct {
	g    *graph.Graph
	p    quasiclique.Params
	R    int
	seed int64

	mu    sync.Mutex
	cache map[int]meanStd
}

type meanStd struct{ mean, std float64 }

// NewSimulation configures a simulation model with R samples per
// support value.
func NewSimulation(g *graph.Graph, p quasiclique.Params, r int, seed int64) *Simulation {
	if r < 1 {
		r = 1
	}
	return &Simulation{g: g, p: p, R: r, seed: seed, cache: make(map[int]meanStd)}
}

// Name implements Model.
func (s *Simulation) Name() string { return "sim-exp" }

// Exp implements Model.
func (s *Simulation) Exp(sigma int) float64 {
	m, _ := s.ExpStd(sigma)
	return m
}

// ExpStd returns the sample mean and standard deviation of the
// structural correlation over the R random samples (the error bars of
// Figures 4, 7 and 9).
func (s *Simulation) ExpStd(sigma int) (mean, std float64) {
	s.mu.Lock()
	if v, ok := s.cache[sigma]; ok {
		s.mu.Unlock()
		return v.mean, v.std
	}
	s.mu.Unlock()

	n := s.g.NumVertices()
	if sigma < s.p.MinSize || n == 0 {
		// no sample smaller than min_size can contain a quasi-clique
		s.store(sigma, 0, 0)
		return 0, 0
	}
	if sigma > n {
		sigma = n
	}
	vals := make([]float64, s.R)
	for i := 0; i < s.R; i++ {
		vals[i] = s.sampleOnce(sigma, s.sampleSeed(sigma, i))
	}
	mean, std = stats.MeanStd(vals)
	s.store(sigma, mean, std)
	return mean, std
}

func (s *Simulation) store(sigma int, mean, std float64) {
	s.mu.Lock()
	s.cache[sigma] = meanStd{mean, std}
	s.mu.Unlock()
}

func (s *Simulation) sampleSeed(sigma, i int) int64 {
	h := uint64(s.seed)
	h = h*1000003 + uint64(sigma)
	h = h*1000003 + uint64(i)
	// splitmix-style avalanche so nearby (σ, i) pairs decorrelate
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// sampleOnce draws one σ-vertex sample and returns its covered fraction.
func (s *Simulation) sampleOnce(sigma int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	n := s.g.NumVertices()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	// partial Fisher–Yates: the first σ entries become the sample
	for i := 0; i < sigma; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	sample := perm[:sigma]
	sg := s.g.InducedByVertices(sample)
	res, err := quasiclique.Coverage(quasiclique.NewGraphCSR(sg.CSR()), s.p, quasiclique.Options{})
	if err != nil {
		// Coverage only errors on invalid params or an explicit node
		// budget; neither applies here.
		panic(err)
	}
	return float64(res.Covered.Count()) / float64(sigma)
}
