package nullmodel

import (
	"math/rand"
	"testing"

	"github.com/scpm/scpm/internal/quasiclique"
)

func benchGraphAndParams(b *testing.B) (*Analytical, *Simulation) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	g := randomAttrGraph(rng, 2000, 0.003)
	p := quasiclique.Params{Gamma: 0.5, MinSize: 5}
	return NewAnalytical(g, p), NewSimulation(g, p, 20, 9)
}

func BenchmarkAnalyticalExp(b *testing.B) {
	a, _ := benchGraphAndParams(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// vary σ so the memo cache doesn't absorb the work
		_ = a.Exp(100 + i%500)
	}
}

func BenchmarkAnalyticalExpCached(b *testing.B) {
	a, _ := benchGraphAndParams(b)
	a.Exp(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Exp(300)
	}
}

func BenchmarkSimulationExp(b *testing.B) {
	_, s := benchGraphAndParams(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// vary σ to defeat the cache: each call runs 20 samples
		_, _ = s.ExpStd(100 + i%50)
	}
}
