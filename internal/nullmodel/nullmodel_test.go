package nullmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/quasiclique"
)

func paperParams() quasiclique.Params {
	return quasiclique.Params{Gamma: 0.6, MinSize: 4}
}

// slowSurvival computes P[Bin(n,p) ≥ k] with naive math.Pow terms.
func slowSurvival(n, k int, p float64) float64 {
	sum := 0.0
	for b := k; b <= n; b++ {
		sum += choose(n, b) * math.Pow(p, float64(b)) * math.Pow(1-p, float64(n-b))
	}
	return sum
}

func choose(n, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= float64(n-i) / float64(i+1)
	}
	return r
}

func TestBinomialSurvivalAgainstSlow(t *testing.T) {
	cases := []struct {
		n, k int
		p    float64
	}{
		{10, 3, 0.2}, {10, 0, 0.2}, {10, 10, 0.9}, {5, 2, 0.5},
		{40, 7, 0.13}, {100, 30, 0.31}, {3, 4, 0.5},
	}
	for _, c := range cases {
		got := binomialSurvival(c.n, c.k, c.p)
		want := slowSurvival(c.n, c.k, c.p)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("survival(%d,%d,%v) = %v, want %v", c.n, c.k, c.p, got, want)
		}
	}
}

func TestBinomialSurvivalEdges(t *testing.T) {
	if binomialSurvival(10, 0, 0.5) != 1 {
		t.Error("k=0 should be 1")
	}
	if binomialSurvival(10, 3, 0) != 0 {
		t.Error("p=0 should be 0")
	}
	if binomialSurvival(10, 3, 1) != 1 {
		t.Error("p=1 should be 1")
	}
	if binomialSurvival(3, 5, 0.5) != 0 {
		t.Error("k>n should be 0")
	}
}

func TestLchoose(t *testing.T) {
	if got := math.Exp(lchoose(10, 3)); math.Abs(got-120) > 1e-6 {
		t.Errorf("C(10,3) = %v", got)
	}
	if !math.IsInf(lchoose(3, 5), -1) {
		t.Error("C(3,5) should be log(0)")
	}
}

func TestAnalyticalEdgeCases(t *testing.T) {
	g := graph.PaperExample()
	a := NewAnalytical(g, paperParams())
	if a.Name() != "max-exp" {
		t.Error("name")
	}
	if a.Exp(0) != 0 || a.Exp(1) != 0 {
		t.Error("σ ≤ 1 should give 0")
	}
	// σ = n: ρ = 1 so every vertex with degree ≥ z survives.
	z := paperParams().MinDegree(4) // 2
	wantCnt := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if g.Degree(v) >= z {
			wantCnt++
		}
	}
	want := float64(wantCnt) / float64(g.NumVertices())
	if got := a.Exp(g.NumVertices()); math.Abs(got-want) > 1e-12 {
		t.Errorf("Exp(n) = %v, want %v", got, want)
	}
	// beyond n: clamped, still well-defined and ≤ 1
	if got := a.Exp(10 * g.NumVertices()); got < want-1e-12 || got > 1 {
		t.Errorf("Exp(10n) = %v", got)
	}
}

func TestAnalyticalInUnitInterval(t *testing.T) {
	g := graph.PaperExample()
	a := NewAnalytical(g, paperParams())
	for sigma := 0; sigma <= 12; sigma++ {
		v := a.Exp(sigma)
		if v < 0 || v > 1 {
			t.Fatalf("Exp(%d) = %v outside [0,1]", sigma, v)
		}
	}
}

func TestAnalyticalMonotone(t *testing.T) {
	// Theorem 5 requires exp monotonically non-decreasing in σ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAttrGraph(rng, 30+rng.Intn(40), 0.05+rng.Float64()*0.2)
		p := quasiclique.Params{
			Gamma:   []float64{0.5, 0.6, 0.8}[rng.Intn(3)],
			MinSize: 3 + rng.Intn(4),
		}
		a := NewAnalytical(g, p)
		prev := -1.0
		for sigma := 0; sigma <= g.NumVertices(); sigma++ {
			v := a.Exp(sigma)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticalCacheConsistency(t *testing.T) {
	g := graph.PaperExample()
	a := NewAnalytical(g, paperParams())
	v1 := a.Exp(7)
	v2 := a.Exp(7)
	if v1 != v2 {
		t.Fatal("cache returned different value")
	}
}

func TestSimulationCompleteGraph(t *testing.T) {
	// On a complete graph every σ ≥ min_size sample is a clique, so
	// the covered fraction is exactly 1; below min_size it is 0.
	b := graph.NewBuilder()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := b.AddVertex(string(rune('a'+i)), "x"); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := b.AddEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := quasiclique.Params{Gamma: 1, MinSize: 4}
	s := NewSimulation(g, p, 20, 42)
	if s.Name() != "sim-exp" {
		t.Error("name")
	}
	if m, _ := s.ExpStd(3); m != 0 {
		t.Errorf("Exp(3) = %v, want 0", m)
	}
	for _, sigma := range []int{4, 6, 10} {
		m, sd := s.ExpStd(sigma)
		if m != 1 || sd != 0 {
			t.Errorf("Exp(%d) = %v±%v, want 1±0", sigma, m, sd)
		}
	}
	// σ beyond n clamps to n
	if m := s.Exp(50); m != 1 {
		t.Errorf("Exp(50) = %v", m)
	}
}

func TestSimulationDeterministic(t *testing.T) {
	g := graph.PaperExample()
	p := paperParams()
	s1 := NewSimulation(g, p, 30, 7)
	s2 := NewSimulation(g, p, 30, 7)
	// different call orders must give identical per-σ values
	a8 := s1.Exp(8)
	a6 := s1.Exp(6)
	b6 := s2.Exp(6)
	b8 := s2.Exp(8)
	if a8 != b8 || a6 != b6 {
		t.Fatalf("not deterministic: %v/%v vs %v/%v", a8, a6, b8, b6)
	}
	s3 := NewSimulation(g, p, 30, 8)
	if s3.Exp(8) == a8 && s3.Exp(6) == a6 {
		t.Log("warning: different seeds produced identical estimates (possible but unlikely)")
	}
}

// TestSimulationApproxTracksExact: the estimator-backed simulation must
// agree with the exact simulation within the configured Hoeffding
// half-width (plus Monte-Carlo noise), stay deterministic, and use the
// complete-graph fast paths identically.
func TestSimulationApproxTracksExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomAttrGraph(rng, 120, 0.07)
	p := quasiclique.Params{Gamma: 0.5, MinSize: 4}
	const sampleEps = 0.2
	exact := NewSimulation(g, p, 20, 77)
	approx := NewSimulationApprox(g, p, 20, 77, sampleEps, 0.1)
	if approx.Name() != "sim-exp-approx" {
		t.Errorf("name = %q", approx.Name())
	}
	for _, sigma := range []int{40, 80, 120} {
		me := exact.Exp(sigma)
		ma := approx.Exp(sigma)
		// Means over R draws concentrate much harder than a single draw;
		// the per-draw half-width is a safe (loose) tolerance.
		if math.Abs(me-ma) > sampleEps {
			t.Errorf("σ=%d: approx mean %v vs exact %v beyond ±%g", sigma, ma, me, sampleEps)
		}
	}
	again := NewSimulationApprox(g, p, 20, 77, sampleEps, 0.1)
	for _, sigma := range []int{40, 120} {
		if approx.Exp(sigma) != again.Exp(sigma) {
			t.Errorf("σ=%d: approx simulation not deterministic", sigma)
		}
	}
	// Draws at or below the membership sample size delegate to the exact
	// coverage search, so small σ agree bit-for-bit.
	small := 6
	if a, e := approx.Exp(small), exact.Exp(small); a != e {
		t.Errorf("σ=%d: fallback diverged: %v vs %v", small, a, e)
	}
}

func TestSimulationBelowAnalyticalOnAverage(t *testing.T) {
	// max-εexp is an upper bound on the true expectation; with the
	// fixed seed the sample mean stays below it on these graphs.
	rng := rand.New(rand.NewSource(99))
	g := randomAttrGraph(rng, 80, 0.08)
	p := quasiclique.Params{Gamma: 0.5, MinSize: 4}
	a := NewAnalytical(g, p)
	s := NewSimulation(g, p, 40, 1234)
	for _, sigma := range []int{10, 20, 40, 60, 80} {
		sim := s.Exp(sigma)
		max := a.Exp(sigma)
		if sim > max+1e-9 {
			t.Errorf("σ=%d: sim-exp %v exceeds max-exp %v", sigma, sim, max)
		}
	}
}

func randomAttrGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		if _, err := b.AddVertex(vName(i), "x"); err != nil {
			panic(err)
		}
	}
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if rng.Float64() < p {
				if err := b.AddEdge(i, j); err != nil {
					panic(err)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func vName(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "v0"
	}
	var buf []byte
	for i > 0 {
		buf = append([]byte{digits[i%10]}, buf...)
		i /= 10
	}
	return "v" + string(buf)
}
