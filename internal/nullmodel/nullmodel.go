// Package nullmodel implements the two expected-structural-correlation
// models of §2.1.3 of the paper:
//
//   - Analytical: max-εexp, the closed-form upper bound of Theorem 2
//     built on the binomial degree projection of Theorem 1;
//   - Simulation: sim-εexp, the Monte-Carlo estimate over r random
//     vertex samples.
//
// Both satisfy Model, so the SCPM miner can normalize ε with either
// (δlb uses the analytical bound, δsim the simulation).
package nullmodel

// Model yields the expected structural correlation of an attribute set
// as a function of its support σ alone (Definition 5's exp function).
// Implementations must be safe for concurrent use and monotonically
// non-decreasing in σ — the property Theorem 5's pruning rule relies on.
type Model interface {
	// Exp returns εexp(σ) in [0, 1].
	Exp(sigma int) float64
	// Name identifies the model in reports ("max-exp", "sim-exp").
	Name() string
}
