// Package stats provides the small set of descriptive statistics the
// experiment harness and null models need: means, standard deviations,
// quantiles and integer histograms (degree distributions).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when
// fewer than two samples are given.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both the mean and the population standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest value of xs, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value of xs, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// IntHistogram counts occurrences of small non-negative integers. It is
// used for degree distributions: Counts[d] is the number of vertices of
// degree d.
type IntHistogram struct {
	Counts []int64
	Total  int64
}

// NewIntHistogram builds a histogram from the given values. Negative
// values are rejected with an error.
func NewIntHistogram(values []int) (*IntHistogram, error) {
	h := &IntHistogram{}
	for _, v := range values {
		if v < 0 {
			return nil, fmt.Errorf("stats: negative histogram value %d", v)
		}
		h.Observe(v)
	}
	return h, nil
}

// Observe adds one occurrence of v (v ≥ 0) to the histogram.
func (h *IntHistogram) Observe(v int) {
	for v >= len(h.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[v]++
	h.Total++
}

// P returns the empirical probability of value v.
func (h *IntHistogram) P(v int) float64 {
	if h.Total == 0 || v < 0 || v >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.Total)
}

// MaxValue returns the largest value with a non-zero count, or -1 when
// the histogram is empty.
func (h *IntHistogram) MaxValue() int {
	for v := len(h.Counts) - 1; v >= 0; v-- {
		if h.Counts[v] > 0 {
			return v
		}
	}
	return -1
}

// Mean returns the mean of the observed values.
func (h *IntHistogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	s := 0.0
	for v, c := range h.Counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.Total)
}
