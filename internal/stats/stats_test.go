package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); !almostEq(s, 2) {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	m, s := MeanStd(xs)
	if !almostEq(m, 5) || !almostEq(s, 2) {
		t.Fatalf("MeanStd = (%v,%v)", m, s)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Fatal("empty input should give zeros")
	}
	if StdDev([]float64{3}) != 0 {
		t.Fatal("single sample stddev should be 0")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// interpolation
	if got := Quantile([]float64{0, 10}, 0.3); !almostEq(got, 3) {
		t.Errorf("Quantile interp = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestIntHistogram(t *testing.T) {
	h, err := NewIntHistogram([]int{0, 1, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 4 {
		t.Fatalf("Total = %d", h.Total)
	}
	if !almostEq(h.P(1), 0.5) || !almostEq(h.P(3), 0.25) || h.P(2) != 0 {
		t.Fatalf("P values wrong: %v %v %v", h.P(1), h.P(3), h.P(2))
	}
	if h.P(-1) != 0 || h.P(100) != 0 {
		t.Fatal("out of range P should be 0")
	}
	if h.MaxValue() != 3 {
		t.Fatalf("MaxValue = %d", h.MaxValue())
	}
	if !almostEq(h.Mean(), 1.25) {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestIntHistogramNegative(t *testing.T) {
	if _, err := NewIntHistogram([]int{1, -2}); err == nil {
		t.Fatal("expected error for negative value")
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	h := &IntHistogram{}
	if h.MaxValue() != -1 || h.Mean() != 0 || h.P(0) != 0 {
		t.Fatal("empty histogram invariants broken")
	}
}

func TestQuickQuantileBounds(t *testing.T) {
	f := func(raw []int8, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q := float64(qRaw) / 255.0
		got := Quantile(xs, q)
		return got >= Min(xs)-1e-9 && got <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHistogramTotals(t *testing.T) {
	f := func(raw []uint8) bool {
		h := &IntHistogram{}
		for _, v := range raw {
			h.Observe(int(v))
		}
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		return sum == h.Total && h.Total == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMix64(t *testing.T) {
	// Known splitmix64 finalizer value (seed 1 → first splitmix output
	// is finalize(1 + 0x9e3779b97f4a7c15)).
	if got := Mix64(1 + 0x9e3779b97f4a7c15); got != 0x910a2dec89025cc1 {
		t.Errorf("Mix64 reference value mismatch: %#x", got)
	}
	// Avalanche sanity: consecutive inputs decorrelate.
	if Mix64(1) == Mix64(2) {
		t.Error("collision on consecutive inputs")
	}
	// Zero is the finalizer's (only known) fixed point — callers are
	// expected to pre-salt, which is why this is documented rather than
	// "fixed" here.
	if Mix64(0) != 0 {
		t.Error("zero fixed point disappeared — mixing constants changed?")
	}
}
