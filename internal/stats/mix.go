package stats

// Mix64 applies the splitmix64 finalizer to h: a full-avalanche bit
// mixer, so nearby inputs decorrelate. It is the one shared mixing step
// behind every deterministic seed derivation in the repository (the
// simulation null model's per-sample seeds, the sampled ε estimator's
// per-set seeds); keeping a single implementation means a change to the
// mixing cannot silently break one caller's determinism guarantees.
// Zero is the finalizer's fixed point — pre-salt the input (e.g. xor a
// constant or fold in a counter) rather than feeding raw zeros.
func Mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
