package shard

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
)

// Manifest formats; see docs/FILE_FORMATS.md for the full spec.
// v1 carries the plan only (loaders re-evaluate level 1 themselves);
// v2 additionally seals every level-1 verdict so shard workers skip
// those coverage searches. Both load; BuildManifestSealed writes v2.
const (
	ManifestFormatV1 = "scpm-manifest/v1"
	ManifestFormatV2 = "scpm-manifest/v2"

	// ManifestFormat is the legacy name of the v1 format marker.
	ManifestFormat = ManifestFormatV1
)

// RootAssignment records one frequent root attribute's place in the
// plan: its name, id and support in the planned graph, its rank in
// extension order, and the shard owning its subtree.
type RootAssignment struct {
	Attr    string `json:"attr"`
	ID      int32  `json:"id"`
	Support int    `json:"support"`
	Rank    int    `json:"rank"`
	Shard   int    `json:"shard"`
}

// Manifest is the versioned, checksummed shard map: which shard owns
// which lattice prefix, against which dataset, and where each shard's
// snapshot lives. scpm-serve -shard boots its slice from it and
// scpm-gateway routes single-owner queries with it.
type Manifest struct {
	// Format is always ManifestFormat.
	Format string `json:"format"`
	// Shards is the number of partitions N.
	Shards int `json:"shards"`
	// SigmaMin is the support threshold the plan was derived under.
	SigmaMin int `json:"sigma_min"`
	// Vertices, Edges, Attributes pin the dataset shape the plan was
	// derived from, mirroring the index snapshot's shape check.
	Vertices   int `json:"vertices"`
	Edges      int `json:"edges"`
	Attributes int `json:"attributes"`
	// GraphVersion is the data version the plan was derived at.
	GraphVersion uint64 `json:"graph_version"`
	// Roots lists every frequent single in extension order (rank
	// ascending) with its shard assignment.
	Roots []RootAssignment `json:"roots"`
	// Snapshots holds one per-shard snapshot path, indexed by shard;
	// empty strings mean "mine at boot".
	Snapshots []string `json:"snapshots,omitempty"`
	// Level1 carries the sealed level-1 verdicts of a v2 manifest —
	// nil exactly when Format is v1. Verdicts align with Roots by index
	// (rank order).
	Level1 *SealedLevel1 `json:"level1,omitempty"`
	// Checksum is the FNV-1a/64 hex digest of the manifest JSON with
	// this field empty; Load refuses a manifest whose digest mismatches.
	Checksum string `json:"checksum"`
}

// SealedLevel1 is the v2 manifest's verdict payload: every frequent
// single's complete level-1 evaluation, pinned to the parameter
// fingerprint it was computed under. Shard workers loading it skip all
// level-1 coverage searches while producing bit-identical output.
type SealedLevel1 struct {
	// ParamsKey is core.Params.Level1Fingerprint of the sealing run; a
	// consumer mining under different parameters must refuse the seal.
	ParamsKey string `json:"params_key"`
	// Verdicts holds one sealed verdict per manifest root, aligned with
	// Roots by index (rank order).
	Verdicts []SealedVerdict `json:"verdicts"`
}

// SealedVerdict is one root's serialized core.Level1Verdict. Member
// sets are not sealed (they are the graph's own attribute postings);
// bitsets serialize as base64 of their canonical little-endian byte
// form, certificates as base64 of little-endian int32s. HasHanddown /
// HasExact / HasPatterns distinguish "absent" from "present but empty"
// — the distinction changes replay behavior, so it must survive the
// round trip.
type SealedVerdict struct {
	Epsilon         float64         `json:"epsilon"`
	Covered         int             `json:"covered"`
	KMass           float64         `json:"kmass"`
	Estimated       bool            `json:"estimated,omitempty"`
	ErrBound        float64         `json:"err_bound,omitempty"`
	SampledVertices int             `json:"sampled_vertices,omitempty"`
	Nodes           int64           `json:"nodes"`
	HasHanddown     bool            `json:"has_handdown,omitempty"`
	Handdown        string          `json:"handdown,omitempty"`
	HasExact        bool            `json:"has_exact,omitempty"`
	Exact           string          `json:"exact,omitempty"`
	HasPatterns     bool            `json:"has_patterns,omitempty"`
	Patterns        []SealedPattern `json:"patterns,omitempty"`
	Certs           []string        `json:"certs,omitempty"`
}

// SealedPattern is one sealed top-k pattern of a root. The attribute
// identity (and its name) is the root itself, so only the quasi-clique
// body is stored.
type SealedPattern struct {
	Vertices []int32 `json:"vertices"`
	MinDeg   int     `json:"min_deg"`
	Edges    int     `json:"edges"`
}

// BuildManifest plans g into n shards and renders the plan as a sealed
// manifest. snapshots, when non-nil, must carry one path per shard.
func BuildManifest(g *graph.Graph, sigmaMin, n int, snapshots []string) (*Manifest, error) {
	if snapshots != nil && len(snapshots) != n {
		return nil, fmt.Errorf("shard: %d snapshot paths for %d shards", len(snapshots), n)
	}
	parts, err := Plan(g, sigmaMin, n)
	if err != nil {
		return nil, err
	}
	shardOf := make(map[int32]int)
	for _, p := range parts {
		for _, a := range p.Roots {
			shardOf[a] = p.Shard
		}
	}
	m := &Manifest{
		Format:       ManifestFormat,
		Shards:       n,
		SigmaMin:     sigmaMin,
		Vertices:     g.NumVertices(),
		Edges:        g.NumEdges(),
		Attributes:   g.NumAttributes(),
		GraphVersion: g.Version(),
		Snapshots:    snapshots,
	}
	for rank, r := range rankedRoots(g, sigmaMin) {
		m.Roots = append(m.Roots, RootAssignment{
			Attr:    g.AttrName(r.attr),
			ID:      r.attr,
			Support: r.support,
			Rank:    rank,
			Shard:   shardOf[r.attr],
		})
	}
	m.Seal()
	return m, nil
}

// Seal computes and installs the checksum.
func (m *Manifest) Seal() {
	m.Checksum = ""
	m.Checksum = m.digest()
}

// Verify checks the format marker, the checksum and — for v2 — the
// shape of the sealed level-1 payload. Both v1 (plan only) and v2
// (plan + sealed verdicts) manifests pass.
func (m *Manifest) Verify() error {
	switch m.Format {
	case ManifestFormatV1:
		if m.Level1 != nil {
			return fmt.Errorf("shard: %s manifest carries a level-1 seal (v2 payload under a v1 marker)", m.Format)
		}
	case ManifestFormatV2:
		if m.Level1 == nil {
			return fmt.Errorf("shard: %s manifest has no level-1 seal", m.Format)
		}
		if m.Level1.ParamsKey == "" {
			return fmt.Errorf("shard: %s manifest seals verdicts without a parameter fingerprint", m.Format)
		}
		if len(m.Level1.Verdicts) != len(m.Roots) {
			return fmt.Errorf("shard: manifest seals %d verdicts for %d roots", len(m.Level1.Verdicts), len(m.Roots))
		}
	default:
		return fmt.Errorf("shard: manifest format %q, want %q or %q", m.Format, ManifestFormatV1, ManifestFormatV2)
	}
	if m.Shards < 1 {
		return fmt.Errorf("shard: manifest declares %d shards", m.Shards)
	}
	if m.Snapshots != nil && len(m.Snapshots) != m.Shards {
		return fmt.Errorf("shard: manifest lists %d snapshots for %d shards", len(m.Snapshots), m.Shards)
	}
	want := m.Checksum
	cp := *m
	cp.Checksum = ""
	if got := cp.digest(); got != want {
		return fmt.Errorf("shard: manifest checksum %s, computed %s (corrupt or hand-edited manifest)", want, got)
	}
	for i, r := range m.Roots {
		if r.Rank != i {
			return fmt.Errorf("shard: manifest root %d has rank %d (roots must be listed in rank order)", i, r.Rank)
		}
		if r.Shard < 0 || r.Shard >= m.Shards {
			return fmt.Errorf("shard: manifest root %q assigned to shard %d of %d", r.Attr, r.Shard, m.Shards)
		}
	}
	return nil
}

// digest renders the FNV-1a/64 hex digest of the manifest's JSON.
func (m *Manifest) digest() string {
	b, err := json.Marshal(m)
	if err != nil {
		// Manifest is plain data; Marshal cannot fail.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(b) //nolint:errcheck // hash writes never fail
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteManifest seals m and writes it atomically (tmp + rename).
func WriteManifest(m *Manifest, path string) error {
	m.Seal()
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadManifest reads and verifies a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest %s: %w", path, err)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &m, nil
}

// Rank returns the extension-order rank of an attribute name, or -1
// when the attribute is not a frequent root of the plan.
func (m *Manifest) Rank(attr string) int {
	for _, r := range m.Roots {
		if r.Attr == attr {
			return r.Rank
		}
	}
	return -1
}

// AttrID maps an attribute name to its id in the planned graph;
// ok is false for attributes that are not frequent roots.
func (m *Manifest) AttrID(attr string) (int32, bool) {
	for _, r := range m.Roots {
		if r.Attr == attr {
			return r.ID, true
		}
	}
	return 0, false
}

// Route returns the shard owning the attribute set named by attrs: the
// shard of the set's minimal attribute in extension order — where the
// mining run indexed it, if it qualified. Sets containing no frequent
// root cannot be indexed anywhere; they route by a deterministic hash
// of the sorted names (any shard computes the same on-demand answer,
// the hash just spreads the load).
func (m *Manifest) Route(attrs []string) int {
	best := -1
	for _, a := range attrs {
		if r := m.Rank(a); r >= 0 && (best < 0 || r < best) {
			best = r
		}
	}
	if best >= 0 {
		return m.Roots[best].Shard
	}
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	h := fnv.New64a()
	for _, a := range sorted {
		fmt.Fprintf(h, "%s\x00", a)
	}
	return int(h.Sum64() % uint64(m.Shards))
}

// BuildManifestSealed plans g into n shards and seals every level-1
// verdict into a v2 manifest: one ComputeLevel1 pass, paid once at plan
// time, that every shard worker loading the manifest skips thereafter.
// p is the full mining parameter block the shard workers will run
// under; its SigmaMin drives the plan.
func BuildManifestSealed(ctx context.Context, g *graph.Graph, p core.Params, n int, snapshots []string) (*Manifest, error) {
	m, err := BuildManifest(g, p.SigmaMin, n, snapshots)
	if err != nil {
		return nil, err
	}
	verdicts, err := core.ComputeLevel1(ctx, g, p)
	if err != nil {
		return nil, err
	}
	if err := m.SealLevel1(verdicts); err != nil {
		return nil, err
	}
	return m, nil
}

// SealLevel1 installs a verdict set into the manifest, upgrading it to
// v2 and re-sealing the checksum. The verdicts must cover every root
// and match the manifest's graph version.
func (m *Manifest) SealLevel1(v *core.Level1Verdicts) error {
	if v.GraphVersion() != m.GraphVersion {
		return fmt.Errorf("shard: verdicts at graph version %d, manifest at %d", v.GraphVersion(), m.GraphVersion)
	}
	sealed := &SealedLevel1{ParamsKey: v.ParamsKey(), Verdicts: make([]SealedVerdict, len(m.Roots))}
	for i, r := range m.Roots {
		d := v.Lookup(r.ID)
		if d == nil {
			return fmt.Errorf("shard: no verdict for root %q (id %d)", r.Attr, r.ID)
		}
		sv := SealedVerdict{
			Epsilon:         d.Epsilon,
			Covered:         d.Covered,
			KMass:           d.KMass,
			Estimated:       d.Estimated,
			ErrBound:        d.ErrBound,
			SampledVertices: d.SampledVertices,
			Nodes:           d.Nodes,
			HasPatterns:     d.HasPatterns,
		}
		if d.Handdown != nil {
			sv.HasHanddown = true
			sv.Handdown = base64.StdEncoding.EncodeToString(d.Handdown.Bytes())
		}
		if d.Exact != nil {
			sv.HasExact = true
			sv.Exact = base64.StdEncoding.EncodeToString(d.Exact.Bytes())
		}
		for _, p := range d.Patterns {
			sv.Patterns = append(sv.Patterns, SealedPattern{Vertices: p.Vertices, MinDeg: p.MinDeg, Edges: p.Edges})
		}
		for _, c := range d.Certs {
			sv.Certs = append(sv.Certs, sealInts(c))
		}
		sealed.Verdicts[i] = sv
	}
	m.Level1 = sealed
	m.Format = ManifestFormatV2
	m.Seal()
	return nil
}

// Level1Verdicts reconstructs the sealed verdicts for injection into
// core.Params.Level1Verdicts. It returns (nil, nil) when the manifest
// carries no seal (v1) or when g has moved past the sealed graph
// version — live updates silently fall back to evaluating level 1,
// matching core's own version guard. Bitsets are rebuilt at g's vertex
// capacity; pattern attribute identity is the root itself.
func (m *Manifest) Level1Verdicts(g *graph.Graph) (*core.Level1Verdicts, error) {
	if m.Level1 == nil || g.Version() != m.GraphVersion {
		return nil, nil
	}
	if g.NumVertices() != m.Vertices || g.NumAttributes() != m.Attributes {
		return nil, fmt.Errorf("shard: graph shape %dv/%da does not match manifest %dv/%da at the same version",
			g.NumVertices(), g.NumAttributes(), m.Vertices, m.Attributes)
	}
	out := core.NewLevel1Verdicts(m.GraphVersion, m.Level1.ParamsKey)
	n := g.NumVertices()
	for i, sv := range m.Roots {
		s := m.Level1.Verdicts[i]
		d := &core.Level1Verdict{
			Attr:            sv.ID,
			Epsilon:         s.Epsilon,
			Covered:         s.Covered,
			KMass:           s.KMass,
			Estimated:       s.Estimated,
			ErrBound:        s.ErrBound,
			SampledVertices: s.SampledVertices,
			Nodes:           s.Nodes,
			HasPatterns:     s.HasPatterns,
		}
		if s.HasHanddown {
			set, err := unsealBitset(n, s.Handdown)
			if err != nil {
				return nil, fmt.Errorf("shard: root %q handdown: %w", sv.Attr, err)
			}
			d.Handdown = set
		}
		if s.HasExact {
			set, err := unsealBitset(n, s.Exact)
			if err != nil {
				return nil, fmt.Errorf("shard: root %q exact handdown: %w", sv.Attr, err)
			}
			d.Exact = set
		}
		if s.HasPatterns {
			attrs := []int32{sv.ID}
			names := g.AttrSetNames(attrs)
			d.Patterns = make([]core.Pattern, len(s.Patterns))
			for j, p := range s.Patterns {
				d.Patterns[j] = core.Pattern{Attrs: attrs, Names: names, Vertices: p.Vertices, MinDeg: p.MinDeg, Edges: p.Edges}
			}
		}
		if len(s.Certs) > 0 {
			d.Certs = make([][]int32, len(s.Certs))
			for j, c := range s.Certs {
				vs, err := unsealInts(c)
				if err != nil {
					return nil, fmt.Errorf("shard: root %q certificate %d: %w", sv.Attr, j, err)
				}
				d.Certs[j] = vs
			}
		}
		out.Add(d)
	}
	return out, nil
}

// Owner returns a core.Params.ShardOwner routing by the manifest's own
// root assignments while the graph sits at the sealed version, falling
// back to a freshly derived plan (Owner) once live updates move past
// it — the same deterministic re-partition every replica derives.
func (m *Manifest) Owner(k int) func(*graph.Graph, int32) bool {
	if m.Shards < 1 || k < 0 || k >= m.Shards {
		panic(fmt.Sprintf("shard: invalid shard %d/%d", k, m.Shards))
	}
	owns := make(map[int32]bool)
	for _, r := range m.Roots {
		if r.Shard == k {
			owns[r.ID] = true
		}
	}
	fallback := Owner(m.SigmaMin, k, m.Shards)
	return func(g *graph.Graph, root int32) bool {
		if g.Version() == m.GraphVersion {
			return owns[root]
		}
		return fallback(g, root)
	}
}

// sealInts renders int32s as base64 of their little-endian bytes.
func sealInts(vs []int32) string {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return base64.StdEncoding.EncodeToString(b)
}

// unsealInts reverses sealInts.
func unsealInts(enc string) ([]int32, error) {
	b, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return nil, err
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("shard: %d-byte int32 run is not a multiple of 4", len(b))
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// unsealBitset reverses the base64-of-Bytes bitset encoding at
// capacity n.
func unsealBitset(n int, enc string) (*bitset.Set, error) {
	b, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return nil, err
	}
	return bitset.FromBytes(n, b)
}
