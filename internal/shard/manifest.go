package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"github.com/scpm/scpm/internal/graph"
)

// ManifestFormat identifies the shard manifest file format; see
// docs/FILE_FORMATS.md for the full spec.
const ManifestFormat = "scpm-manifest/v1"

// RootAssignment records one frequent root attribute's place in the
// plan: its name, id and support in the planned graph, its rank in
// extension order, and the shard owning its subtree.
type RootAssignment struct {
	Attr    string `json:"attr"`
	ID      int32  `json:"id"`
	Support int    `json:"support"`
	Rank    int    `json:"rank"`
	Shard   int    `json:"shard"`
}

// Manifest is the versioned, checksummed shard map: which shard owns
// which lattice prefix, against which dataset, and where each shard's
// snapshot lives. scpm-serve -shard boots its slice from it and
// scpm-gateway routes single-owner queries with it.
type Manifest struct {
	// Format is always ManifestFormat.
	Format string `json:"format"`
	// Shards is the number of partitions N.
	Shards int `json:"shards"`
	// SigmaMin is the support threshold the plan was derived under.
	SigmaMin int `json:"sigma_min"`
	// Vertices, Edges, Attributes pin the dataset shape the plan was
	// derived from, mirroring the index snapshot's shape check.
	Vertices   int `json:"vertices"`
	Edges      int `json:"edges"`
	Attributes int `json:"attributes"`
	// GraphVersion is the data version the plan was derived at.
	GraphVersion uint64 `json:"graph_version"`
	// Roots lists every frequent single in extension order (rank
	// ascending) with its shard assignment.
	Roots []RootAssignment `json:"roots"`
	// Snapshots holds one per-shard snapshot path, indexed by shard;
	// empty strings mean "mine at boot".
	Snapshots []string `json:"snapshots,omitempty"`
	// Checksum is the FNV-1a/64 hex digest of the manifest JSON with
	// this field empty; Load refuses a manifest whose digest mismatches.
	Checksum string `json:"checksum"`
}

// BuildManifest plans g into n shards and renders the plan as a sealed
// manifest. snapshots, when non-nil, must carry one path per shard.
func BuildManifest(g *graph.Graph, sigmaMin, n int, snapshots []string) (*Manifest, error) {
	if snapshots != nil && len(snapshots) != n {
		return nil, fmt.Errorf("shard: %d snapshot paths for %d shards", len(snapshots), n)
	}
	parts, err := Plan(g, sigmaMin, n)
	if err != nil {
		return nil, err
	}
	shardOf := make(map[int32]int)
	for _, p := range parts {
		for _, a := range p.Roots {
			shardOf[a] = p.Shard
		}
	}
	m := &Manifest{
		Format:       ManifestFormat,
		Shards:       n,
		SigmaMin:     sigmaMin,
		Vertices:     g.NumVertices(),
		Edges:        g.NumEdges(),
		Attributes:   g.NumAttributes(),
		GraphVersion: g.Version(),
		Snapshots:    snapshots,
	}
	for rank, r := range rankedRoots(g, sigmaMin) {
		m.Roots = append(m.Roots, RootAssignment{
			Attr:    g.AttrName(r.attr),
			ID:      r.attr,
			Support: r.support,
			Rank:    rank,
			Shard:   shardOf[r.attr],
		})
	}
	m.Seal()
	return m, nil
}

// Seal computes and installs the checksum.
func (m *Manifest) Seal() {
	m.Checksum = ""
	m.Checksum = m.digest()
}

// Verify checks the format marker and the checksum.
func (m *Manifest) Verify() error {
	if m.Format != ManifestFormat {
		return fmt.Errorf("shard: manifest format %q, want %q", m.Format, ManifestFormat)
	}
	if m.Shards < 1 {
		return fmt.Errorf("shard: manifest declares %d shards", m.Shards)
	}
	if m.Snapshots != nil && len(m.Snapshots) != m.Shards {
		return fmt.Errorf("shard: manifest lists %d snapshots for %d shards", len(m.Snapshots), m.Shards)
	}
	want := m.Checksum
	cp := *m
	cp.Checksum = ""
	if got := cp.digest(); got != want {
		return fmt.Errorf("shard: manifest checksum %s, computed %s (corrupt or hand-edited manifest)", want, got)
	}
	for i, r := range m.Roots {
		if r.Rank != i {
			return fmt.Errorf("shard: manifest root %d has rank %d (roots must be listed in rank order)", i, r.Rank)
		}
		if r.Shard < 0 || r.Shard >= m.Shards {
			return fmt.Errorf("shard: manifest root %q assigned to shard %d of %d", r.Attr, r.Shard, m.Shards)
		}
	}
	return nil
}

// digest renders the FNV-1a/64 hex digest of the manifest's JSON.
func (m *Manifest) digest() string {
	b, err := json.Marshal(m)
	if err != nil {
		// Manifest is plain data; Marshal cannot fail.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(b) //nolint:errcheck // hash writes never fail
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteManifest seals m and writes it atomically (tmp + rename).
func WriteManifest(m *Manifest, path string) error {
	m.Seal()
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadManifest reads and verifies a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest %s: %w", path, err)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &m, nil
}

// Rank returns the extension-order rank of an attribute name, or -1
// when the attribute is not a frequent root of the plan.
func (m *Manifest) Rank(attr string) int {
	for _, r := range m.Roots {
		if r.Attr == attr {
			return r.Rank
		}
	}
	return -1
}

// AttrID maps an attribute name to its id in the planned graph;
// ok is false for attributes that are not frequent roots.
func (m *Manifest) AttrID(attr string) (int32, bool) {
	for _, r := range m.Roots {
		if r.Attr == attr {
			return r.ID, true
		}
	}
	return 0, false
}

// Route returns the shard owning the attribute set named by attrs: the
// shard of the set's minimal attribute in extension order — where the
// mining run indexed it, if it qualified. Sets containing no frequent
// root cannot be indexed anywhere; they route by a deterministic hash
// of the sorted names (any shard computes the same on-demand answer,
// the hash just spreads the load).
func (m *Manifest) Route(attrs []string) int {
	best := -1
	for _, a := range attrs {
		if r := m.Rank(a); r >= 0 && (best < 0 || r < best) {
			best = r
		}
	}
	if best >= 0 {
		return m.Roots[best].Shard
	}
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	h := fnv.New64a()
	for _, a := range sorted {
		fmt.Fprintf(h, "%s\x00", a)
	}
	return int(h.Sum64() % uint64(m.Shards))
}
