package shard

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/experiments"
	"github.com/scpm/scpm/internal/graph"
)

// testGraph builds a randomized attributed graph with planted
// attribute-correlated near-cliques — the same shape the core remine
// equivalence tests use, big enough that the sampled ε path engages.
func testGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 160
	const numAttrs = 6
	b := graph.NewBuilder()
	for v := 0; v < n; v++ {
		var attrs []string
		for a := 0; a < numAttrs; a++ {
			if rng.Float64() < 0.55 {
				attrs = append(attrs, fmt.Sprintf("a%d", a))
			}
		}
		if _, err := b.AddVertex(fmt.Sprintf("v%d", v), attrs...); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			if err := b.AddEdge(int32(u), int32(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for c := 0; c < 10; c++ {
		var group []int32
		for len(group) < 6 {
			group = append(group, int32(rng.Intn(n)))
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if group[i] != group[j] && rng.Float64() < 0.9 {
					if err := b.AddEdge(group[i], group[j]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testParams returns the exact and sampled parameter blocks the
// equivalence tests run under (mirroring the core remine tests).
func testParams() map[string]core.Params {
	base := core.Params{
		SigmaMin:      20,
		Gamma:         0.5,
		MinSize:       4,
		EpsMin:        0.05,
		K:             3,
		MaxAttrs:      3,
		RecordLattice: true,
	}
	sampled := base
	sampled.EpsilonMode = core.EpsilonSampled
	sampled.SampleEps = 0.2
	sampled.SampleDelta = 0.1
	sampled.Seed = 42
	return map[string]core.Params{"exact": base, "sampled": sampled}
}

func setFingerprints(res *core.Result) []string {
	out := make([]string, len(res.Sets))
	for i, s := range res.Sets {
		out[i] = fmt.Sprintf("%s|%s|σ=%d|ε=%.9f|εexp=%.9f|δ=%.9g|cov=%d|est=%v|err=%.9f|samp=%d",
			s.ID(), s.Key(), s.Support, s.Epsilon, s.ExpEps, s.Delta, s.Covered,
			s.Estimated, s.EpsilonErr, s.SampledVertices)
	}
	return out
}

func patternFingerprints(res *core.Result) []string {
	out := make([]string, len(res.Patterns))
	for i, p := range res.Patterns {
		out[i] = fmt.Sprintf("%s|%s|%v|deg=%d|e=%d", p.ID(), p.SetID(), p.Vertices, p.MinDeg, p.Edges)
	}
	return out
}

func requireEqualResults(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	gs, ws := setFingerprints(got), setFingerprints(want)
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d sets, want %d\ngot:  %v\nwant: %v", label, len(gs), len(ws), gs, ws)
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("%s: set[%d]\ngot:  %s\nwant: %s", label, i, gs[i], ws[i])
		}
	}
	gp, wp := patternFingerprints(got), patternFingerprints(want)
	if len(gp) != len(wp) {
		t.Fatalf("%s: %d patterns, want %d", label, len(gp), len(wp))
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: pattern[%d]\ngot:  %s\nwant: %s", label, i, gp[i], wp[i])
		}
	}
}

// requireEqualStats asserts every counter except Duration and
// ReusedVerdicts matches — the per-shard stats must SUM to the
// single-process counters, which Merge produces, so sharding hides no
// work and double-counts none. ReusedVerdicts is pure accounting (how
// the level-1 numbers were obtained, not what they are), so it is
// excluded like Duration.
func requireEqualStats(t *testing.T, label string, got, want core.Stats) {
	t.Helper()
	got.Duration = 0
	want.Duration = 0
	got.ReusedVerdicts = 0
	want.ReusedVerdicts = 0
	if got != want {
		t.Fatalf("%s: stats\ngot:  %+v\nwant: %+v", label, got, want)
	}
}

// TestOwnershipPartition is the size-1-set ownership property: for
// randomized graphs and every shard count, each frequent single
// attribute — and with it each attribute set, whose owner is defined
// as the owner of its first attribute in extension order — belongs to
// exactly one partition.
func TestOwnershipPartition(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		g := testGraph(t, int64(100+trial))
		const sigmaMin = 20
		for n := 1; n <= 4; n++ {
			parts, err := Plan(g, sigmaMin, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(parts) != n {
				t.Fatalf("Plan returned %d partitions, want %d", len(parts), n)
			}
			owners := make(map[int32]int)
			for _, p := range parts {
				for _, root := range p.Roots {
					owners[root]++
					if !p.Owns(root) {
						t.Fatalf("partition %d lists root %d but Owns denies it", p.Shard, root)
					}
				}
			}
			for a := int32(0); a < int32(g.NumAttributes()); a++ {
				frequent := g.AttrSupport(a) >= sigmaMin
				if frequent && owners[a] != 1 {
					t.Fatalf("n=%d: frequent single %d owned by %d partitions, want exactly 1", n, a, owners[a])
				}
				if !frequent && owners[a] != 0 {
					t.Fatalf("n=%d: infrequent single %d owned by %d partitions, want 0", n, a, owners[a])
				}
			}
		}
	}
}

// TestPlanBalance asserts the planner's load balance on the committed
// datasets: the heaviest shard's candidate-1-set weight stays within
// 2× of the ideal (total/n) split.
func TestPlanBalance(t *testing.T) {
	for _, name := range []string{"dblp", "dense"} {
		ds, err := experiments.Load(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		sigmaMin := ds.Params().SigmaMin
		for _, n := range []int{2, 4} {
			parts, err := Plan(ds.Graph, sigmaMin, n)
			if err != nil {
				t.Fatal(err)
			}
			total, maxW, roots := 0, 0, 0
			for _, p := range parts {
				total += p.Weight
				roots += len(p.Roots)
				if p.Weight > maxW {
					maxW = p.Weight
				}
			}
			if roots < 2*n-1 {
				t.Skipf("%s: only %d frequent roots, too few for %d shards to balance", name, roots, n)
			}
			ideal := float64(total) / float64(n)
			if float64(maxW) > 2*ideal {
				t.Errorf("%s n=%d: heaviest shard weight %d exceeds 2× ideal %.1f", name, n, maxW, ideal)
			}
			t.Logf("%s n=%d: %d roots, total weight %d, heaviest %d (ideal %.1f)", name, n, roots, total, maxW, ideal)
		}
	}
}

// TestShardMergeEquivalence is the tentpole property test: for
// randomized graphs, in exact AND sampled ε modes, mining 1–4 shards
// independently and merging reproduces the single-process Mine output
// bit-identically — sets, ε, δ, patterns, stable ids AND the stats
// counters — and a Remine on the merged lattice behaves exactly like a
// Remine on a single-process lattice.
func TestShardMergeEquivalence(t *testing.T) {
	ctx := context.Background()
	for mode, p := range testParams() {
		t.Run(mode, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				g := testGraph(t, int64(300+trial))
				want, err := core.Mine(ctx, g, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				for n := 1; n <= 4; n++ {
					label := fmt.Sprintf("trial=%d n=%d", trial, n)
					parts := make([]*core.Result, n)
					for k := 0; k < n; k++ {
						parts[k], err = Mine(ctx, g, p, k, n)
						if err != nil {
							t.Fatal(err)
						}
					}
					merged, err := Merge(parts...)
					if err != nil {
						t.Fatal(err)
					}
					requireEqualResults(t, label, merged, want)
					requireEqualStats(t, label, merged.Stats, want.Stats)
					if !merged.HasLattice() {
						t.Fatalf("%s: merged result lost the lattice", label)
					}

					// The merged lattice must drive an incremental remine
					// exactly like a single-process lattice does.
					d := g.NewDelta()
					victim := g.VertexName(int32(trial))
					if err := d.UnsetAttr(victim, "a0"); err != nil {
						// The victim never had a0; granting it dirties the
						// attribute just as well.
						d = g.NewDelta()
						if err := d.SetAttr(victim, "a0"); err != nil {
							t.Fatal(err)
						}
					}
					ng, cs, err := g.Apply(d)
					if err != nil {
						t.Fatal(err)
					}
					fromMerged, err := core.Remine(ctx, ng, p, merged, cs, nil)
					if err != nil {
						t.Fatal(err)
					}
					scratch, err := core.Mine(ctx, ng, p, nil)
					if err != nil {
						t.Fatal(err)
					}
					requireEqualResults(t, label+" remine", fromMerged, scratch)
					if fromMerged.Stats.ReusedSets == 0 && merged.Stats.SetsEvaluated > 1 {
						t.Errorf("%s: remine from merged lattice reused nothing", label)
					}
				}
			}
		})
	}
}

// TestMineAll covers the concurrent helper: all shards mined in
// parallel goroutines and merged in one call.
func TestMineAll(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 777)
	p := testParams()["exact"]
	want, err := core.Mine(ctx, g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineAll(ctx, g, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "MineAll n=3", got, want)
}

// TestMergeRejectsOverlap asserts Merge refuses overlapping
// partitions instead of silently double-reporting sets.
func TestMergeRejectsOverlap(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 888)
	p := testParams()["exact"]
	res, err := core.Mine(ctx, g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) == 0 {
		t.Fatal("test graph mined no sets")
	}
	if _, err := Merge(res, res); err == nil {
		t.Fatal("Merge accepted the same result twice")
	}
}

// TestShardValidation covers the shard-coordinate guard rails.
func TestShardValidation(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 999)
	p := testParams()["exact"]
	if _, err := Mine(ctx, g, p, 2, 2); err == nil {
		t.Error("Mine accepted shard 2 of 2")
	}
	if _, err := Mine(ctx, g, p, -1, 2); err == nil {
		t.Error("Mine accepted shard -1 of 2")
	}
	if _, err := Plan(g, p.SigmaMin, 0); err == nil {
		t.Error("Plan accepted n=0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Owner accepted shard 3 of 2 without panicking")
		}
	}()
	Owner(p.SigmaMin, 3, 2)
}
