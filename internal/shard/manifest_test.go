package shard

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scpm/scpm/internal/core"
)

func TestManifestRoundTrip(t *testing.T) {
	g := testGraph(t, 1234)
	snaps := []string{"s0.scpmidx", "s1.scpmidx", "s2.scpmidx"}
	m, err := BuildManifest(g, 20, 3, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("fresh manifest fails verification: %v", err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(m, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 3 || got.SigmaMin != 20 || len(got.Snapshots) != 3 {
		t.Fatalf("round-trip mangled manifest: %+v", got)
	}
	if got.Vertices != g.NumVertices() || got.Edges != g.NumEdges() || got.Attributes != g.NumAttributes() {
		t.Fatalf("round-trip mangled dataset shape: %+v", got)
	}
	if len(got.Roots) == 0 {
		t.Fatal("manifest lists no frequent roots")
	}
	for i, r := range got.Roots {
		if r.Rank != i {
			t.Fatalf("root %d has rank %d", i, r.Rank)
		}
		if i > 0 {
			prev := got.Roots[i-1]
			if r.Support < prev.Support || (r.Support == prev.Support && r.ID < prev.ID) {
				t.Fatalf("roots not in extension order at rank %d: %+v after %+v", i, r, prev)
			}
		}
	}
}

func TestManifestChecksumTamper(t *testing.T) {
	g := testGraph(t, 1235)
	m, err := BuildManifest(g, 20, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(m, path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a shard assignment without resealing.
	tampered := strings.Replace(string(b), `"shard": 0`, `"shard": 1`, 1)
	if tampered == string(b) {
		t.Fatal("test graph produced no shard-0 root to tamper with")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("LoadManifest accepted a tampered manifest (err=%v)", err)
	}
}

// TestManifestRouting asserts the gateway's routing contract: every
// set a shard's mining run emits routes (by its attribute names) back
// to exactly that shard.
func TestManifestRouting(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 1236)
	p := testParams()["exact"]
	const n = 3
	m, err := BuildManifest(g, p.SigmaMin, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	routed := 0
	for k := 0; k < n; k++ {
		res, err := Mine(ctx, g, p, k, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Sets {
			if got := m.Route(s.Names); got != k {
				t.Fatalf("set %v mined by shard %d but routed to %d", s.Names, k, got)
			}
			routed++
		}
	}
	if routed == 0 {
		t.Fatal("no sets mined; routing property vacuous")
	}
	// Sets with no frequent attribute route deterministically in range.
	s1 := m.Route([]string{"no-such-attr"})
	s2 := m.Route([]string{"no-such-attr"})
	if s1 != s2 || s1 < 0 || s1 >= n {
		t.Fatalf("hash routing unstable or out of range: %d, %d", s1, s2)
	}
}

// TestManifestSealedRoundTrip covers the v2 format end to end, in
// exact and sampled ε modes: Write→Load→Write is byte-identical (the
// seal is canonical), the reconstructed verdicts drive a sharded mine
// to the bit-identical single-process answer through the manifest's
// own Owner, and the run reports the replayed level-1 evaluations.
func TestManifestSealedRoundTrip(t *testing.T) {
	ctx := context.Background()
	for mode, p := range testParams() {
		t.Run(mode, func(t *testing.T) {
			g := testGraph(t, 2401)
			const n = 2
			m, err := BuildManifestSealed(ctx, g, p, n, nil)
			if err != nil {
				t.Fatal(err)
			}
			if m.Format != ManifestFormatV2 {
				t.Fatalf("sealed manifest format %q, want %q", m.Format, ManifestFormatV2)
			}
			if m.Level1 == nil || len(m.Level1.Verdicts) != len(m.Roots) {
				t.Fatalf("sealed manifest carries %d verdicts for %d roots", len(m.Level1.Verdicts), len(m.Roots))
			}
			if want := p.Level1Fingerprint(); m.Level1.ParamsKey != want {
				t.Fatalf("sealed params key %q, want %q", m.Level1.ParamsKey, want)
			}

			dir := t.TempDir()
			p1 := filepath.Join(dir, "m1.json")
			p2 := filepath.Join(dir, "m2.json")
			if err := WriteManifest(m, p1); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadManifest(p1)
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteManifest(loaded, p2); err != nil {
				t.Fatal(err)
			}
			b1, err := os.ReadFile(p1)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := os.ReadFile(p2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatal("Write→Load→Write is not byte-identical")
			}

			verdicts, err := loaded.Level1Verdicts(g)
			if err != nil {
				t.Fatal(err)
			}
			if verdicts == nil || verdicts.Len() != len(m.Roots) {
				t.Fatalf("reconstructed %v verdicts, want %d", verdicts, len(m.Roots))
			}

			want, err := core.Mine(ctx, g, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			parts := make([]*core.Result, n)
			for k := 0; k < n; k++ {
				pk := p
				pk.ShardOwner = loaded.Owner(k)
				pk.Level1Verdicts = verdicts
				if parts[k], err = core.Mine(ctx, g, pk, nil); err != nil {
					t.Fatal(err)
				}
			}
			merged, err := Merge(parts...)
			if err != nil {
				t.Fatal(err)
			}
			requireEqualResults(t, mode, merged, want)
			requireEqualStats(t, mode, merged.Stats, want.Stats)
			if merged.Stats.ReusedVerdicts == 0 {
				t.Fatal("sharded mine with sealed verdicts replayed nothing")
			}
		})
	}
}

// TestManifestV1Compat pins the legacy path: a v1 manifest still
// loads, reconstructs no verdicts, and its Owner routes a sharded mine
// that re-evaluates level 1 to the identical single-process answer.
func TestManifestV1Compat(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 2402)
	p := testParams()["exact"]
	const n = 2
	m, err := BuildManifest(g, p.SigmaMin, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Format != ManifestFormatV1 {
		t.Fatalf("BuildManifest format %q, want %q", m.Format, ManifestFormatV1)
	}
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := WriteManifest(m, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := loaded.Level1Verdicts(g); err != nil || v != nil {
		t.Fatalf("v1 manifest reconstructed verdicts %v (err=%v), want none", v, err)
	}
	want, err := core.Mine(ctx, g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*core.Result, n)
	for k := 0; k < n; k++ {
		pk := p
		pk.ShardOwner = loaded.Owner(k)
		if parts[k], err = core.Mine(ctx, g, pk, nil); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "v1", merged, want)
	requireEqualStats(t, "v1", merged.Stats, want.Stats)
	if merged.Stats.ReusedVerdicts != 0 {
		t.Fatalf("v1 path claims %d replayed verdicts", merged.Stats.ReusedVerdicts)
	}
}

// TestManifestCorruptedSealRejected covers the v2 integrity guards: a
// bit flipped inside the sealed payload fails the checksum, and the
// structural invariants (marker vs payload, verdict count) are each
// enforced.
func TestManifestCorruptedSealRejected(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 2403)
	p := testParams()["exact"]
	m, err := BuildManifestSealed(ctx, g, p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v2.json")
	if err := WriteManifest(m, path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), `"params_key": "`, `"params_key": "X`, 1)
	if tampered == string(b) {
		t.Fatal("no params_key found to tamper with")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("LoadManifest accepted a corrupted seal (err=%v)", err)
	}

	for _, tc := range []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"v2 without payload", func(c *Manifest) { c.Level1 = nil }},
		{"v1 with payload", func(c *Manifest) { c.Format = ManifestFormatV1 }},
		{"verdict count mismatch", func(c *Manifest) {
			c.Level1 = &SealedLevel1{ParamsKey: m.Level1.ParamsKey, Verdicts: m.Level1.Verdicts[:len(m.Level1.Verdicts)-1]}
		}},
	} {
		c := *m
		tc.mutate(&c)
		c.Seal()
		if err := c.Verify(); err == nil {
			t.Errorf("%s: Verify accepted it", tc.name)
		}
	}
}

// TestSealRejectsForeignVerdicts pins SealLevel1's version guard.
func TestSealRejectsForeignVerdicts(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 2404)
	p := testParams()["exact"]
	m, err := BuildManifest(g, p.SigmaMin, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.ComputeLevel1(ctx, g, p)
	if err != nil {
		t.Fatal(err)
	}
	m.GraphVersion++
	if err := m.SealLevel1(v); err == nil {
		t.Fatal("SealLevel1 accepted verdicts from another graph version")
	}
	m.GraphVersion--
	if err := m.SealLevel1(v); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("freshly sealed manifest fails verification: %v", err)
	}
}

func TestManifestErrors(t *testing.T) {
	g := testGraph(t, 1237)
	if _, err := BuildManifest(g, 20, 2, []string{"only-one"}); err == nil {
		t.Error("BuildManifest accepted 1 snapshot path for 2 shards")
	}
	if _, err := BuildManifest(g, 0, 2, nil); err == nil {
		t.Error("BuildManifest accepted sigmaMin=0")
	}
	m, err := BuildManifest(g, 20, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Format = "bogus/v9"
	if err := m.Verify(); err == nil {
		t.Error("Verify accepted a bogus format marker")
	}
}
