package shard

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	g := testGraph(t, 1234)
	snaps := []string{"s0.scpmidx", "s1.scpmidx", "s2.scpmidx"}
	m, err := BuildManifest(g, 20, 3, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("fresh manifest fails verification: %v", err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(m, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 3 || got.SigmaMin != 20 || len(got.Snapshots) != 3 {
		t.Fatalf("round-trip mangled manifest: %+v", got)
	}
	if got.Vertices != g.NumVertices() || got.Edges != g.NumEdges() || got.Attributes != g.NumAttributes() {
		t.Fatalf("round-trip mangled dataset shape: %+v", got)
	}
	if len(got.Roots) == 0 {
		t.Fatal("manifest lists no frequent roots")
	}
	for i, r := range got.Roots {
		if r.Rank != i {
			t.Fatalf("root %d has rank %d", i, r.Rank)
		}
		if i > 0 {
			prev := got.Roots[i-1]
			if r.Support < prev.Support || (r.Support == prev.Support && r.ID < prev.ID) {
				t.Fatalf("roots not in extension order at rank %d: %+v after %+v", i, r, prev)
			}
		}
	}
}

func TestManifestChecksumTamper(t *testing.T) {
	g := testGraph(t, 1235)
	m, err := BuildManifest(g, 20, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(m, path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a shard assignment without resealing.
	tampered := strings.Replace(string(b), `"shard": 0`, `"shard": 1`, 1)
	if tampered == string(b) {
		t.Fatal("test graph produced no shard-0 root to tamper with")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("LoadManifest accepted a tampered manifest (err=%v)", err)
	}
}

// TestManifestRouting asserts the gateway's routing contract: every
// set a shard's mining run emits routes (by its attribute names) back
// to exactly that shard.
func TestManifestRouting(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 1236)
	p := testParams()["exact"]
	const n = 3
	m, err := BuildManifest(g, p.SigmaMin, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	routed := 0
	for k := 0; k < n; k++ {
		res, err := Mine(ctx, g, p, k, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Sets {
			if got := m.Route(s.Names); got != k {
				t.Fatalf("set %v mined by shard %d but routed to %d", s.Names, k, got)
			}
			routed++
		}
	}
	if routed == 0 {
		t.Fatal("no sets mined; routing property vacuous")
	}
	// Sets with no frequent attribute route deterministically in range.
	s1 := m.Route([]string{"no-such-attr"})
	s2 := m.Route([]string{"no-such-attr"})
	if s1 != s2 || s1 < 0 || s1 >= n {
		t.Fatalf("hash routing unstable or out of range: %d, %d", s1, s2)
	}
}

func TestManifestErrors(t *testing.T) {
	g := testGraph(t, 1237)
	if _, err := BuildManifest(g, 20, 2, []string{"only-one"}); err == nil {
		t.Error("BuildManifest accepted 1 snapshot path for 2 shards")
	}
	if _, err := BuildManifest(g, 0, 2, nil); err == nil {
		t.Error("BuildManifest accepted sigmaMin=0")
	}
	m, err := BuildManifest(g, 20, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Format = "bogus/v9"
	if err := m.Verify(); err == nil {
		t.Error("Verify accepted a bogus format marker")
	}
}
