// Package shard partitions the SCPM attribute-set lattice into
// disjoint Eclat DFS prefixes so independent processes can mine one
// slice each, and merges the per-shard results back into output
// bit-identical to a single-process run.
//
// # Ownership rule
//
// Algorithm 2's Eclat enumeration roots one DFS subtree at every
// frequent single attribute, visits the roots in extension order —
// support ascending, attribute id breaking ties — and extends the
// subtree rooted at position i only with the roots to its right
// (positions i+1…). Every attribute set the search can ever evaluate
// therefore lives in exactly one subtree: the one rooted at the set's
// minimal attribute in extension order. Assigning each root to exactly
// one shard hence assigns each attribute SET to exactly one shard —
// the size-1-set ownership rule. A singleton {a} belongs to the shard
// owning root a; a larger set belongs to the shard owning its first
// attribute in extension order. TestOwnershipPartition asserts this
// exactly-one-owner property on randomized graphs.
//
// # Why shard-local pruning is sound
//
// The pruning rules of Theorems 3–5 only ever pass information DOWN
// one subtree, never across subtrees:
//
//   - Theorem 3 (vertex pruning) restricts the coverage search of a
//     set S ∪ {a} to the covered sets handed down from its parents S
//     and {a}. Both hand-downs originate inside the subtree being
//     extended — S is an ancestor in the same subtree, and {a} is a
//     level-1 evaluation every shard performs itself.
//   - Theorems 4–5 (set pruning) drop an extension candidate based on
//     that candidate's own ε and δ upper bounds, computed from its
//     members and covered set — again level-1 state, or state local to
//     the subtree.
//
// So a shard that (a) evaluates ALL frequent singles — muted, see
// below — and (b) walks only the subtrees it owns, makes exactly the
// pruning decisions the single-process run makes inside those
// subtrees. No information a non-owned subtree would have produced is
// ever consumed. core.Params.ShardOwner implements the muted
// evaluation: non-owned level-1 singles are fully evaluated (their
// member sets, covered-set hand-downs and survival verdicts feed the
// owned subtrees' right-sibling candidate lists bit-identically,
// including the lazy exact hand-down refinement of sampled mode) but
// are suppressed from the result, the recorded lattice and the stats
// counters. The per-shard outputs are therefore disjoint slices of the
// single-process output, and their stats counters sum to the
// single-process counters exactly; TestShardMergeEquivalence asserts
// both, in exact and sampled ε modes, across 1–4 shards.
//
// # Balance
//
// Plan weighs the subtree rooted at rank i by 2^min(c,24), where c is
// the number of right siblings j whose pairwise intersection with the
// root stays frequent (|V(i)∩V(j)| ≥ σmin). Only those siblings can
// ever extend the subtree, and in the densest case every subset of the
// root plus its frequent siblings survives — so the subtree holds up
// to 2^c sets, and the measured per-root set counts on the committed
// datasets track that exponential almost exactly (the earlier linear
// candidate-count weight misjudged them by orders of magnitude, which
// is why 2-shard walls split 77%/23%). The pair counts cost one bitset
// intersection count per root pair — tens of milliseconds on the
// committed datasets, paid once per plan and cached per graph version
// by Owner. Roots are assigned heaviest-first onto the currently
// lightest shard; the assignment is deterministic and lands within 2×
// of ideal balance on the committed datasets (TestPlanBalance).
package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
)

// Partition is one shard's slice of the lattice: the top-level Eclat
// roots it owns and their summed candidate-1-set weight.
type Partition struct {
	// Shard is this partition's index in 0…N-1.
	Shard int
	// N is the total number of shards in the plan.
	N int
	// Roots lists the owned root attribute ids, in extension order.
	Roots []int32
	// Weight sums the owned subtrees' estimated set counts (2^frequent-
	// sibling-pairs, capped) — the balance measure Plan optimizes.
	Weight int

	owns map[int32]bool
}

// Owns reports whether this partition owns the subtree rooted at the
// given attribute id (and with it every attribute set whose first
// attribute in extension order it is).
func (p *Partition) Owns(root int32) bool { return p.owns[root] }

// Plan splits g's attribute-set lattice into n disjoint partitions.
// The frequent singles (support ≥ sigmaMin) are ranked in extension
// order — support ascending, id ascending — matching the order the
// miner sorts surviving roots into, so a set's first attribute in
// extension order is well defined whether or not every single survives
// Theorem-4/5 pruning. Each root is weighed by its estimated subtree
// set count (see the package doc's Balance section) and assigned
// heaviest-first to the currently lightest shard, ties to the lowest
// shard index, which is deterministic for a given graph.
//
// Every frequent single lands in exactly one partition. Shards may own
// zero roots when n exceeds the number of frequent singles; they mine
// (and serve) empty slices, which Merge handles.
func Plan(g *graph.Graph, sigmaMin, n int) ([]Partition, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: plan needs n ≥ 1 shards, got %d", n)
	}
	if sigmaMin < 1 {
		return nil, fmt.Errorf("shard: plan needs sigmaMin ≥ 1, got %d", sigmaMin)
	}
	roots := rankedRoots(g, sigmaMin)
	weights := subtreeWeights(g, roots, sigmaMin)
	parts := make([]Partition, n)
	for s := range parts {
		parts[s] = Partition{Shard: s, N: n, owns: make(map[int32]bool)}
	}
	// Greedy heaviest-first. The weight order must be explicit now that
	// weights are no longer monotone in rank; rank breaks ties so the
	// assignment stays deterministic.
	order := make([]int, len(roots))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	shardOf := make([]int, len(roots))
	for _, rank := range order {
		best := 0
		for s := 1; s < n; s++ {
			if parts[s].Weight < parts[best].Weight {
				best = s
			}
		}
		shardOf[rank] = best
		parts[best].Weight += weights[rank]
	}
	// Partition.Roots lists owned roots in extension order regardless of
	// the assignment order above.
	for rank, r := range roots {
		s := shardOf[rank]
		parts[s].Roots = append(parts[s].Roots, r.attr)
		parts[s].owns[r.attr] = true
	}
	return parts, nil
}

// subtreeWeights estimates each root subtree's share of the mining
// work: 2^min(c,24), where c counts the right siblings whose pairwise
// intersection with the root stays frequent — the only siblings that
// can ever extend the subtree, and in the densest (and empirically
// typical) case all 2^c of their subsets survive. The cap keeps the
// greedy sums well inside int range; relative order among capped roots
// is what the balance needs, not their absolute magnitude.
func subtreeWeights(g *graph.Graph, roots []rankedRoot, sigmaMin int) []int {
	w := make([]int, len(roots))
	for i := range roots {
		mi := g.AttrMembers(roots[i].attr)
		c := 0
		for j := i + 1; j < len(roots); j++ {
			if mi.IntersectCount(g.AttrMembers(roots[j].attr)) >= sigmaMin {
				c++
			}
		}
		if c > 24 {
			c = 24
		}
		w[i] = 1 << c
	}
	return w
}

// rankedRoot is one frequent single in extension order.
type rankedRoot struct {
	attr    int32
	support int
}

// rankedRoots lists the frequent singles of g in extension order
// (support ascending, id ascending) — the order Algorithm 2 visits
// top-level subtrees in.
func rankedRoots(g *graph.Graph, sigmaMin int) []rankedRoot {
	var roots []rankedRoot
	for a := int32(0); a < int32(g.NumAttributes()); a++ {
		if sup := g.AttrSupport(a); sup >= sigmaMin {
			roots = append(roots, rankedRoot{attr: a, support: sup})
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].support != roots[j].support {
			return roots[i].support < roots[j].support
		}
		return roots[i].attr < roots[j].attr
	})
	return roots
}

// Owner returns a core.Params.ShardOwner claiming shard k of n. The
// plan is re-derived (and cached) per graph version, so live updates
// that shift level-1 supports re-partition deterministically — every
// replica planning against the same graph version derives the same
// assignment. The returned function is safe for concurrent use by the
// miner's level-1 workers.
//
// Owner panics when k is outside 0…n-1; validate shard coordinates at
// the flag/API boundary.
func Owner(sigmaMin, k, n int) func(*graph.Graph, int32) bool {
	if n < 1 || k < 0 || k >= n {
		panic(fmt.Sprintf("shard: invalid shard %d/%d", k, n))
	}
	var (
		mu      sync.Mutex
		version uint64
		have    bool
		owns    map[int32]bool
	)
	return func(g *graph.Graph, root int32) bool {
		mu.Lock()
		defer mu.Unlock()
		if !have || g.Version() != version {
			parts, err := Plan(g, sigmaMin, n)
			if err != nil {
				// Plan only fails on invalid sigmaMin/n, both validated
				// before mining starts.
				panic(err)
			}
			owns = parts[k].owns
			version = g.Version()
			have = true
		}
		return owns[root]
	}
}

// Params returns p restricted to shard k of n: a copy with ShardOwner
// installed (derived from p.SigmaMin). The result of mining with it is
// shard k's slice; Merge over all n slices reproduces mining with p.
func Params(p core.Params, k, n int) core.Params {
	p.ShardOwner = Owner(p.SigmaMin, k, n)
	return p
}

// Mine mines shard k of n on g — the slice of Mine(g, p) owned by
// partition k of Plan(g, p.SigmaMin, n).
func Mine(ctx context.Context, g *graph.Graph, p core.Params, k, n int) (*core.Result, error) {
	if n < 1 || k < 0 || k >= n {
		return nil, fmt.Errorf("shard: invalid shard %d/%d", k, n)
	}
	return core.Mine(ctx, g, Params(p, k, n), nil)
}

// MineAll mines all n shards concurrently (one goroutine per shard,
// each with p.Parallelism workers inside) and merges the slices. The
// level-1 verdicts are computed once up front and injected into every
// shard, so the per-shard walls contain no duplicated level-1 work.
// The output is bit-identical to core.Mine(ctx, g, p, nil) apart from
// Stats.Duration (the slowest shard) and Stats.ReusedVerdicts (the
// replayed level-1 singles, 0 in an unsharded run).
func MineAll(ctx context.Context, g *graph.Graph, p core.Params, n int) (*core.Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: MineAll needs n ≥ 1 shards, got %d", n)
	}
	verdicts, err := core.ComputeLevel1(ctx, g, p)
	if err != nil {
		return nil, err
	}
	p.Level1Verdicts = verdicts
	parts := make([]*core.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			parts[k], errs[k] = Mine(ctx, g, p, k, n)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return Merge(parts...)
}

// Merge combines per-shard results into the single-process result —
// core.MergeResults re-exported at the subsystem boundary. Sets,
// patterns, stats counters and recorded lattices all merge; a merged
// lattice feeds core.Remine exactly like a single-process one.
func Merge(parts ...*core.Result) (*core.Result, error) {
	return core.MergeResults(parts...)
}
