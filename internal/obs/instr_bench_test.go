package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkInstrumentOverhead pins the per-request cost the
// Instrument middleware adds over a bare handler: the difference
// between the two sub-benchmarks is the instrumentation budget
// (target: a few hundred ns — pooled writer, cached per-endpoint
// instruments, atomic adds).
func BenchmarkInstrumentOverhead(b *testing.B) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck // recorder
	})
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "bench")
	h := m.Instrument(inner, nil)
	r := httptest.NewRequest(http.MethodGet, "/x", nil)
	r.Pattern = "GET /x"
	w := httptest.NewRecorder()
	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Body.Reset()
			inner.ServeHTTP(w, r)
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Body.Reset()
			h.ServeHTTP(w, r)
		}
	})
}
