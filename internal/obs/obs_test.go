package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact text exposition rendering:
// family ordering, HELP/TYPE lines, label escaping, histogram
// cumulative buckets with _sum and _count.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_requests_total", "Requests.").Add(7)
	v := reg.CounterVec("t_by_endpoint_total", "By endpoint.", "endpoint", "class")
	v.With("/sets", "2xx").Add(3)
	v.With("/epsilon", "5xx").Inc()
	reg.Gauge("t_in_flight", "In flight.").Set(2.5)
	reg.GaugeFunc("t_always_nine", "Computed at scrape.", func() float64 { return 9 })
	h := reg.Histogram("t_latency_seconds", "Latency.", []float64{0.1, 1})
	// Powers of two only, so the float sum renders exactly.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)
	reg.Counter("t_escaped_total", `Help with \ backslash`)
	reg.CounterVec("t_labeled_total", "Labeled.", "v").With("say \"hi\"\n").Inc()

	want := `# HELP t_always_nine Computed at scrape.
# TYPE t_always_nine gauge
t_always_nine 9
# HELP t_by_endpoint_total By endpoint.
# TYPE t_by_endpoint_total counter
t_by_endpoint_total{endpoint="/epsilon",class="5xx"} 1
t_by_endpoint_total{endpoint="/sets",class="2xx"} 3
# HELP t_escaped_total Help with \\ backslash
# TYPE t_escaped_total counter
t_escaped_total 0
# HELP t_in_flight In flight.
# TYPE t_in_flight gauge
t_in_flight 2.5
# HELP t_labeled_total Labeled.
# TYPE t_labeled_total counter
t_labeled_total{v="say \"hi\"\n"} 1
# HELP t_latency_seconds Latency.
# TYPE t_latency_seconds histogram
t_latency_seconds_bucket{le="0.1"} 1
t_latency_seconds_bucket{le="1"} 3
t_latency_seconds_bucket{le="+Inf"} 4
t_latency_seconds_sum 6.0625
t_latency_seconds_count 4
# HELP t_requests_total Requests.
# TYPE t_requests_total counter
t_requests_total 7
`
	if got := reg.Render(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGetOrCreate: the same name resolves to the same instrument, and
// a kind or label mismatch panics.
func TestGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("t_x_total", "X.")
	b := reg.Counter("t_x_total", "X.")
	if a != b {
		t.Fatal("same-name counter not shared")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared counter value = %d, want 1", b.Value())
	}

	mustPanic(t, "kind mismatch", func() { reg.Gauge("t_x_total", "X.") })
	reg.CounterVec("t_y_total", "Y.", "shard")
	mustPanic(t, "label mismatch", func() { reg.CounterVec("t_y_total", "Y.", "endpoint") })
	mustPanic(t, "label arity", func() { reg.CounterVec("t_y_total", "Y.", "shard").With("0", "1") })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}

// TestNilInstrumentsNoop: nil receivers discard updates so optional
// wiring needs no branching.
func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	var m *MiningMetrics
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("x").Inc()
	gv.With("x").Set(1)
	hv.With("x").Observe(1)
	m.ObserveProgress(1, 2, 3, 4, 5, 6, 7, 8)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

// TestHistogramBuckets checks boundary placement: a value equal to a
// bound lands in that bound's bucket (le is inclusive).
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_h", "H.", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	cum := h.cumulative()
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 {
		t.Fatalf("cumulative = %v, want [1 2 3]", cum)
	}
	if h.Count() != 3 || h.Sum() != 6 {
		t.Fatalf("count=%d sum=%g, want 3 and 6", h.Count(), h.Sum())
	}
}

// TestRegistryRace hammers every instrument type from many writer
// goroutines while others scrape, so `go test -race` proves renders
// are safe against hot-path writes. It also checks no writes are lost.
func TestRegistryRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_c_total", "C.")
	g := reg.Gauge("t_g", "G.")
	h := reg.Histogram("t_h_seconds", "H.", []float64{0.5})
	vec := reg.CounterVec("t_v_total", "V.", "worker")
	reg.GaugeFunc("t_f", "F.", func() float64 { return 1 })

	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				vec.With(label).Inc()
			}
		}(w)
	}
	// Concurrent scrapes while writers run.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if out := reg.Render(); !strings.Contains(out, "t_c_total") {
					t.Error("scrape lost a family")
					return
				}
			}
		}()
	}
	wg.Wait()

	const total = writers * perWriter
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Fatalf("gauge = %g, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	if h.Sum() != total*0.25 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), total*0.25)
	}
}
