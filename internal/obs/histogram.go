package obs

import (
	"math"
	"sync/atomic"
)

// LatencyBuckets is the default bucket layout for request and
// subrequest latency histograms: 100µs to 10s, roughly ×2.5 per step —
// wide enough for both a sub-millisecond cache hit and a coverage
// search that ran long.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DurationBuckets is the default bucket layout for background-work
// durations (remines, full mines): 1ms to 2 minutes.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free: one atomic add into the right bucket plus a CAS loop on
// the float sum, so the serving hot path pays no mutex. Rendering
// reads the same atomics, so a scrape racing an Observe sees either
// the update or not — never a torn value. A nil Histogram discards
// observations.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; non-cumulative per bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// newHistogram builds a histogram over the given upper bounds.
func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// cumulative returns the per-bound cumulative counts (exposition
// order), ending with the +Inf total.
func (h *Histogram) cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}
