package obs

// MiningMetrics exports the mining progress counters — the paper's own
// cost model (search nodes per coverage DFS, evaluated sets, reuse
// rates) — as live gauges, updated from Sink.OnProgress snapshots
// while a mine or Remine runs. They are gauges, not counters: each
// run's snapshot replaces the last, so a scrape during a long mine
// shows where that run stands right now.
//
// The package deliberately does not import internal/core; callers map
// a core.Stats snapshot onto ObserveProgress field by field, keeping
// obs dependency-free at the bottom of the package graph.
type MiningMetrics struct {
	// Active is 1 while a mine or remine is running, 0 otherwise.
	Active *Gauge
	// SetsEvaluated counts attribute sets ε-evaluated so far this run.
	SetsEvaluated *Gauge
	// SetsEmitted counts attribute sets that passed all thresholds.
	SetsEmitted *Gauge
	// PatternsEmitted counts reported (S, Q) patterns.
	PatternsEmitted *Gauge
	// SearchNodes totals quasi-clique search nodes explored.
	SearchNodes *Gauge
	// SampledVertices totals membership samples drawn (sampled ε mode).
	SampledVertices *Gauge
	// ReusedSets counts sets carried over from the previous lattice
	// during an incremental remine instead of being recomputed.
	ReusedSets *Gauge
	// RecomputedSets counts sets actually re-evaluated this run.
	RecomputedSets *Gauge
	// ReusedVerdicts counts level-1 singles replayed from sealed
	// manifest verdicts instead of searched.
	ReusedVerdicts *Gauge
}

// NewMiningMetrics registers (or resolves, get-or-create) the mining
// gauge family on reg. Every layer that mines — boot mining in
// scpm-serve, the live-update remine path, the scpm CLI — resolves the
// same names, so one process's runs share one set of gauges.
func NewMiningMetrics(reg *Registry) *MiningMetrics {
	return &MiningMetrics{
		Active:          reg.Gauge("scpm_mining_active", "1 while a mine or remine is running."),
		SetsEvaluated:   reg.Gauge("scpm_mining_sets_evaluated", "Attribute sets epsilon-evaluated by the current/last run."),
		SetsEmitted:     reg.Gauge("scpm_mining_sets_emitted", "Attribute sets that passed all output thresholds."),
		PatternsEmitted: reg.Gauge("scpm_mining_patterns_emitted", "Reported (set, quasi-clique) patterns."),
		SearchNodes:     reg.Gauge("scpm_mining_search_nodes", "Quasi-clique search nodes explored by the current/last run."),
		SampledVertices: reg.Gauge("scpm_mining_sampled_vertices", "Membership samples drawn (sampled epsilon mode)."),
		ReusedSets:      reg.Gauge("scpm_mining_reused_sets", "Sets reused from the previous lattice by an incremental remine."),
		RecomputedSets:  reg.Gauge("scpm_mining_recomputed_sets", "Sets re-evaluated by the current/last run."),
		ReusedVerdicts:  reg.Gauge("scpm_mining_reused_verdicts", "Level-1 verdicts replayed from a sealed manifest."),
	}
}

// ObserveProgress stores one progress snapshot (the fields of a
// core.Stats, in its declaration order).
func (m *MiningMetrics) ObserveProgress(evaluated, emitted, patterns, nodes, sampled, reused, recomputed, verdicts int64) {
	if m == nil {
		return
	}
	m.SetsEvaluated.Set(float64(evaluated))
	m.SetsEmitted.Set(float64(emitted))
	m.PatternsEmitted.Set(float64(patterns))
	m.SearchNodes.Set(float64(nodes))
	m.SampledVertices.Set(float64(sampled))
	m.ReusedSets.Set(float64(reused))
	m.RecomputedSets.Set(float64(recomputed))
	m.ReusedVerdicts.Set(float64(verdicts))
}
