package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestInstrument drives requests through the middleware and checks the
// per-endpoint series, status classes, in-flight accounting and the
// observe callback payload.
func TestInstrument(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /sets", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("12345")) //nolint:errcheck
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	var seen []RequestObservation
	h := m.Instrument(mux, func(r *http.Request, o RequestObservation) {
		seen = append(seen, o)
	})

	for _, path := range []string{"/sets", "/sets", "/boom", "/nope"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}

	if got := m.Requests.With("/sets", "2xx").Value(); got != 2 {
		t.Fatalf("/sets 2xx = %d, want 2", got)
	}
	if got := m.Requests.With("/boom", "5xx").Value(); got != 1 {
		t.Fatalf("/boom 5xx = %d, want 1", got)
	}
	// ServeMux's 404 fallback has no registered pattern → "other".
	if got := m.Requests.With("other", "4xx").Value(); got != 1 {
		t.Fatalf("other 4xx = %d, want 1", got)
	}
	if got := m.Duration.With("/sets").Count(); got != 2 {
		t.Fatalf("/sets duration count = %d, want 2", got)
	}
	if got := m.ResponseBytes.With("/sets").Value(); got != 10 {
		t.Fatalf("/sets bytes = %d, want 10", got)
	}
	if got := m.InFlight(); got != 0 {
		t.Fatalf("in-flight after completion = %d, want 0", got)
	}
	if len(seen) != 4 {
		t.Fatalf("observe called %d times, want 4", len(seen))
	}
	if seen[0].Endpoint != "/sets" || seen[0].Status != 200 || seen[0].Bytes != 5 {
		t.Fatalf("observation 0 = %+v", seen[0])
	}
	if seen[2].Status != 500 {
		t.Fatalf("observation 2 status = %d, want 500", seen[2].Status)
	}
}

// TestMountServesMetricsAndPprof: the mounted mux answers /metrics in
// the exposition content type and serves the pprof index.
func TestMountServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_ok_total", "OK.").Inc()
	mux := NewMux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "t_ok_total 1") {
		t.Fatalf("/metrics body missing series:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", rec.Code)
	}
}

// TestStart binds an ephemeral side listener and scrapes it over TCP.
func TestStart(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_side_total", "Side.").Add(3)
	addr, stop, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "t_side_total 3") {
		t.Fatalf("side scrape missing series:\n%s", buf[:n])
	}
}
