package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition media type the
// /metrics handler serves.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo renders every family in the Prometheus text exposition
// format v0.0.4, families in name order and series in label order, so
// the output is deterministic for golden tests and diffable between
// scrapes.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	for _, f := range r.sortedFamilies() {
		if err := f.render(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// Render returns the exposition as a string (test helper).
func (r *Registry) Render() string {
	var sb strings.Builder
	r.WriteTo(&sb) //nolint:errcheck // strings.Builder cannot fail
	return sb.String()
}

// Handler serves GET /metrics from the registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed (GET only)", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		r.WriteTo(w) //nolint:errcheck // client gone; nothing to do
	})
}

// countingWriter tracks bytes written for the WriteTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

// Write forwards to the wrapped writer, counting.
func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// render writes one family: HELP and TYPE lines, then every series.
func (f *family) render(w io.Writer) error {
	children := f.sortedChildren()
	if f.kind == gaugeFuncKind {
		// Function gauges have no children; they always render.
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			f.name, escapeHelp(f.help), f.name, f.name, formatFloat(f.fn())); err != nil {
			return err
		}
		return nil
	}
	if len(children) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind.typeName()); err != nil {
		return err
	}
	for _, c := range children {
		if err := f.renderChild(w, c); err != nil {
			return err
		}
	}
	return nil
}

// renderChild writes the series of one label-value combination.
func (f *family) renderChild(w io.Writer, c *child) error {
	labels := formatLabels(f.labels, c.values)
	switch inst := c.inst.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, inst.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(inst.Value()))
		return err
	case *Histogram:
		cum := inst.cumulative()
		// Fresh slices per render: appending to the shared f.labels
		// backing array would race concurrent scrapes.
		ln := append(append(make([]string, 0, len(f.labels)+1), f.labels...), "le")
		lv := append(append(make([]string, 0, len(c.values)+1), c.values...), "")
		for i, bound := range inst.bounds {
			lv[len(lv)-1] = formatFloat(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(ln, lv), cum[i]); err != nil {
				return err
			}
		}
		lv[len(lv)-1] = "+Inf"
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(ln, lv), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			f.name, labels, formatFloat(inst.Sum()), f.name, labels, inst.Count()); err != nil {
			return err
		}
		return nil
	}
	return nil
}

// formatLabels renders a {k="v",...} block, or "" when unlabeled.
func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatFloat renders a metric value per the exposition format.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
