package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mount installs the observability endpoints on mux: GET /metrics
// serving the registry, and the net/http/pprof handlers under
// /debug/pprof/ (index, cmdline, profile, symbol, trace) so any binary
// serving the mux can be CPU- and heap-profiled under load.
func Mount(mux *http.ServeMux, reg *Registry) {
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// NewMux returns a mux serving only the observability endpoints —
// the side-listener handler behind every binary's -metrics-addr flag.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	Mount(mux, reg)
	return mux
}

// Start binds addr and serves /metrics + pprof from it in the
// background, returning the bound address (resolving ":0") and a stop
// function. It backs the -metrics-addr flag of binaries whose primary
// job is not HTTP serving (scpm, scpm-bench) and gives the servers a
// side channel that stays responsive when the main listener is
// saturated.
func Start(addr string, reg *Registry) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // closed by the stop func
	return ln.Addr(), func() { srv.Close() }, nil
}

// AddRuntimeMetrics registers process-level gauges (goroutines, heap,
// GC cycles, uptime) evaluated at scrape time.
func AddRuntimeMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("scpm_go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("scpm_go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.GaugeFunc("scpm_go_gc_cycles", "Completed GC cycles.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
	reg.GaugeFunc("scpm_process_uptime_seconds", "Seconds since the process registered its metrics.", func() float64 {
		return time.Since(start).Seconds()
	})
}

// HTTPMetrics is the standard per-endpoint request instrumentation:
// request counts by endpoint and status class, a latency histogram and
// a response-size counter per endpoint, and an in-flight gauge.
type HTTPMetrics struct {
	// Requests counts completed requests, labeled {endpoint, class}
	// where class is "2xx".."5xx".
	Requests *CounterVec
	// Duration is the per-endpoint request latency histogram (seconds).
	Duration *HistogramVec
	// ResponseBytes counts response body bytes per endpoint.
	ResponseBytes *CounterVec

	// inFlight backs the in-flight gauge function: a plain atomic
	// add/sub per request instead of a float CAS loop on a Gauge.
	inFlight atomic.Int64

	// writers recycles statusWriter wrappers across requests.
	writers sync.Pool

	// endpoints caches the instruments resolved per route pattern
	// (endpoint label → *perEndpoint), so the per-request path is a
	// lock-free load plus atomic adds instead of label-key joins and
	// family lookups. The cache is bounded because the label is.
	endpoints sync.Map
}

// perEndpoint holds one endpoint's resolved instruments. Class
// counters fill in lazily so the exposition only carries status
// classes that actually occurred.
type perEndpoint struct {
	duration *Histogram
	bytes    *Counter
	classes  [6]atomic.Pointer[Counter] // index status/100; 0 = "other"
}

// forEndpoint resolves (once) and caches the endpoint's instruments.
func (m *HTTPMetrics) forEndpoint(endpoint string) *perEndpoint {
	if e, ok := m.endpoints.Load(endpoint); ok {
		return e.(*perEndpoint)
	}
	e := &perEndpoint{
		duration: m.Duration.With(endpoint),
		bytes:    m.ResponseBytes.With(endpoint),
	}
	actual, _ := m.endpoints.LoadOrStore(endpoint, e)
	return actual.(*perEndpoint)
}

// class resolves the endpoint's counter for one status class.
func (m *HTTPMetrics) class(e *perEndpoint, endpoint string, status int) *Counter {
	i := status / 100
	if i < 1 || i > 5 {
		i = 0
	}
	if c := e.classes[i].Load(); c != nil {
		return c
	}
	c := m.Requests.With(endpoint, statusClass(status))
	e.classes[i].Store(c)
	return c
}

// NewHTTPMetrics registers the request series under the namespace
// prefix (e.g. "scpm" → scpm_http_requests_total).
func NewHTTPMetrics(reg *Registry, namespace string) *HTTPMetrics {
	m := &HTTPMetrics{
		Requests: reg.CounterVec(namespace+"_http_requests_total",
			"Completed HTTP requests by route pattern and status class.", "endpoint", "class"),
		Duration: reg.HistogramVec(namespace+"_http_request_duration_seconds",
			"HTTP request latency by route pattern.", LatencyBuckets, "endpoint"),
		ResponseBytes: reg.CounterVec(namespace+"_http_response_bytes_total",
			"HTTP response body bytes by route pattern.", "endpoint"),
	}
	m.writers.New = func() any { return &statusWriter{} }
	reg.GaugeFunc(namespace+"_http_in_flight_requests",
		"HTTP requests currently being served.",
		func() float64 { return float64(m.inFlight.Load()) })
	return m
}

// InFlight reports the number of requests currently being served.
func (m *HTTPMetrics) InFlight() int64 { return m.inFlight.Load() }

// RequestObservation is what Instrument measured about one completed
// request, handed to the observe callback for structured logging.
type RequestObservation struct {
	// Endpoint is the matched route pattern with the method stripped
	// ("/sets", "/epsilon"); unmatched requests report "other".
	Endpoint string
	// Status is the response status code (200 when the handler never
	// called WriteHeader).
	Status int
	// Bytes is the response body size.
	Bytes int
	// Duration is the wall time spent in the handler.
	Duration time.Duration
}

// Instrument wraps next with the request metrics; observe (optional)
// receives every completed request for logging. The endpoint label
// comes from http.Request.Pattern, which ServeMux fills in on the
// request it matched — so the label space is bounded by the route
// table, never by attacker-chosen paths.
func (m *HTTPMetrics) Instrument(next http.Handler, observe func(*http.Request, RequestObservation)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inFlight.Add(1)
		sw := m.writers.Get().(*statusWriter)
		sw.ResponseWriter, sw.status, sw.bytes = w, http.StatusOK, 0
		next.ServeHTTP(sw, r)
		m.inFlight.Add(-1)
		o := RequestObservation{
			Endpoint: endpointLabel(r.Pattern),
			Status:   sw.status,
			Bytes:    sw.bytes,
			Duration: time.Since(start),
		}
		sw.ResponseWriter = nil
		m.writers.Put(sw)
		e := m.forEndpoint(o.Endpoint)
		m.class(e, o.Endpoint, o.Status).Inc()
		e.duration.Observe(o.Duration.Seconds())
		e.bytes.Add(int64(o.Bytes))
		if observe != nil {
			observe(r, o)
		}
	})
}

// endpointLabel maps a ServeMux pattern to the endpoint label:
// method prefixes are stripped, and unmatched requests (empty pattern
// or the "/" catch-all) collapse into "other" so the label space stays
// bounded.
func endpointLabel(pattern string) string {
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		pattern = pattern[i+1:]
	}
	if pattern == "" || pattern == "/" {
		return "other"
	}
	return pattern
}

// statusClass buckets a status code as "2xx".."5xx" ("other" below
// 200).
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	case status >= 200:
		return "2xx"
	}
	return "other"
}

// statusWriter captures the status and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

// WriteHeader captures the status code.
func (s *statusWriter) WriteHeader(status int) {
	s.status = status
	s.ResponseWriter.WriteHeader(status)
}

// Write counts the response bytes.
func (s *statusWriter) Write(b []byte) (int, error) {
	n, err := s.ResponseWriter.Write(b)
	s.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer when it supports streaming, so
// NDJSON responses keep flushing through the instrumentation.
func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
