// Package obs is the dependency-free observability layer: a metrics
// registry (counters, gauges, histograms — all with lock-free hot
// paths) rendered in the Prometheus text exposition format v0.0.4 on
// GET /metrics, plus helpers that mount /metrics and net/http/pprof on
// any mux and an HTTP middleware producing the standard per-endpoint
// request series. Every scpm binary wires one Registry through its
// layers so a fleet under load is inspectable end to end.
//
// Instruments are get-or-create: asking a Registry twice for the same
// family name returns the same instrument, so independent subsystems
// (boot-time mining, the serving layer) can share one registry without
// coordinating registration order. Asking for the same name with a
// different type or label set panics — that is a programming error,
// not a runtime condition.
//
// All instrument methods are safe on nil receivers (they no-op), so
// optional wiring needs no branching at call sites.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates the metric families a Registry holds.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

// typeName renders the kind as the exposition TYPE keyword.
func (k kind) typeName() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them as Prometheus text
// exposition v0.0.4. The zero value is not usable; build one with
// NewRegistry. Registration takes a mutex; instrument updates
// (Counter.Add, Gauge.Set, Histogram.Observe) are atomic and never
// block a concurrent scrape.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one named metric family: a help string, a kind, a label
// schema, and one child instrument per label-value combination.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogramKind only
	fn      func() float64

	mu       sync.Mutex // guards child creation only
	children sync.Map   // joined label values → *child
}

// child is one instrument of a family together with the label values
// that select it.
type child struct {
	values []string
	inst   any // *Counter, *Gauge or *Histogram
}

// labelSep joins label values into child keys; it cannot appear in a
// label value without escaping mattering for identity (a 0xFF byte is
// invalid UTF-8, which label values never legitimately contain).
const labelSep = "\xff"

// family returns the named family, creating it on first use and
// panicking when an existing family disagrees on kind, labels or
// buckets.
func (r *Registry) family(name, help string, k kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k.typeName(), f.kind.typeName()))
		}
		if strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %q re-registered with labels %v (was %v)", name, labels, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labels: labels, buckets: buckets}
	r.fams[name] = f
	return f
}

// child returns the instrument for one label-value combination,
// creating it with mk on first use.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	if c, ok := f.children.Load(key); ok {
		return c.(*child).inst
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children.Load(key); ok {
		return c.(*child).inst
	}
	c := &child{values: append([]string(nil), values...), inst: mk()}
	f.children.Store(key, c)
	return c.inst
}

// Counter is a monotonically increasing integer metric. A nil Counter
// discards updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be ≥ 0 for the exposition to stay monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down. A nil Gauge
// discards updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop, so concurrent adders never lose an
// update.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Counter returns the unlabeled counter of the named family.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, counterKind, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabeled gauge of the named family.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, gaugeKind, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values that already live elsewhere (goroutine counts,
// cache population, generation numbers). Re-registering the same name
// replaces the function (latest wins), so a layer that owns the
// authoritative state can take over a placeholder.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, gaugeFuncKind, nil, nil)
	r.mu.Lock()
	f.fn = fn
	r.mu.Unlock()
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct {
	fam *family
}

// CounterVec returns the labeled counter family with the given label
// names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, counterKind, labels, nil)}
}

// With returns the counter selected by the label values (one per label
// name, in order). A nil CounterVec returns a nil (no-op) Counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct {
	fam *family
}

// GaugeVec returns the labeled gauge family with the given label
// names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, gaugeKind, labels, nil)}
}

// With returns the gauge selected by the label values. A nil GaugeVec
// returns a nil (no-op) Gauge.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the unlabeled histogram of the named family, with
// the given upper bucket bounds (ascending; the +Inf bucket is
// implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, histogramKind, nil, buckets)
	return f.child(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct {
	fam *family
}

// HistogramVec returns the labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.family(name, help, histogramKind, labels, buckets)}
}

// With returns the histogram selected by the label values. A nil
// HistogramVec returns a nil (no-op) Histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.child(values, func() any { return newHistogram(v.fam.buckets) }).(*Histogram)
}

// sortedFamilies snapshots the families in name order for rendering.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots a family's children in label-value order.
func (f *family) sortedChildren() []*child {
	var out []*child
	keys := make([]string, 0, 4)
	byKey := make(map[string]*child)
	f.children.Range(func(k, v any) bool {
		keys = append(keys, k.(string))
		byKey[k.(string)] = v.(*child)
		return true
	})
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}
