package epsilon

import (
	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/graph"
)

// maxCerts bounds a CertStore's size. Certificates past the cap are
// dropped: the store is a pure accelerator, so losing one never affects
// output, only how much search a later evaluation can skip.
const maxCerts = 4096

// CertStore accumulates coverage certificates across the ε evaluations
// of related attribute sets. A certificate is a vertex set Q — in
// parent-graph ids, sorted ascending — that is a γ-quasi-clique of
// size ≥ min_size of the subgraph induced by Q itself. Because the
// quasi-clique property of Q depends only on G[Q], the certificate
// proves "every vertex of Q is covered" for ANY attribute set S with
// Q ⊆ V(S): G(S)[Q] = G[Q]. Sibling attribute sets therefore reuse each
// other's discoveries, turning coverage searches into incremental work.
//
// Certificates live concatenated in one arena and are deduplicated by a
// 64-bit hash: the searches re-report the same quasi-cliques
// constantly, and the store must absorb that stream without per-report
// garbage. A hash collision silently drops the newer certificate —
// harmless, since the store only ever removes work.
//
// A CertStore is NOT safe for concurrent use, with one exception: a
// frozen store may serve as the shared read-only base of any number of
// layered stores (NewCertStoreFrom), each confined to its own
// goroutine. The miner builds one global base from every level-1
// evaluation — absorbed in canonical extension order, so the base is
// identical for every worker schedule and shard count — and hands each
// level-1 subtree a private layer over it, which keeps every search's
// certificate context — and with it the search-node count — independent
// of worker scheduling.
type CertStore struct {
	// base, when non-nil, is a frozen lower layer: its certificates
	// count toward Len, seed searches and dedup additions, but it is
	// never written through this store. Many layered stores may share
	// one base concurrently as long as nobody writes the base itself.
	base *CertStore

	arena []int32  // all certificates, concatenated
	ends  []int32  // ends[i] = end offset of certificate i in arena
	seen  []uint64 // fixed-size open-addressing dedup table; 0 = empty

	// Per-evaluation scratch, reused across the store's sequential
	// evaluations so seeding and capture stay allocation-free after the
	// first use. seedScratch backs seedLocal's result; curSub/capBuf
	// back the single persistent capture closure sinkFn.
	seedScratch bitset.Set
	curSub      *graph.Subgraph
	capBuf      []int32
	sinkFn      func(q []int32)
}

// seenSlots is the dedup table size: a power of two at twice maxCerts,
// so the table never exceeds load factor ½ and probes stay short.
const seenSlots = 2 * maxCerts

// NewCertStore returns an empty certificate store.
func NewCertStore() *CertStore {
	return &CertStore{}
}

// NewCertStoreFrom returns a copy-on-write layer over base: reads see
// base's certificates plus the layer's own additions; writes only ever
// touch the layer. base must be frozen — never written again — for as
// long as any layer over it is in use; under that contract, layers over
// one base are safe to use from different goroutines. A nil or empty
// base yields an independent empty store.
func NewCertStoreFrom(base *CertStore) *CertStore {
	if base.Len() == 0 {
		return &CertStore{}
	}
	return &CertStore{base: base}
}

// Len reports the number of stored certificates, base layer included.
func (c *CertStore) Len() int {
	if c == nil {
		return 0
	}
	return c.base.Len() + len(c.ends)
}

// contains probes the store's own dedup table (not the base's) for h.
func (c *CertStore) contains(h uint64) bool {
	if c == nil || c.seen == nil {
		return false
	}
	slot := h & (seenSlots - 1)
	for c.seen[slot] != 0 {
		if c.seen[slot] == h {
			return true
		}
		slot = (slot + 1) & (seenSlots - 1)
	}
	return false
}

// Add records the quasi-clique certificate q (parent-graph ids, sorted
// ascending; the values are copied). Duplicates — against the base
// layer too — and additions beyond the capacity are dropped
// allocation-free.
func (c *CertStore) Add(q []int32) {
	if c == nil || c.Len() >= maxCerts || len(q) == 0 {
		return
	}
	// FNV-1a over the id stream; sorted input makes the hash canonical.
	h := uint64(14695981039346656037)
	for _, x := range q {
		h = (h ^ uint64(uint32(x))) * 1099511628211
	}
	if h == 0 {
		h = 1 // 0 marks an empty slot
	}
	if c.base.contains(h) {
		return
	}
	if c.seen == nil {
		c.seen = make([]uint64, seenSlots)
	}
	// Linear probe. A full-looking run or a hash collision drops the
	// certificate — the store only removes work, so both are harmless.
	slot := h & (seenSlots - 1)
	for c.seen[slot] != 0 {
		if c.seen[slot] == h {
			return
		}
		slot = (slot + 1) & (seenSlots - 1)
	}
	c.seen[slot] = h
	c.arena = append(c.arena, q...)
	c.ends = append(c.ends, int32(len(c.arena)))
}

// forEach calls fn with each stored certificate in canonical order —
// base layer first, then own additions in insertion order (views into
// the arena; callers must not retain or modify them).
func (c *CertStore) forEach(fn func(q []int32)) {
	if c == nil {
		return
	}
	c.base.forEach(fn)
	start := int32(0)
	for _, end := range c.ends {
		fn(c.arena[start:end])
		start = end
	}
}

// Absorb appends every certificate of o, in o's canonical order, to c
// (dedup and capacity rules apply). The miner merges the per-single
// level-1 stores into one global base with it, always in extension
// order, so the merged store is identical for every worker schedule.
func (c *CertStore) Absorb(o *CertStore) {
	if c == nil || o == nil {
		return
	}
	o.forEach(func(q []int32) { c.Add(q) })
}

// Certificates returns a copy of every stored certificate in canonical
// order. The shard manifest seals level-1 certificates with it;
// replaying the returned slices through Add in order rebuilds an
// equivalent store.
func (c *CertStore) Certificates() [][]int32 {
	if c.Len() == 0 {
		return nil
	}
	out := make([][]int32, 0, c.Len())
	c.forEach(func(q []int32) {
		out = append(out, append([]int32(nil), q...))
	})
	return out
}

// seedLocal builds the set of local-id vertices of sub that the stored
// certificates prove covered: the union of every certificate lying
// wholly inside the candidate set. Returns nil when no certificate
// applies. The returned set aliases store-owned scratch and is only
// valid until the next seedLocal call on the same store.
func (c *CertStore) seedLocal(sub *graph.Subgraph, candidates *bitset.Set) *bitset.Set {
	if c.Len() == 0 {
		return nil
	}
	var seed *bitset.Set
	c.forEach(func(q []int32) {
		for _, v := range q {
			if !candidates.Contains(int(v)) {
				return
			}
		}
		if seed == nil {
			c.seedScratch.Reset(len(sub.Orig))
			seed = &c.seedScratch
		}
		for _, v := range q {
			if local := sub.LocalOf(v); local >= 0 {
				seed.Add(int(local))
			}
		}
	})
	return seed
}

// capture returns a sink translating quasi-cliques reported in sub's
// local ids to parent ids and storing them as certificates. Local ids
// are ascending in parent-id order, so the translated set stays sorted.
// The same closure is reused across calls — only curSub is swapped — so
// a sink is dead the moment capture is called again on its store; the
// miner's sequential per-store evaluation order guarantees that.
func (c *CertStore) capture(sub *graph.Subgraph) func(q []int32) {
	if c == nil {
		return nil
	}
	c.curSub = sub
	if c.sinkFn == nil {
		c.sinkFn = func(q []int32) {
			c.capBuf = c.capBuf[:0]
			for _, local := range q {
				c.capBuf = append(c.capBuf, c.curSub.Orig[local])
			}
			c.Add(c.capBuf)
		}
	}
	return c.sinkFn
}
