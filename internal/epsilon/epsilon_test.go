package epsilon

import (
	"math"
	"reflect"
	"testing"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/datagen"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/quasiclique"
)

// testGraph generates a small synthetic attributed graph (deterministic
// per seed offset) with planted communities, so supports are large
// enough for real sampling.
func testGraph(t *testing.T, seedOffset int64) *graph.Graph {
	t.Helper()
	prof := datagen.SmallDBLP(0.2)
	prof.Config.Seed += seedOffset
	g, _, err := datagen.Generate(prof.Config)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func qcParams() quasiclique.Params { return quasiclique.Params{Gamma: 0.5, MinSize: 4} }

func TestSampleSize(t *testing.T) {
	cases := []struct {
		eps, delta float64
		want       int
	}{
		{0.1, 0.05, 185},  // ⌈ln(40)/0.02⌉
		{0.25, 0.2, 19},   // ⌈ln(10)/0.125⌉
		{0.05, 0.05, 738}, // ⌈ln(40)/0.005⌉
	}
	for _, c := range cases {
		if got := SampleSize(c.eps, c.delta); got != c.want {
			t.Errorf("SampleSize(%g, %g) = %d, want %d", c.eps, c.delta, got, c.want)
		}
	}
	if SampleSize(0, 0.1) != math.MaxInt32 || SampleSize(0.1, 0) != math.MaxInt32 {
		t.Error("degenerate inputs should disable sampling")
	}
}

// TestExactAgainstCoverage checks the exact estimator against a direct
// coverage computation for every frequent single attribute.
func TestExactAgainstCoverage(t *testing.T) {
	g := testGraph(t, 0)
	qp := qcParams()
	est := NewExact(qp, quasiclique.Options{})
	for a := int32(0); a < int32(g.NumAttributes()); a++ {
		members := g.AttrMembers(a)
		sigma := members.Count()
		if sigma < 10 {
			continue
		}
		e, err := est.Estimate(g, []int32{a}, members, members)
		if err != nil {
			t.Fatal(err)
		}
		sub := g.InducedByAttrs([]int32{a})
		cov, err := quasiclique.Coverage(quasiclique.NewGraphCSR(sub.CSR()), qp, quasiclique.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nCov := cov.Covered.Count()
		if e.Covered != nCov || e.Estimated || e.ErrBound != 0 || e.SampledVertices != 0 {
			t.Fatalf("attr %d: estimate %+v, want covered %d exact", a, e, nCov)
		}
		if want := float64(nCov) / float64(sigma); e.Epsilon != want {
			t.Fatalf("attr %d: ε = %v, want %v", a, e.Epsilon, want)
		}
		if e.Handdown.Count() != nCov || e.KMass != float64(nCov) {
			t.Fatalf("attr %d: handdown/KMass inconsistent: %+v", a, e)
		}
	}
}

// TestSampledWithinHoeffdingBound is the accuracy property test: across
// every frequent attribute of several generated graphs, |ε̂ − ε| must
// stay within the configured half-width except for a δ-bounded fraction
// of violations, the hand-down set must remain a superset of K_S, and
// KMass must upper-bound |K_S| whenever the estimate is in bound.
func TestSampledWithinHoeffdingBound(t *testing.T) {
	const sampleEps, sampleDelta = 0.25, 0.1
	qp := qcParams()
	exact := NewExact(qp, quasiclique.Options{})
	sampled := NewSampled(qp, quasiclique.Options{}, sampleEps, sampleDelta, 42)
	trials, violations := 0, 0
	for off := int64(0); off < 3; off++ {
		g := testGraph(t, off)
		for a := int32(0); a < int32(g.NumAttributes()); a++ {
			members := g.AttrMembers(a)
			if members.Count() <= SampleWorthFactor*SampleSize(sampleEps, sampleDelta) {
				continue // would fall back to exact — not a sampling trial
			}
			want, err := exact.Estimate(g, []int32{a}, members, members)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sampled.Estimate(g, []int32{a}, members, members)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Estimated || got.SampledVertices == 0 || got.ErrBound != sampleEps {
				t.Fatalf("attr %d: not a sampled estimate: %+v", a, got)
			}
			if !got.Handdown.ContainsAll(want.Handdown) {
				t.Fatalf("attr %d: hand-down set lost covered vertices", a)
			}
			trials++
			if math.Abs(got.Epsilon-want.Epsilon) > sampleEps {
				violations++
				continue
			}
			if got.KMass < float64(want.Covered) {
				t.Fatalf("attr %d: KMass %v below |K_S| %d despite in-bound ε̂", a, got.KMass, want.Covered)
			}
		}
	}
	if trials == 0 {
		t.Fatal("no sampling trials — generated supports too small")
	}
	// Hoeffding allows a δ fraction of misses; give it 2× headroom plus
	// one so tiny trial counts cannot flake.
	allowed := int(2*sampleDelta*float64(trials)) + 1
	if violations > allowed {
		t.Fatalf("%d/%d estimates outside ±%g (allowed %d)", violations, trials, sampleEps, allowed)
	}
	t.Logf("sampled accuracy: %d trials, %d outside ±%g (allowed %d)", trials, violations, sampleEps, allowed)
}

// TestSampledDeterminism: the same seed must reproduce every estimate
// bit-for-bit; estimation must not mutate its inputs.
func TestSampledDeterminism(t *testing.T) {
	g := testGraph(t, 1)
	qp := qcParams()
	a := mostFrequentAttr(g)
	members := g.AttrMembers(a)
	snapshot := members.Clone()

	first := NewSampled(qp, quasiclique.Options{}, 0.2, 0.1, 7)
	second := NewSampled(qp, quasiclique.Options{}, 0.2, 0.1, 7)
	e1, err := first.Estimate(g, []int32{a}, members, members)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := second.Estimate(g, []int32{a}, members, members)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Epsilon != e2.Epsilon || e1.Covered != e2.Covered || !e1.Handdown.Equal(e2.Handdown) {
		t.Fatalf("same seed diverged: %+v vs %+v", e1, e2)
	}
	// A re-run on the same estimator instance must agree too.
	e3, err := first.Estimate(g, []int32{a}, members, members)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Epsilon != e3.Epsilon {
		t.Fatalf("re-run diverged: %v vs %v", e1.Epsilon, e3.Epsilon)
	}
	if !members.Equal(snapshot) {
		t.Fatal("Estimate mutated the member set")
	}
}

// TestSampledFallsBackToExact: supports at or below the sample size must
// delegate to the exact estimator.
func TestSampledFallsBackToExact(t *testing.T) {
	g := graph.PaperExample()
	qp := quasiclique.Params{Gamma: 0.6, MinSize: 4}
	sampled := NewSampled(qp, quasiclique.Options{}, 0.1, 0.05, 1)
	exact := NewExact(qp, quasiclique.Options{})
	a, ok := g.AttrID("A")
	if !ok {
		t.Fatal("paper example lost attribute A")
	}
	members := g.AttrMembers(a)
	got, err := sampled.Estimate(g, []int32{a}, members, members)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Estimate(g, []int32{a}, members, members)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimated || !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback not exact: got %+v want %+v", got, want)
	}
}

// TestSampledCandidateRestriction: vertices outside the Theorem-3
// candidate set count as misses and never enter the hand-down set.
func TestSampledCandidateRestriction(t *testing.T) {
	g := testGraph(t, 2)
	qp := qcParams()
	a := mostFrequentAttr(g)
	members := g.AttrMembers(a)
	empty := bitset.New(g.NumVertices())
	sampled := NewSampled(qp, quasiclique.Options{}, 0.2, 0.1, 3)
	e, err := sampled.Estimate(g, []int32{a}, members, empty)
	if err != nil {
		t.Fatal(err)
	}
	if e.Epsilon != 0 || e.Covered != 0 || e.KMass != 0 || e.Handdown.Count() != 0 {
		t.Fatalf("empty candidates must force ε̂ = 0: %+v", e)
	}
}

// TestNames pins the estimator names used in reports and bench files.
func TestNames(t *testing.T) {
	qp := qcParams()
	if NewExact(qp, quasiclique.Options{}).Name() != "exact" {
		t.Error("exact name")
	}
	if NewSampled(qp, quasiclique.Options{}, 0, 0, 0).Name() != "sampled" {
		t.Error("sampled name")
	}
}

// TestDefaultsApplied: non-positive sampling parameters take the
// documented defaults.
func TestDefaultsApplied(t *testing.T) {
	s := NewSampled(qcParams(), quasiclique.Options{}, 0, 0, 0)
	if s.eps != DefaultSampleEps || s.delta != DefaultSampleDelta {
		t.Fatalf("defaults not applied: eps=%v delta=%v", s.eps, s.delta)
	}
	if s.m != SampleSize(DefaultSampleEps, DefaultSampleDelta) {
		t.Fatalf("sample size %d inconsistent with defaults", s.m)
	}
}

// mostFrequentAttr returns the attribute with the largest support.
func mostFrequentAttr(g *graph.Graph) int32 {
	best, bestSup := int32(0), -1
	for a := int32(0); a < int32(g.NumAttributes()); a++ {
		if s := g.AttrSupport(a); s > bestSup {
			best, bestSup = a, s
		}
	}
	return best
}
