// Package epsilon is the pluggable ε-estimation layer of SCPM: given an
// attribute set S (its member vertices V(S) and the Theorem-3 candidate
// restriction), an Estimator produces the structural correlation ε(S)
// together with everything the miner's pruning rules need — the
// covered-set hand-down for Theorem 3 and an upper bound on |K_S| for
// Theorems 4–5.
//
// Two implementations are provided:
//
//   - Exact runs the full quasi-clique coverage search of §3.2.2 and is
//     bit-identical to computing ε inline;
//   - Sampled draws a deterministic seeded vertex sample from V(S) and
//     answers a per-vertex "is v inside some γ-quasi-clique of G(S)?"
//     membership query for each draw (§6 of the paper), with a
//     Hoeffding-bounded sample size, falling back to Exact whenever the
//     sample would not be smaller than the population.
package epsilon

import (
	"math"
	"math/rand"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/quasiclique"
	"github.com/scpm/scpm/internal/stats"
)

// Default sampling accuracy: |ε̂−ε| ≤ 0.1 with probability ≥ 95% per
// estimate, i.e. 185 membership samples.
const (
	// DefaultSampleEps is the Hoeffding half-width used when a
	// non-positive SampleEps is configured.
	DefaultSampleEps = 0.1
	// DefaultSampleDelta is the failure probability used when a
	// non-positive SampleDelta is configured.
	DefaultSampleDelta = 0.05
)

// Estimate is the outcome of one ε(S) computation.
type Estimate struct {
	// Epsilon is ε(S) — exact, or the sampling estimate ε̂(S).
	Epsilon float64
	// Covered is |K_S| in exact mode; in sampled mode it is the rounded
	// estimate ε̂·σ.
	Covered int
	// Handdown is a superset of K_S over parent-graph vertex ids: the
	// exact K_S in exact mode, and in sampled mode the candidate set
	// minus the sampled vertices proven uncovered. Theorem 3 lets child
	// attribute sets restrict their searches to it in either mode.
	Handdown *bitset.Set
	// KMass upper-bounds |K_S| = ε(S)·σ(S) — exactly in exact mode, with
	// probability ≥ 1−δ in sampled mode — which is what the Theorem-4/5
	// survival bounds consume.
	KMass float64
	// Estimated reports whether Epsilon (and Covered) are sampling
	// estimates rather than exact counts.
	Estimated bool
	// SampledVertices is the number of membership queries drawn; 0 when
	// the estimate is exact.
	SampledVertices int
	// ErrBound is the Hoeffding half-width w of the estimate: |ε̂−ε| ≤ w
	// with probability ≥ 1−δ. 0 when the estimate is exact.
	ErrBound float64
	// Nodes is the number of quasi-clique search-tree nodes spent.
	Nodes int64
}

// Estimator computes the structural correlation of attribute sets.
// Implementations must be safe for concurrent use by mining workers and
// deterministic: the same (attrs, members, candidates) input always
// yields the same Estimate.
type Estimator interface {
	// Estimate computes ε(S) for the attribute set S = attrs, whose
	// member vertices are members = V(S) and whose coverage search may
	// be restricted to candidates ⊆ members (Theorem 3; pass members
	// when no restriction applies). attrs identifies S for deterministic
	// per-set seeding and must be in canonical (ascending) order.
	Estimate(g *graph.Graph, attrs []int32, members, candidates *bitset.Set) (Estimate, error)
	// EstimateWithCerts is Estimate with a certificate store: coverage
	// already proven by certs is not re-searched, and quasi-cliques
	// discovered along the way are captured into certs for later
	// evaluations. The Estimate itself must be bit-identical to the
	// store-free call — certificates only shrink Nodes. A nil store
	// degrades to Estimate.
	EstimateWithCerts(g *graph.Graph, attrs []int32, members, candidates *bitset.Set, certs *CertStore) (Estimate, error)
	// Name identifies the estimator in reports ("exact", "sampled").
	Name() string
}

// Exact computes ε(S) with the full coverage search of §3.2.2 —
// bit-identical to the pre-refactor inline computation in the miner.
type Exact struct {
	p quasiclique.Params
	o quasiclique.Options
}

// NewExact builds the exact estimator for the given quasi-clique
// definition and engine options.
func NewExact(p quasiclique.Params, o quasiclique.Options) *Exact {
	return &Exact{p: p, o: o}
}

// Name implements Estimator.
func (e *Exact) Name() string { return "exact" }

// Estimate implements Estimator: it slices G(S) down to the candidate
// set, runs the coverage search and maps the covered set back to
// parent-graph ids.
func (e *Exact) Estimate(g *graph.Graph, attrs []int32, members, candidates *bitset.Set) (Estimate, error) {
	return e.EstimateWithCerts(g, attrs, members, candidates, nil)
}

// EstimateWithCerts implements Estimator: applicable certificates seed
// the coverage search's covered set, and every quasi-clique the search
// reports is captured back into the store. The covered set K_S is a
// fixed property of G(S), so the result is bit-identical either way.
func (e *Exact) EstimateWithCerts(g *graph.Graph, attrs []int32, members, candidates *bitset.Set, certs *CertStore) (Estimate, error) {
	sigma := members.Count()
	sub := g.InducedByMembers(candidates)
	seed := certs.seedLocal(sub, candidates)
	cov, err := quasiclique.CoverageSeeded(quasiclique.NewGraphCSR(sub.CSR()), e.p, e.o, seed, certs.capture(sub))
	if err != nil {
		return Estimate{}, err
	}
	covered := bitset.New(g.NumVertices())
	cov.Covered.ForEach(func(local int) bool {
		covered.Add(int(sub.Orig[local]))
		return true
	})
	nCov := covered.Count()
	eps := 0.0
	if sigma > 0 {
		eps = float64(nCov) / float64(sigma)
	}
	return Estimate{
		Epsilon:  eps,
		Covered:  nCov,
		Handdown: covered,
		KMass:    float64(nCov),
		Nodes:    cov.Nodes,
	}, nil
}

// Sampled estimates ε(S) by sampling vertices from V(S) without
// replacement and running one anchored membership query per draw. The
// sample size m = ⌈ln(2/δ)/(2ε²)⌉ guarantees |ε̂−ε| ≤ ε with
// probability ≥ 1−δ (Hoeffding; sampling without replacement only
// concentrates harder). Randomness is derived from (Seed, attrs), so a
// run's estimates are deterministic and independent of worker
// scheduling. Sets whose support does not exceed the sample size are
// delegated to the exact estimator — there the full search is the
// cheaper option and the result carries no error.
type Sampled struct {
	eps   float64
	delta float64
	seed  int64
	m     int
	exact *Exact
	p     quasiclique.Params
	o     quasiclique.Options
}

// NewSampled builds the sampling estimator. Non-positive eps or delta
// fall back to DefaultSampleEps / DefaultSampleDelta.
func NewSampled(p quasiclique.Params, o quasiclique.Options, eps, delta float64, seed int64) *Sampled {
	if eps <= 0 {
		eps = DefaultSampleEps
	}
	if delta <= 0 {
		delta = DefaultSampleDelta
	}
	return &Sampled{
		eps:   eps,
		delta: delta,
		seed:  seed,
		m:     SampleSize(eps, delta),
		exact: NewExact(p, o),
		p:     p,
		o:     o,
	}
}

// Name implements Estimator.
func (s *Sampled) Name() string { return "sampled" }

// SampleSize returns the Hoeffding sample count m = ⌈ln(2/δ)/(2ε²)⌉
// needed for |ε̂−ε| ≤ eps with probability ≥ 1−delta.
func SampleSize(eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return math.MaxInt32
	}
	m := math.Ceil(math.Log(2/delta) / (2 * eps * eps))
	if m < 1 {
		return 1
	}
	return int(m)
}

// SampleWorthFactor is the minimum σ/m ratio for sampling to engage.
// Each anchored query re-derives structure the full coverage search
// amortizes across all vertices, so probing a large fraction of V(S)
// one vertex at a time costs more than one exact search; sampling only
// pays off once the sample is a small fraction of the population.
const SampleWorthFactor = 2

// Estimate implements Estimator.
func (s *Sampled) Estimate(g *graph.Graph, attrs []int32, members, candidates *bitset.Set) (Estimate, error) {
	return s.EstimateWithCerts(g, attrs, members, candidates, nil)
}

// EstimateWithCerts implements Estimator: sampled vertices covered by an
// applicable certificate count as hits without an anchored search —
// identical to the verdict the search would reach, since the anchored
// query is complete — and quasi-cliques reported by the searches that
// do run are captured into the store. ε̂, the hand-down and the node
// budget semantics are bit-identical to the store-free call.
func (s *Sampled) EstimateWithCerts(g *graph.Graph, attrs []int32, members, candidates *bitset.Set, certs *CertStore) (Estimate, error) {
	sigma := members.Count()
	if sigma <= SampleWorthFactor*s.m {
		return s.exact.EstimateWithCerts(g, attrs, members, candidates, certs)
	}

	// Deterministic per-set sample: m draws without replacement from
	// V(S) by partial Fisher–Yates over the member slice.
	rng := rand.New(rand.NewSource(setSeed(s.seed, attrs)))
	verts := members.Slice()
	for i := 0; i < s.m; i++ {
		j := i + rng.Intn(len(verts)-i)
		verts[i], verts[j] = verts[j], verts[i]
	}
	sample := verts[:s.m]

	sub := g.InducedByMembers(candidates)
	eng, err := quasiclique.NewEngine(quasiclique.NewGraphCSR(sub.CSR()), s.p, s.o)
	if err != nil {
		return Estimate{}, err
	}
	seed := certs.seedLocal(sub, candidates)
	if sink := certs.capture(sub); sink != nil {
		eng.SetCertSink(sink)
	}
	handdown := candidates.Clone()
	hits := 0
	for _, v := range sample {
		// Vertices outside the candidate restriction are already known
		// to lie outside every quasi-clique of G(S) (Theorem 3): they
		// count as misses without a search.
		local := sub.LocalOf(v)
		if local < 0 {
			continue
		}
		if seed != nil && seed.Contains(int(local)) {
			// A certificate proves v covered; the anchored search —
			// which is complete — would return the same verdict.
			hits++
			continue
		}
		ok, err := eng.CoversVertex(local)
		if err != nil {
			return Estimate{}, err
		}
		if ok {
			hits++
		} else {
			// A sampled vertex proven uncovered cannot be in K_S, so the
			// hand-down set for child searches sheds it.
			handdown.Remove(int(v))
		}
	}
	epsHat := float64(hits) / float64(s.m)
	// |K_S| ≤ (ε̂+w)·σ with probability ≥ 1−δ, and always ≤ |handdown|.
	kMass := (epsHat + s.eps) * float64(sigma)
	if hc := float64(handdown.Count()); kMass > hc {
		kMass = hc
	}
	return Estimate{
		Epsilon:         epsHat,
		Covered:         int(math.Round(epsHat * float64(sigma))),
		Handdown:        handdown,
		KMass:           kMass,
		Estimated:       true,
		SampledVertices: s.m,
		ErrBound:        s.eps,
		Nodes:           eng.NodesVisited(),
	}, nil
}

// setSeed derives a per-attribute-set rng seed from the run seed by
// folding the attribute ids through the shared avalanche mixer, so
// nearby sets decorrelate and results do not depend on evaluation
// order.
func setSeed(seed int64, attrs []int32) int64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, a := range attrs {
		h = stats.Mix64(h + uint64(uint32(a)) + 1)
	}
	return int64(stats.Mix64(h + uint64(len(attrs))))
}
