package bitset

import (
	"math/bits"
	"testing"
)

// fromBytes builds a set of capacity n whose element i is present when
// bit i of the byte stream is 1 (bits beyond n are ignored).
func fromBytes(n int, data []byte) *Set {
	s := New(n)
	for i := 0; i < n && i/8 < len(data); i++ {
		if data[i/8]&(1<<uint(i%8)) != 0 {
			s.Add(i)
		}
	}
	return s
}

// FuzzBitsetKernels differentially checks the word-at-a-time kernels
// against naive per-bit reference loops over Contains, which exercise
// none of the word-level shortcuts. Run locally with
//
//	go test -fuzz FuzzBitsetKernels ./internal/bitset
func FuzzBitsetKernels(f *testing.F) {
	f.Add(uint16(70), []byte{0xff, 0x01, 0x80}, []byte{0x0f})
	f.Add(uint16(1), []byte{0x01}, []byte{0x00})
	f.Add(uint16(64), []byte{0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa}, []byte{0x55})
	f.Add(uint16(129), []byte{}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x03})
	f.Add(uint16(513), []byte{0x10, 0x00, 0x20}, []byte{0x10, 0x00, 0x20})
	f.Fuzz(func(t *testing.T, n16 uint16, ab, bb []byte) {
		n := int(n16)%700 + 1
		a := fromBytes(n, ab)
		b := fromBytes(n, bb)

		// Per-bit references.
		interCount, unionCount, diffCount := 0, 0, 0
		for i := 0; i < n; i++ {
			ina, inb := a.Contains(i), b.Contains(i)
			if ina && inb {
				interCount++
			}
			if ina || inb {
				unionCount++
			}
			if ina && !inb {
				diffCount++
			}
		}

		if got := a.IntersectCount(b); got != interCount {
			t.Fatalf("IntersectCount = %d, want %d", got, interCount)
		}
		if ca, cb := a.IntersectCount2(b, a); ca != interCount || cb != a.Count() {
			t.Fatalf("IntersectCount2 = (%d,%d), want (%d,%d)", ca, cb, interCount, a.Count())
		}

		scratch := New(n)
		scratch.AndInto(a, b)
		if got := scratch.Count(); got != interCount {
			t.Fatalf("AndInto count = %d, want %d", got, interCount)
		}
		for i := 0; i < n; i++ {
			if scratch.Contains(i) != (a.Contains(i) && b.Contains(i)) {
				t.Fatalf("AndInto bit %d wrong", i)
			}
		}

		u := a.Union(b)
		if got := u.Count(); got != unionCount {
			t.Fatalf("Union count = %d, want %d", got, unionCount)
		}
		d := a.Clone()
		d.DifferenceWith(b)
		if got := d.Count(); got != diffCount {
			t.Fatalf("Difference count = %d, want %d", got, diffCount)
		}

		ac := a.Clone()
		if got := ac.AndWithCount(b); got != interCount || !ac.Equal(scratch) {
			t.Fatalf("AndWithCount = %d (equal=%v), want %d", got, ac.Equal(scratch), interCount)
		}

		// ContainsAll must agree with the subset relation of the AND.
		if got, want := a.ContainsAll(scratch), true; got != want {
			t.Fatalf("ContainsAll(a∩b ⊆ a) = %v", got)
		}
		if b.Count() > 0 && interCount < b.Count() {
			if a.ContainsAll(b) {
				t.Fatal("ContainsAll claims b ⊆ a but intersection is smaller than b")
			}
		}

		// NextSet walk must enumerate exactly the members in order.
		prev := -1
		seen := 0
		for i := a.NextSet(0); i >= 0; i = a.NextSet(i + 1) {
			if i <= prev || !a.Contains(i) {
				t.Fatalf("NextSet walk broke at %d (prev %d)", i, prev)
			}
			prev = i
			seen++
		}
		if seen != a.Count() {
			t.Fatalf("NextSet walk saw %d members, Count = %d", seen, a.Count())
		}

		// Popcount of the backing words must agree with Count.
		wordSum := 0
		for _, w := range a.words {
			wordSum += bits.OnesCount64(w)
		}
		if wordSum != a.Count() {
			t.Fatalf("word popcount %d != Count %d", wordSum, a.Count())
		}
	})
}
