package bitset

import "testing"

func benchPair(n int) (*Set, *Set) {
	a, b := New(n), New(n)
	for i := 0; i < n; i += 3 {
		a.Add(i)
	}
	for i := 0; i < n; i += 5 {
		b.Add(i)
	}
	return a, b
}

func BenchmarkIntersectWith64k(bm *testing.B) {
	a, b := benchPair(1 << 16)
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		a.IntersectWith(b)
	}
}

func BenchmarkDifferenceWith64k(bm *testing.B) {
	a, b := benchPair(1 << 16)
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		a.DifferenceWith(b)
	}
}

func BenchmarkCount64k(bm *testing.B) {
	a, _ := benchPair(1 << 16)
	var sink int
	for i := 0; i < bm.N; i++ {
		sink += a.Count()
	}
	_ = sink
}

func BenchmarkIntersectCount64k(bm *testing.B) {
	a, b := benchPair(1 << 16)
	var sink int
	for i := 0; i < bm.N; i++ {
		sink += a.IntersectCount(b)
	}
	_ = sink
}
