package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.IsEmpty() {
		t.Fatal("new set should be empty")
	}
	for _, v := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(v)
		if !s.Contains(v) {
			t.Fatalf("Contains(%d) = false after Add", v)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Clear()
	if !s.IsEmpty() {
		t.Fatal("set not empty after Clear")
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(1000) {
		t.Fatal("Contains should be false out of range")
	}
}

func TestFromSliceAndSlice(t *testing.T) {
	in := []int32{9, 3, 3, 0, 7}
	s := FromSlice(10, in)
	got := s.Slice()
	want := []int32{0, 3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestNextSet(t *testing.T) {
	s := FromSlice(200, []int32{5, 64, 130, 199})
	cases := []struct{ in, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130},
		{131, 199}, {199, 199}, {-3, 5},
	}
	for _, c := range cases {
		if got := s.NextSet(c.in); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := s.NextSet(200); got != -1 {
		t.Errorf("NextSet(200) = %d, want -1", got)
	}
	empty := New(100)
	if got := empty.NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

func TestStringFormat(t *testing.T) {
	s := FromSlice(10, []int32{1, 4})
	if got := s.String(); got != "{1, 4}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// refSet is a map-based reference used by the property tests.
type refSet map[int]bool

func refFromBytes(n int, bs []byte) (*Set, refSet) {
	s := New(n)
	r := refSet{}
	for _, b := range bs {
		v := int(b) % n
		s.Add(v)
		r[v] = true
	}
	return s, r
}

func (r refSet) slice() []int {
	out := make([]int, 0, len(r))
	for v := range r {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func TestQuickAgainstMapReference(t *testing.T) {
	const n = 300
	f := func(as, bs []byte) bool {
		sa, ra := refFromBytes(n, as)
		sb, rb := refFromBytes(n, bs)

		inter := sa.Intersect(sb)
		union := sa.Union(sb)
		diff := sa.Clone()
		diff.DifferenceWith(sb)

		for v := 0; v < n; v++ {
			if inter.Contains(v) != (ra[v] && rb[v]) {
				return false
			}
			if union.Contains(v) != (ra[v] || rb[v]) {
				return false
			}
			if diff.Contains(v) != (ra[v] && !rb[v]) {
				return false
			}
		}
		if sa.IntersectCount(sb) != inter.Count() {
			return false
		}
		if sa.ContainsAll(inter) != true {
			return false
		}
		if union.ContainsAll(sa) != true {
			return false
		}
		if len(ra) != sa.Count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickForEachOrder(t *testing.T) {
	const n = 500
	f := func(vals []uint16) bool {
		s := New(n)
		for _, v := range vals {
			s.Add(int(v) % n)
		}
		prev := -1
		ok := true
		s.ForEach(func(i int) bool {
			if i <= prev {
				ok = false
				return false
			}
			prev = i
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(100, []int32{1, 2, 3, 4})
	seen := 0
	s.ForEach(func(i int) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Fatalf("early stop visited %d, want 2", seen)
	}
}

func TestEqualAndCopyFrom(t *testing.T) {
	a := FromSlice(100, []int32{1, 50, 99})
	b := New(100)
	if a.Equal(b) {
		t.Fatal("different sets compare equal")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom result not equal")
	}
	if a.Equal(New(50)) {
		t.Fatal("sets of different capacity compare equal")
	}
}

// TestWordBoundarySizes exercises capacities straddling the 64-bit word
// boundary, where off-by-one word counts or stray high bits would show.
func TestWordBoundarySizes(t *testing.T) {
	for _, n := range []int{63, 64, 65} {
		s := New(n)
		for v := 0; v < n; v++ {
			s.Add(v)
		}
		if got := s.Count(); got != n {
			t.Fatalf("n=%d: Count after filling = %d", n, got)
		}
		if got := s.Slice(); len(got) != n || int(got[n-1]) != n-1 {
			t.Fatalf("n=%d: Slice tail = %v", n, got)
		}
		if got := s.NextSet(n - 1); got != n-1 {
			t.Fatalf("n=%d: NextSet(%d) = %d", n, n-1, got)
		}
		if got := s.NextSet(n); got != -1 {
			t.Fatalf("n=%d: NextSet(n) = %d, want -1", n, got)
		}
		s.Remove(n - 1)
		if s.Contains(n-1) || s.Count() != n-1 {
			t.Fatalf("n=%d: Remove of last element failed", n)
		}
		other := New(n)
		other.Add(0)
		if got := s.IntersectCount(other); got != 1 {
			t.Fatalf("n=%d: IntersectCount = %d, want 1", n, got)
		}
		inv := s.Clone()
		inv.DifferenceWith(s)
		if !inv.IsEmpty() {
			t.Fatalf("n=%d: s \\ s not empty: %v", n, inv)
		}
	}
}

// TestEmptySetOps pins down every operation on empty sets, including the
// zero-capacity set (a valid value: New(0) and the zero Set).
func TestEmptySetOps(t *testing.T) {
	for _, n := range []int{0, 1, 64, 65} {
		a, b := New(n), New(n)
		if !a.IsEmpty() || a.Count() != 0 {
			t.Fatalf("n=%d: empty set reports elements", n)
		}
		if got := a.Slice(); len(got) != 0 {
			t.Fatalf("n=%d: empty Slice = %v", n, got)
		}
		if a.NextSet(0) != -1 {
			t.Fatalf("n=%d: NextSet on empty != -1", n)
		}
		if a.IntersectCount(b) != 0 {
			t.Fatalf("n=%d: empty IntersectCount != 0", n)
		}
		if !a.ContainsAll(b) || !a.Equal(b) {
			t.Fatalf("n=%d: empty sets must contain and equal each other", n)
		}
		a.IntersectWith(b)
		a.UnionWith(b)
		a.DifferenceWith(b)
		if !a.IsEmpty() {
			t.Fatalf("n=%d: set ops dirtied an empty set", n)
		}
		called := false
		a.ForEach(func(int) bool { called = true; return true })
		if called {
			t.Fatalf("n=%d: ForEach visited elements of an empty set", n)
		}
		if got := a.Clone(); !got.IsEmpty() || got.Len() != n {
			t.Fatalf("n=%d: Clone of empty = %v", n, got)
		}
	}
	var zero Set
	if !zero.IsEmpty() || zero.Count() != 0 || zero.Len() != 0 {
		t.Fatal("zero Set is not a valid empty set")
	}
}

// TestIntersectCountAgainstNaive checks IntersectCount against an
// element-by-element reference on randomized sets, including boundary
// capacities.
func TestIntersectCountAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 64, 65, 127, 300} {
		for trial := 0; trial < 20; trial++ {
			a, b := New(n), New(n)
			for i := 0; i < n/2+1; i++ {
				a.Add(rng.Intn(n))
				b.Add(rng.Intn(n))
			}
			naive := 0
			for v := 0; v < n; v++ {
				if a.Contains(v) && b.Contains(v) {
					naive++
				}
			}
			if got := a.IntersectCount(b); got != naive {
				t.Fatalf("n=%d: IntersectCount = %d, naive = %d", n, got, naive)
			}
		}
	}
}

// TestGrown covers the capacity-growing clone used by the dynamic-graph
// layer: elements preserved, tail empty, shrink requests ignored.
func TestGrown(t *testing.T) {
	s := FromSlice(65, []int32{0, 63, 64})
	g := s.Grown(130)
	if g.Len() != 130 {
		t.Fatalf("Grown capacity = %d, want 130", g.Len())
	}
	for _, v := range []int{0, 63, 64} {
		if !g.Contains(v) {
			t.Fatalf("Grown lost element %d", v)
		}
	}
	if g.Count() != 3 {
		t.Fatalf("Grown count = %d, want 3", g.Count())
	}
	if g.NextSet(65) != -1 {
		t.Fatal("Grown tail is not empty")
	}
	g.Add(129)
	if s.Contains(64) != true || s.Count() != 3 {
		t.Fatal("Grown shares storage with the original")
	}
	if shrunk := s.Grown(10); shrunk.Len() != 65 || shrunk.Count() != 3 {
		t.Fatalf("Grown(10) must keep capacity 65, got %d", shrunk.Len())
	}
	if zero := New(0).Grown(70); zero.Len() != 70 || !zero.IsEmpty() {
		t.Fatalf("Grown from zero capacity = len %d", zero.Len())
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).IntersectWith(New(20))
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative capacity")
		}
	}()
	New(-1)
}

func BenchmarkIntersectCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 16
	x, y := New(n), New(n)
	for i := 0; i < n/4; i++ {
		x.Add(rng.Intn(n))
		y.Add(rng.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectCount(y)
	}
}
