package bitset

import (
	"math/rand"
	"testing"
)

func TestAndIntoAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
			}
		}
		dst := New(n)
		// Pre-dirty the scratch to prove AndInto overwrites fully.
		for i := 0; i < n; i += 2 {
			dst.Add(i)
		}
		dst.AndInto(a, b)
		for i := 0; i < n; i++ {
			want := a.Contains(i) && b.Contains(i)
			if dst.Contains(i) != want {
				t.Fatalf("n=%d AndInto bit %d = %v, want %v", n, i, dst.Contains(i), want)
			}
		}
	}
}

func TestIntersectCount2AgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		s, a, b := New(n), New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
			if rng.Intn(3) == 0 {
				a.Add(i)
			}
			if rng.Intn(4) == 0 {
				b.Add(i)
			}
		}
		ca, cb := s.IntersectCount2(a, b)
		if wa, wb := s.IntersectCount(a), s.IntersectCount(b); ca != wa || cb != wb {
			t.Fatalf("n=%d IntersectCount2 = (%d,%d), want (%d,%d)", n, ca, cb, wa, wb)
		}
	}
}

func TestAndWithCountAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		s, o := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
			if rng.Intn(2) == 0 {
				o.Add(i)
			}
		}
		want := s.IntersectCount(o)
		ref := s.Intersect(o)
		if got := s.AndWithCount(o); got != want {
			t.Fatalf("n=%d AndWithCount = %d, want %d", n, got, want)
		}
		if !s.Equal(ref) {
			t.Fatalf("n=%d AndWithCount left %v, want %v", n, s, ref)
		}
	}
}

func TestNewSlab(t *testing.T) {
	slab := NewSlab(130, 5)
	if len(slab) != 5 {
		t.Fatalf("len = %d, want 5", len(slab))
	}
	for i := range slab {
		if slab[i].Len() != 130 || !slab[i].IsEmpty() {
			t.Fatalf("slab[%d] = cap %d empty %v", i, slab[i].Len(), slab[i].IsEmpty())
		}
	}
	// Writes to one slab member must not leak into its neighbors even
	// at word boundaries.
	slab[2].Add(0)
	slab[2].Add(129)
	for i := range slab {
		if i != 2 && !slab[i].IsEmpty() {
			t.Fatalf("slab[%d] dirtied by writes to slab[2]", i)
		}
	}
	if slab[2].Count() != 2 {
		t.Fatalf("slab[2].Count = %d, want 2", slab[2].Count())
	}
	// Zero-capacity and zero-count slabs are fine.
	if got := NewSlab(0, 3); len(got) != 3 {
		t.Fatalf("NewSlab(0,3) len = %d", len(got))
	}
	if got := NewSlab(10, 0); len(got) != 0 {
		t.Fatalf("NewSlab(10,0) len = %d", len(got))
	}
}

func TestNewSlabNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSlab(-1, 2) did not panic")
		}
	}()
	NewSlab(-1, 2)
}
