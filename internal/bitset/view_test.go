package bitset

import "testing"

func TestViewRoundTrip(t *testing.T) {
	src := New(130)
	for _, v := range []int{0, 63, 64, 100, 129} {
		src.Add(v)
	}
	words := make([]uint64, len(src.Words()))
	copy(words, src.Words())
	v, err := View(130, words)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(src) {
		t.Fatalf("view %v != source %v", v, src)
	}
	if v.Count() != 5 || !v.Contains(129) || v.Contains(128) {
		t.Fatalf("view content wrong: %v", v)
	}
}

func TestViewRejectsBadShapes(t *testing.T) {
	if _, err := View(130, make([]uint64, 2)); err == nil {
		t.Fatal("View accepted short word array")
	}
	if _, err := View(130, make([]uint64, 4)); err == nil {
		t.Fatal("View accepted long word array")
	}
	bad := make([]uint64, 3)
	bad[2] = 1 << 10 // bit 138 ≥ capacity 130
	if _, err := View(130, bad); err == nil {
		t.Fatal("View accepted stray tail bits")
	}
	if v, err := View(0, nil); err != nil || v.Count() != 0 {
		t.Fatalf("View(0, nil) = %v, %v", v, err)
	}
}

func TestViewsOverMirrorsNewSlab(t *testing.T) {
	const n, k = 100, 5
	slab := NewSlab(n, k)
	stride := (n + 63) / 64
	arena := make([]uint64, stride*k)
	for i := range slab {
		for v := i; v < n; v += i + 1 {
			slab[i].Add(v)
		}
		copy(arena[i*stride:(i+1)*stride], slab[i].Words())
	}
	views, err := ViewsOver(n, k, arena)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != k {
		t.Fatalf("got %d views", len(views))
	}
	for i := range views {
		if !views[i].Equal(&slab[i]) {
			t.Fatalf("view %d mismatch: %v vs %v", i, &views[i], &slab[i])
		}
	}
}

func TestViewsOverRejectsBadArena(t *testing.T) {
	if _, err := ViewsOver(100, 5, make([]uint64, 9)); err == nil {
		t.Fatal("ViewsOver accepted wrong arena length")
	}
	arena := make([]uint64, 2*2)
	arena[1] = 1 << 63 // bit 127 ≥ capacity 100 in set 0
	if _, err := ViewsOver(100, 2, arena); err == nil {
		t.Fatal("ViewsOver accepted stray tail bits")
	}
	if _, err := ViewsOver(-1, 2, nil); err == nil {
		t.Fatal("ViewsOver accepted negative capacity")
	}
	views, err := ViewsOver(64, 0, nil)
	if err != nil || len(views) != 0 {
		t.Fatalf("ViewsOver(64, 0) = %v, %v", views, err)
	}
}
