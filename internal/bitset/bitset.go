// Package bitset implements a dense bitset over non-negative integers.
//
// It is the core substrate shared by the vertical itemset miner (tidsets),
// the induced-subgraph machinery (membership tests) and the quasi-clique
// coverage search (covered-vertex sets). Only the operations those callers
// need are provided; all of them run in O(words) or better.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity dense bitset. The zero value is an empty set of
// capacity zero; use New to create a set able to hold values in [0, n).
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for values in [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewSlab returns k empty sets of capacity n whose word storage shares
// one contiguous arena: two allocations total instead of 2k. The
// quasi-clique engine uses it for its per-vertex adjacency and
// distance-2 indexes, whose per-set allocation otherwise dominates the
// allocation profile of short searches. The returned sets are owned by
// the caller; take the address of an element to use pointer methods.
func NewSlab(n, k int) []Set {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("bitset: negative slab dimensions %d x %d", n, k))
	}
	words := (n + wordBits - 1) / wordBits
	arena := make([]uint64, words*k)
	sets := make([]Set, k)
	for i := range sets {
		sets[i] = Set{words: arena[i*words : (i+1)*words : (i+1)*words], n: n}
	}
	return sets
}

// Slab is a reusable arena of equal-capacity sets. The zero value is
// ready to use; Carve reinitializes it, recycling the word storage and
// the set headers across calls, so a caller that repeatedly builds
// slabs of varying dimensions — the quasi-clique engine does, once per
// induced graph — amortizes the two NewSlab allocations away entirely.
type Slab struct {
	arena []uint64
	sets  []Set
}

// Carve returns k empty sets of capacity n backed by the slab. It
// invalidates the sets handed out by every previous Carve on the same
// slab: their storage is cleared and re-partitioned in place.
func (sl *Slab) Carve(n, k int) []Set {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("bitset: negative slab dimensions %d x %d", n, k))
	}
	words := (n + wordBits - 1) / wordBits
	if need := words * k; cap(sl.arena) < need {
		sl.arena = make([]uint64, need)
	} else {
		sl.arena = sl.arena[:need]
		for i := range sl.arena {
			sl.arena[i] = 0
		}
	}
	if cap(sl.sets) < k {
		sl.sets = make([]Set, k)
	} else {
		sl.sets = sl.sets[:k]
	}
	for i := range sl.sets {
		sl.sets[i] = Set{words: sl.arena[i*words : (i+1)*words : (i+1)*words], n: n}
	}
	return sl.sets
}

// FromSlice returns a set of capacity n containing every value of vs.
func FromSlice(n int, vs []int32) *Set {
	s := New(n)
	for _, v := range vs {
		s.Add(int(v))
	}
	return s
}

// Len returns the capacity of the set (the n passed to New).
func (s *Set) Len() int { return s.n }

// Add inserts i into the set. It panics if i is out of range.
func (s *Set) Add(i int) {
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. It panics if i is out of range.
func (s *Set) Remove(i int) {
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set. The loop is
// unrolled four words wide with independent accumulators so the
// popcounts pipeline instead of serializing on one add chain.
func (s *Set) Count() int {
	w := s.words
	var c0, c1, c2, c3 int
	for len(w) >= 4 {
		c0 += bits.OnesCount64(w[0])
		c1 += bits.OnesCount64(w[1])
		c2 += bits.OnesCount64(w[2])
		c3 += bits.OnesCount64(w[3])
		w = w[4:]
	}
	c := c0 + c1 + c2 + c3
	for _, x := range w {
		c += bits.OnesCount64(x)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Reset reinitializes s to an empty set of n bits, reusing the backing
// array when its capacity allows. Scratch sets that outlive one use —
// e.g. a per-store seed buffer rebuilt for graphs of varying size —
// call Reset instead of allocating a fresh Set each round.
func (s *Set) Reset(n int) {
	words := (n + 63) >> 6
	if cap(s.words) < words {
		s.words = make([]uint64, words)
	} else {
		s.words = s.words[:words]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// Grown returns a copy of s whose capacity is at least n: the original
// elements are preserved and the new tail (if any) is empty. When n does
// not exceed the current capacity the copy keeps the original capacity,
// so Grown is always safe to call with a target size that may have
// shrunk. The dynamic-graph layer uses it to carry covered-vertex sets
// across graph versions whose vertex count only ever grows.
func (s *Set) Grown(n int) *Set {
	if n < s.n {
		n = s.n
	}
	g := New(n)
	copy(g.words, s.words)
	return g
}

// CopyFrom overwrites s with the contents of o. The sets must have the
// same capacity.
func (s *Set) CopyFrom(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

// IntersectWith replaces s with s ∩ o. Like every mutating kernel
// below, the inner loop is unrolled four words wide after a slice-
// length hint that eliminates per-element bounds checks.
func (s *Set) IntersectWith(o *Set) {
	s.mustMatch(o)
	a := s.words
	b := o.words[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a[i] &= b[i]
		a[i+1] &= b[i+1]
		a[i+2] &= b[i+2]
		a[i+3] &= b[i+3]
	}
	for ; i < len(a); i++ {
		a[i] &= b[i]
	}
}

// UnionWith replaces s with s ∪ o.
func (s *Set) UnionWith(o *Set) {
	s.mustMatch(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// DifferenceWith replaces s with s \ o.
func (s *Set) DifferenceWith(o *Set) {
	s.mustMatch(o)
	a := s.words
	b := o.words[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a[i] &^= b[i]
		a[i+1] &^= b[i+1]
		a[i+2] &^= b[i+2]
		a[i+3] &^= b[i+3]
	}
	for ; i < len(a); i++ {
		a[i] &^= b[i]
	}
}

// Intersect returns a new set s ∩ o.
func (s *Set) Intersect(o *Set) *Set {
	r := s.Clone()
	r.IntersectWith(o)
	return r
}

// Union returns a new set s ∪ o.
func (s *Set) Union(o *Set) *Set {
	r := s.Clone()
	r.UnionWith(o)
	return r
}

// IntersectCount returns |s ∩ o| without allocating: one branchless
// AND+popcount pass over the word arrays. This is the membership-count
// kernel of the quasi-clique engine's degree computations.
func (s *Set) IntersectCount(o *Set) int {
	s.mustMatch(o)
	a := s.words
	b := o.words[:len(a)]
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += bits.OnesCount64(a[i] & b[i])
		c1 += bits.OnesCount64(a[i+1] & b[i+1])
		c2 += bits.OnesCount64(a[i+2] & b[i+2])
		c3 += bits.OnesCount64(a[i+3] & b[i+3])
	}
	c := c0 + c1 + c2 + c3
	for ; i < len(a); i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// IntersectCount2 returns (|s ∩ a|, |s ∩ b|) in a single pass over s's
// words — the fused kernel behind the engine's indeg/exdeg split, where
// one adjacency set is counted against two scratch sets at once.
func (s *Set) IntersectCount2(a, b *Set) (ca, cb int) {
	s.mustMatch(a)
	s.mustMatch(b)
	for i, w := range s.words {
		ca += bits.OnesCount64(w & a.words[i])
		cb += bits.OnesCount64(w & b.words[i])
	}
	return ca, cb
}

// AndInto sets s = a ∩ b without allocating, overwriting s's contents
// (s is caller-owned scratch). All three sets must share one capacity.
func (s *Set) AndInto(a, b *Set) {
	s.mustMatch(a)
	s.mustMatch(b)
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// AndWithCount replaces s with s ∩ o and returns the resulting count in
// the same word-at-a-time pass.
func (s *Set) AndWithCount(o *Set) int {
	s.mustMatch(o)
	c := 0
	for i := range s.words {
		w := s.words[i] & o.words[i]
		s.words[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// ContainsAll reports whether o ⊆ s.
func (s *Set) ContainsAll(o *Set) bool {
	s.mustMatch(o)
	for i, w := range o.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element in ascending order. If fn returns
// false the iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendTo appends the elements of s in ascending order to dst and
// returns the extended slice.
func (s *Set) AppendTo(dst []int32) []int32 {
	s.ForEach(func(i int) bool {
		dst = append(dst, int32(i))
		return true
	})
	return dst
}

// Slice returns the elements of s in ascending order.
func (s *Set) Slice() []int32 {
	return s.AppendTo(make([]int32, 0, s.Count()))
}

// Bytes renders the set's words little-endian with trailing zero bytes
// trimmed — a canonical, capacity-independent encoding of the content:
// two sets with the same elements produce the same bytes. The shard
// manifest seals covered-set hand-downs with it.
func (s *Set) Bytes() []byte {
	out := make([]byte, len(s.words)*8)
	for i, w := range s.words {
		for b := 0; b < 8; b++ {
			out[i*8+b] = byte(w >> uint(8*b))
		}
	}
	n := len(out)
	for n > 0 && out[n-1] == 0 {
		n--
	}
	return out[:n]
}

// FromBytes rebuilds a set of capacity n from a Bytes encoding. It
// rejects encodings that carry bits at or beyond n — a truncated-
// capacity decode would silently drop elements.
func FromBytes(n int, b []byte) (*Set, error) {
	s := New(n)
	for i, x := range b {
		if x == 0 {
			continue
		}
		if i/8 >= len(s.words) {
			return nil, fmt.Errorf("bitset: %d-byte encoding overflows capacity %d", len(b), n)
		}
		s.words[i/8] |= uint64(x) << uint(8*(i%8))
	}
	// Bits in the last in-range word may still exceed n.
	if last := len(s.words) - 1; last >= 0 && n%wordBits != 0 {
		if s.words[last]>>uint(n%wordBits) != 0 {
			return nil, fmt.Errorf("bitset: encoding has bits ≥ capacity %d", n)
		}
	}
	return s, nil
}

// NextSet returns the smallest element ≥ i, or -1 if none exists.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// String renders the set as "{a, b, c}" for debugging.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
