package bitset

import "fmt"

// Words exposes the set's backing word array by reference, little-
// endian bit order within each word (bit i of the set lives at word
// i/64, bit i%64). The v3 snapshot writer serializes sets through it;
// the caller must not modify the slice.
func (s *Set) Words() []uint64 { return s.words }

// View wraps an existing word array as a set of capacity n without
// copying. The words are used by reference: a view over a read-only
// mapped region must never be passed to a mutating kernel (the
// dynamic-graph layer upholds this by cloning with Grown before any
// mutation). It rejects arrays of the wrong length and stray bits at
// or beyond n, so a corrupted snapshot section cannot produce a set
// whose Count disagrees with its elements.
func View(n int, words []uint64) (*Set, error) {
	need := (n + wordBits - 1) / wordBits
	if len(words) != need {
		return nil, fmt.Errorf("bitset: view of %d words, capacity %d needs %d", len(words), n, need)
	}
	if need > 0 && n%wordBits != 0 && words[need-1]>>uint(n%wordBits) != 0 {
		return nil, fmt.Errorf("bitset: view has bits ≥ capacity %d", n)
	}
	return &Set{words: words, n: n}, nil
}

// ViewsOver carves k sets of capacity n out of one contiguous word
// arena — the read-side mirror of NewSlab, sharing its layout: set i
// occupies arena[i*stride : (i+1)*stride] with stride = ⌈n/64⌉. Like
// View it validates the arena length and every set's tail bits, and
// the returned sets alias the arena (read-only for mapped regions).
func ViewsOver(n, k int, arena []uint64) ([]Set, error) {
	if n < 0 || k < 0 {
		return nil, fmt.Errorf("bitset: negative view dimensions %d x %d", n, k)
	}
	stride := (n + wordBits - 1) / wordBits
	if len(arena) != stride*k {
		return nil, fmt.Errorf("bitset: arena of %d words, %d sets of capacity %d need %d", len(arena), k, n, stride*k)
	}
	sets := make([]Set, k)
	for i := range sets {
		w := arena[i*stride : (i+1)*stride : (i+1)*stride]
		if stride > 0 && n%wordBits != 0 && w[stride-1]>>uint(n%wordBits) != 0 {
			return nil, fmt.Errorf("bitset: view %d has bits ≥ capacity %d", i, n)
		}
		sets[i] = Set{words: w, n: n}
	}
	return sets, nil
}
