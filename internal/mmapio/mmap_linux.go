//go:build linux

package mmapio

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// Supported reports whether this build can create OS file mappings.
func Supported() bool { return true }

// OpenMapped maps path read-only with mmap(2). An empty file yields a
// valid zero-length heap-mode Mapping (mmap rejects length 0).
func OpenMapped(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size < 0 || size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("mmapio: file %s size %d out of range", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapio: mmap %s: %w", path, err)
	}
	return &Mapping{data: data, mapped: true}, nil
}

func munmap(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}

// ResidentBytes returns a best-effort count of the process's
// file-backed resident pages from /proc/self/smaps, summing the Rss of
// every mapping whose pathname contains substr (all file mappings when
// substr is empty). The second result is false when the accounting is
// unavailable.
func ResidentBytes(substr string) (int64, bool) {
	f, err := os.Open("/proc/self/smaps")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var total int64
	match := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	for sc.Scan() {
		line := sc.Text()
		// Mapping headers look like "7f3a..-7f3b.. r--p off dev ino /path";
		// every other line is a "Key:  value kB" field of the current
		// mapping. Headers are distinguished by their hex-range first field.
		if f := strings.IndexByte(line, ' '); f > 0 && strings.ContainsRune(line[:f], '-') {
			path := ""
			if i := strings.LastIndexByte(line, ' '); i >= 0 {
				path = line[i+1:]
			}
			match = strings.HasPrefix(path, "/") && (substr == "" || strings.Contains(path, substr))
			continue
		}
		if !match || !strings.HasPrefix(line, "Rss:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				total += kb * 1024
			}
		}
	}
	if sc.Err() != nil {
		return 0, false
	}
	return total, true
}
