//go:build !linux

package mmapio

import "errors"

// Supported reports whether this build can create OS file mappings.
func Supported() bool { return false }

// OpenMapped is unavailable on this platform; callers fall back to
// OpenHeap (Open does so automatically).
func OpenMapped(path string) (*Mapping, error) {
	return nil, errors.New("mmapio: mmap not supported on this platform")
}

func munmap(data []byte) error { return nil }

// ResidentBytes is unavailable on this platform.
func ResidentBytes(substr string) (int64, bool) { return 0, false }
