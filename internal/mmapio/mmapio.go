// Package mmapio maps files into memory and reinterprets the mapped
// bytes as typed Go slices without copying.
//
// It is the substrate of the v3 snapshot boot path (see
// docs/FILE_FORMATS.md): a snapshot file is opened as one contiguous
// read-only byte region — via mmap(2) on platforms that support it, or
// read into an 8-byte-aligned heap buffer anywhere else — and the
// graph/index packages build their CSR arenas, bitset arenas and string
// tables as views over that region. The package keeps the unsafe
// surface narrow: every reinterpretation helper (Uint64s, Int64s,
// Int32s, ViewString) validates length and 8-byte alignment before the
// single unsafe.Slice/unsafe.String call it wraps, and the rest of the
// codebase never touches package unsafe.
//
// Mapped regions are read-only; writing through a view faults (mmap)
// or corrupts shared state (heap), so all view consumers must treat
// the slices as immutable. Views stay valid until Mapping.Close.
package mmapio

import (
	"errors"
	"fmt"
	"os"
	"unsafe"
)

// ErrMisaligned reports a typed-view request over bytes whose base
// address or length does not meet the view's alignment contract.
var ErrMisaligned = errors.New("mmapio: misaligned view")

// Mapping is one open read-only byte region backed either by an mmap
// of a file or by a heap buffer holding the file's contents. The zero
// value is an empty, closed mapping.
type Mapping struct {
	data   []byte
	mapped bool // true when data is an OS mapping, false for heap
	closed bool
}

// Open opens path as a read-only Mapping, preferring an OS file
// mapping and silently falling back to a heap read when mapping is
// unsupported (non-linux builds) or fails (e.g. special files). Use
// OpenMapped or OpenHeap to force one path.
func Open(path string) (*Mapping, error) {
	if Supported() {
		if m, err := OpenMapped(path); err == nil {
			return m, nil
		}
	}
	return OpenHeap(path)
}

// OpenHeap reads path fully into an 8-byte-aligned heap buffer and
// wraps it as a Mapping. It is the portable fallback: views carved
// from it obey the same alignment contract as true mappings.
func OpenHeap(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < 0 || size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("mmapio: file %s size %d out of range", path, size)
	}
	// Allocate uint64 backing so the base address is 8-aligned even
	// though the region is addressed as bytes.
	words := make([]uint64, (size+7)/8)
	var buf []byte
	if len(words) > 0 {
		buf = unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	}
	if _, err := readFull(f, buf); err != nil {
		return nil, fmt.Errorf("mmapio: read %s: %w", path, err)
	}
	return &Mapping{data: buf}, nil
}

func readFull(f *os.File, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		k, err := f.ReadAt(buf[n:], int64(n))
		n += k
		if err != nil {
			if n == len(buf) {
				break
			}
			return n, err
		}
	}
	return n, nil
}

// Data returns the mapped bytes. The caller must not modify them and
// must not retain the slice past Close.
func (m *Mapping) Data() []byte { return m.data }

// Len returns the size of the region in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// Mapped reports whether the region is an OS file mapping (true) or a
// heap copy (false).
func (m *Mapping) Mapped() bool { return m.mapped }

// Close releases the region: munmap for OS mappings, a reference drop
// for heap buffers. Views over the mapping become invalid; Close is
// idempotent.
func (m *Mapping) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	data := m.data
	m.data = nil
	if m.mapped {
		m.mapped = false
		return munmap(data)
	}
	return nil
}

// Uint64s reinterprets b as a []uint64 view. b must be 8-byte aligned
// and a multiple of 8 bytes long; the returned slice aliases b.
func Uint64s(b []byte) ([]uint64, error) {
	if err := checkAlign(b, 8); err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8), nil
}

// Int64s reinterprets b as a []int64 view under the Uint64s contract.
func Int64s(b []byte) ([]int64, error) {
	if err := checkAlign(b, 8); err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8), nil
}

// Int32s reinterprets b as a []int32 view. b must be 4-byte aligned
// and a multiple of 4 bytes long; the returned slice aliases b.
func Int32s(b []byte) ([]int32, error) {
	if err := checkAlign(b, 4); err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), nil
}

// ViewString reinterprets b as a string without copying. The bytes
// must stay immutable and outlive every use of the string — true for
// mapping-backed regions until Close.
func ViewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

func checkAlign(b []byte, align int) error {
	if len(b)%align != 0 {
		return fmt.Errorf("%w: length %d not a multiple of %d", ErrMisaligned, len(b), align)
	}
	if len(b) > 0 && uintptr(unsafe.Pointer(&b[0]))%uintptr(align) != 0 {
		return fmt.Errorf("%w: base address not %d-byte aligned", ErrMisaligned, align)
	}
	return nil
}

// LittleEndianHost reports whether the host stores multi-byte integers
// little-endian. The v3 snapshot format is little-endian on disk, so
// zero-copy views are only valid on little-endian hosts; big-endian
// hosts must refuse view-based loads.
func LittleEndianHost() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
