package mmapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "region.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testRegion() []byte {
	buf := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(i)*0x0101010101010101)
	}
	return buf
}

func TestOpenHeapMatchesFile(t *testing.T) {
	want := testRegion()
	m, err := OpenHeap(writeTemp(t, want))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mapped() {
		t.Fatal("heap mapping reports Mapped()=true")
	}
	if !bytes.Equal(m.Data(), want) {
		t.Fatalf("heap data mismatch: got %x want %x", m.Data(), want)
	}
}

func TestOpenPrefersMappingWhenSupported(t *testing.T) {
	want := testRegion()
	m, err := Open(writeTemp(t, want))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if Supported() && !m.Mapped() {
		t.Fatal("Open did not map on a platform with mmap support")
	}
	if !bytes.Equal(m.Data(), want) {
		t.Fatalf("mapped data mismatch")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len after Close = %d, want 0", m.Len())
	}
}

func TestOpenEmptyFile(t *testing.T) {
	m, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 {
		t.Fatalf("empty file mapped to %d bytes", m.Len())
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}

func TestViewsRoundTrip(t *testing.T) {
	m, err := Open(writeTemp(t, testRegion()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	b := m.Data()

	u64, err := Uint64s(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(u64) != 8 || u64[3] != 3*0x0101010101010101 {
		t.Fatalf("Uint64s view wrong: %v", u64)
	}
	i64, err := Int64s(b)
	if err != nil {
		t.Fatal(err)
	}
	if i64[1] != 0x0101010101010101 {
		t.Fatalf("Int64s view wrong: %v", i64[1])
	}
	i32, err := Int32s(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(i32) != 16 || uint32(i32[2]) != 0x01010101 {
		t.Fatalf("Int32s view wrong: len=%d v=%x", len(i32), i32[2])
	}
	if s := ViewString(b[8:12]); s != "\x01\x01\x01\x01" {
		t.Fatalf("ViewString wrong: %q", s)
	}
	if s := ViewString(nil); s != "" {
		t.Fatalf("ViewString(nil) = %q", s)
	}
}

func TestViewAlignmentErrors(t *testing.T) {
	m, err := Open(writeTemp(t, testRegion()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	b := m.Data()

	if _, err := Uint64s(b[4:]); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("Uint64s on +4 base: err = %v, want ErrMisaligned", err)
	}
	if _, err := Uint64s(b[:12]); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("Uint64s on 12-byte region: err = %v, want ErrMisaligned", err)
	}
	if _, err := Int32s(b[2:]); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("Int32s on +2 base: err = %v, want ErrMisaligned", err)
	}
	if _, err := Int32s(b[:7]); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("Int32s on 7-byte region: err = %v, want ErrMisaligned", err)
	}
	if v, err := Uint64s(nil); err != nil || v != nil {
		t.Fatalf("Uint64s(nil) = %v, %v", v, err)
	}
}

func TestHeapBufferIsAligned(t *testing.T) {
	// 9 bytes forces a partial trailing word in the heap backing; the
	// base must still be 8-aligned so offset-table views work.
	m, err := OpenHeap(writeTemp(t, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := Uint64s(m.Data()[:8]); err != nil {
		t.Fatalf("heap base misaligned: %v", err)
	}
}

func TestResidentBytesBestEffort(t *testing.T) {
	// Only the contract is testable portably: no panic, and a false
	// second result when the accounting is unavailable.
	n, ok := ResidentBytes("")
	if ok && n < 0 {
		t.Fatalf("ResidentBytes = %d with ok=true", n)
	}
}

func TestLittleEndianHostConsistent(t *testing.T) {
	switch runtime.GOARCH {
	case "amd64", "arm64", "386", "arm", "riscv64", "loong64", "wasm":
		if !LittleEndianHost() {
			t.Fatalf("LittleEndianHost() = false on %s", runtime.GOARCH)
		}
	case "s390x":
		if LittleEndianHost() {
			t.Fatalf("LittleEndianHost() = true on %s", runtime.GOARCH)
		}
	}
}
