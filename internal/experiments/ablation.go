package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/quasiclique"
)

// AblationPoint measures one SCPM variant.
type AblationPoint struct {
	Variant       string
	Duration      time.Duration
	SetsEvaluated int64
	SetsEmitted   int64
}

// AblationResult is experiment E10: the contribution of each design
// choice DESIGN.md calls out, measured by toggling it off.
type AblationResult struct {
	Dataset string
	Points  []AblationPoint
}

// ablationVariants enumerates the toggles.
var ablationVariants = []struct {
	name string
	mod  func(*core.Params)
}{
	{"scpm-dfs (full)", func(p *core.Params) {}},
	{"scpm-bfs", func(p *core.Params) { p.Order = quasiclique.BFS }},
	{"no vertex pruning (Thm 3)", func(p *core.Params) { p.DisableVertexPruning = true }},
	{"no set pruning (Thms 4-5)", func(p *core.Params) { p.DisableSetPruning = true }},
	{"no lookahead", func(p *core.Params) { p.DisableLookahead = true }},
	{"no diameter pruning", func(p *core.Params) { p.DisableDiameterPruning = true }},
	{"no forced-vertex jumps", func(p *core.Params) { p.DisableJumps = true }},
	{"parallel x4", func(p *core.Params) { p.Parallelism = 4 }},
}

// Ablation runs every SCPM variant on the dataset with the Figure-8
// default parameters and reports runtimes (best of three, to suppress
// GC noise) and evaluation counts. All variants produce identical
// output (verified by the core tests); only cost differs.
func Ablation(ctx context.Context, d *Dataset) (*AblationResult, error) {
	out := &AblationResult{Dataset: d.Name}
	for _, v := range ablationVariants {
		p := PerfBase(d)
		v.mod(&p)
		var best time.Duration
		var res *core.Result
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			r, err := core.Mine(ctx, d.Graph, p, nil)
			if err != nil {
				return nil, err
			}
			if el := time.Since(start); res == nil || el < best {
				best, res = el, r
			}
		}
		out.Points = append(out.Points, AblationPoint{
			Variant:       v.name,
			Duration:      best,
			SetsEvaluated: res.Stats.SetsEvaluated,
			SetsEmitted:   res.Stats.SetsEmitted,
		})
	}
	return out, nil
}

// Format renders the ablation table.
func (r *AblationResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — SCPM ablation (E10)\n", r.Dataset)
	fmt.Fprintf(&sb, "%-28s %12s %10s %10s\n", "variant", "runtime", "evaluated", "emitted")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%-28s %12s %10d %10d\n",
			p.Variant, fmtDur(p.Duration), p.SetsEvaluated, p.SetsEmitted)
	}
	return sb.String()
}
