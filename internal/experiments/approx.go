package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/epsilon"
)

// ApproxPoint is one sampling configuration of the exact-vs-sampled
// study: accuracy of ε̂ against the exact ε, set for set, plus the
// wall-clock and search-node cost of both modes.
type ApproxPoint struct {
	// SampleEps / SampleDelta parameterize the Hoeffding bound;
	// SampleSize is the resulting per-set membership sample count.
	SampleEps   float64
	SampleDelta float64
	SampleSize  int

	// Exact and Sampled are the best-of-repeats mining times.
	Exact   time.Duration
	Sampled time.Duration
	// ExactNodes / SampledNodes are the search-tree nodes processed
	// (hardware-independent cost), and SampledVertices the total
	// membership queries drawn.
	ExactNodes      int64
	SampledNodes    int64
	SampledVertices int64

	// Compared counts the attribute sets present in both runs (the
	// thresholds are held open, so normally all of them); Estimated how
	// many of those actually took the sampling path; WithinBound how
	// many estimates landed inside ±SampleEps of the exact ε.
	Compared    int
	Estimated   int
	WithinBound int
	// MaxAbsErr / MeanAbsErr summarize |ε̂−ε| over the estimated sets.
	MaxAbsErr  float64
	MeanAbsErr float64
}

// Speedup returns exact/sampled wall-clock ratio.
func (p ApproxPoint) Speedup() float64 {
	if p.Sampled <= 0 {
		return 0
	}
	return float64(p.Exact) / float64(p.Sampled)
}

// ApproxResult is the exact-vs-sampled ε estimation study on one
// dataset (the reproduction's stand-in for the paper's §6 sampling
// discussion).
type ApproxResult struct {
	Dataset string
	Points  []ApproxPoint
}

// DefaultApproxConfigs are the (ε, δ) sampling configurations the
// harness sweeps, loosest last.
var DefaultApproxConfigs = [][2]float64{{0.05, 0.05}, {0.1, 0.05}, {0.15, 0.1}, {0.25, 0.1}}

// approxParams opens every output threshold so exact and sampled mode
// evaluate the identical attribute-set tree and ε values can be
// compared one to one; pattern mining is disabled to time the ε
// computation itself.
func approxParams(d *Dataset) core.Params {
	p := d.Params()
	p.K = 0
	p.EpsMin = 0
	p.DeltaMin = 0
	p.MinAttrs = 1
	p.MaxAttrs = 2
	return p
}

// Approx runs the exact-vs-sampled study: one exact baseline mine, then
// one sampled mine per configuration, comparing per-set ε̂ against the
// exact ε and timing both modes (best of `repeats`).
func Approx(ctx context.Context, d *Dataset, configs [][2]float64, repeats int) (*ApproxResult, error) {
	if len(configs) == 0 {
		configs = DefaultApproxConfigs
	}
	if repeats < 1 {
		repeats = 1
	}
	base := approxParams(d)
	exactDur, exactRes, err := bestOf(repeats, func() (*core.Result, error) {
		return core.Mine(ctx, d.Graph, base, nil)
	})
	if err != nil {
		return nil, err
	}
	exactEps := make(map[string]float64, len(exactRes.Sets))
	for _, s := range exactRes.Sets {
		exactEps[s.Key()] = s.Epsilon
	}

	out := &ApproxResult{Dataset: d.Name}
	for _, cfg := range configs {
		p := base
		p.EpsilonMode = core.EpsilonSampled
		p.SampleEps = cfg[0]
		p.SampleDelta = cfg[1]
		p.Seed = 1
		dur, res, err := bestOf(repeats, func() (*core.Result, error) {
			return core.Mine(ctx, d.Graph, p, nil)
		})
		if err != nil {
			return nil, err
		}
		pt := ApproxPoint{
			SampleEps:       cfg[0],
			SampleDelta:     cfg[1],
			SampleSize:      epsilon.SampleSize(cfg[0], cfg[1]),
			Exact:           exactDur,
			Sampled:         dur,
			ExactNodes:      exactRes.Stats.SearchNodes,
			SampledNodes:    res.Stats.SearchNodes,
			SampledVertices: res.Stats.SampledVertices,
		}
		var sumErr float64
		for _, s := range res.Sets {
			want, ok := exactEps[s.Key()]
			if !ok {
				continue
			}
			pt.Compared++
			if !s.Estimated {
				continue
			}
			pt.Estimated++
			diff := math.Abs(s.Epsilon - want)
			sumErr += diff
			if diff > pt.MaxAbsErr {
				pt.MaxAbsErr = diff
			}
			if diff <= cfg[0] {
				pt.WithinBound++
			}
		}
		if pt.Estimated > 0 {
			pt.MeanAbsErr = sumErr / float64(pt.Estimated)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Format renders the study as a text table.
func (r *ApproxResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — exact vs sampled ε estimation\n", r.Dataset)
	fmt.Fprintf(&sb, "%6s %6s %5s %12s %12s %8s %9s %9s %9s %10s\n",
		"ε", "δ", "m", "exact", "sampled", "speedup", "estimated", "in-bound", "max|err|", "mean|err|")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%6.2g %6.2g %5d %12s %12s %7.1fx %4d/%-4d %4d/%-4d %9.3f %10.4f\n",
			p.SampleEps, p.SampleDelta, p.SampleSize,
			fmtDur(p.Exact), fmtDur(p.Sampled), p.Speedup(),
			p.Estimated, p.Compared, p.WithinBound, p.Estimated,
			p.MaxAbsErr, p.MeanAbsErr)
	}
	return sb.String()
}
