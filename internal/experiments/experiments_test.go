package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"github.com/scpm/scpm/internal/core"
)

// testScale keeps the experiment tests fast; the full-scale runs live in
// bench_test.go and cmd/scpm-bench.
const testScale = 0.25

func load(t *testing.T, name string) *Dataset {
	t.Helper()
	d, err := Load(name, testScale)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadUnknownDataset(t *testing.T) {
	if _, err := Load("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadCaches(t *testing.T) {
	d1 := load(t, "smalldblp")
	d2 := load(t, "smalldblp")
	if d1 != d2 {
		t.Fatal("cache miss for identical load")
	}
	if d1.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r, err := Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match {
		t.Fatalf("Table 1 mismatch:\n%s", r.Format())
	}
	out := r.Format()
	if !strings.Contains(out, "matches Table 1") {
		t.Fatalf("format verdict missing:\n%s", out)
	}
}

// TestTopSetsQualitativeShape verifies the paper's headline claims on
// each dataset: top-σ sets have much lower ε than top-ε sets, and the
// δ ranking differs from the σ ranking.
func TestTopSetsQualitativeShape(t *testing.T) {
	for _, name := range []string{"dblp", "lastfm", "citeseer"} {
		t.Run(name, func(t *testing.T) {
			d := load(t, name)
			r, err := TopSets(context.Background(), d, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.TopSigma) == 0 || len(r.TopEps) == 0 || len(r.TopDelta) == 0 {
				t.Fatalf("empty rankings: %+v", r)
			}
			// σ ranking is descending in σ, ε in ε, δ in δ
			for i := 1; i < len(r.TopSigma); i++ {
				if r.TopSigma[i].Support > r.TopSigma[i-1].Support {
					t.Fatal("σ ranking not sorted")
				}
			}
			for i := 1; i < len(r.TopEps); i++ {
				if r.TopEps[i].Epsilon > r.TopEps[i-1].Epsilon {
					t.Fatal("ε ranking not sorted")
				}
			}
			// top-ε sets must dominate top-σ sets on ε (the paper's
			// "high support sets do not present high structural
			// correlation")
			if MeanEps(r.TopEps) <= MeanEps(r.TopSigma) {
				t.Fatalf("ε shape violated: top-ε mean %v vs top-σ mean %v",
					MeanEps(r.TopEps), MeanEps(r.TopSigma))
			}
			// top-σ sets must dominate top-ε sets on support
			if MeanSupport(r.TopSigma) <= MeanSupport(r.TopEps) {
				t.Fatalf("σ shape violated")
			}
			if r.Format() == "" {
				t.Fatal("empty format")
			}
		})
	}
}

func TestExpectedCurveShape(t *testing.T) {
	d := load(t, "dblp")
	sigmas := DefaultSigmas(d.Graph.NumVertices(), 0.10, 5)
	r, err := ExpectedCurve(d, sigmas, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if !r.BoundHolds {
		t.Fatalf("max-εexp fell below sim-εexp:\n%s", r.Format())
	}
	if !r.BothGrow {
		t.Fatalf("curves not growing:\n%s", r.Format())
	}
	for _, p := range r.Points {
		if p.MaxExp < 0 || p.MaxExp > 1 || p.SimMean < 0 || p.SimMean > 1 {
			t.Fatalf("out of range point %+v", p)
		}
	}
}

func TestDefaultSigmas(t *testing.T) {
	s := DefaultSigmas(1000, 0.1, 4)
	want := []int{25, 50, 75, 100}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sigmas = %v", s)
		}
	}
	if got := DefaultSigmas(10, 0.1, 1); len(got) != 2 {
		t.Fatalf("min points: %v", got)
	}
}

func TestPerfPanel(t *testing.T) {
	d := load(t, "smalldblp")
	r, err := Perf(context.Background(), d, "gamma", []float64{0.6, 0.8}, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.DFS <= 0 || p.BFS <= 0 || p.Naive <= 0 {
			t.Fatalf("non-positive timing: %+v", p)
		}
	}
	if !strings.Contains(r.Format(), "runtime vs gamma") {
		t.Fatal("format broken")
	}
}

func TestPerfSkipsNaive(t *testing.T) {
	d := load(t, "smalldblp")
	r, err := Perf(context.Background(), d, "k", []float64{2}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Points[0].Naive != 0 || !r.SkippedNaive {
		t.Fatal("naive should be skipped")
	}
	if !strings.Contains(r.Format(), "-") {
		t.Fatal("format should mark skipped naive")
	}
}

func TestPerfUnknownParameter(t *testing.T) {
	d := load(t, "smalldblp")
	if _, err := Perf(context.Background(), d, "bogus", []float64{1}, false, 1); err == nil {
		t.Fatal("unknown parameter accepted")
	}
}

func TestDefaultSweepsCoverPanels(t *testing.T) {
	d := load(t, "smalldblp")
	sweeps := DefaultPerfSweeps(d)
	for _, panel := range PerfPanels {
		if len(sweeps[panel]) == 0 {
			t.Fatalf("no sweep for %s", panel)
		}
	}
	ssweeps := DefaultSensitivitySweeps(d)
	for _, panel := range SensitivityPanels {
		if len(ssweeps[panel]) == 0 {
			t.Fatalf("no sensitivity sweep for %s", panel)
		}
	}
}

// TestSensitivityShape verifies §4.3: restrictive quasi-clique
// parameters reduce average ε, and higher σmin increases average ε.
func TestSensitivityShape(t *testing.T) {
	d := load(t, "smalldblp")
	r, err := Sensitivity(context.Background(), d, "gamma", []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatal("points")
	}
	if r.Points[1].GlobalEps > r.Points[0].GlobalEps {
		t.Fatalf("ε should not grow with γmin: %+v", r.Points)
	}
	if r.Points[0].TopEps < r.Points[0].GlobalEps {
		t.Fatalf("top-10%% ε below global ε: %+v", r.Points[0])
	}
	base := d.Params()
	r2, err := Sensitivity(context.Background(), d, "sigma_min",
		[]float64{float64(base.SigmaMin), float64(base.SigmaMin * 3)})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Points[1].GlobalEps < r2.Points[0].GlobalEps {
		t.Fatalf("ε should grow with σmin: %+v", r2.Points)
	}
	if r2.Points[1].Sets >= r2.Points[0].Sets {
		t.Fatalf("higher σmin should yield fewer sets")
	}
	if !strings.Contains(r.Format(), "sensitivity") {
		t.Fatal("format")
	}
}

func TestAvgAndTopFiltersInf(t *testing.T) {
	var sets []core.AttributeSet
	for _, d := range []float64{1, 2, math.Inf(1), 3} {
		sets = append(sets, core.AttributeSet{Delta: d})
	}
	global, top := avgAndTop(sets, func(s core.AttributeSet) float64 { return s.Delta })
	if global != 2 {
		t.Fatalf("global = %v, want 2 (Inf excluded)", global)
	}
	if top != 3 {
		t.Fatalf("top = %v, want 3", top)
	}
	if g, tp := avgAndTop(nil, func(s core.AttributeSet) float64 { return s.Delta }); g != 0 || tp != 0 {
		t.Fatal("empty input should give zeros")
	}
}

func TestAblationRuns(t *testing.T) {
	d := load(t, "smalldblp")
	r, err := Ablation(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(ablationVariants) {
		t.Fatalf("points = %d", len(r.Points))
	}
	emitted := r.Points[0].SetsEmitted
	for _, p := range r.Points {
		if p.SetsEmitted != emitted {
			t.Fatalf("variant %s changed output: %d vs %d", p.Variant, p.SetsEmitted, emitted)
		}
		if p.Duration <= 0 {
			t.Fatalf("variant %s has no duration", p.Variant)
		}
	}
	// disabling set pruning must evaluate at least as many sets
	var full, noset int64
	for _, p := range r.Points {
		switch p.Variant {
		case "scpm-dfs (full)":
			full = p.SetsEvaluated
		case "no set pruning (Thms 4-5)":
			noset = p.SetsEvaluated
		}
	}
	if noset < full {
		t.Fatalf("set pruning increased evaluations: %d < %d", noset, full)
	}
	if !strings.Contains(r.Format(), "ablation") {
		t.Fatal("format")
	}
}

// TestApproxStudy runs the exact-vs-sampled study on the dense dataset
// with one loose configuration and checks its accounting invariants.
func TestApproxStudy(t *testing.T) {
	d := load(t, "dense")
	r, err := Approx(context.Background(), d, [][2]float64{{0.25, 0.1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 1 {
		t.Fatalf("got %d points", len(r.Points))
	}
	p := r.Points[0]
	if p.SampleSize != 24 { // ⌈ln(20)/0.125⌉
		t.Errorf("sample size = %d", p.SampleSize)
	}
	if p.Compared == 0 || p.Estimated == 0 {
		t.Fatalf("study compared nothing: %+v", p)
	}
	if p.Estimated > p.Compared || p.WithinBound > p.Estimated {
		t.Fatalf("inconsistent counts: %+v", p)
	}
	if p.SampledVertices != int64(p.Estimated*p.SampleSize) {
		t.Errorf("sampled vertices %d, want %d", p.SampledVertices, p.Estimated*p.SampleSize)
	}
	if p.MaxAbsErr < p.MeanAbsErr {
		t.Errorf("max err %v below mean %v", p.MaxAbsErr, p.MeanAbsErr)
	}
	if p.Exact <= 0 || p.Sampled <= 0 || p.Speedup() <= 0 {
		t.Errorf("missing timings: %+v", p)
	}
	if !strings.Contains(r.Format(), "speedup") {
		t.Error("format output missing header")
	}
}
