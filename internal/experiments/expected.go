package experiments

import (
	"fmt"
	"strings"

	"github.com/scpm/scpm/internal/nullmodel"
)

// ExpectedPoint is one support value of Figures 4/7/9: the
// simulation-based expected structural correlation (with its standard
// deviation) and the analytical upper bound.
type ExpectedPoint struct {
	Sigma   int
	SimMean float64
	SimStd  float64
	MaxExp  float64
}

// ExpectedCurveResult is experiments E5–E7.
type ExpectedCurveResult struct {
	Dataset string
	R       int
	Points  []ExpectedPoint
	// BoundHolds reports whether max-εexp ≥ sim-εexp at every point
	// (the paper's Figure-4 observation: the bound is not tight but
	// grows the same way).
	BoundHolds bool
	// BothGrow reports whether both curves are non-decreasing within
	// noise (monotone growth is what makes the normalization usable).
	BothGrow bool
}

// ExpectedCurve runs E5/E6/E7: sweep support values and compare
// sim-εexp (r samples per point) against the analytical max-εexp.
func ExpectedCurve(d *Dataset, sigmas []int, r int, seed int64) (*ExpectedCurveResult, error) {
	qp := d.Params().QuasiCliqueParams()
	ana := nullmodel.NewAnalytical(d.Graph, qp)
	sim := nullmodel.NewSimulation(d.Graph, qp, r, seed)
	out := &ExpectedCurveResult{Dataset: d.Name, R: r, BoundHolds: true, BothGrow: true}
	prevSim, prevMax := -1.0, -1.0
	for _, s := range sigmas {
		mean, std := sim.ExpStd(s)
		mx := ana.Exp(s)
		out.Points = append(out.Points, ExpectedPoint{Sigma: s, SimMean: mean, SimStd: std, MaxExp: mx})
		if mean > mx+1e-9 {
			out.BoundHolds = false
		}
		// allow one standard error of Monte-Carlo noise on the sim curve
		slack := std
		if mean < prevSim-slack-1e-9 || mx < prevMax-1e-12 {
			out.BothGrow = false
		}
		prevSim, prevMax = mean, mx
	}
	return out, nil
}

// DefaultSigmas returns a support sweep covering the same fraction of
// |V| as the paper's figures (up to ~10% for DBLP/CiteSeer, ~37% for
// LastFm-style graphs).
func DefaultSigmas(n int, frac float64, points int) []int {
	if points < 2 {
		points = 2
	}
	max := int(frac * float64(n))
	if max < points {
		max = points
	}
	out := make([]int, points)
	for i := 0; i < points; i++ {
		out[i] = max * (i + 1) / points
	}
	return out
}

// Format renders the curve as a text table.
func (r *ExpectedCurveResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — expected structural correlation (r=%d samples/point)\n", r.Dataset, r.R)
	fmt.Fprintf(&sb, "%8s %14s %12s %14s %10s\n", "σ", "sim-εexp", "±std", "max-εexp", "ratio")
	for _, p := range r.Points {
		ratio := 0.0
		if p.SimMean > 0 {
			ratio = p.MaxExp / p.SimMean
		}
		fmt.Fprintf(&sb, "%8d %14.6g %12.3g %14.6g %10.3g\n",
			p.Sigma, p.SimMean, p.SimStd, p.MaxExp, ratio)
	}
	fmt.Fprintf(&sb, "bound holds (max ≥ sim): %v; both curves grow: %v\n", r.BoundHolds, r.BothGrow)
	return sb.String()
}
