package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/scpm/scpm/internal/core"
)

// TopSetsResult is experiments E2–E4 (Tables 2–4): the top attribute
// sets of a dataset ranked by support, structural correlation and
// normalized structural correlation. The paper's headline qualitative
// findings, checked by the tests:
//
//   - top-σ sets (generic head terms) have low ε and low δ;
//   - top-ε sets are topical, with far smaller σ;
//   - top-δ re-ranks again: high ε alone does not imply high δ.
type TopSetsResult struct {
	Dataset   string
	TopN      int
	TopSigma  []core.AttributeSet
	TopEps    []core.AttributeSet
	TopDelta  []core.AttributeSet
	Sets      int
	Stats     core.Stats
	LargestQC *core.Pattern
}

// TopSets runs E2/E3/E4 on the given dataset: a full SCPM pass with
// εmin = δmin = 0 (so every frequent set is scored), then three top-N
// rankings.
func TopSets(ctx context.Context, d *Dataset, topN int) (*TopSetsResult, error) {
	p := d.Params()
	p.EpsMin = 0
	p.DeltaMin = 0
	p.K = 1 // only the largest pattern per set is needed here
	p.MaxAttrs = 3
	res, err := core.Mine(ctx, d.Graph, p, nil)
	if err != nil {
		return nil, err
	}
	out := &TopSetsResult{
		Dataset:  d.Name,
		TopN:     topN,
		TopSigma: core.TopSets(res.Sets, core.BySupport, topN),
		TopEps:   core.TopSets(res.Sets, core.ByEpsilon, topN),
		TopDelta: core.TopSets(res.Sets, core.ByDelta, topN),
		Sets:     len(res.Sets),
		Stats:    res.Stats,
	}
	for i := range res.Patterns {
		if out.LargestQC == nil || res.Patterns[i].Size() > out.LargestQC.Size() {
			out.LargestQC = &res.Patterns[i]
		}
	}
	return out, nil
}

// Format renders the three ranking blocks like Tables 2–4.
func (r *TopSetsResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — top-%d attribute sets (%d sets scored)\n", r.Dataset, r.TopN, r.Sets)
	blocks := []struct {
		title string
		sets  []core.AttributeSet
	}{
		{"top σ (support)", r.TopSigma},
		{"top ε (structural correlation)", r.TopEps},
		{"top δlb (normalized structural correlation)", r.TopDelta},
	}
	for _, b := range blocks {
		fmt.Fprintf(&sb, "\n%s\n", b.title)
		fmt.Fprintf(&sb, "%-38s %8s %8s %12s\n", "S", "σ", "ε", "δlb")
		for _, s := range b.sets {
			fmt.Fprintf(&sb, "%-38s %8d %8.3f %12.4g\n",
				strings.Join(s.Names, " "), s.Support, s.Epsilon, s.Delta)
		}
	}
	if r.LargestQC != nil {
		fmt.Fprintf(&sb, "\nlargest pattern: {%s}, %d vertices, γ=%.2f\n",
			strings.Join(r.LargestQC.Names, ","), r.LargestQC.Size(), r.LargestQC.Density())
	}
	fmt.Fprintf(&sb, "mining time: %v (sets evaluated: %d)\n", r.Stats.Duration, r.Stats.SetsEvaluated)
	return sb.String()
}

// MeanEps returns the average ε of a ranking block (used by the tests
// to verify the paper's qualitative claims).
func MeanEps(sets []core.AttributeSet) float64 {
	if len(sets) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range sets {
		s += x.Epsilon
	}
	return s / float64(len(sets))
}

// MeanSupport returns the average σ of a ranking block.
func MeanSupport(sets []core.AttributeSet) float64 {
	if len(sets) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range sets {
		s += float64(x.Support)
	}
	return s / float64(len(sets))
}
