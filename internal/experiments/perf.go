package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/quasiclique"
)

// PerfPoint is one x-value of a Figure-8 panel: wall-clock runtimes of
// the three algorithms.
type PerfPoint struct {
	X     float64
	Naive time.Duration
	BFS   time.Duration
	DFS   time.Duration
	// Sets is the number of attribute sets SCPM-DFS emitted (sanity
	// signal that the sweep actually changes the workload).
	Sets int
}

// PerfResult is one panel of Figure 8 (runtime vs one parameter).
type PerfResult struct {
	Dataset string
	Varying string
	Points  []PerfPoint
	// SkippedNaive is set when the naive baseline was disabled.
	SkippedNaive bool
}

// PerfBase returns the paper's §4.2 default parameters scaled to the
// SmallDBLP profile: γmin=0.5, min_size (scaled 11→profile), σmin
// (scaled 100→profile), εmin=0.1, δmin=1, k=5.
func PerfBase(d *Dataset) core.Params {
	p := d.Params()
	p.EpsMin = 0.1
	p.DeltaMin = 1
	p.K = 5
	p.MinAttrs = 1
	p.MaxAttrs = 4
	return p
}

// applyVarying sets one swept parameter.
func applyVarying(p core.Params, varying string, v float64) (core.Params, error) {
	switch varying {
	case "gamma":
		p.Gamma = v
	case "min_size":
		p.MinSize = int(v)
	case "sigma_min":
		p.SigmaMin = int(v)
	case "eps_min":
		p.EpsMin = v
	case "delta_min":
		p.DeltaMin = v
	case "k":
		p.K = int(v)
	default:
		return p, fmt.Errorf("experiments: unknown perf parameter %q", varying)
	}
	return p, nil
}

// Perf runs one Figure-8 panel: for each value of the varying parameter
// it times Naive, SCPM-BFS and SCPM-DFS (the naive baseline can be
// skipped for quick runs). Each timing is the best of `repeats` runs
// (≥ 1) to suppress GC noise.
func Perf(ctx context.Context, d *Dataset, varying string, values []float64, withNaive bool, repeats int) (*PerfResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	out := &PerfResult{Dataset: d.Name, Varying: varying, SkippedNaive: !withNaive}
	for _, v := range values {
		p, err := applyVarying(PerfBase(d), varying, v)
		if err != nil {
			return nil, err
		}
		pt := PerfPoint{X: v}

		p.Order = quasiclique.DFS
		var res *core.Result
		pt.DFS, res, err = bestOf(repeats, func() (*core.Result, error) { return core.Mine(ctx, d.Graph, p, nil) })
		if err != nil {
			return nil, err
		}
		pt.Sets = len(res.Sets)

		p.Order = quasiclique.BFS
		pt.BFS, _, err = bestOf(repeats, func() (*core.Result, error) { return core.Mine(ctx, d.Graph, p, nil) })
		if err != nil {
			return nil, err
		}

		if withNaive {
			pt.Naive, _, err = bestOf(repeats, func() (*core.Result, error) { return core.MineNaive(ctx, d.Graph, p, nil) })
			if err != nil {
				return nil, err
			}
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// bestOf times fn n times and returns the fastest run.
func bestOf(n int, fn func() (*core.Result, error)) (time.Duration, *core.Result, error) {
	var best time.Duration
	var res *core.Result
	for i := 0; i < n; i++ {
		start := time.Now()
		r, err := fn()
		if err != nil {
			return 0, nil, err
		}
		d := time.Since(start)
		if res == nil || d < best {
			best, res = d, r
		}
	}
	return best, res, nil
}

// Format renders the panel as a text table with speedup columns.
func (r *PerfResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — runtime vs %s\n", r.Dataset, r.Varying)
	fmt.Fprintf(&sb, "%10s %12s %12s %12s %10s %6s\n",
		r.Varying, "Naive", "SCPM-BFS", "SCPM-DFS", "speedup", "sets")
	for _, p := range r.Points {
		speedup := "-"
		naive := "-"
		if !r.SkippedNaive {
			naive = fmtDur(p.Naive)
			if p.DFS > 0 {
				speedup = fmt.Sprintf("%.1fx", float64(p.Naive)/float64(p.DFS))
			}
		}
		fmt.Fprintf(&sb, "%10.3g %12s %12s %12s %10s %6d\n",
			p.X, naive, fmtDur(p.BFS), fmtDur(p.DFS), speedup, p.Sets)
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// DefaultPerfSweeps returns the paper's Figure-8 sweeps scaled to the
// synthetic SmallDBLP (min_size 11–15 → 4–8, σmin 150–350 → 15–35).
func DefaultPerfSweeps(d *Dataset) map[string][]float64 {
	base := PerfBase(d)
	return map[string][]float64{
		"gamma":     {0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		"min_size":  {float64(base.MinSize - 1), float64(base.MinSize), float64(base.MinSize + 1), float64(base.MinSize + 2), float64(base.MinSize + 3)},
		"sigma_min": {float64(base.SigmaMin), float64(base.SigmaMin) * 1.5, float64(base.SigmaMin) * 2, float64(base.SigmaMin) * 2.5, float64(base.SigmaMin) * 3},
		"eps_min":   {0.10, 0.15, 0.20, 0.25},
		"delta_min": {10, 20, 30, 40, 50},
		"k":         {1, 2, 4, 8, 16},
	}
}

// PerfPanels lists the panels in the paper's order (Figure 8a–8f).
var PerfPanels = []string{"gamma", "min_size", "sigma_min", "eps_min", "delta_min", "k"}
