// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the synthetic stand-in datasets. Each experiment
// returns structured data plus a formatted text table; cmd/scpm-bench
// prints them and the root bench_test.go wraps them in benchmarks.
package experiments

import (
	"fmt"
	"sync"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/datagen"
	"github.com/scpm/scpm/internal/graph"
)

// Dataset is a generated graph with its profile and ground truth.
type Dataset struct {
	Name    string
	Profile datagen.Profile
	Graph   *graph.Graph
	Truth   *datagen.GroundTruth
}

// Params returns the dataset's default mining parameters (the paper's
// per-dataset settings, scaled).
func (d *Dataset) Params() core.Params {
	return core.Params{
		SigmaMin: d.Profile.SigmaMin,
		Gamma:    d.Profile.Gamma,
		MinSize:  d.Profile.MinSize,
		MinAttrs: d.Profile.MinAttrs,
		EpsMin:   d.Profile.EpsMin,
		DeltaMin: d.Profile.DeltaMin,
		K:        5,
	}
}

var (
	dsMu    sync.Mutex
	dsCache = map[string]*Dataset{}
)

// Load generates (or returns the cached) dataset for a profile at the
// given scale. Generation is deterministic, so caching is safe.
func Load(name string, scale float64) (*Dataset, error) {
	key := fmt.Sprintf("%s@%g", name, scale)
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	var prof datagen.Profile
	switch name {
	case "dblp":
		prof = datagen.SynthDBLP(scale)
	case "lastfm":
		prof = datagen.SynthLastFm(scale)
	case "citeseer":
		prof = datagen.SynthCiteSeer(scale)
	case "dense":
		prof = datagen.SynthDense(scale)
	case "smalldblp":
		prof = datagen.SmallDBLP(scale)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q (want dblp, lastfm, citeseer, dense or smalldblp)", name)
	}
	g, gt, err := datagen.Generate(prof.Config)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Name: prof.Config.Name, Profile: prof, Graph: g, Truth: gt}
	dsCache[key] = d
	return d, nil
}

// Summary describes the dataset like the paper's dataset paragraphs.
func (d *Dataset) Summary() string {
	return fmt.Sprintf("%s: %d vertices, %d edges, %d attributes (σmin=%d, γmin=%g, min_size=%d)",
		d.Name, d.Graph.NumVertices(), d.Graph.NumEdges(), d.Graph.NumAttributes(),
		d.Profile.SigmaMin, d.Profile.Gamma, d.Profile.MinSize)
}
