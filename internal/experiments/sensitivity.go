package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/scpm/scpm/internal/core"
)

// SensitivityPoint is one x-value of a Figure-10 panel: the average ε
// and δ over the complete output ("global") and over the top-10% sets.
type SensitivityPoint struct {
	X           float64
	GlobalEps   float64
	TopEps      float64
	GlobalDelta float64
	TopDelta    float64
	Sets        int
}

// SensitivityResult is one panel of Figure 10.
type SensitivityResult struct {
	Dataset string
	Varying string
	Points  []SensitivityPoint
}

// Sensitivity runs one Figure-10 panel: for each parameter value it
// mines the complete output (εmin = δmin = 0, K = 0) and averages ε and
// δ globally and over the top 10% (ranked by the respective metric,
// following §4.3). Infinite δ values (εexp underflow) are excluded from
// the averages.
func Sensitivity(ctx context.Context, d *Dataset, varying string, values []float64) (*SensitivityResult, error) {
	out := &SensitivityResult{Dataset: d.Name, Varying: varying}
	for _, v := range values {
		base := d.Params()
		base.EpsMin = 0
		base.DeltaMin = 0
		base.K = 0
		base.MinAttrs = 1
		base.MaxAttrs = 4
		p, err := applyVarying(base, varying, v)
		if err != nil {
			return nil, err
		}
		res, err := core.Mine(ctx, d.Graph, p, nil)
		if err != nil {
			return nil, err
		}
		pt := SensitivityPoint{X: v, Sets: len(res.Sets)}
		pt.GlobalEps, pt.TopEps = avgAndTop(res.Sets, func(s core.AttributeSet) float64 { return s.Epsilon })
		pt.GlobalDelta, pt.TopDelta = avgAndTop(res.Sets, func(s core.AttributeSet) float64 { return s.Delta })
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// avgAndTop returns the mean of metric over all sets and over the top
// 10% (at least one set), skipping non-finite values.
func avgAndTop(sets []core.AttributeSet, metric func(core.AttributeSet) float64) (global, top float64) {
	var vals []float64
	for _, s := range sets {
		if v := metric(s); !math.IsInf(v, 0) && !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	global = sum / float64(len(vals))
	nTop := len(vals) / 10
	if nTop < 1 {
		nTop = 1
	}
	sumTop := 0.0
	for _, v := range vals[:nTop] {
		sumTop += v
	}
	return global, sumTop / float64(nTop)
}

// Format renders the panel.
func (r *SensitivityResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — parameter sensitivity vs %s\n", r.Dataset, r.Varying)
	fmt.Fprintf(&sb, "%10s %12s %12s %14s %14s %6s\n",
		r.Varying, "avg ε", "top10%% ε", "avg δ", "top10%% δ", "sets")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%10.3g %12.4f %12.4f %14.5g %14.5g %6d\n",
			p.X, p.GlobalEps, p.TopEps, p.GlobalDelta, p.TopDelta, p.Sets)
	}
	return sb.String()
}

// DefaultSensitivitySweeps returns the Figure-10 sweeps (γmin,
// min_size, σmin) scaled to the dataset profile.
func DefaultSensitivitySweeps(d *Dataset) map[string][]float64 {
	base := d.Params()
	return map[string][]float64{
		"gamma":     {0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		"min_size":  {float64(base.MinSize - 1), float64(base.MinSize), float64(base.MinSize + 1), float64(base.MinSize + 2), float64(base.MinSize + 3)},
		"sigma_min": {float64(base.SigmaMin), float64(base.SigmaMin) * 1.5, float64(base.SigmaMin) * 2, float64(base.SigmaMin) * 2.5, float64(base.SigmaMin) * 3},
	}
}

// SensitivityPanels lists the panels in the paper's order (Figure 10).
var SensitivityPanels = []string{"gamma", "min_size", "sigma_min"}
