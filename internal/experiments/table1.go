package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
)

// Table1Result is experiment E1: the worked example of §2.1.2. The
// paper's Table 1 lists seven patterns; this experiment mines the
// Figure-1 graph and reports them next to the expected rows.
type Table1Result struct {
	Result *core.Result
	Graph  *graph.Graph
	// Match reports whether the mined output equals Table 1 exactly.
	Match bool
	// Mismatches lists any deviations (empty on success).
	Mismatches []string
}

// table1Expected holds the paper's Table 1 rows: attribute set,
// vertex names, size, γ, σ and ε.
var table1Expected = []struct {
	attrs   string
	verts   string
	size    int
	gamma   float64
	sigma   int
	epsilon float64
}{
	{"A", "6 7 8 9 10 11", 6, 0.60, 11, 0.82},
	{"A", "3 4 5 6", 4, 1.00, 11, 0.82},
	{"A", "3 4 6 7", 4, 0.67, 11, 0.82},
	{"A", "3 5 6 7", 4, 0.67, 11, 0.82},
	{"A", "3 6 7 8", 4, 0.67, 11, 0.82},
	{"B", "6 7 8 9 10 11", 6, 0.60, 6, 1.00},
	{"A,B", "6 7 8 9 10 11", 6, 0.60, 6, 1.00},
}

// Table1 runs E1 with the paper's parameters (σmin=3, γmin=0.6,
// min_size=4, εmin=0.5).
func Table1(ctx context.Context) (*Table1Result, error) {
	g := graph.PaperExample()
	res, err := core.Mine(ctx, g, core.Params{
		SigmaMin: 3,
		Gamma:    0.6,
		MinSize:  4,
		EpsMin:   0.5,
		K:        10,
	}, nil)
	if err != nil {
		return nil, err
	}
	out := &Table1Result{Result: res, Graph: g, Match: true}

	got := map[string]core.Pattern{}
	for _, p := range res.Patterns {
		key := strings.Join(p.Names, ",") + "|" + strings.Join(p.VertexNames(g), " ")
		got[key] = p
	}
	if len(res.Patterns) != len(table1Expected) {
		out.Match = false
		out.Mismatches = append(out.Mismatches,
			fmt.Sprintf("pattern count %d, want %d", len(res.Patterns), len(table1Expected)))
	}
	for _, want := range table1Expected {
		p, ok := got[want.attrs+"|"+want.verts]
		if !ok {
			out.Match = false
			out.Mismatches = append(out.Mismatches,
				fmt.Sprintf("missing pattern ({%s},{%s})", want.attrs, want.verts))
			continue
		}
		if p.Size() != want.size {
			out.Match = false
			out.Mismatches = append(out.Mismatches,
				fmt.Sprintf("({%s},{%s}): size %d, want %d", want.attrs, want.verts, p.Size(), want.size))
		}
		if diff := p.Density() - want.gamma; diff > 0.005 || diff < -0.005 {
			out.Match = false
			out.Mismatches = append(out.Mismatches,
				fmt.Sprintf("({%s},{%s}): γ %.2f, want %.2f", want.attrs, want.verts, p.Density(), want.gamma))
		}
	}
	return out, nil
}

// Format renders the experiment like the paper's Table 1 with a
// paper-vs-measured verdict line.
func (r *Table1Result) Format() string {
	var sb strings.Builder
	sb.WriteString("E1 / Table 1 — patterns from the Figure-1 example graph\n")
	sb.WriteString(fmt.Sprintf("%-34s %5s %6s %4s %6s\n", "pattern", "size", "γ", "σ", "ε"))
	for _, p := range r.Result.Patterns {
		set := r.Result.SetByNames(p.Names...)
		sb.WriteString(fmt.Sprintf("({%s},{%s}) %*d %6.2f %4d %6.2f\n",
			strings.Join(p.Names, ","), strings.Join(p.VertexNames(r.Graph), " "),
			34-2-len(strings.Join(p.Names, ","))-len(strings.Join(p.VertexNames(r.Graph), " "))-4+5,
			p.Size(), p.Density(), set.Support, set.Epsilon))
	}
	if r.Match {
		sb.WriteString("verdict: matches Table 1 of the paper exactly\n")
	} else {
		sb.WriteString("verdict: MISMATCH\n")
		for _, m := range r.Mismatches {
			sb.WriteString("  " + m + "\n")
		}
	}
	return sb.String()
}
